"""Marketplace pricing scenario: budgets, budget ratios, and arbitrage-freeness.

This example focuses on the economics side of the system:

1. price the attribute-set lattice of one marketplace instance under three
   pricing models (entropy-based, flat per-attribute, per-cell);
2. verify the entropy-based model is arbitrage-free (monotone + subadditive);
3. sweep the shopper's budget ratio and show how the achievable correlation of
   the acquisition grows with the budget (the Figure 7 effect, in miniature).

Run with::

    python examples/marketplace_pricing.py
"""

from __future__ import annotations

import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).parent.parent / "src"))

from repro.experiments.common import prepare_setup
from repro.pricing.arbitrage import verify_arbitrage_free
from repro.pricing.models import (
    EntropyPricingModel,
    FlatAttributePricingModel,
    PerCellPricingModel,
)
from repro.workloads.tpch import tpch_workload


def price_lattice_demo() -> None:
    workload = tpch_workload(scale=0.1, seed=0, dirty_rate=0.0)
    customer = workload.table("customer")
    models = {
        "entropy": EntropyPricingModel(),
        "flat/attr": FlatAttributePricingModel(price_per_attribute=2.0),
        "per-cell": PerCellPricingModel(price_per_cell=0.01),
    }
    attribute_sets = [
        ("custkey",),
        ("mktsegment",),
        ("custkey", "mktsegment"),
        ("custkey", "nationkey", "mktsegment"),
        customer.schema.names,
    ]
    print("Prices of projection queries on the customer instance:")
    header = f"  {'attribute set':<45}" + "".join(f"{name:>12}" for name in models)
    print(header)
    for attrs in attribute_sets:
        label = ", ".join(attrs)
        row = f"  {label:<45}"
        for model in models.values():
            row += f"{model.price(customer, attrs):>12.2f}"
        print(row)

    print("\nArbitrage-freeness of the entropy model (monotone + subadditive):")
    report = verify_arbitrage_free(
        EntropyPricingModel(), [workload.table("region"), workload.table("nation")],
        max_subset_size=3,
    )
    for name, ok in report.items():
        print(f"  {name:<10} {'arbitrage-free' if ok else 'VIOLATION FOUND'}")


def budget_sweep_demo() -> None:
    print("\nBudget-ratio sweep on the TPC-H-like workload (query Q2):")
    setup = prepare_setup("tpch", "Q2", scale=0.1, sampling_rate=0.5, mcmc_iterations=80)
    print(f"  candidate option prices span "
          f"[{min(setup.candidate_option_prices()):.2f}, "
          f"{max(setup.candidate_option_prices()):.2f}]")
    print(f"  {'ratio':>6} {'budget':>10} {'feasible':>9} {'est. correlation':>18} {'price paid':>11}")
    for ratio in (0.2, 0.4, 0.6, 0.8, 1.0):
        budget = setup.budget_for_ratio(ratio)
        result = setup.run_heuristic(budget=budget)
        if result.feasible:
            evaluation = result.best_evaluation
            print(f"  {ratio:>6.2f} {budget:>10.2f} {'yes':>9} "
                  f"{evaluation.correlation:>18.4f} {evaluation.price:>11.2f}")
        else:
            print(f"  {ratio:>6.2f} {budget:>10.2f} {'no':>9} {'-':>18} {'-':>11}")


def main() -> None:
    price_lattice_demo()
    budget_sweep_demo()


if __name__ == "__main__":
    main()
