"""TPC-H acquisition walkthrough: heuristic vs the exhaustive baselines.

Reproduces, on one query, the comparison behind Figures 4, 6 and Table 6 of the
paper: run the two-step heuristic and the LP/GP brute-force searches on the same
acquisition request, then compare wall-clock time, the chosen target graphs,
and the *real* correlation of each choice measured on the full data.

Run with::

    python examples/tpch_acquisition_walkthrough.py
"""

from __future__ import annotations

import sys
import time
from pathlib import Path

sys.path.insert(0, str(Path(__file__).parent.parent / "src"))

from repro.experiments.common import correlation_difference, prepare_setup


def main() -> None:
    print("Preparing the TPC-H-like marketplace and join graph (query Q3, "
          "source totalprice → target rname)...")
    setup = prepare_setup("tpch", "Q3", scale=0.15, sampling_rate=0.5, mcmc_iterations=150)
    budget = setup.budget_for_ratio(0.9)
    print(f"  budget (ratio 0.9): {budget:.2f}")

    results = {}
    for label, runner in (
        ("heuristic", lambda: setup.run_heuristic(budget=budget)),
        ("LP (samples)", lambda: setup.run_local_optimal(budget=budget)),
        ("GP (full data)", lambda: setup.run_global_optimal(budget=budget)),
    ):
        start = time.perf_counter()
        result = runner()
        elapsed = time.perf_counter() - start
        results[label] = (result, elapsed)

    print(f"\n  {'approach':<16} {'seconds':>9} {'real correlation':>18} {'instances'}")
    real_correlations = {}
    for label, (result, elapsed) in results.items():
        graph = result.best_graph
        correlation = setup.true_correlation(graph)
        real_correlations[label] = correlation
        instances = " ⋈ ".join(graph.nodes) if graph is not None else "(infeasible)"
        print(f"  {label:<16} {elapsed:>9.3f} {correlation:>18.4f} {instances}")

    cd_lp = correlation_difference(real_correlations["LP (samples)"], real_correlations["heuristic"])
    cd_gp = correlation_difference(real_correlations["GP (full data)"], real_correlations["heuristic"])
    speedup_lp = results["LP (samples)"][1] / max(results["heuristic"][1], 1e-9)
    speedup_gp = results["GP (full data)"][1] / max(results["heuristic"][1], 1e-9)

    print(f"\n  correlation difference vs LP: {cd_lp:.3f}")
    print(f"  correlation difference vs GP: {cd_gp:.3f}")
    print(f"  speed-up vs LP: {speedup_lp:.1f}x, vs GP: {speedup_gp:.1f}x")

    heuristic_graph = results["heuristic"][0].best_graph
    if heuristic_graph is not None:
        print("\n  recommended projections (what the shopper would actually buy):")
        for name in heuristic_graph.purchased_instances():
            attrs = ", ".join(sorted(heuristic_graph.projections[name]))
            print(f"    SELECT {attrs} FROM {name};")


if __name__ == "__main__":
    main()
