"""Quickstart: acquire marketplace data that maximises a correlation of interest.

This walks through the whole DANCE pipeline on the TPC-H-like workload:

1. generate a synthetic marketplace (8 relational instances, dirty data);
2. run DANCE's offline phase (buy correlated samples, build the join graph);
3. submit an acquisition request: "which data should I buy, within budget B,
   so that the correlation between my ``totalprice`` attribute and the region
   name ``rname`` is maximised?";
4. buy the recommended projection queries and verify the correlation locally.

Run with::

    python examples/quickstart.py
"""

from __future__ import annotations

import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).parent.parent / "src"))

from repro import DANCE, AcquisitionRequest, DanceConfig, Marketplace
from repro.infotheory.correlation import attribute_set_correlation
from repro.marketplace.dataset import MarketplaceDataset
from repro.marketplace.shopper import DataShopper
from repro.pricing.budget import Budget
from repro.pricing.models import EntropyPricingModel
from repro.search.mcmc import MCMCConfig
from repro.workloads.tpch import tpch_workload


def main() -> None:
    # ------------------------------------------------------------ marketplace
    print("Generating the TPC-H-like marketplace (8 instances, 30% dirty rows)...")
    workload = tpch_workload(scale=0.2, seed=0, dirty_rate=0.3)
    pricing = EntropyPricingModel()
    marketplace = Marketplace(default_pricing=pricing)
    for name in workload.tables:
        marketplace.host(
            MarketplaceDataset(table=workload.dirty_or_clean(name), pricing=pricing)
        )
    for entry in marketplace.catalog():
        print(f"  {entry['name']:<10} {entry['num_rows']:>6} rows   "
              f"{len(entry['attributes'])} attributes   full price {entry['full_price']:.2f}")

    # ------------------------------------------------------------ offline phase
    print("\nRunning DANCE's offline phase (correlated sampling + join graph)...")
    config = DanceConfig(sampling_rate=0.5, mcmc=MCMCConfig(iterations=150, seed=0))
    dance = DANCE(marketplace, config)
    dance.build_offline()
    graph_info = dance.describe()["join_graph"]
    print(f"  join graph: {graph_info['num_instances']} I-vertices, "
          f"{graph_info['num_i_edges']} I-edges, "
          f"{graph_info['num_as_vertices']} AS-vertices (implicit)")
    print(f"  sample cost so far: {dance.sample_cost:.3f}")

    # ------------------------------------------------------------- online phase
    print("\nSubmitting the acquisition request "
          "(source: totalprice, target: rname, budget 100)...")
    # The budget leaves headroom over the sample-based price estimate: full
    # tables carry more entropy than their samples, so the billed price of
    # the recommended projections runs above the estimate.
    request = AcquisitionRequest(
        source_attributes=["totalprice"],
        target_attributes=["rname"],
        budget=100.0,
        max_join_informativeness=4.0,
        min_quality=0.0,
    )
    result = dance.acquire(request)

    print("  recommended purchase:")
    for sql in result.sql():
        print(f"    {sql}")
    print(f"  estimated correlation        : {result.estimated_correlation:.4f}")
    print(f"  estimated quality            : {result.estimated_quality:.4f}")
    print(f"  estimated join informativeness: {result.estimated_join_informativeness:.4f}")
    print(f"  estimated price              : {result.estimated_price:.2f}")

    # ------------------------------------------------------------ purchase step
    print("\nBuying the recommended projections from the marketplace...")
    shopper = DataShopper(name="adam", budget=Budget(total=request.budget))
    receipts = shopper.purchase(marketplace, result.queries)
    purchased = {receipt.result.name: receipt.result for receipt in receipts}
    print(f"  paid {shopper.total_spent():.2f} for {len(receipts)} projections")

    # join the purchased data along the recommended target graph and verify
    tables = {
        name: purchased.get(name, marketplace.dataset(name).table)
        for name in result.target_graph.nodes
    }
    joined = result.target_graph.joined_table(tables)
    real_correlation = attribute_set_correlation(joined, ["totalprice"], ["rname"])
    print(f"\nCorrelation measured on the purchased data: {real_correlation:.4f} "
          f"({len(joined)} joined rows)")


if __name__ == "__main__":
    main()
