"""Health-survey scenario: the motivating example of the paper's introduction.

A data scientist owns a small survey instance with age groups, zipcodes and
population counts, and wants to buy marketplace data so that the correlation
between age group and disease is maximised — while avoiding the meaningless
join with an aggregate-only insurance dataset and respecting a budget.

The example shows how DANCE's three ingredients interact:

* join informativeness steers the search away from the aggregation-style join
  (the insurance dataset joins on age group only, pairing individual records
  with aggregates);
* quality (FD consistency) is measured on the join result, not per instance;
* query-based pricing makes buying only the needed attributes cheaper than
  buying whole datasets.

Run with::

    python examples/health_survey_scenario.py
"""

from __future__ import annotations

import random
import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).parent.parent / "src"))

from repro import DANCE, AcquisitionRequest, DanceConfig, Marketplace
from repro.infotheory.join_informativeness import join_informativeness
from repro.marketplace.dataset import MarketplaceDataset
from repro.pricing.models import EntropyPricingModel
from repro.quality.fd import FunctionalDependency
from repro.quality.dirty import inject_inconsistency
from repro.relational.schema import Attribute, AttributeType, Schema
from repro.relational.table import Table
from repro.search.mcmc import MCMCConfig

AGE_GROUPS = ["[20,25]", "[25,30]", "[30,35]", "[35,40]", "[40,45]", "[55,60]"]
DISEASES = ["flu", "lyme", "diabetes", "asthma", "hypertension"]
STATES = ["NJ", "NY", "PA", "CT"]


def _survey_instance(rng: random.Random) -> Table:
    """The shopper's local instance: age group, zipcode, population."""
    schema = Schema(
        [
            Attribute("age_group"),
            Attribute("zipcode"),
            Attribute("population", AttributeType.NUMERICAL),
        ]
    )
    rows = []
    for _ in range(120):
        age = rng.choice(AGE_GROUPS)
        zipcode = f"{rng.randint(7001, 7060):05d}"
        rows.append((age, zipcode, float(rng.randint(500, 9000))))
    return Table.from_rows("survey", schema, rows)


def _zip_state_instance(rng: random.Random) -> Table:
    """Marketplace D1: zipcode -> state lookup (with a few violations)."""
    schema = Schema([Attribute("zipcode"), Attribute("state")])
    rows = []
    for z in range(7001, 7061):
        rows.append((f"{z:05d}", "NJ" if z < 7050 else "NY"))
    table = Table.from_rows("zip_state", schema, rows)
    return inject_inconsistency(table, FunctionalDependency("zipcode", "state"), 0.05, rng=1)


def _disease_by_state_instance(rng: random.Random) -> Table:
    """Marketplace D2: disease statistics grouped by state."""
    schema = Schema(
        [Attribute("state"), Attribute("disease"), Attribute("cases", AttributeType.NUMERICAL)]
    )
    rows = []
    for state in STATES:
        for disease in DISEASES:
            rows.append((state, disease, float(rng.randint(20, 600))))
    return Table.from_rows("disease_by_state", schema, rows)


def _disease_by_age_instance(rng: random.Random) -> Table:
    """Marketplace D3: disease statistics grouped by age group (the useful one)."""
    schema = Schema(
        [
            Attribute("age_group"),
            Attribute("disease"),
            Attribute("cases", AttributeType.NUMERICAL),
        ]
    )
    rows = []
    for index, age in enumerate(AGE_GROUPS):
        # plant a clear age-disease association: each age group is dominated by
        # one disease, so the correlation CORR(age_group, disease) is high
        dominant = DISEASES[index % len(DISEASES)]
        for disease in DISEASES:
            weight = 400 if disease == dominant else rng.randint(5, 60)
            rows.append((age, disease, float(weight)))
    return Table.from_rows("disease_by_age", schema, rows)


def _insurance_instance(rng: random.Random) -> Table:
    """Marketplace D5: individual insurance records (the meaningless join)."""
    schema = Schema(
        [
            Attribute("age_group"),
            Attribute("address"),
            Attribute("insurance"),
            Attribute("disease"),
        ]
    )
    rows = []
    for i in range(200):
        rows.append(
            (
                rng.choice(AGE_GROUPS[:2]),  # aggregated ages barely overlap
                f"{i} Main St.",
                rng.choice(["acme-health", "medsure", "unicare"]),
                rng.choice(DISEASES),
            )
        )
    return Table.from_rows("insurance_records", schema, rows)


def main() -> None:
    rng = random.Random(7)
    survey = _survey_instance(rng)

    pricing = EntropyPricingModel()
    marketplace = Marketplace(default_pricing=pricing)
    for table in (
        _zip_state_instance(rng),
        _disease_by_state_instance(rng),
        _disease_by_age_instance(rng),
        _insurance_instance(rng),
    ):
        marketplace.host(MarketplaceDataset(table=table, pricing=pricing))

    print("Marketplace catalog:")
    for entry in marketplace.catalog():
        print(f"  {entry['name']:<18} {entry['num_rows']:>4} rows  "
              f"attributes: {', '.join(entry['attributes'])}")

    # Show why join informativeness matters: the insurance join is penalised.
    ji_useful = join_informativeness(survey, _disease_by_age_instance(rng), ["age_group"])
    ji_meaningless = join_informativeness(survey, _insurance_instance(rng), ["age_group"])
    print(f"\nJoin informativeness survey ⋈ disease_by_age   : {ji_useful:.3f}")
    print(f"Join informativeness survey ⋈ insurance_records: {ji_meaningless:.3f} "
          "(higher = less informative)")

    # Run DANCE with the survey registered as the shopper's own instance.
    config = DanceConfig(sampling_rate=0.7, mcmc=MCMCConfig(iterations=200, seed=1))
    dance = DANCE(marketplace, config)
    dance.register_source_tables([survey])
    dance.build_offline()

    request = AcquisitionRequest(
        source_attributes=["age_group"],
        target_attributes=["disease"],
        budget=25.0,
        max_join_informativeness=1.5,
        min_quality=0.3,
    )
    result = dance.acquire(request)

    print("\nDANCE recommendation:")
    for sql in result.sql():
        print(f"  {sql}")
    print(f"  instances in the target graph : {result.target_graph.nodes}")
    print(f"  estimated correlation         : {result.estimated_correlation:.4f}")
    print(f"  estimated quality             : {result.estimated_quality:.4f}")
    print(f"  estimated join informativeness: {result.estimated_join_informativeness:.4f}")
    print(f"  estimated price               : {result.estimated_price:.2f}")

    purchased = {name for name in result.target_graph.nodes}
    if "insurance_records" not in purchased:
        print("\nThe meaningless aggregate-vs-individual join was avoided, as intended.")
    else:
        print("\nNote: the insurance join was selected; try a tighter α threshold.")


if __name__ == "__main__":
    main()
