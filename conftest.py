"""Pytest root configuration.

Ensures the ``src`` layout is importable even when the package has not been
installed in editable mode (useful in constrained/offline environments).
"""

import sys
from pathlib import Path

_SRC = Path(__file__).parent / "src"
if str(_SRC) not in sys.path:
    sys.path.insert(0, str(_SRC))
