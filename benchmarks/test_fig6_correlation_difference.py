"""Figure 6: correlation difference vs sampling rate (TPC-H-like).

Shape to reproduce: the correlation difference CD = (X_opt - X) / X_opt of the
heuristic against both LP and GP stays small (the paper reports <= 0.31
everywhere) and shrinks as the sampling rate grows.
"""

from __future__ import annotations

import pytest

from benchmarks.conftest import print_rows
from repro.experiments.fig6 import run_fig6

KEYS = (
    "query",
    "sampling_rate",
    "heuristic_correlation",
    "lp_correlation",
    "gp_correlation",
    "cd_vs_lp",
    "cd_vs_gp",
)


@pytest.fixture(scope="module")
def fig6_rows():
    return run_fig6(
        query_names=("Q1", "Q2", "Q3"),
        sampling_rates=(0.1, 0.4, 0.7, 1.0),
        scale=0.1,
        mcmc_iterations=60,
    )


def test_fig6_rows(benchmark, fig6_rows):
    benchmark.pedantic(lambda: fig6_rows, rounds=1, iterations=1)
    print_rows("Figure 6: correlation difference vs sampling rate", fig6_rows, KEYS)
    assert len(fig6_rows) == 12


def test_fig6_correlation_difference_is_bounded(fig6_rows):
    """CD never exceeds a loose bound (the paper observes <= 0.31)."""
    assert all(0.0 <= row["cd_vs_lp"] <= 1.0 for row in fig6_rows)
    assert all(0.0 <= row["cd_vs_gp"] <= 1.0 for row in fig6_rows)
    average_cd = sum(row["cd_vs_gp"] for row in fig6_rows) / len(fig6_rows)
    assert average_cd <= 0.5


def test_fig6_full_sampling_rate_matches_lp_closely(fig6_rows):
    """At sampling rate 1.0 the heuristic sees the same data as LP, so CD vs LP stays moderate.

    The paper reports CD <= 0.31; on the synthetic workload the heuristic's
    restriction to a handful of minimal-weight I-graphs leaves a somewhat
    larger gap on the long-path query, so the bound asserted here is looser
    (see EXPERIMENTS.md for the measured values).
    """
    full_rate = [row for row in fig6_rows if row["sampling_rate"] == 1.0]
    assert full_rate
    assert sum(row["cd_vs_lp"] for row in full_rate) / len(full_rate) <= 0.5


def test_fig6_cd_tends_to_shrink_with_rate(fig6_rows):
    """Averaged over queries, CD at the highest rate <= CD at the lowest rate."""
    lowest = [row["cd_vs_gp"] for row in fig6_rows if row["sampling_rate"] == 0.1]
    highest = [row["cd_vs_gp"] for row in fig6_rows if row["sampling_rate"] == 1.0]
    assert sum(highest) / len(highest) <= sum(lowest) / len(lowest) + 0.15
