"""Figure 8: correlation with vs without correlated re-sampling (TPC-H-like).

Shape to reproduce: the correlation estimated with re-sampling oscillates
around the estimate without re-sampling, and the difference shrinks as the
re-sampling rate grows (the estimator stays unbiased; only variance changes).
"""

from __future__ import annotations

import pytest

from benchmarks.conftest import print_rows
from repro.experiments.fig8 import run_fig8

KEYS = (
    "query",
    "resampling_rate",
    "correlation_with_resampling",
    "correlation_without_resampling",
    "difference",
)

RATES = (0.1, 0.3, 0.5, 0.7, 0.9)


@pytest.fixture(scope="module")
def fig8_rows():
    return run_fig8(
        query_names=("Q1", "Q2", "Q3"),
        resampling_rates=RATES,
        resampling_threshold=40,
        scale=0.1,
        mcmc_iterations=40,
    )


def test_fig8_rows(benchmark, fig8_rows):
    benchmark.pedantic(lambda: fig8_rows, rounds=1, iterations=1)
    print_rows("Figure 8: correlation with vs without re-sampling", fig8_rows, KEYS)
    assert len(fig8_rows) == 15


def test_fig8_resampled_estimate_stays_in_range(fig8_rows):
    """Per query, the *average* re-sampled estimate stays in the baseline's ballpark.

    Individual rates can be noisy (re-sampling a small intermediate join is a
    high-variance operation), but the per-query average should not drift to an
    absurd multiple of the no-re-sampling estimate.
    """
    for query in ("Q1", "Q2", "Q3"):
        rows = [row for row in fig8_rows if row["query"] == query]
        baseline = rows[0]["correlation_without_resampling"]
        average = sum(row["correlation_with_resampling"] for row in rows) / len(rows)
        assert average >= 0.0
        if baseline > 0:
            assert average <= baseline * 4.0 + 2.0


def test_fig8_difference_bounded(fig8_rows):
    """The absolute difference stays bounded relative to the baseline estimate."""
    for query in ("Q1", "Q2", "Q3"):
        rows = [row for row in fig8_rows if row["query"] == query]
        baseline = rows[0]["correlation_without_resampling"]
        tolerance = 2.0 * max(1.0, baseline)
        average_difference = sum(row["difference"] for row in rows) / len(rows)
        assert average_difference <= tolerance


def test_fig8_high_rate_close_to_baseline(fig8_rows):
    """At re-sampling rate 0.9 the two estimates are close on average."""
    high_rate = [row for row in fig8_rows if row["resampling_rate"] == RATES[-1]]
    low_rate = [row for row in fig8_rows if row["resampling_rate"] == RATES[0]]
    avg_high = sum(row["difference"] for row in high_rate) / len(high_rate)
    avg_low = sum(row["difference"] for row in low_rate) / len(low_rate)
    assert avg_high <= avg_low + 0.5
