"""Table 5: dataset description of the two workloads.

Reproduces the columns of the paper's Table 5 (number of instances, min/max
instance sizes, min/max attribute counts, average number of FDs per table) on
the laptop-scale TPC-H-like and TPC-E-like workloads.
"""

from __future__ import annotations

import pytest

from benchmarks.conftest import print_rows
from repro.experiments.common import load_workload
from repro.experiments.table5 import run_table5

KEYS = (
    "workload",
    "num_instances",
    "min_instance_size",
    "max_instance_size",
    "min_num_attributes",
    "max_num_attributes",
    "avg_fds_per_table",
)


@pytest.fixture(scope="module")
def workloads():
    return {"tpch": load_workload("tpch", scale=0.2), "tpce": load_workload("tpce", scale=0.15)}


def test_table5_dataset_description(benchmark, workloads):
    rows = benchmark.pedantic(
        run_table5, kwargs={"workloads": workloads, "fd_max_lhs_size": 1}, rounds=1, iterations=1
    )
    print_rows("Table 5: dataset description", rows, KEYS)

    by_workload = {row["workload"]: row for row in rows}
    assert by_workload["tpch"]["num_instances"] == 8
    assert by_workload["tpce"]["num_instances"] == 29
    # both workloads carry discoverable FDs, as the paper's Table 5 reports
    assert by_workload["tpch"]["avg_fds_per_table"] > 0
    assert by_workload["tpce"]["avg_fds_per_table"] > 0
    # TPC-E-like is the wider workload (more attributes on its widest table)
    assert (
        by_workload["tpce"]["max_num_attributes"][1]
        >= by_workload["tpch"]["min_num_attributes"][1]
    )
