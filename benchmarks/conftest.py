"""Shared configuration for the benchmark harness.

Each benchmark module regenerates one table or figure of the paper's evaluation
(Section 6) on the laptop-scale synthetic workloads and prints the reproduced
rows/series so they can be compared with the paper's reported shapes.  The
``--benchmark-only`` flag (see README) runs these without the unit-test suite.
"""

from __future__ import annotations

import sys
from pathlib import Path

_SRC = Path(__file__).parent.parent / "src"
if str(_SRC) not in sys.path:
    sys.path.insert(0, str(_SRC))


def print_rows(title: str, rows, keys) -> None:
    """Print a reproduced table/series in a compact fixed-width layout."""
    from repro.experiments.common import summarize_rows

    print(f"\n=== {title} ===")
    print(summarize_rows(rows, keys))
