"""Table 6: acquisition with DANCE vs direct purchase from the marketplace.

Shape to reproduce: DANCE's recommendation achieves a correlation close to the
direct (full-data optimal) purchase — the paper reports it reaches up to ~90 %
of the optimum — at an equal or lower price, with comparable join
informativeness; quality may be lower due to sampling error.
"""

from __future__ import annotations

import math

import pytest

from benchmarks.conftest import print_rows
from repro.experiments.table6 import run_table6

KEYS = ("query", "approach", "correlation", "quality", "join_informativeness", "price")


@pytest.fixture(scope="module")
def table6_rows():
    return run_table6(
        query_names=("Q1", "Q2", "Q3"),
        budget_ratio=0.9,
        scale=0.1,
        mcmc_iterations=60,
    )


def test_table6_rows(benchmark, table6_rows):
    benchmark.pedantic(lambda: table6_rows, rounds=1, iterations=1)
    print_rows("Table 6: DANCE vs direct marketplace purchase", table6_rows, KEYS)
    assert len(table6_rows) == 6


def _pairs(rows):
    for query in ("Q1", "Q2", "Q3"):
        dance = next(r for r in rows if r["query"] == query and r["approach"] == "DANCE")
        direct = next(r for r in rows if r["query"] == query and r["approach"] == "direct")
        yield query, dance, direct


def test_table6_both_approaches_feasible(table6_rows):
    assert all(row["feasible"] for row in table6_rows)


def test_table6_dance_correlation_close_to_direct(table6_rows):
    """DANCE reaches a substantial fraction of the direct-purchase correlation.

    Averaged over the three queries; the long-path query carries a wider gap on
    the synthetic workload (see EXPERIMENTS.md), so the per-query floor is loose.
    """
    ratios = []
    for _query, dance, direct in _pairs(table6_rows):
        if direct["correlation"] > 0:
            ratio = dance["correlation"] / direct["correlation"]
            ratios.append(ratio)
            assert ratio >= 0.15
    assert ratios
    assert sum(ratios) / len(ratios) >= 0.4


def test_table6_dance_price_not_wildly_higher(table6_rows):
    """DANCE does not pay much more than the direct optimal purchase."""
    for _query, dance, direct in _pairs(table6_rows):
        if not math.isnan(direct["price"]) and direct["price"] > 0:
            assert dance["price"] <= direct["price"] * 1.5


def test_table6_metrics_are_finite(table6_rows):
    for row in table6_rows:
        assert not math.isnan(row["correlation"])
        assert 0.0 <= row["quality"] <= 1.0
