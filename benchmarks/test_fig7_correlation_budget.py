"""Figure 7: correlation of Heuristic / LP / GP vs budget ratio (TPC-H-like).

Shapes to reproduce: the correlation achieved by every algorithm rises (weakly)
with the budget ratio, the heuristic stays close to the optimal baselines, and
GP is an upper envelope over the other two.
"""

from __future__ import annotations

import pytest

from benchmarks.conftest import print_rows
from repro.experiments.fig7 import run_fig7

KEYS = (
    "query",
    "budget_ratio",
    "heuristic_correlation",
    "lp_correlation",
    "gp_correlation",
)

BUDGET_RATIOS = (0.3, 0.5, 0.7, 0.9)


@pytest.fixture(scope="module")
def fig7_rows():
    return run_fig7(
        query_names=("Q1", "Q2", "Q3"),
        budget_ratios=BUDGET_RATIOS,
        scale=0.1,
        mcmc_iterations=60,
    )


def test_fig7_rows(benchmark, fig7_rows):
    benchmark.pedantic(lambda: fig7_rows, rounds=1, iterations=1)
    print_rows("Figure 7: correlation vs budget ratio", fig7_rows, KEYS)
    assert len(fig7_rows) == 12


def test_fig7_correlation_rises_with_budget(fig7_rows):
    """For each algorithm, the best correlation at the largest budget is at least
    the best correlation at the smallest budget (more budget never hurts)."""
    for query in ("Q1", "Q2", "Q3"):
        rows = [row for row in fig7_rows if row["query"] == query]
        low = next(row for row in rows if row["budget_ratio"] == BUDGET_RATIOS[0])
        high = next(row for row in rows if row["budget_ratio"] == BUDGET_RATIOS[-1])
        assert high["gp_correlation"] >= low["gp_correlation"] - 1e-9
        assert high["heuristic_correlation"] >= low["heuristic_correlation"] - 0.5


def test_fig7_heuristic_close_to_optimal(fig7_rows):
    """At the most generous budget the heuristic reaches a sizable fraction of GP.

    The paper observes up to ~90 % of the optimum; on the synthetic workload
    the gap on the longest-path query is wider (the fan-out path that maximises
    the entropy-based correlation is not among the minimal-weight I-graphs), so
    the assertion bounds the *average* ratio and a loose per-query floor.  The
    measured per-query values are recorded in EXPERIMENTS.md.
    """
    generous = [row for row in fig7_rows if row["budget_ratio"] == BUDGET_RATIOS[-1]]
    ratios = []
    for row in generous:
        if row["gp_correlation"] > 0:
            ratio = row["heuristic_correlation"] / row["gp_correlation"]
            ratios.append(ratio)
            assert ratio >= 0.15
    assert ratios
    assert sum(ratios) / len(ratios) >= 0.4


def test_fig7_gp_is_upper_envelope(fig7_rows):
    """Where GP is feasible, it is never much worse than LP's choice."""
    for row in fig7_rows:
        if row["gp_correlation"] <= 0:
            continue  # GP infeasible at this (full-data) budget ratio
        assert row["gp_correlation"] >= row["lp_correlation"] - 0.25 * max(1.0, row["lp_correlation"])
