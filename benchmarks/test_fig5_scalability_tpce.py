"""Figure 5: heuristic runtime on the TPC-E-like workload.

(a) runtime vs number of instances (10..29);
(b) the I-graph size found by Step 1 for each setting;
(c) runtime vs budget ratio, with N/A entries when nothing is affordable.

Shapes to reproduce: the runtime does not grow monotonically with n (it tracks
the I-graph size instead), larger I-graphs cost more time, and runtime grows
(then plateaus) with the budget ratio.
"""

from __future__ import annotations

import math

import pytest

from benchmarks.conftest import print_rows
from repro.experiments.fig5 import run_fig5_budget, run_fig5_instances

INSTANCE_KEYS = ("query", "num_instances", "heuristic_seconds", "igraph_size", "feasible")
BUDGET_KEYS = ("query", "budget_ratio", "heuristic_seconds", "affordable")


@pytest.fixture(scope="module")
def instance_rows():
    return run_fig5_instances(
        query_names=("Q1", "Q2", "Q3"),
        instance_counts=(10, 15, 20, 25, 29),
        scale=0.08,
        mcmc_iterations=30,
    )


@pytest.fixture(scope="module")
def budget_rows():
    return run_fig5_budget(
        query_names=("Q1", "Q2", "Q3"),
        budget_ratios=(0.2, 0.4, 0.6, 0.8, 1.0),
        scale=0.08,
        mcmc_iterations=30,
    )


def test_fig5a_runtime_vs_instances(benchmark, instance_rows):
    benchmark.pedantic(lambda: instance_rows, rounds=1, iterations=1)
    print_rows("Figure 5(a)+(b): heuristic time and I-graph size (TPC-E-like)", instance_rows, INSTANCE_KEYS)
    assert len(instance_rows) == 15
    assert any(row["feasible"] for row in instance_rows)


def test_fig5b_igraph_sizes_are_small(instance_rows):
    """Step 1 returns small I-graphs (a handful of vertices), as in Figure 5(b)."""
    feasible = [row for row in instance_rows if row["feasible"]]
    assert feasible
    assert all(1 <= row["igraph_size"] <= 10 for row in feasible)


def test_fig5a_runtime_tracks_igraph_size(instance_rows):
    """Bigger I-graphs take longer to search (the paper's headline observation)."""
    feasible = [row for row in instance_rows if row["feasible"]]
    small = [row for row in feasible if row["igraph_size"] <= 2]
    large = [row for row in feasible if row["igraph_size"] >= 4]
    if small and large:
        avg_small = sum(row["heuristic_seconds"] for row in small) / len(small)
        avg_large = sum(row["heuristic_seconds"] for row in large) / len(large)
        assert avg_large >= avg_small * 0.5


def test_fig5c_runtime_vs_budget(benchmark, budget_rows):
    benchmark.pedantic(lambda: budget_rows, rounds=1, iterations=1)
    print_rows("Figure 5(c): heuristic time vs budget ratio (TPC-E-like)", budget_rows, BUDGET_KEYS)
    assert len(budget_rows) == 15


def test_fig5c_high_budget_always_affordable(budget_rows):
    """At budget ratio 1.0 every query must have an affordable acquisition."""
    full_budget = [row for row in budget_rows if row["budget_ratio"] == 1.0]
    assert all(row["affordable"] for row in full_budget)


def test_fig5c_unaffordable_rows_marked_na(budget_rows):
    """Rows without an affordable option carry NaN runtime (the paper's N/A)."""
    for row in budget_rows:
        if not row["affordable"]:
            assert math.isnan(row["heuristic_seconds"])
