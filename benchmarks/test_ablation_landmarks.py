"""Ablation: number of landmarks in Step 1.

DESIGN.md calls out the landmark count as a design choice: more landmarks give
Step 1 more chances to find a light I-graph at the cost of more pre-computed
Dijkstra runs.  This bench sweeps the landmark count and checks that the
resulting I-graph weight never gets worse as landmarks are added (and that the
search still succeeds with a single landmark).
"""

from __future__ import annotations

import pytest

from benchmarks.conftest import print_rows
from repro.experiments.common import prepare_setup
from repro.graph.steiner import minimal_weight_igraph
from repro.search.candidates import terminal_instances

LANDMARK_COUNTS = (1, 2, 4, 8)


@pytest.fixture(scope="module")
def setup():
    return prepare_setup("tpch", "Q3", scale=0.1, mcmc_iterations=20)


@pytest.fixture(scope="module")
def ablation_rows(setup):
    sources, targets = terminal_instances(
        setup.join_graph, setup.query.source_attributes, setup.query.target_attributes
    )
    terminals = list(dict.fromkeys(sources + targets))
    rows = []
    for count in LANDMARK_COUNTS:
        igraph = minimal_weight_igraph(
            setup.join_graph, terminals, num_landmarks=count, rng=0
        )
        rows.append(
            {
                "num_landmarks": count,
                "igraph_size": igraph.size,
                "igraph_weight": igraph.total_weight,
            }
        )
    return rows


def test_ablation_landmarks(benchmark, ablation_rows):
    benchmark.pedantic(lambda: ablation_rows, rounds=1, iterations=1)
    print_rows("Ablation: landmark count vs I-graph weight", ablation_rows,
               ("num_landmarks", "igraph_size", "igraph_weight"))
    assert len(ablation_rows) == len(LANDMARK_COUNTS)


def test_more_landmarks_never_hurt(ablation_rows):
    weights = [row["igraph_weight"] for row in ablation_rows]
    # Terminals are always considered as hubs, so the result is already good
    # with one landmark; adding landmarks can only keep or reduce the weight.
    assert all(later <= earlier + 1e-9 for earlier, later in zip(weights, weights[1:]))


def test_single_landmark_still_connects(ablation_rows):
    assert ablation_rows[0]["igraph_size"] >= 1
