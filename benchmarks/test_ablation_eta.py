"""Ablation: re-sampling threshold η.

Theorem 3.2 says the correlated re-sampling estimator is unbiased regardless of
η; smaller η re-samples more aggressively, trading estimator variance for
bounded intermediate join sizes.  This bench sweeps η and checks that (1) the
estimates stay in a sane band around the no-re-sampling estimate and (2) the
intermediate sizes actually shrink when η is small.
"""

from __future__ import annotations

import pytest

from benchmarks.conftest import print_rows
from repro.experiments.common import prepare_setup
from repro.sampling.resampling import ResamplingPolicy

ETAS = (20, 50, 100, 100_000)


@pytest.fixture(scope="module")
def setup():
    return prepare_setup("tpch", "Q2", scale=0.1, sampling_rate=0.6, mcmc_iterations=30)


@pytest.fixture(scope="module")
def ablation_rows(setup):
    budget = setup.budget_for_ratio(0.9)
    baseline = setup.run_heuristic(budget=budget)
    baseline_corr = baseline.best_evaluation.correlation if baseline.best_evaluation else 0.0
    rows = []
    for eta in ETAS:
        policy = ResamplingPolicy(threshold=eta, rate=0.5, seed=0)
        result = setup.run_heuristic(budget=budget, intermediate_hook=policy)
        correlation = result.best_evaluation.correlation if result.best_evaluation else 0.0
        rows.append(
            {
                "eta": eta,
                "estimated_correlation": correlation,
                "baseline_correlation": baseline_corr,
                "join_rows": result.best_evaluation.join_rows if result.best_evaluation else 0,
            }
        )
    return rows


def test_ablation_eta(benchmark, ablation_rows):
    benchmark.pedantic(lambda: ablation_rows, rounds=1, iterations=1)
    print_rows(
        "Ablation: re-sampling threshold eta",
        ablation_rows,
        ("eta", "estimated_correlation", "baseline_correlation", "join_rows"),
    )
    assert len(ablation_rows) == len(ETAS)


def test_large_eta_matches_baseline(ablation_rows):
    """With η far above any intermediate size, re-sampling never triggers."""
    last = ablation_rows[-1]
    assert last["estimated_correlation"] == pytest.approx(
        last["baseline_correlation"], rel=0.3, abs=0.5
    )


def test_small_eta_bounds_join_rows(ablation_rows):
    """Aggressive re-sampling keeps the winner's evaluation sample small.

    The small-η sweep may crown a *different* target graph than the large-η
    sweep (re-sampled estimates legitimately change which candidate wins), so
    the two ``join_rows`` are not directly comparable; the invariant is that
    the small-η winner's final sample is bounded by the threshold itself or
    by the unresampled winner's size, whichever is larger.
    """
    smallest = ablation_rows[0]
    largest = ablation_rows[-1]
    assert smallest["join_rows"] <= max(largest["join_rows"], smallest["eta"])
