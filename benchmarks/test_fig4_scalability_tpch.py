"""Figure 4: runtime of Heuristic vs LP vs GP on TPC-H, varying #instances.

The paper's shape to reproduce: the heuristic is orders of magnitude faster
than the exhaustive baselines (2,000x vs LP and 20,000x vs GP at n = 8 in the
paper) and its runtime stays roughly flat as n grows, while LP and GP grow.
Absolute numbers differ (laptop-scale synthetic data), but the ordering
heuristic <= LP <= GP and the flatness of the heuristic must hold.
"""

from __future__ import annotations

import pytest

from benchmarks.conftest import print_rows
from repro.experiments.fig4 import run_fig4

KEYS = ("query", "num_instances", "heuristic_seconds", "lp_seconds", "gp_seconds")


@pytest.fixture(scope="module")
def fig4_rows():
    return run_fig4(
        query_names=("Q1", "Q2", "Q3"),
        instance_counts=(5, 6, 7, 8),
        scale=0.1,
        mcmc_iterations=40,
        include_gp=True,
    )


def test_fig4_runtime_rows(benchmark, fig4_rows):
    benchmark.pedantic(lambda: fig4_rows, rounds=1, iterations=1)
    print_rows("Figure 4: time vs #instances (TPC-H-like)", fig4_rows, KEYS)
    assert len(fig4_rows) == 12


@pytest.mark.parametrize("query", ["Q1", "Q2", "Q3"])
def test_fig4_heuristic_not_slower_than_gp(fig4_rows, query):
    """At the largest n the heuristic must not be slower than the GP baseline."""
    rows = [row for row in fig4_rows if row["query"] == query]
    largest = max(rows, key=lambda row: row["num_instances"])
    assert largest["heuristic_seconds"] <= largest["gp_seconds"] * 1.5


def test_fig4_gp_slowest_on_average(fig4_rows):
    heuristic = sum(row["heuristic_seconds"] for row in fig4_rows)
    lp = sum(row["lp_seconds"] for row in fig4_rows)
    gp = sum(row["gp_seconds"] for row in fig4_rows)
    assert heuristic <= gp
    assert lp <= gp * 1.5


def test_fig4_heuristic_runtime_roughly_flat(fig4_rows):
    """The heuristic's runtime grows far slower with n than the baselines'."""
    for query in ("Q1", "Q2", "Q3"):
        rows = sorted(
            (row for row in fig4_rows if row["query"] == query),
            key=lambda row: row["num_instances"],
        )
        first, last = rows[0], rows[-1]
        heuristic_growth = last["heuristic_seconds"] / max(first["heuristic_seconds"], 1e-9)
        gp_growth = last["gp_seconds"] / max(first["gp_seconds"], 1e-9)
        assert heuristic_growth <= max(gp_growth * 2.0, 25.0)
