"""Ablation: MCMC iteration count ℓ vs result correlation.

Algorithm 1 runs a fixed number of iterations; more iterations give the walk
more chances to find a high-correlation target graph.  This bench sweeps ℓ and
checks that the best correlation found is non-decreasing in ℓ (for a fixed
seed, the prefix of the walk is shared, so the best-so-far can only improve).
"""

from __future__ import annotations

import pytest

from benchmarks.conftest import print_rows
from repro.experiments.common import prepare_setup
from repro.search.mcmc import MCMCConfig

ITERATION_COUNTS = (5, 20, 80, 160)


@pytest.fixture(scope="module")
def setup():
    return prepare_setup("tpch", "Q2", scale=0.1, mcmc_iterations=20)


@pytest.fixture(scope="module")
def ablation_rows(setup):
    budget = setup.budget_for_ratio(0.9)
    rows = []
    for iterations in ITERATION_COUNTS:
        setup.mcmc_config = MCMCConfig(iterations=iterations, seed=0)
        result = setup.run_heuristic(budget=budget)
        correlation = (
            result.best_evaluation.correlation if result.best_evaluation else 0.0
        )
        rows.append(
            {
                "iterations": iterations,
                "best_correlation": correlation,
                "accepted_steps": result.mcmc.accepted_steps,
                "feasible_steps": result.mcmc.feasible_steps,
            }
        )
    return rows


def test_ablation_mcmc_iterations(benchmark, ablation_rows):
    benchmark.pedantic(lambda: ablation_rows, rounds=1, iterations=1)
    print_rows(
        "Ablation: MCMC iterations vs best correlation",
        ablation_rows,
        ("iterations", "best_correlation", "accepted_steps", "feasible_steps"),
    )
    assert len(ablation_rows) == len(ITERATION_COUNTS)


def test_more_iterations_never_reduce_best_correlation(ablation_rows):
    correlations = [row["best_correlation"] for row in ablation_rows]
    assert all(
        later >= earlier - 1e-9 for earlier, later in zip(correlations, correlations[1:])
    )


def test_walk_actually_moves(ablation_rows):
    assert ablation_rows[-1]["feasible_steps"] >= 1
