#!/usr/bin/env python
"""Assert bit-parity of acquisitions across catalog storage backends (PR 6).

Used by the CI ``storage-smoke`` job.  One scenario (the TPC-H workload at a
small scale) is built cold in memory and its full query batch is acquired;
then, for every *available* disk backend (sqlite always; duckdb when
importable), the marketplace is persisted, reopened with
``Marketplace.open()``, the offline phase is rebuilt — which must adopt every
persisted JI weight, i.e. recompute **zero** I-edges — and the same batch is
acquired again.  Every reopened run must agree with the cold run bit-for-bit
(correlations and generated SQL), and when both disk engines are importable
their stored payload bytes must be identical namespace-by-namespace.

The whole check runs once per columnar backend (numpy and pure-python; see
``repro/relational/backend.py``), so parity holds across the full
storage-engine x columnar-backend matrix.

Usage::

    PYTHONPATH=src python scripts/check_storage_parity.py [--scale 0.3]
                                                          [--iterations 60]
"""

from __future__ import annotations

import argparse
import sys
import tempfile
from pathlib import Path

_REPO_ROOT = Path(__file__).resolve().parent.parent
_SRC = _REPO_ROOT / "src"
if str(_SRC) not in sys.path:
    sys.path.insert(0, str(_SRC))

from repro.core.config import DanceConfig
from repro.core.dance import DANCE
from repro.marketplace.dataset import MarketplaceDataset
from repro.marketplace.market import Marketplace
from repro.marketplace.shopper import AcquisitionRequest
from repro.pricing.models import EntropyPricingModel
from repro.relational import backend as columnar_backend
from repro.search.mcmc import MCMCConfig
from repro.storage import SQLITE, duckdb_available, open_backend
from repro.workloads.queries import queries_for
from repro.workloads.tpch import tpch_workload

BUDGET = 1000.0


def _build_dance(workload, args: argparse.Namespace) -> DANCE:
    pricing = EntropyPricingModel()
    marketplace = Marketplace(default_pricing=pricing)
    for name in workload.tables:
        marketplace.host(
            MarketplaceDataset(table=workload.dirty_or_clean(name), pricing=pricing)
        )
    return DANCE(marketplace, _config(args))


def _config(args: argparse.Namespace) -> DanceConfig:
    return DanceConfig(
        sampling_rate=args.sampling_rate,
        mcmc=MCMCConfig(iterations=args.iterations, seed=0),
    )


def _acquire_all(dance: DANCE, workload) -> dict[str, tuple[float, str]]:
    results: dict[str, tuple[float, str]] = {}
    for query in queries_for(workload).values():
        acquisition = dance.acquire(
            AcquisitionRequest(
                source_attributes=list(query.source_attributes),
                target_attributes=list(query.target_attributes),
                budget=BUDGET,
            )
        )
        results[query.name] = (acquisition.estimated_correlation, acquisition.sql())
    return results


def _compare_payloads(paths: dict[str, Path]) -> int:
    """Byte-compare every (namespace, key) payload across the disk engines."""
    failures = 0
    backends = {kind: open_backend(path) for kind, path in paths.items()}
    try:
        kinds = sorted(backends)
        reference_kind = kinds[0]
        reference = backends[reference_kind]
        for other_kind in kinds[1:]:
            other = backends[other_kind]
            if reference.namespaces() != other.namespaces():
                print(
                    f"MISMATCH: namespaces differ: {reference_kind}="
                    f"{reference.namespaces()} vs {other_kind}={other.namespaces()}"
                )
                failures += 1
                continue
            for namespace in reference.namespaces():
                if reference.keys(namespace) != other.keys(namespace):
                    print(f"MISMATCH: keys differ in namespace {namespace!r}")
                    failures += 1
                    continue
                for key in reference.keys(namespace):
                    if reference.get(namespace, key) != other.get(namespace, key):
                        print(
                            f"MISMATCH: payload bytes differ at "
                            f"({namespace!r}, {key!r}) between "
                            f"{reference_kind} and {other_kind}"
                        )
                        failures += 1
    finally:
        for backend in backends.values():
            backend.close()
    return failures


def check_columnar_backend(backend_name: str, args: argparse.Namespace) -> int:
    resolved = columnar_backend.set_backend(backend_name)
    workload = tpch_workload(scale=args.scale, seed=0)
    kinds = [SQLITE] + (["duckdb"] if duckdb_available() else [])

    cold = _build_dance(workload, args)
    cold.build_offline()
    reference = _acquire_all(cold, workload)
    print(
        f"[{resolved}] cold in-memory run: {len(reference)} queries, "
        f"{cold.join_graph.ji_computations} JI computations"
    )

    failures = 0
    with tempfile.TemporaryDirectory() as scratch:
        paths: dict[str, Path] = {}
        for kind in kinds:
            path = Path(scratch) / f"catalog.{kind}"
            cold.persist(path, kind=kind)
            paths[kind] = path

            warm = DANCE(Marketplace.open(path), _config(args))
            warm.build_offline()
            if warm.join_graph.edge_recomputes != 0:
                print(
                    f"MISMATCH [{resolved}/{kind}]: warm restart recomputed "
                    f"{warm.join_graph.edge_recomputes} I-edges; expected 0"
                )
                failures += 1
            current = _acquire_all(warm, workload)
            for name, expected in reference.items():
                if current.get(name) != expected:
                    print(
                        f"MISMATCH [{resolved}/{kind}] query {name}: "
                        f"{current.get(name)!r} != {expected!r}"
                    )
                    failures += 1
            warm.marketplace.storage.close()
            print(f"[{resolved}] {kind} reopened run: 0 recomputes, parity OK")

        if len(paths) > 1:
            byte_failures = _compare_payloads(paths)
            failures += byte_failures
            if not byte_failures:
                print(f"[{resolved}] payload bytes identical across {sorted(paths)}")
    return failures


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--scale", type=float, default=0.3)
    parser.add_argument("--iterations", type=int, default=60)
    parser.add_argument("--sampling-rate", type=float, default=0.5)
    args = parser.parse_args()

    backends = ["python"]
    if columnar_backend.numpy_available():
        backends.append("numpy")
    else:
        print("numpy is not importable; checking the pure-python backend only")
    if not duckdb_available():
        print("duckdb is not importable; checking the sqlite backend only")

    failures = 0
    try:
        for backend_name in backends:
            failures += check_columnar_backend(backend_name, args)
    finally:
        columnar_backend.set_backend(None)

    if failures:
        print(f"\n{failures} storage parity failure(s)")
        return 1
    print("\nOK: acquisitions are bit-identical across all storage backends")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
