"""Run every experiment driver and dump the measured rows to JSON.

Used to regenerate the measured numbers recorded in EXPERIMENTS.md::

    python scripts/run_experiments.py --out results.json

The scale / iteration parameters match the benchmark harness defaults, so the
JSON produced here is directly comparable with the rows printed by
``pytest benchmarks/ -s``.
"""

from __future__ import annotations

import argparse
import json
import sys
import time
from pathlib import Path

sys.path.insert(0, str(Path(__file__).parent.parent / "src"))

from repro.experiments.common import load_workload
from repro.experiments.fig4 import run_fig4
from repro.experiments.fig5 import run_fig5_budget, run_fig5_instances
from repro.experiments.fig6 import run_fig6
from repro.experiments.fig7 import run_fig7
from repro.experiments.fig8 import run_fig8
from repro.experiments.table5 import run_table5
from repro.experiments.table6 import run_table6


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--out", type=Path, default=Path("experiment_results.json"))
    parser.add_argument("--quick", action="store_true", help="smaller sweeps for smoke runs")
    args = parser.parse_args()

    scale_tpch = 0.05 if args.quick else 0.1
    scale_tpce = 0.05 if args.quick else 0.08
    iters = 20 if args.quick else 60

    results: dict[str, object] = {}
    timings: dict[str, float] = {}

    def run(name: str, func, **kwargs):
        start = time.perf_counter()
        rows = func(**kwargs)
        timings[name] = round(time.perf_counter() - start, 2)
        results[name] = rows
        print(f"[{name}] {len(rows)} rows in {timings[name]:.1f}s", flush=True)

    run(
        "table5",
        run_table5,
        workloads={
            "tpch": load_workload("tpch", scale=0.2),
            "tpce": load_workload("tpce", scale=0.15),
        },
        fd_max_lhs_size=1,
    )
    run(
        "fig4",
        run_fig4,
        query_names=("Q1", "Q2", "Q3"),
        instance_counts=(5, 6, 7, 8),
        scale=scale_tpch,
        mcmc_iterations=40,
        include_gp=True,
    )
    run(
        "fig5_instances",
        run_fig5_instances,
        query_names=("Q1", "Q2", "Q3"),
        instance_counts=(10, 15, 20, 25, 29),
        scale=scale_tpce,
        mcmc_iterations=30,
    )
    run(
        "fig5_budget",
        run_fig5_budget,
        query_names=("Q1", "Q2", "Q3"),
        budget_ratios=(0.2, 0.4, 0.6, 0.8, 1.0),
        scale=scale_tpce,
        mcmc_iterations=30,
    )
    run(
        "fig6",
        run_fig6,
        query_names=("Q1", "Q2", "Q3"),
        sampling_rates=(0.1, 0.4, 0.7, 1.0),
        scale=scale_tpch,
        mcmc_iterations=iters,
    )
    run(
        "fig7",
        run_fig7,
        query_names=("Q1", "Q2", "Q3"),
        budget_ratios=(0.3, 0.5, 0.7, 0.9),
        scale=scale_tpch,
        mcmc_iterations=iters,
    )
    run(
        "fig8",
        run_fig8,
        query_names=("Q1", "Q2", "Q3"),
        resampling_rates=(0.1, 0.3, 0.5, 0.7, 0.9),
        resampling_threshold=40,
        scale=scale_tpch,
        mcmc_iterations=40,
    )
    run(
        "table6",
        run_table6,
        query_names=("Q1", "Q2", "Q3"),
        budget_ratio=0.9,
        scale=scale_tpch,
        mcmc_iterations=iters,
    )

    payload = {"timings_seconds": timings, "results": results}
    args.out.write_text(json.dumps(payload, indent=2, default=str))
    print(f"\nwrote {args.out}")


if __name__ == "__main__":
    main()
