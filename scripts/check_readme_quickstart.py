#!/usr/bin/env python
"""Smoke-run the README quickstart so the documented commands cannot drift.

Checks three things, failing loudly (non-zero exit) on any drift:

1. every fenced ``python`` code block in ``README.md`` executes without error
   (blocks run in order, sharing one namespace, with ``src`` on the path);
2. the documented tier-1 test command appears verbatim in the README;
3. the documented example / benchmark entry points actually exist on disk.

Run from anywhere::

    python scripts/check_readme_quickstart.py
"""

from __future__ import annotations

import re
import sys
from pathlib import Path

_REPO_ROOT = Path(__file__).resolve().parent.parent
_SRC = _REPO_ROOT / "src"
if str(_SRC) not in sys.path:
    sys.path.insert(0, str(_SRC))

TIER1_COMMAND = "PYTHONPATH=src python -m pytest -x -q"
DOCUMENTED_PATHS = [
    "examples/quickstart.py",
    "scripts/bench_hot_path.py",
    "scripts/run_experiments.py",
    "scripts/check_storage_parity.py",
    "scripts/check_serve_parity.py",
    "docs/ARCHITECTURE.md",
    "BENCH_hotpath.json",
]


def fail(message: str) -> None:
    print(f"FAIL: {message}", file=sys.stderr)
    raise SystemExit(1)


def main() -> None:
    readme = _REPO_ROOT / "README.md"
    if not readme.exists():
        fail("README.md does not exist")
    text = readme.read_text()

    if TIER1_COMMAND not in text:
        fail(f"README.md no longer documents the tier-1 command {TIER1_COMMAND!r}")

    for relative in DOCUMENTED_PATHS:
        if relative not in text:
            fail(f"README.md no longer mentions {relative}")
        if not (_REPO_ROOT / relative).exists():
            fail(f"README.md mentions {relative} but it does not exist")

    blocks = re.findall(r"```python\n(.*?)```", text, flags=re.S)
    if not blocks:
        fail("README.md contains no ```python quickstart block to smoke-run")

    namespace: dict[str, object] = {"__name__": "__readme__"}
    for index, block in enumerate(blocks, start=1):
        print(f"running README python block {index}/{len(blocks)} "
              f"({len(block.splitlines())} lines)...")
        try:
            exec(compile(block, f"README.md#block{index}", "exec"), namespace)
        except Exception as error:  # pragma: no cover - the failure IS the signal
            fail(f"README python block {index} raised {type(error).__name__}: {error}")

    print("OK: README quickstart runs as written")


if __name__ == "__main__":
    main()
