#!/usr/bin/env python
"""Assert the HTTP serve tier returns the library's bits, byte for byte.

Boots a real :class:`~repro.service.server.AcquisitionHTTPServer` (via the
reusable e2e harness in ``tests/integration/serve_harness.py``) on the small
TPC-H scenario, replays the Q1/Q2/Q3 request file over HTTP with explicit
seeds, and byte-compares every served result against a direct
``AcquisitionService.acquire_batch()`` with the same seeds — the serve tier
must add transport, never change an answer.  The same replay then runs
against a 2-shard :class:`~repro.service.router.ShardRouter` server, which
must match the single-shard bytes exactly.

The saturation scenario reruns the server with a bounded ``reject`` admission
queue: with the queue held full, ``POST /acquire`` must answer ``503`` with a
``Retry-After`` header and a typed ``AdmissionRejectedError`` body (no
traceback); once the queue drains, the identical request must serve ``200``
with the identical bytes.

Used by the CI ``serve-smoke`` job.  Run locally with::

    PYTHONPATH=src python scripts/check_serve_parity.py
"""

from __future__ import annotations

import json
import sys
from pathlib import Path

_REPO_ROOT = Path(__file__).resolve().parent.parent
_SRC = _REPO_ROOT / "src"
_HARNESS_DIR = _REPO_ROOT / "tests" / "integration"
for _path in (str(_SRC), str(_HARNESS_DIR)):
    if _path not in sys.path:
        sys.path.insert(0, _path)

from serve_harness import ServeHarness, tpch_harness, tpch_marketplace

from repro.core.config import DanceConfig, ServiceConfig
from repro.marketplace.shopper import AcquisitionRequest
from repro.search.mcmc import MCMCConfig
from repro.service import AcquisitionService, request_seed
from repro.workloads.queries import queries_for

SCALE = 0.2
SAMPLING_RATE = 0.5
ITERATIONS = 60
BUDGET = 1000.0
BATCH_WORKERS = 3

#: The bits a client acts on; cache/executor diagnostics are session-shaped
#: and excluded on purpose (same scope as tests/integration/test_serve_e2e.py).
SERVED_KEYS = (
    "instances",
    "purchased_instances",
    "projections",
    "join_attributes",
    "estimated_correlation",
    "estimated_quality",
    "estimated_join_informativeness",
    "estimated_price",
    "igraph_size",
    "igraph_index",
    "queries",
)


def served_bytes(summary: dict) -> bytes:
    """Canonical byte encoding of a result summary's served bits."""
    return json.dumps(
        {key: summary[key] for key in SERVED_KEYS}, sort_keys=True
    ).encode("utf-8")


def request_file(workload) -> list[dict]:
    """The replayed request specs: every named workload query at BUDGET."""
    return [
        {"query": name, "budget": BUDGET, "seed": request_seed(0, index)}
        for index, name in enumerate(queries_for(workload))
    ]


def library_reference(specs: list[dict]) -> list[bytes]:
    """What a direct ``acquire_batch`` answers for the same seeds."""
    marketplace, workload = tpch_marketplace(scale=SCALE, seed=0)
    queries = queries_for(workload)
    requests = [
        AcquisitionRequest(
            source_attributes=list(queries[spec["query"]].source_attributes),
            target_attributes=list(queries[spec["query"]].target_attributes),
            budget=spec["budget"],
        )
        for spec in specs
    ]
    config = DanceConfig(
        sampling_rate=SAMPLING_RATE,
        mcmc=MCMCConfig(iterations=ITERATIONS, seed=0),
        service=ServiceConfig(seed=0, max_batch_workers=BATCH_WORKERS),
    )
    with AcquisitionService(marketplace, config) as service:
        batch = service.acquire_batch(requests, seeds=[spec["seed"] for spec in specs])
    if not batch.ok:
        raise RuntimeError(
            f"library reference batch failed: {[str(i.error) for i in batch.errors()]}"
        )
    return [served_bytes(item.result.summary()) for item in batch]


def replay_over_http(harness: ServeHarness, specs: list[dict]) -> list[bytes]:
    """One concurrent HTTP client per spec; responses in spec order."""
    responses = harness.acquire_concurrently(specs)
    payloads = []
    for spec, response in zip(specs, responses):
        if response.status != 200:
            raise RuntimeError(
                f"HTTP {response.status} replaying {spec['query']}: {response.text}"
            )
        payloads.append(served_bytes(response.json()["result"]))
    return payloads


def check_replay(shards: int, specs: list[dict], reference: list[bytes]) -> int:
    with tpch_harness(
        scale=SCALE,
        sampling_rate=SAMPLING_RATE,
        iterations=ITERATIONS,
        batch_workers=BATCH_WORKERS,
        shards=shards,
    ) as harness:
        served = replay_over_http(harness, specs)
        drained = harness.shutdown()
    failures = 0
    for spec, mine, expected in zip(specs, served, reference):
        if mine != expected:
            failures += 1
            print(f"MISMATCH {shards}-shard {spec['query']}: {mine} != {expected}")
    if not drained:
        failures += 1
        print(f"FAIL: {shards}-shard server did not drain cleanly")
    if not failures:
        print(f"OK: {shards}-shard serve replay byte-identical to acquire_batch")
    return failures


def check_saturated_reject(specs: list[dict], reference: list[bytes]) -> int:
    """Full reject queue -> 503 + Retry-After + typed body; then recover."""
    failures = 0
    with tpch_harness(
        scale=SCALE,
        sampling_rate=SAMPLING_RATE,
        iterations=ITERATIONS,
        batch_workers=BATCH_WORKERS,
        queue_depth=1,
        admission="reject",
    ) as harness:
        # Hold the only admission slot, as a long in-flight request would.
        harness.service._admission.admit()
        response = harness.acquire(specs[0])
        if response.status != 503:
            failures += 1
            print(f"FAIL: saturated queue answered {response.status}, wanted 503")
        if response.headers.get("Retry-After") != "1":
            failures += 1
            print("FAIL: 503 response missing Retry-After header")
        body = response.json()
        if body.get("error", {}).get("type") != "AdmissionRejectedError":
            failures += 1
            print(f"FAIL: 503 body not typed AdmissionRejectedError: {body}")
        if "Traceback" in response.text:
            failures += 1
            print("FAIL: 503 body leaked a traceback")

        # Recovery: drain the queue, the identical request serves the
        # identical bytes.
        harness.service._admission.release()
        recovered = harness.acquire(specs[0])
        if recovered.status != 200:
            failures += 1
            print(f"FAIL: recovery answered {recovered.status}, wanted 200")
        elif served_bytes(recovered.json()["result"]) != reference[0]:
            failures += 1
            print("MISMATCH: post-recovery bytes differ from the library reference")

        rejected = harness.service.metrics()["queue"]["rejected"]
        if rejected < 1:
            failures += 1
            print(f"FAIL: queue snapshot recorded {rejected} rejections, wanted >= 1")
    if not failures:
        print("OK: saturated reject queue answers 503/Retry-After and recovers")
    return failures


def main() -> int:
    from repro.workloads.tpch import tpch_workload

    workload = tpch_workload(scale=SCALE, seed=0)
    specs = request_file(workload)
    reference = library_reference(specs)

    failures = 0
    failures += check_replay(1, specs, reference)
    failures += check_replay(2, specs, reference)
    failures += check_saturated_reject(specs, reference)

    if failures:
        print(f"\n{failures} serve-parity failure(s)")
        return 1
    print(f"OK: serve tier byte-identical to the library on {len(specs)} requests")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
