#!/usr/bin/env python
"""Assert the multi-chain determinism contract, offline or live.

**JSON mode** (the original CI ``bench-smoke`` check): given a bench JSON
produced by ``scripts/bench_hot_path.py`` — the same tiny scenario run under
``--chains 1`` / ``--chains 4``, serial / thread / process executors, both
columnar backends — every entry must report *exactly* the same per-query
correlations.  Results depend only on ``(seed, chains)``, never on the
executor, the scheduling order, or the backend.

**Live mode** (the CI ``shm-smoke`` check): ``--executor process
--shared-store`` serves a real workload through an ``AcquisitionService``
under the requested :class:`~repro.search.plan.ExecutionPlan` and replays it
serially; the served bits must agree, a mid-run ``register_source_tables``
delta must be absorbed by the warm shared-store pool with **zero** full
worker resyncs, and every shared-memory segment must be unlinked on close.

Usage::

    python scripts/check_multichain_parity.py bench-smoke.json
    PYTHONPATH=src python scripts/check_multichain_parity.py \\
        --executor process --shared-store [--chains 3] [--scale 0.2]
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

_REPO_ROOT = Path(__file__).resolve().parent.parent
_SRC = _REPO_ROOT / "src"
if str(_SRC) not in sys.path:
    sys.path.insert(0, str(_SRC))


# ---------------------------------------------------------------- JSON mode
def correlations(entry: dict) -> dict[str, float]:
    return {
        key: value
        for key, value in entry.items()
        if key.startswith("acquire_") and key.endswith("_correlation")
    }


def describe(entry: dict) -> str:
    scenario = entry.get("scenario", {})
    return (
        f"backend={entry.get('backend')} chains={scenario.get('chains')} "
        f"executor={scenario.get('executor')}"
    )


def check_json(path: Path) -> int:
    entries = json.loads(path.read_text())
    if len(entries) < 2:
        print(f"error: {path} holds {len(entries)} entries; need >= 2 to compare")
        return 1

    reference = correlations(entries[0])
    if not reference:
        print(f"error: first entry of {path} has no acquire_*_correlation keys")
        return 1

    failures = 0
    for entry in entries[1:]:
        current = correlations(entry)
        if set(current) != set(reference):
            print(f"MISMATCH [{describe(entry)}]: query set differs: "
                  f"{sorted(current)} vs {sorted(reference)}")
            failures += 1
            continue
        for key, expected in reference.items():
            if current[key] != expected:
                print(
                    f"MISMATCH [{describe(entry)}] {key}: "
                    f"{current[key]!r} != {expected!r} [{describe(entries[0])}]"
                )
                failures += 1

    if failures:
        print(f"\n{failures} correlation mismatch(es) across {len(entries)} entries")
        return 1
    print(
        f"OK: {len(entries)} entries agree bit-for-bit on "
        f"{len(reference)} correlation(s): "
        + ", ".join(f"{key}={value}" for key, value in sorted(reference.items()))
    )
    return 0


# ---------------------------------------------------------------- live mode
def fingerprint(result) -> tuple:
    return (
        tuple(result.target_graph.nodes),
        tuple(tuple(sorted(edge)) for edge in result.target_graph.edges),
        result.estimated_correlation,
        result.estimated_quality,
        result.estimated_join_informativeness,
        result.estimated_price,
        tuple(result.sql()),
    )


def check_live(args) -> int:
    from repro.core.config import DanceConfig, ServiceConfig
    from repro.marketplace.dataset import MarketplaceDataset
    from repro.marketplace.market import Marketplace
    from repro.marketplace.shopper import AcquisitionRequest
    from repro.pricing.models import EntropyPricingModel
    from repro.search.plan import ExecutionPlan
    from repro.search.shm import live_segments
    from repro.service import AcquisitionService
    from repro.workloads.queries import queries_for
    from repro.workloads.tpch import tpch_workload

    workload = tpch_workload(scale=args.scale, seed=0)
    requests = [
        AcquisitionRequest(
            source_attributes=list(query.source_attributes),
            target_attributes=list(query.target_attributes),
            budget=1000.0,
        )
        for query in queries_for(workload).values()
    ]
    # A clean variant of a hosted instance: registering it is a replacement,
    # which the shared-store pool must absorb as a versioned delta.
    delta_name = sorted(workload.tables)[0]
    delta_table = workload.table(delta_name)

    plans = [
        ExecutionPlan(executor="serial", chains=args.chains),
        ExecutionPlan(
            executor=args.executor,
            chains=args.chains,
            shared_store=True if args.shared_store else None,
        ),
    ]

    def build_marketplace() -> Marketplace:
        pricing = EntropyPricingModel()
        marketplace = Marketplace(default_pricing=pricing)
        for name in workload.tables:
            marketplace.host(
                MarketplaceDataset(table=workload.dirty_or_clean(name), pricing=pricing)
            )
        return marketplace

    failures = 0
    outcomes = []
    for plan in plans:
        from repro.search.mcmc import MCMCConfig

        config = DanceConfig(
            sampling_rate=0.5,
            mcmc=MCMCConfig(iterations=args.iterations, seed=0),
            plan=plan,
            service=ServiceConfig(max_batch_workers=1),
        )
        with AcquisitionService(build_marketplace(), config) as service:
            cold = [fingerprint(service.acquire(request)) for request in requests]
            service.register_source_tables([delta_table])
            warm = [fingerprint(service.acquire(request)) for request in requests]
            store_stats = service.describe()["shared_store"]
        outcomes.append((plan, cold, warm, store_stats))

    (serial_plan, serial_cold, serial_warm, _) = outcomes[0]
    for plan, cold, warm, store_stats in outcomes[1:]:
        if cold != serial_cold:
            failures += 1
            print(f"MISMATCH [{plan.spec()}]: cold results differ from serial")
        if warm != serial_warm:
            failures += 1
            print(f"MISMATCH [{plan.spec()}]: post-delta results differ from serial")
        if plan.executor == "process" and plan.wants_shared_store:
            if store_stats is None:
                failures += 1
                print(f"FAIL [{plan.spec()}]: no shared-store pool was built")
            else:
                if store_stats["worker_resyncs"] != 0:
                    failures += 1
                    print(
                        f"FAIL [{plan.spec()}]: warm pool did not survive the "
                        f"delta: {store_stats}"
                    )
                if store_stats["deltas_published"] + store_stats["rebases"] < 1:
                    failures += 1
                    print(f"FAIL [{plan.spec()}]: no update was published: {store_stats}")
    leaked = live_segments()
    if leaked:
        failures += 1
        print(f"FAIL: leaked shared-memory segments after close: {leaked}")

    if failures:
        print(f"\n{failures} live-parity failure(s)")
        return 1
    stats = outcomes[-1][3]
    print(
        f"OK: {len(requests)} requests x {len(plans)} plans bit-identical "
        f"(chains={args.chains}, executor={args.executor}, "
        f"shared_store={bool(args.shared_store)}); shared-store stats: {stats}; "
        f"no leaked segments"
    )
    return 0


def main(argv: list[str]) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("bench_json", nargs="?", type=Path,
                        help="bench JSON to compare (JSON mode)")
    parser.add_argument("--executor", default=None,
                        help="live mode: executor to check against serial")
    parser.add_argument("--shared-store", action="store_true",
                        help="live mode: force the shared columnar store on")
    parser.add_argument("--chains", type=int, default=3)
    parser.add_argument("--scale", type=float, default=0.2)
    parser.add_argument("--iterations", type=int, default=60)
    args = parser.parse_args(argv[1:])
    if args.executor is not None:
        return check_live(args)
    if args.bench_json is None:
        parser.print_help()
        return 2
    return check_json(args.bench_json)


if __name__ == "__main__":
    raise SystemExit(main(sys.argv))
