#!/usr/bin/env python
"""Assert that a bench JSON's acquisition correlations agree across entries.

Used by the CI ``bench-smoke`` job: ``scripts/bench_hot_path.py`` runs the
same tiny scenario several times — ``--chains 1`` and ``--chains 4`` under the
serial / thread / process executors, on both columnar backends — and every
run must report *exactly* the same per-query correlations.  That is the
multi-chain determinism contract (``repro/search/chains.py``): results depend
only on ``(seed, chains)``, never on the executor, the scheduling order, or
the backend — and on scenarios whose walks converge, not on the chain count
either.

Usage::

    python scripts/check_multichain_parity.py bench-smoke.json
"""

from __future__ import annotations

import json
import sys
from pathlib import Path


def correlations(entry: dict) -> dict[str, float]:
    return {
        key: value
        for key, value in entry.items()
        if key.startswith("acquire_") and key.endswith("_correlation")
    }


def describe(entry: dict) -> str:
    scenario = entry.get("scenario", {})
    return (
        f"backend={entry.get('backend')} chains={scenario.get('chains')} "
        f"executor={scenario.get('executor')}"
    )


def main(argv: list[str]) -> int:
    if len(argv) != 2:
        print(__doc__, file=sys.stderr)
        return 2
    path = Path(argv[1])
    entries = json.loads(path.read_text())
    if len(entries) < 2:
        print(f"error: {path} holds {len(entries)} entries; need >= 2 to compare")
        return 1

    reference = correlations(entries[0])
    if not reference:
        print(f"error: first entry of {path} has no acquire_*_correlation keys")
        return 1

    failures = 0
    for entry in entries[1:]:
        current = correlations(entry)
        if set(current) != set(reference):
            print(f"MISMATCH [{describe(entry)}]: query set differs: "
                  f"{sorted(current)} vs {sorted(reference)}")
            failures += 1
            continue
        for key, expected in reference.items():
            if current[key] != expected:
                print(
                    f"MISMATCH [{describe(entry)}] {key}: "
                    f"{current[key]!r} != {expected!r} [{describe(entries[0])}]"
                )
                failures += 1

    if failures:
        print(f"\n{failures} correlation mismatch(es) across {len(entries)} entries")
        return 1
    print(
        f"OK: {len(entries)} entries agree bit-for-bit on "
        f"{len(reference)} correlation(s): "
        + ", ".join(f"{key}={value}" for key, value in sorted(reference.items()))
    )
    return 0


if __name__ == "__main__":
    raise SystemExit(main(sys.argv))
