#!/usr/bin/env python
"""Assert that every shared-memory segment is unlinked when pools shut down.

Three checks, all against ``/dev/shm`` (the POSIX shared-memory mount the
:mod:`repro.search.shm` segments live on):

1. **In-process lifecycle** — a :func:`~repro.search.chains.shared_chain_pool`
   serves searches, absorbs a versioned delta, and is shut down; no segment
   may survive ``SharedChainState.close()``.
2. **Service lifecycle** — an :class:`~repro.service.AcquisitionService`
   under ``ExecutionPlan(executor="process")`` builds its pool lazily, serves,
   refreshes, and closes; ``/dev/shm`` must be clean afterwards.
3. **SIGTERM drain** — the ``repro-dance serve`` CLI is launched as a real
   subprocess with a process plan and killed with SIGTERM mid-serve; the
   drain path must shut the pools down and unlink everything before exit.

Used by the CI ``shm-smoke`` job.  Run locally with::

    PYTHONPATH=src python scripts/check_shm_leaks.py
"""

from __future__ import annotations

import json
import os
import signal
import subprocess
import sys
import time
from pathlib import Path

_REPO_ROOT = Path(__file__).resolve().parent.parent
_SRC = _REPO_ROOT / "src"
if str(_SRC) not in sys.path:
    sys.path.insert(0, str(_SRC))

from repro.search.shm import live_segments  # noqa: E402


def check_pool_lifecycle() -> int:
    from repro.graph.join_graph import JoinGraph
    from repro.graph.steiner import minimal_weight_igraph
    from repro.quality.fd import FunctionalDependency
    from repro.relational.table import Table
    from repro.search.candidates import build_initial_target_graph
    from repro.search.chains import ChainScheduler, shared_chain_pool
    from repro.search.mcmc import MCMCConfig

    facts = Table.from_rows(
        "facts",
        ["good_key", "bad_key", "measure"],
        [(i % 10, i % 3, float(i % 8) * 10 + i % 3) for i in range(64)],
    )
    dims = Table.from_rows(
        "dims",
        ["good_key", "bad_key", "label"],
        [(i, i % 2, f"lbl{i}") for i in range(8)],
    )
    join_graph = JoinGraph([facts, dims], source_instances=["facts"])
    fds = [FunctionalDependency("good_key", "label")]
    igraph = minimal_weight_igraph(join_graph, ["facts", "dims"], rng=0)
    initial = build_initial_target_graph(join_graph, igraph, ["measure"], ["label"])

    pool, state = shared_chain_pool(join_graph, fds, token="leakcheck", max_workers=2)
    try:
        if not state.segment_names():
            print("FAIL[pool]: shared pool published no segments")
            return 1
        scheduler = ChainScheduler(
            chains=3, executor="process", pool=pool, pool_state=state
        )
        scheduler.run(
            join_graph,
            initial,
            {"facts": facts, "dims": dims},
            ["measure"],
            ["label"],
            fds,
            budget=1e9,
            config=MCMCConfig(iterations=20, seed=0),
        )
        dims2 = Table.from_rows(
            "dims",
            ["good_key", "bad_key", "label"],
            [(i, i % 2, f"new{i}") for i in range(8)],
        )
        new_graph = JoinGraph([facts, dims2], source_instances=["facts"])
        state.publish_delta(new_graph, fds, version=1, changed=("dims",))
    finally:
        pool.shutdown(wait=True)
        state.close()
    leaked = live_segments()
    if leaked:
        print(f"FAIL[pool]: leaked segments after pool shutdown: {leaked}")
        return 1
    print("OK[pool]: scheduler pool + delta left /dev/shm clean")
    return 0


def check_service_lifecycle() -> int:
    from repro.core.config import DanceConfig, ServiceConfig
    from repro.marketplace.dataset import MarketplaceDataset
    from repro.marketplace.market import Marketplace
    from repro.marketplace.shopper import AcquisitionRequest
    from repro.pricing.models import EntropyPricingModel
    from repro.relational.table import Table
    from repro.search.mcmc import MCMCConfig
    from repro.service import AcquisitionService

    pricing = EntropyPricingModel()
    marketplace = Marketplace(default_pricing=pricing)
    facts = Table.from_rows(
        "facts",
        ["good_key", "bad_key", "measure"],
        [(i % 10, i % 3, float(i % 8) * 10 + i % 3) for i in range(64)],
    )
    dims = Table.from_rows(
        "dims",
        ["good_key", "bad_key", "label"],
        [(i, i % 2, f"lbl{i}") for i in range(8)],
    )
    for table in (facts, dims):
        marketplace.host(MarketplaceDataset(table=table, pricing=pricing))
    config = DanceConfig(
        sampling_rate=1.0,
        mcmc=MCMCConfig(iterations=30, seed=0),
        plan="executor=process,chains=2",
        service=ServiceConfig(max_batch_workers=1),
    )
    request = AcquisitionRequest(
        source_attributes=["measure"], target_attributes=["label"], budget=1e9
    )
    with AcquisitionService(marketplace, config) as service:
        service.acquire(request)
        if not live_segments():
            print("FAIL[service]: no segments were published while serving")
            return 1
        source = Table.from_rows(
            "myshop", ["bad_key", "score"], [(i % 3, i) for i in range(9)]
        )
        service.register_source_tables([source])
        service.acquire(request)
    leaked = live_segments()
    if leaked:
        print(f"FAIL[service]: leaked segments after close: {leaked}")
        return 1
    print("OK[service]: service pool + refresh left /dev/shm clean")
    return 0


def check_sigterm_drain() -> int:
    env = dict(os.environ)
    env["PYTHONPATH"] = str(_SRC) + os.pathsep + env.get("PYTHONPATH", "")
    process = subprocess.Popen(
        [
            sys.executable,
            "-m",
            "repro.cli",
            "serve",
            "--scale",
            "0.05",
            "--mcmc-iterations",
            "20",
            "--plan",
            "executor=process,chains=2",
            "--port",
            "0",
            "--drain-timeout",
            "30",
        ],
        env=env,
        stdout=subprocess.PIPE,
        stderr=subprocess.STDOUT,
        text=True,
    )
    try:
        banner = process.stdout.readline()
        info = json.loads(banner)
        url = info["serving"]
        # One real request so the process pool (and its segments) exist when
        # the SIGTERM lands.
        import urllib.request

        body = json.dumps({"query": "Q1", "budget": 1000.0}).encode()
        with urllib.request.urlopen(
            urllib.request.Request(
                f"{url}/acquire", data=body,
                headers={"Content-Type": "application/json"},
            ),
            timeout=300,
        ) as response:
            response.read()
        process.send_signal(signal.SIGTERM)
        output, _ = process.communicate(timeout=120)
    except Exception as error:  # noqa: BLE001 - report and clean up below
        process.kill()
        process.communicate()
        print(f"FAIL[sigterm]: serve run errored: {error}")
        return 1
    if process.returncode != 0:
        print(f"FAIL[sigterm]: serve exited {process.returncode}: {output[-500:]}")
        return 1
    if '"drained"' not in output:
        print(f"FAIL[sigterm]: no drain summary in serve output: {output[-500:]}")
        return 1
    # Give the kernel a beat to reap the unlinked entries.
    for _ in range(10):
        if not live_segments():
            break
        time.sleep(0.2)
    leaked = live_segments()
    if leaked:
        print(f"FAIL[sigterm]: leaked segments after SIGTERM drain: {leaked}")
        return 1
    print("OK[sigterm]: SIGTERM drained the server and left /dev/shm clean")
    return 0


def main() -> int:
    if not os.path.isdir("/dev/shm"):
        print("SKIP: no /dev/shm on this platform; nothing to leak-check")
        return 0
    pre_existing = live_segments()
    if pre_existing:
        print(f"error: stale segments before the check: {pre_existing}")
        return 1
    failures = check_pool_lifecycle()
    failures += check_service_lifecycle()
    failures += check_sigterm_drain()
    if failures:
        print(f"\n{failures} leak-check failure(s)")
        return 1
    print("OK: all shared-memory segments accounted for")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
