#!/usr/bin/env python
"""Micro-benchmark of the online-phase hot path.

Measures, on the Figure 4 TPC-H scalability scenario scaled up for stable
timing (scale 2.0, sampling rate 0.4, 200 MCMC iterations, all 8 instances):

* raw join-operator throughput (``inner_join`` / ``full_outer_join`` of the
  two largest instances), and
* the end-to-end ``DANCE.acquire()`` wall clock for Q1/Q2/Q3 (offline graph
  build timed separately).

Results are printed and appended to ``BENCH_hotpath.json`` at the repository
root, so the performance trajectory is tracked PR over PR.  By default the
scenario is measured once per columnar backend (numpy and pure-python; see
``repro/relational/backend.py``), appending one entry per backend with a
``"backend"`` field.  ``--chains`` / ``--executor`` measure the multi-chain
MCMC search (``repro/search/chains.py``); ``--executor all`` sweeps
serial/thread/process — plus, above one chain, a ``process_shared`` leg
served from the zero-copy shared columnar store (``repro/search/shm.py``) —
in one invocation and writes one self-contained entry whose ``"executors"``
map holds the per-executor timings (with a computed ``executor_parity``
flag).  ``--shm`` appends a mode='shm' entry: the PR 8 executor sweep
through long-lived services driven by the concurrent batch API, timing
cold-pool, warm-pool and warm-after-delta phases per plan and asserting
that the shared-store pool absorbs a catalog delta with zero full worker
resyncs and unlinks every segment on close.  ``--service`` additionally
appends a
service-mode entry (``repro/service``): cold vs. warm request latency through
one long-lived ``AcquisitionService`` plus a concurrent batch, parity-checked
against the cold run, with the warm request measured both with and without
the session's Step-1 memo (``step1_memo_speedup``) and the service's latency
percentiles recorded.  ``--catalog`` appends a mode='storage' entry
(``repro/storage``): a cold build-offline + first request + ``persist()`` to a
throwaway sqlite catalog versus a warm ``Marketplace.open()`` + build-offline
(asserting zero JI recomputes) + first request, parity-checked against the
cold run.  ``--serve`` appends a mode='serve' entry (``repro/service/server``):
a real HTTP server driven by concurrent urllib clients at 1, 2 and 4 shards,
recording requests/second plus client-side and service-side p50/p95/p99
latency, parity-checked across shard counts.  ``--qos`` appends a mode='qos'
entry (``repro/service/qos``, PR 9): a gold/silver/bronze request mix driven
through one qos-enabled service under contention, recording per-tier
queue-wait p50/p95/p99 from the weighted-fair-queue scheduler and asserting
gold waits less than bronze at the p95.  ``--scale`` / ``--iterations``
/ ``--sampling-rate`` shrink the scenario for smoke runs (e.g. in CI).  Run
with::

    PYTHONPATH=src python scripts/bench_hot_path.py [--output BENCH_hotpath.json]
                                                    [--backend both|auto|numpy|python]
                                                    [--chains N]
                                                    [--executor serial|thread|process|all]
                                                    [--service]
                                                    [--catalog]
                                                    [--serve]
                                                    [--shm]
                                                    [--qos]
"""

from __future__ import annotations

import argparse
import json
import platform
import sys
import tempfile
import time
from pathlib import Path

_REPO_ROOT = Path(__file__).resolve().parent.parent
_SRC = _REPO_ROOT / "src"
if str(_SRC) not in sys.path:
    sys.path.insert(0, str(_SRC))

from repro.core.config import DanceConfig, ServiceConfig
from repro.core.dance import DANCE
from repro.relational import backend as columnar_backend
from repro.marketplace.dataset import MarketplaceDataset
from repro.marketplace.market import Marketplace
from repro.marketplace.shopper import AcquisitionRequest
from repro.pricing.models import EntropyPricingModel
from repro.relational.joins import full_outer_join, inner_join
from repro.search.mcmc import EXECUTORS, MCMCConfig
from repro.service import AcquisitionService
from repro.workloads.queries import queries_for
from repro.workloads.tpch import tpch_workload

SCALE = 2.0
SAMPLING_RATE = 0.4
MCMC_ITERATIONS = 200
BUDGET = 1000.0
JOIN_REPEATS = 5


def _best_of(repeats: int, fn, *args, **kwargs) -> tuple[object, float]:
    """Run ``fn`` ``repeats`` times; return (last result, best wall-clock seconds)."""
    best = float("inf")
    result = None
    for _ in range(repeats):
        start = time.perf_counter()
        result = fn(*args, **kwargs)
        best = min(best, time.perf_counter() - start)
    return result, best


def bench_joins(workload) -> dict[str, float]:
    lineitem = workload.dirty_or_clean("lineitem")
    orders = workload.dirty_or_clean("orders")
    customer = workload.dirty_or_clean("customer")
    joined, inner_seconds = _best_of(JOIN_REPEATS, inner_join, lineitem, orders)
    outer, outer_seconds = _best_of(JOIN_REPEATS, full_outer_join, customer, orders)
    return {
        "inner_join_seconds": inner_seconds,
        "inner_join_rows": len(joined),
        "full_outer_join_seconds": outer_seconds,
        "full_outer_join_rows": len(outer),
    }


def _marketplace_for(workload) -> Marketplace:
    pricing = EntropyPricingModel()
    marketplace = Marketplace(default_pricing=pricing)
    for name in workload.tables:
        marketplace.host(
            MarketplaceDataset(table=workload.dirty_or_clean(name), pricing=pricing)
        )
    return marketplace


def _requests_for(workload) -> list[AcquisitionRequest]:
    return [
        AcquisitionRequest(
            source_attributes=list(query.source_attributes),
            target_attributes=list(query.target_attributes),
            budget=BUDGET,
        )
        for query in queries_for(workload).values()
    ]


def bench_acquire(workload, args: argparse.Namespace, executor: str) -> dict[str, object]:
    marketplace = _marketplace_for(workload)
    config = DanceConfig(
        sampling_rate=args.sampling_rate,
        mcmc=MCMCConfig(
            iterations=args.iterations,
            seed=0,
            chains=args.chains,
            executor=executor,
        ),
    )
    dance = DANCE(marketplace, config)

    start = time.perf_counter()
    dance.build_offline()
    offline_seconds = time.perf_counter() - start

    results: dict[str, object] = {"offline_seconds": offline_seconds}
    total = 0.0
    for query in queries_for(workload).values():
        request = AcquisitionRequest(
            source_attributes=list(query.source_attributes),
            target_attributes=list(query.target_attributes),
            budget=BUDGET,
        )
        start = time.perf_counter()
        acquisition = dance.acquire(request)
        elapsed = time.perf_counter() - start
        total += elapsed
        results[f"acquire_{query.name}_seconds"] = elapsed
        results[f"acquire_{query.name}_correlation"] = acquisition.estimated_correlation
        hit_rate = getattr(acquisition, "mcmc_cache_hit_rate", None)
        if hit_rate is not None:
            results[f"acquire_{query.name}_cache_hit_rate"] = hit_rate
    results["acquire_total_seconds"] = total
    return results


def bench_service(workload, args: argparse.Namespace) -> dict[str, object]:
    """Cold vs. warm request latency through one long-lived acquisition service.

    The *cold* number is the first ``acquire()`` of Q1 on a fresh session
    (empty caches, pools not yet spun up); the *warm* number repeats the
    identical request against the now-hot session — same seed, bit-identical
    result, served almost entirely from the shared evaluation memo and the
    Step-1 memo (which skips the landmark/Steiner search).  The same
    cold/warm pair is measured again with the Step-1 memo disabled
    (``ServiceConfig(step1_memo=False)``) to isolate its contribution; the
    two services must agree bit-for-bit.  The batch number serves all
    queries concurrently through the batch API; the service's latency
    percentiles are recorded alongside.
    """
    marketplace = _marketplace_for(workload)
    executor = args.executor if args.executor != "all" else "thread"

    def service_config(step1_memo: bool) -> DanceConfig:
        return DanceConfig(
            sampling_rate=args.sampling_rate,
            mcmc=MCMCConfig(
                iterations=args.iterations, seed=0, chains=args.chains, executor=executor
            ),
            service=ServiceConfig(max_batch_workers=4, step1_memo=step1_memo),
        )

    requests = _requests_for(workload)
    results: dict[str, object] = {}
    with AcquisitionService(
        marketplace, service_config(step1_memo=True), build_offline=False
    ) as service:
        start = time.perf_counter()
        service.dance.build_offline()
        results["offline_seconds"] = time.perf_counter() - start

        start = time.perf_counter()
        cold = service.acquire(requests[0])
        cold_seconds = time.perf_counter() - start
        # Warm repeats are all served from the session caches, so best-of
        # timing just removes scheduler noise from the small numbers.
        warm, warm_seconds = _best_of(JOIN_REPEATS, service.acquire, requests[0])

        start = time.perf_counter()
        batch = service.acquire_batch(requests)
        batch_seconds = time.perf_counter() - start

        metrics = service.metrics()
        results.update(
            {
                "cold_request_seconds": cold_seconds,
                "warm_request_seconds": warm_seconds,
                "warm_speedup": cold_seconds / warm_seconds if warm_seconds else None,
                "cold_correlation": cold.estimated_correlation,
                "warm_parity": warm.estimated_correlation == cold.estimated_correlation
                and warm.sql() == cold.sql(),
                "warm_cache_hit_rate": warm.mcmc_cache_hit_rate,
                "batch_requests": len(requests),
                "batch_seconds": batch_seconds,
                "batch_ok": batch.ok,
                "batch_correlations": [
                    item.result.estimated_correlation if item.ok else None
                    for item in batch
                ],
                "step1_memo": metrics["step1_memo"],
                "latency_p50_seconds": metrics["latency"]["p50_seconds"],
                "latency_p95_seconds": metrics["latency"]["p95_seconds"],
                "latency_p99_seconds": metrics["latency"]["p99_seconds"],
            }
        )

    # Same warm request with the Step-1 memo off: isolates how much of the
    # warm-path win comes from skipping the landmark/Steiner search.
    with AcquisitionService(
        _marketplace_for(workload), service_config(step1_memo=False)
    ) as service:
        cold_off = service.acquire(requests[0])
        warm_off, warm_off_seconds = _best_of(JOIN_REPEATS, service.acquire, requests[0])
    results.update(
        {
            "warm_request_seconds_memo_off": warm_off_seconds,
            "step1_memo_speedup": (
                warm_off_seconds / warm_seconds if warm_seconds else None
            ),
            "step1_memo_parity": (
                warm_off.estimated_correlation == warm.estimated_correlation
                and cold_off.estimated_correlation == cold.estimated_correlation
                and warm_off.sql() == warm.sql()
            ),
        }
    )
    return results


def bench_storage(workload, args: argparse.Namespace) -> dict[str, object]:
    """Cold build + persist vs. warm ``Marketplace.open()`` restart (PR 6).

    The *cold* side builds the offline join graph from scratch, serves the
    first request, and persists the whole marketplace (tables, encodings,
    offline state) to a throwaway sqlite catalog.  The *warm* side reopens
    that catalog, rebuilds the offline phase — which must adopt every
    persisted JI weight, i.e. recompute **zero** edges — and serves the same
    first request; results must agree bit-for-bit with the cold run.
    """
    executor = args.executor if args.executor != "all" else "serial"
    config = DanceConfig(
        sampling_rate=args.sampling_rate,
        mcmc=MCMCConfig(
            iterations=args.iterations, seed=0, chains=args.chains, executor=executor
        ),
    )
    request = _requests_for(workload)[0]
    results: dict[str, object] = {"storage_kind": "sqlite"}
    with tempfile.TemporaryDirectory() as scratch:
        catalog = Path(scratch) / "marketplace.catalog"

        dance = DANCE(_marketplace_for(workload), config)
        start = time.perf_counter()
        dance.build_offline()
        results["cold_offline_seconds"] = time.perf_counter() - start
        start = time.perf_counter()
        cold = dance.acquire(request)
        results["cold_request_seconds"] = time.perf_counter() - start
        start = time.perf_counter()
        dance.persist(catalog)
        results["persist_seconds"] = time.perf_counter() - start
        results["catalog_bytes"] = catalog.stat().st_size
        results["cold_ji_computations"] = dance.join_graph.ji_computations
        results["cold_edge_recomputes"] = dance.join_graph.edge_recomputes

        start = time.perf_counter()
        warm_dance = DANCE(Marketplace.open(catalog), config)
        warm_dance.build_offline()
        results["warm_open_offline_seconds"] = time.perf_counter() - start
        results["warm_ji_computations"] = warm_dance.join_graph.ji_computations
        results["warm_edge_recomputes"] = warm_dance.join_graph.edge_recomputes
        if warm_dance.join_graph.edge_recomputes != 0:
            raise AssertionError(
                "warm restart recomputed "
                f"{warm_dance.join_graph.edge_recomputes} I-edges; expected 0"
            )
        start = time.perf_counter()
        warm = warm_dance.acquire(request)
        results["warm_request_seconds"] = time.perf_counter() - start
        warm_dance.marketplace.storage.close()

    results["warm_parity"] = (
        warm.estimated_correlation == cold.estimated_correlation
        and warm.sql() == cold.sql()
    )
    results["offline_speedup"] = (
        results["cold_offline_seconds"] / results["warm_open_offline_seconds"]
        if results["warm_open_offline_seconds"]
        else None
    )
    return results


def bench_acquire_shared(workload, args: argparse.Namespace) -> dict[str, object]:
    """The process leg of the sweep again, through a zero-copy shared pool.

    Same scenario as :func:`bench_acquire` with ``executor='process'``, but the
    chains run on a persistent :func:`~repro.search.chains.shared_chain_pool`
    whose workers map the encoded columnar store out of shared memory instead
    of receiving pickled tables — correlations must stay bit-identical to the
    rest of the sweep.
    """
    from repro.search.acquisition import SearchRuntime
    from repro.search.chains import shared_chain_pool
    from repro.search.plan import ExecutionPlan
    from repro.search.shm import live_segments

    marketplace = _marketplace_for(workload)
    plan = ExecutionPlan(executor="process", chains=args.chains, shared_store=True)
    config = DanceConfig(
        sampling_rate=args.sampling_rate,
        mcmc=MCMCConfig(iterations=args.iterations, seed=0),
        plan=plan,
    )
    dance = DANCE(marketplace, config)

    start = time.perf_counter()
    dance.build_offline()
    offline_seconds = time.perf_counter() - start

    start = time.perf_counter()
    pool, state = shared_chain_pool(
        dance.join_graph,
        dance.fds,
        token="bench-shared",
        max_workers=plan.resolved_workers(),
        version=dance.graph_version,
    )
    results: dict[str, object] = {
        "offline_seconds": offline_seconds,
        "pool_spinup_seconds": time.perf_counter() - start,
    }
    total = 0.0
    try:
        for query in queries_for(workload).values():
            request = AcquisitionRequest(
                source_attributes=list(query.source_attributes),
                target_attributes=list(query.target_attributes),
                budget=BUDGET,
            )
            runtime = SearchRuntime(pool=pool, pool_state=state, plan=plan)
            start = time.perf_counter()
            acquisition = dance.acquire(request, runtime=runtime)
            elapsed = time.perf_counter() - start
            total += elapsed
            results[f"acquire_{query.name}_seconds"] = elapsed
            results[f"acquire_{query.name}_correlation"] = (
                acquisition.estimated_correlation
            )
        results["shared_store"] = state.stats()
    finally:
        pool.shutdown(wait=True)
        state.close()
    leaked = live_segments()
    if leaked:
        raise AssertionError(f"shared sweep leaked segments: {leaked}")
    results["acquire_total_seconds"] = total
    return results


SHM_SEED_BASE = {"cold": 1000, "warm": 2000}
SHM_ROUNDS = 4


def bench_shm(workload, args: argparse.Namespace) -> dict[str, object]:
    """PR 8 shared-memory executor sweep through long-lived services.

    One :class:`~repro.service.AcquisitionService` per plan (serial / thread /
    process-without-shared-store / process-with-shared-store), all alive at
    once and serving the workload queries through the service's concurrent
    batch API — the service workload — in three phases:

    * **cold** — fresh seeds on fresh sessions; the first batch pays the
      lazy pool spin-up (fork + worker cold load for the process plans).
    * **warm** — new seeds on the hot pools: real chain walks, no spin-up.
    * **warm_after_delta** — ``register_source_tables`` replaces one hosted
      instance, then the warm seed grid reruns against the refreshed graph.
      The shared-store pool must absorb the change as a versioned delta with
      **zero** full worker resyncs; the legacy process pool is rebuilt.

    The warm phases are best-of-``SHM_ROUNDS``, and within each round every
    plan serves the identical seed grid back-to-back, so plans are compared
    under the same machine conditions.  Every round must produce identical
    correlations across all plans (``executor_parity`` — asserted, not just
    recorded), and ``/dev/shm`` must be clean once the services close.  The
    per-plan headline ``acquire_total_seconds`` is steady-state serving on
    the long-lived pool (warm plus warm-after-delta); the one-time spin-up
    stays visible in the cold phase and the ``acquire_total_with_cold``
    total.
    """
    from repro.search.plan import ExecutionPlan
    from repro.search.shm import live_segments

    chains = args.chains if args.chains > 1 else 4
    plans = {
        "serial": ExecutionPlan(executor="serial", chains=chains),
        "thread": ExecutionPlan(executor="thread", chains=chains),
        "process_legacy": ExecutionPlan(
            executor="process", chains=chains, shared_store=False
        ),
        "process": ExecutionPlan(executor="process", chains=chains, shared_store=True),
    }
    queries = queries_for(workload)
    requests = _requests_for(workload)
    delta_name = sorted(workload.tables)[0]

    runs: dict[str, dict[str, object]] = {}
    parity: dict[str, dict[str, list[float]]] = {label: {} for label in plans}
    services: dict[str, AcquisitionService] = {}

    def batch_round(label: str, tag: str, base: int) -> float:
        seeds = [base + index for index in range(len(requests))]
        start = time.perf_counter()
        batch = services[label].acquire_batch(requests, seeds=seeds)
        elapsed = time.perf_counter() - start
        if not batch.ok:
            raise AssertionError(
                f"[{label}] batch failed: {[str(i.error) for i in batch.errors()]}"
            )
        parity[label][tag] = [item.result.estimated_correlation for item in batch]
        return elapsed

    def serve_phase(name: str, seed_base: int, rounds: int) -> None:
        """Best-of-``rounds`` batches; plans interleave within each round.

        Every round is a fresh seed grid (never a memoised repeat), shared by
        all plans and served back-to-back, so best-of-rounds removes
        single-CPU scheduler noise without favouring whichever plan happened
        to run on a quiet machine.
        """
        totals: dict[str, list[float]] = {label: [] for label in plans}
        for round_index in range(rounds):
            base = seed_base + 1000 * round_index
            for label in plans:
                totals[label].append(batch_round(label, f"{name}@r{round_index}", base))
        for label, series in totals.items():
            runs[label][name] = {
                "batch_seconds": min(series),
                "first_batch_seconds": series[0],
                "rounds": rounds,
            }

    try:
        for label, plan in plans.items():
            config = DanceConfig(
                sampling_rate=args.sampling_rate,
                mcmc=MCMCConfig(iterations=args.iterations, seed=0),
                plan=plan,
                service=ServiceConfig(max_batch_workers=4),
            )
            runs[label] = {"plan": plan.spec()}
            start = time.perf_counter()
            services[label] = AcquisitionService(_marketplace_for(workload), config)
            runs[label]["offline_seconds"] = time.perf_counter() - start

        # Cold is a single round: the first batch pays the lazy pool
        # spin-up, which a best-of would wash out.
        serve_phase("cold", SHM_SEED_BASE["cold"], rounds=1)
        serve_phase("warm", SHM_SEED_BASE["warm"], rounds=SHM_ROUNDS)
        for label in plans:
            start = time.perf_counter()
            services[label].register_source_tables([workload.table(delta_name)])
            runs[label]["delta_register_seconds"] = time.perf_counter() - start
        # The register reset the session caches, so the warm seed grid
        # reruns as fresh walks against the refreshed graph.
        serve_phase("warm_after_delta", SHM_SEED_BASE["warm"], rounds=SHM_ROUNDS)
        for label in plans:
            runs[label]["shared_store"] = services[label].describe()["shared_store"]
    finally:
        for service in services.values():
            service.close()

    for label, run in runs.items():
        # The headline number is steady-state serving on the long-lived
        # pool — the warm grid plus the same grid after the catalog delta.
        # The one-time pool spin-up stays visible in the cold phase and in
        # the ``_with_cold`` total.
        run["acquire_total_seconds"] = (
            run["warm"]["batch_seconds"] + run["warm_after_delta"]["batch_seconds"]
        )
        run["acquire_total_with_cold_seconds"] = (
            run["acquire_total_seconds"] + run["cold"]["batch_seconds"]
        )

    reference = parity["serial"]
    if any(passes != reference for passes in parity.values()):
        raise AssertionError(f"executor parity broken across shm sweep: {parity}")
    stats = runs["process"]["shared_store"]
    if stats is None:
        raise AssertionError("process plan did not build a shared-store pool")
    if stats["worker_resyncs"] != 0:
        raise AssertionError(f"warm pool did not survive the delta: {stats}")
    if stats["deltas_published"] < 1:
        raise AssertionError(f"no delta was published to the warm pool: {stats}")
    leaked = live_segments()
    if leaked:
        raise AssertionError(f"leaked shared-memory segments after close: {leaked}")
    return {
        "chains": chains,
        "delta_instance": delta_name,
        "queries": list(queries),
        "executor_parity": True,
        "process_vs_thread": {
            "process_seconds": runs["process"]["acquire_total_seconds"],
            "thread_seconds": runs["thread"]["acquire_total_seconds"],
            "process_not_slower": (
                runs["process"]["acquire_total_seconds"]
                <= runs["thread"]["acquire_total_seconds"]
            ),
        },
        "executors": runs,
    }


SERVE_SHARD_COUNTS = (1, 2, 4)


def bench_serve(workload, args: argparse.Namespace) -> dict[str, object]:
    """Requests/second and latency percentiles over HTTP at 1/2/4 shards.

    Boots a real :class:`~repro.service.server.AcquisitionHTTPServer` (via the
    reusable e2e harness in ``tests/integration/serve_harness.py``) per shard
    count, warms it with one pass over the workload queries, then fires
    ``--serve-rounds`` passes from ``--serve-clients`` concurrent urllib
    clients with explicit per-request seeds.  Client-side latency percentiles
    sit next to the service's own ``/metrics`` percentiles, and the warm-up
    correlations are parity-checked across shard counts (the shard fold must
    not change a single answer).
    """
    from concurrent.futures import ThreadPoolExecutor

    harness_dir = _REPO_ROOT / "tests" / "integration"
    if str(harness_dir) not in sys.path:
        sys.path.insert(0, str(harness_dir))
    from serve_harness import ServeHarness

    executor = args.executor if args.executor != "all" else "thread"
    queries = queries_for(workload)
    specs = [
        {"query": name, "budget": BUDGET, "seed": index}
        for index, name in enumerate(queries)
    ]
    work = [
        dict(spec, seed=spec["seed"] + 1000 * round_index)
        for round_index in range(args.serve_rounds)
        for spec in specs
    ]

    per_shards: dict[str, dict[str, object]] = {}
    correlations: dict[int, list[float]] = {}
    for shards in SERVE_SHARD_COUNTS:
        config = DanceConfig(
            sampling_rate=args.sampling_rate,
            mcmc=MCMCConfig(
                iterations=args.iterations, seed=0, chains=args.chains, executor=executor
            ),
            service=ServiceConfig(seed=0, max_batch_workers=4),
        )
        with ServeHarness(
            marketplace=_marketplace_for(workload),
            config=config,
            queries=queries,
            shards=shards,
        ) as harness:
            warm = [harness.acquire(spec) for spec in specs]
            if any(response.status != 200 for response in warm):
                raise RuntimeError(
                    f"warm-up failed at {shards} shard(s): "
                    f"{[response.status for response in warm]}"
                )
            correlations[shards] = [
                response.json()["result"]["estimated_correlation"] for response in warm
            ]

            def timed(spec: dict) -> float:
                start = time.perf_counter()
                response = harness.acquire(spec)
                if response.status != 200:
                    raise RuntimeError(f"HTTP {response.status}: {response.text}")
                return time.perf_counter() - start

            start = time.perf_counter()
            with ThreadPoolExecutor(max_workers=args.serve_clients) as pool:
                latencies = sorted(pool.map(timed, work))
            wall_seconds = time.perf_counter() - start
            metrics = harness.service.metrics()

        def percentile(fraction: float) -> float:
            return latencies[min(len(latencies) - 1, int(fraction * len(latencies)))]

        per_shards[str(shards)] = {
            "requests": len(work),
            "wall_seconds": wall_seconds,
            "requests_per_second": len(work) / wall_seconds if wall_seconds else None,
            "http_p50_seconds": percentile(0.50),
            "http_p95_seconds": percentile(0.95),
            "http_p99_seconds": percentile(0.99),
            "service_p50_seconds": metrics["latency"]["p50_seconds"],
            "service_p95_seconds": metrics["latency"]["p95_seconds"],
            "service_p99_seconds": metrics["latency"]["p99_seconds"],
        }

    reference = correlations[SERVE_SHARD_COUNTS[0]]
    return {
        "clients": args.serve_clients,
        "rounds": args.serve_rounds,
        "queries": list(queries),
        "shard_parity": all(corr == reference for corr in correlations.values()),
        "correlations": reference,
        "shards": per_shards,
    }


QOS_TIER_LADDER = ("gold", "silver", "bronze")


def bench_qos(workload, args: argparse.Namespace) -> dict[str, object]:
    """Per-tier queue-wait percentiles under WFQ contention (PR 9).

    Every workload query is submitted once per SLA tier per round through one
    qos-enabled service whose four batch workers contend for the single
    execution slot, so the weighted fair queue decides who waits.  The
    per-tier percentiles come from the scheduler's own queue-wait histograms
    (``metrics()["qos"]["tiers"]``); under contention gold (weight 4) must
    wait measurably less than bronze (weight 1) at the p95, which the entry
    records as ``gold_p95_below_bronze``.
    """
    executor = args.executor if args.executor != "all" else "thread"
    config = DanceConfig(
        sampling_rate=args.sampling_rate,
        mcmc=MCMCConfig(
            iterations=args.iterations, seed=0, chains=args.chains, executor=executor
        ),
        service=ServiceConfig(max_batch_workers=4, qos=True),
    )
    requests = [
        AcquisitionRequest(
            source_attributes=list(query.source_attributes),
            target_attributes=list(query.target_attributes),
            budget=BUDGET,
            shopper=f"{tier}-shopper",
            tier=tier,
        )
        for query in queries_for(workload).values()
        for tier in QOS_TIER_LADDER
    ]
    with AcquisitionService(_marketplace_for(workload), config) as service:
        service.acquire_batch(requests)  # warm the session caches first
        all_ok = True
        start = time.perf_counter()
        for _ in range(args.qos_rounds):
            all_ok = service.acquire_batch(requests).ok and all_ok
        wall_seconds = time.perf_counter() - start
        metrics = service.metrics()

    tiers = {
        name: {
            "weight": stats["weight"],
            "requests": stats["requests"],
            "queue_wait_p50_seconds": stats["queue_wait"]["p50_seconds"],
            "queue_wait_p95_seconds": stats["queue_wait"]["p95_seconds"],
            "queue_wait_p99_seconds": stats["queue_wait"]["p99_seconds"],
        }
        for name, stats in metrics["qos"]["tiers"].items()
    }
    gold_p95 = tiers["gold"]["queue_wait_p95_seconds"]
    bronze_p95 = tiers["bronze"]["queue_wait_p95_seconds"]
    return {
        "rounds": args.qos_rounds,
        "requests_per_round": len(requests),
        "batch_workers": 4,
        "batch_ok": all_ok,
        "wall_seconds": wall_seconds,
        "queue_wait_p50_seconds": metrics["queue_wait"]["p50_seconds"],
        "execution_p50_seconds": metrics["execution"]["p50_seconds"],
        "tiers": tiers,
        "gold_p95_below_bronze": gold_p95 < bronze_p95,
    }


def _base_entry(args: argparse.Namespace, resolved_backend: str, executor: str) -> dict:
    return {
        "label": args.label,
        "timestamp": time.strftime("%Y-%m-%dT%H:%M:%S"),
        "python": platform.python_version(),
        "backend": resolved_backend,
        "scenario": {
            "workload": "tpch",
            "scale": args.scale,
            "sampling_rate": args.sampling_rate,
            "mcmc_iterations": args.iterations,
            "budget": BUDGET,
            "chains": args.chains,
            "executor": executor,
        },
    }


def bench_backend(backend_name: str, args: argparse.Namespace) -> list[dict[str, object]]:
    """Measure the full scenario under one columnar backend.

    The workload is rebuilt from scratch so that every encoding is produced by
    the requested backend (tables cache their encodings).  Returns one entry
    for the library scenario (with an ``"executors"`` sub-map under
    ``--executor all``) plus, with ``--service``, one service-mode entry.
    """
    resolved = columnar_backend.set_backend(backend_name)
    workload = tpch_workload(scale=args.scale, seed=0)
    entry = _base_entry(args, resolved, args.executor)
    entry.update(bench_joins(workload))
    if args.executor == "all":
        sweep: dict[str, dict[str, object]] = {}
        for executor in EXECUTORS:
            sweep[executor] = bench_acquire(workload, args, executor)
        if args.chains > 1:
            # PR 8: the same process walk served from the zero-copy shared
            # columnar store; bit-identical, so it joins the parity check.
            sweep["process_shared"] = bench_acquire_shared(workload, args)
        entry["executors"] = sweep
        correlations = [
            {k: v for k, v in run.items() if k.endswith("_correlation")}
            for run in sweep.values()
        ]
        entry["executor_parity"] = all(c == correlations[0] for c in correlations)
        # The serial run's flat keys stay on the entry itself, so history
        # tooling (and check_multichain_parity.py) keeps working unchanged.
        entry.update(sweep["serial"])
    else:
        entry.update(bench_acquire(workload, args, args.executor))
    entries = [entry]
    if args.service:
        service_entry = _base_entry(args, resolved, args.executor)
        service_entry["mode"] = "service"
        service_entry["service"] = bench_service(workload, args)
        entries.append(service_entry)
    if args.catalog:
        storage_entry = _base_entry(args, resolved, args.executor)
        storage_entry["mode"] = "storage"
        storage_entry["storage"] = bench_storage(workload, args)
        entries.append(storage_entry)
    if args.serve:
        serve_entry = _base_entry(args, resolved, args.executor)
        serve_entry["mode"] = "serve"
        serve_entry["serve"] = bench_serve(workload, args)
        entries.append(serve_entry)
    if args.shm:
        shm_entry = _base_entry(args, resolved, "all")
        shm_entry["mode"] = "shm"
        shm_entry["shm"] = bench_shm(workload, args)
        entries.append(shm_entry)
    if args.qos:
        qos_entry = _base_entry(args, resolved, args.executor)
        qos_entry["mode"] = "qos"
        qos_entry["qos"] = bench_qos(workload, args)
        entries.append(qos_entry)
    return entries


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--output",
        type=Path,
        default=_REPO_ROOT / "BENCH_hotpath.json",
        help="JSON file the measurements are appended to",
    )
    parser.add_argument(
        "--label", default="current", help="label recorded with this measurement"
    )
    parser.add_argument(
        "--backend",
        default="both",
        choices=["both", "auto", "numpy", "python"],
        help="columnar backend(s) to measure ('both' appends one entry per backend)",
    )
    parser.add_argument(
        "--chains",
        type=int,
        default=1,
        help="number of parallel MCMC chains per acquisition (1 = the paper's walk)",
    )
    parser.add_argument(
        "--executor",
        default="serial",
        choices=[*EXECUTORS, "all"],
        help="executor for multi-chain walks (ignored when --chains 1); "
        "'all' sweeps every executor into one self-contained entry",
    )
    parser.add_argument(
        "--service",
        action="store_true",
        help="additionally measure cold vs. warm requests through one "
        "long-lived AcquisitionService (appends a mode='service' entry)",
    )
    parser.add_argument(
        "--catalog",
        action="store_true",
        help="additionally measure a cold build+persist vs. warm "
        "Marketplace.open() restart (appends a mode='storage' entry)",
    )
    parser.add_argument(
        "--serve",
        action="store_true",
        help="additionally measure requests/second and latency percentiles "
        "over HTTP at 1/2/4 shards (appends a mode='serve' entry)",
    )
    parser.add_argument(
        "--shm",
        action="store_true",
        help="additionally measure the PR 8 shared-memory executor sweep "
        "through a long-lived service: cold pool, warm pool and "
        "warm-after-delta passes per plan (appends a mode='shm' entry)",
    )
    parser.add_argument(
        "--qos",
        action="store_true",
        help="additionally measure per-tier queue-wait percentiles through a "
        "qos-enabled service under contention (appends a mode='qos' entry)",
    )
    parser.add_argument(
        "--qos-rounds",
        type=int,
        default=12,
        help="measured batch passes over the tiered request set (--qos)",
    )
    parser.add_argument(
        "--serve-rounds",
        type=int,
        default=20,
        help="measured passes over the workload queries per shard count (--serve)",
    )
    parser.add_argument(
        "--serve-clients",
        type=int,
        default=8,
        help="concurrent HTTP clients driving the serve benchmark (--serve)",
    )
    parser.add_argument(
        "--scale", type=float, default=SCALE, help="TPC-H workload scale factor"
    )
    parser.add_argument(
        "--sampling-rate",
        type=float,
        default=SAMPLING_RATE,
        help="offline-phase correlated sampling rate",
    )
    parser.add_argument(
        "--iterations",
        type=int,
        default=MCMC_ITERATIONS,
        help="MCMC iterations per chain",
    )
    args = parser.parse_args()

    if args.backend == "both":
        backends = ["python"]
        if columnar_backend.numpy_available():
            backends.append("numpy")
        else:
            print("numpy is not importable; measuring the pure-python backend only")
    else:
        backends = [args.backend]

    entries = []
    try:
        for backend_name in backends:
            entries.extend(bench_backend(backend_name, args))
    finally:
        columnar_backend.set_backend(None)

    history: list[dict[str, object]] = []
    if args.output.exists():
        try:
            history = json.loads(args.output.read_text())
        except (OSError, json.JSONDecodeError):
            history = []
    history.extend(entries)
    args.output.write_text(json.dumps(history, indent=2) + "\n")

    def show(mapping: dict, indent: str = "") -> None:
        for key, value in mapping.items():
            if isinstance(value, dict):
                print(f"{indent}{key}:")
                show(value, indent + "    ")
            elif isinstance(value, float):
                print(f"{indent}{key:>40}: {value:.4f}")
            else:
                print(f"{indent}{key:>40}: {value}")

    for entry in entries:
        mode = f" [{entry['mode']}]" if "mode" in entry else ""
        print(f"--- backend: {entry['backend']}{mode}")
        show(entry)
    print(f"\nwrote {args.output}")


if __name__ == "__main__":
    main()
