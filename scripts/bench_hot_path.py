#!/usr/bin/env python
"""Micro-benchmark of the online-phase hot path.

Measures, on the Figure 4 TPC-H scalability scenario scaled up for stable
timing (scale 2.0, sampling rate 0.4, 200 MCMC iterations, all 8 instances):

* raw join-operator throughput (``inner_join`` / ``full_outer_join`` of the
  two largest instances), and
* the end-to-end ``DANCE.acquire()`` wall clock for Q1/Q2/Q3 (offline graph
  build timed separately).

Results are printed and appended to ``BENCH_hotpath.json`` at the repository
root, so the performance trajectory is tracked PR over PR.  By default the
scenario is measured once per columnar backend (numpy and pure-python; see
``repro/relational/backend.py``), appending one entry per backend with a
``"backend"`` field.  ``--chains`` / ``--executor`` measure the multi-chain
MCMC search (``repro/search/chains.py``); ``--executor all`` sweeps
serial/thread/process in one invocation and writes one self-contained entry
whose ``"executors"`` map holds the per-executor timings (with a computed
``executor_parity`` flag).  ``--service`` additionally appends a
service-mode entry (``repro/service``): cold vs. warm request latency through
one long-lived ``AcquisitionService`` plus a concurrent batch, parity-checked
against the cold run, with the warm request measured both with and without
the session's Step-1 memo (``step1_memo_speedup``) and the service's latency
percentiles recorded.  ``--catalog`` appends a mode='storage' entry
(``repro/storage``): a cold build-offline + first request + ``persist()`` to a
throwaway sqlite catalog versus a warm ``Marketplace.open()`` + build-offline
(asserting zero JI recomputes) + first request, parity-checked against the
cold run.  ``--serve`` appends a mode='serve' entry (``repro/service/server``):
a real HTTP server driven by concurrent urllib clients at 1, 2 and 4 shards,
recording requests/second plus client-side and service-side p50/p95/p99
latency, parity-checked across shard counts.  ``--scale`` / ``--iterations``
/ ``--sampling-rate`` shrink the scenario for smoke runs (e.g. in CI).  Run
with::

    PYTHONPATH=src python scripts/bench_hot_path.py [--output BENCH_hotpath.json]
                                                    [--backend both|auto|numpy|python]
                                                    [--chains N]
                                                    [--executor serial|thread|process|all]
                                                    [--service]
                                                    [--catalog]
                                                    [--serve]
"""

from __future__ import annotations

import argparse
import json
import platform
import sys
import tempfile
import time
from pathlib import Path

_REPO_ROOT = Path(__file__).resolve().parent.parent
_SRC = _REPO_ROOT / "src"
if str(_SRC) not in sys.path:
    sys.path.insert(0, str(_SRC))

from repro.core.config import DanceConfig, ServiceConfig
from repro.core.dance import DANCE
from repro.relational import backend as columnar_backend
from repro.marketplace.dataset import MarketplaceDataset
from repro.marketplace.market import Marketplace
from repro.marketplace.shopper import AcquisitionRequest
from repro.pricing.models import EntropyPricingModel
from repro.relational.joins import full_outer_join, inner_join
from repro.search.mcmc import EXECUTORS, MCMCConfig
from repro.service import AcquisitionService
from repro.workloads.queries import queries_for
from repro.workloads.tpch import tpch_workload

SCALE = 2.0
SAMPLING_RATE = 0.4
MCMC_ITERATIONS = 200
BUDGET = 1000.0
JOIN_REPEATS = 5


def _best_of(repeats: int, fn, *args, **kwargs) -> tuple[object, float]:
    """Run ``fn`` ``repeats`` times; return (last result, best wall-clock seconds)."""
    best = float("inf")
    result = None
    for _ in range(repeats):
        start = time.perf_counter()
        result = fn(*args, **kwargs)
        best = min(best, time.perf_counter() - start)
    return result, best


def bench_joins(workload) -> dict[str, float]:
    lineitem = workload.dirty_or_clean("lineitem")
    orders = workload.dirty_or_clean("orders")
    customer = workload.dirty_or_clean("customer")
    joined, inner_seconds = _best_of(JOIN_REPEATS, inner_join, lineitem, orders)
    outer, outer_seconds = _best_of(JOIN_REPEATS, full_outer_join, customer, orders)
    return {
        "inner_join_seconds": inner_seconds,
        "inner_join_rows": len(joined),
        "full_outer_join_seconds": outer_seconds,
        "full_outer_join_rows": len(outer),
    }


def _marketplace_for(workload) -> Marketplace:
    pricing = EntropyPricingModel()
    marketplace = Marketplace(default_pricing=pricing)
    for name in workload.tables:
        marketplace.host(
            MarketplaceDataset(table=workload.dirty_or_clean(name), pricing=pricing)
        )
    return marketplace


def _requests_for(workload) -> list[AcquisitionRequest]:
    return [
        AcquisitionRequest(
            source_attributes=list(query.source_attributes),
            target_attributes=list(query.target_attributes),
            budget=BUDGET,
        )
        for query in queries_for(workload).values()
    ]


def bench_acquire(workload, args: argparse.Namespace, executor: str) -> dict[str, object]:
    marketplace = _marketplace_for(workload)
    config = DanceConfig(
        sampling_rate=args.sampling_rate,
        mcmc=MCMCConfig(
            iterations=args.iterations,
            seed=0,
            chains=args.chains,
            executor=executor,
        ),
    )
    dance = DANCE(marketplace, config)

    start = time.perf_counter()
    dance.build_offline()
    offline_seconds = time.perf_counter() - start

    results: dict[str, object] = {"offline_seconds": offline_seconds}
    total = 0.0
    for query in queries_for(workload).values():
        request = AcquisitionRequest(
            source_attributes=list(query.source_attributes),
            target_attributes=list(query.target_attributes),
            budget=BUDGET,
        )
        start = time.perf_counter()
        acquisition = dance.acquire(request)
        elapsed = time.perf_counter() - start
        total += elapsed
        results[f"acquire_{query.name}_seconds"] = elapsed
        results[f"acquire_{query.name}_correlation"] = acquisition.estimated_correlation
        hit_rate = getattr(acquisition, "mcmc_cache_hit_rate", None)
        if hit_rate is not None:
            results[f"acquire_{query.name}_cache_hit_rate"] = hit_rate
    results["acquire_total_seconds"] = total
    return results


def bench_service(workload, args: argparse.Namespace) -> dict[str, object]:
    """Cold vs. warm request latency through one long-lived acquisition service.

    The *cold* number is the first ``acquire()`` of Q1 on a fresh session
    (empty caches, pools not yet spun up); the *warm* number repeats the
    identical request against the now-hot session — same seed, bit-identical
    result, served almost entirely from the shared evaluation memo and the
    Step-1 memo (which skips the landmark/Steiner search).  The same
    cold/warm pair is measured again with the Step-1 memo disabled
    (``ServiceConfig(step1_memo=False)``) to isolate its contribution; the
    two services must agree bit-for-bit.  The batch number serves all
    queries concurrently through the batch API; the service's latency
    percentiles are recorded alongside.
    """
    marketplace = _marketplace_for(workload)
    executor = args.executor if args.executor != "all" else "thread"

    def service_config(step1_memo: bool) -> DanceConfig:
        return DanceConfig(
            sampling_rate=args.sampling_rate,
            mcmc=MCMCConfig(
                iterations=args.iterations, seed=0, chains=args.chains, executor=executor
            ),
            service=ServiceConfig(max_batch_workers=4, step1_memo=step1_memo),
        )

    requests = _requests_for(workload)
    results: dict[str, object] = {}
    with AcquisitionService(
        marketplace, service_config(step1_memo=True), build_offline=False
    ) as service:
        start = time.perf_counter()
        service.dance.build_offline()
        results["offline_seconds"] = time.perf_counter() - start

        start = time.perf_counter()
        cold = service.acquire(requests[0])
        cold_seconds = time.perf_counter() - start
        # Warm repeats are all served from the session caches, so best-of
        # timing just removes scheduler noise from the small numbers.
        warm, warm_seconds = _best_of(JOIN_REPEATS, service.acquire, requests[0])

        start = time.perf_counter()
        batch = service.acquire_batch(requests)
        batch_seconds = time.perf_counter() - start

        metrics = service.metrics()
        results.update(
            {
                "cold_request_seconds": cold_seconds,
                "warm_request_seconds": warm_seconds,
                "warm_speedup": cold_seconds / warm_seconds if warm_seconds else None,
                "cold_correlation": cold.estimated_correlation,
                "warm_parity": warm.estimated_correlation == cold.estimated_correlation
                and warm.sql() == cold.sql(),
                "warm_cache_hit_rate": warm.mcmc_cache_hit_rate,
                "batch_requests": len(requests),
                "batch_seconds": batch_seconds,
                "batch_ok": batch.ok,
                "batch_correlations": [
                    item.result.estimated_correlation if item.ok else None
                    for item in batch
                ],
                "step1_memo": metrics["step1_memo"],
                "latency_p50_seconds": metrics["latency"]["p50_seconds"],
                "latency_p95_seconds": metrics["latency"]["p95_seconds"],
                "latency_p99_seconds": metrics["latency"]["p99_seconds"],
            }
        )

    # Same warm request with the Step-1 memo off: isolates how much of the
    # warm-path win comes from skipping the landmark/Steiner search.
    with AcquisitionService(
        _marketplace_for(workload), service_config(step1_memo=False)
    ) as service:
        cold_off = service.acquire(requests[0])
        warm_off, warm_off_seconds = _best_of(JOIN_REPEATS, service.acquire, requests[0])
    results.update(
        {
            "warm_request_seconds_memo_off": warm_off_seconds,
            "step1_memo_speedup": (
                warm_off_seconds / warm_seconds if warm_seconds else None
            ),
            "step1_memo_parity": (
                warm_off.estimated_correlation == warm.estimated_correlation
                and cold_off.estimated_correlation == cold.estimated_correlation
                and warm_off.sql() == warm.sql()
            ),
        }
    )
    return results


def bench_storage(workload, args: argparse.Namespace) -> dict[str, object]:
    """Cold build + persist vs. warm ``Marketplace.open()`` restart (PR 6).

    The *cold* side builds the offline join graph from scratch, serves the
    first request, and persists the whole marketplace (tables, encodings,
    offline state) to a throwaway sqlite catalog.  The *warm* side reopens
    that catalog, rebuilds the offline phase — which must adopt every
    persisted JI weight, i.e. recompute **zero** edges — and serves the same
    first request; results must agree bit-for-bit with the cold run.
    """
    executor = args.executor if args.executor != "all" else "serial"
    config = DanceConfig(
        sampling_rate=args.sampling_rate,
        mcmc=MCMCConfig(
            iterations=args.iterations, seed=0, chains=args.chains, executor=executor
        ),
    )
    request = _requests_for(workload)[0]
    results: dict[str, object] = {"storage_kind": "sqlite"}
    with tempfile.TemporaryDirectory() as scratch:
        catalog = Path(scratch) / "marketplace.catalog"

        dance = DANCE(_marketplace_for(workload), config)
        start = time.perf_counter()
        dance.build_offline()
        results["cold_offline_seconds"] = time.perf_counter() - start
        start = time.perf_counter()
        cold = dance.acquire(request)
        results["cold_request_seconds"] = time.perf_counter() - start
        start = time.perf_counter()
        dance.persist(catalog)
        results["persist_seconds"] = time.perf_counter() - start
        results["catalog_bytes"] = catalog.stat().st_size
        results["cold_ji_computations"] = dance.join_graph.ji_computations
        results["cold_edge_recomputes"] = dance.join_graph.edge_recomputes

        start = time.perf_counter()
        warm_dance = DANCE(Marketplace.open(catalog), config)
        warm_dance.build_offline()
        results["warm_open_offline_seconds"] = time.perf_counter() - start
        results["warm_ji_computations"] = warm_dance.join_graph.ji_computations
        results["warm_edge_recomputes"] = warm_dance.join_graph.edge_recomputes
        if warm_dance.join_graph.edge_recomputes != 0:
            raise AssertionError(
                "warm restart recomputed "
                f"{warm_dance.join_graph.edge_recomputes} I-edges; expected 0"
            )
        start = time.perf_counter()
        warm = warm_dance.acquire(request)
        results["warm_request_seconds"] = time.perf_counter() - start
        warm_dance.marketplace.storage.close()

    results["warm_parity"] = (
        warm.estimated_correlation == cold.estimated_correlation
        and warm.sql() == cold.sql()
    )
    results["offline_speedup"] = (
        results["cold_offline_seconds"] / results["warm_open_offline_seconds"]
        if results["warm_open_offline_seconds"]
        else None
    )
    return results


SERVE_SHARD_COUNTS = (1, 2, 4)


def bench_serve(workload, args: argparse.Namespace) -> dict[str, object]:
    """Requests/second and latency percentiles over HTTP at 1/2/4 shards.

    Boots a real :class:`~repro.service.server.AcquisitionHTTPServer` (via the
    reusable e2e harness in ``tests/integration/serve_harness.py``) per shard
    count, warms it with one pass over the workload queries, then fires
    ``--serve-rounds`` passes from ``--serve-clients`` concurrent urllib
    clients with explicit per-request seeds.  Client-side latency percentiles
    sit next to the service's own ``/metrics`` percentiles, and the warm-up
    correlations are parity-checked across shard counts (the shard fold must
    not change a single answer).
    """
    from concurrent.futures import ThreadPoolExecutor

    harness_dir = _REPO_ROOT / "tests" / "integration"
    if str(harness_dir) not in sys.path:
        sys.path.insert(0, str(harness_dir))
    from serve_harness import ServeHarness

    executor = args.executor if args.executor != "all" else "thread"
    queries = queries_for(workload)
    specs = [
        {"query": name, "budget": BUDGET, "seed": index}
        for index, name in enumerate(queries)
    ]
    work = [
        dict(spec, seed=spec["seed"] + 1000 * round_index)
        for round_index in range(args.serve_rounds)
        for spec in specs
    ]

    per_shards: dict[str, dict[str, object]] = {}
    correlations: dict[int, list[float]] = {}
    for shards in SERVE_SHARD_COUNTS:
        config = DanceConfig(
            sampling_rate=args.sampling_rate,
            mcmc=MCMCConfig(
                iterations=args.iterations, seed=0, chains=args.chains, executor=executor
            ),
            service=ServiceConfig(seed=0, max_batch_workers=4),
        )
        with ServeHarness(
            marketplace=_marketplace_for(workload),
            config=config,
            queries=queries,
            shards=shards,
        ) as harness:
            warm = [harness.acquire(spec) for spec in specs]
            if any(response.status != 200 for response in warm):
                raise RuntimeError(
                    f"warm-up failed at {shards} shard(s): "
                    f"{[response.status for response in warm]}"
                )
            correlations[shards] = [
                response.json()["result"]["estimated_correlation"] for response in warm
            ]

            def timed(spec: dict) -> float:
                start = time.perf_counter()
                response = harness.acquire(spec)
                if response.status != 200:
                    raise RuntimeError(f"HTTP {response.status}: {response.text}")
                return time.perf_counter() - start

            start = time.perf_counter()
            with ThreadPoolExecutor(max_workers=args.serve_clients) as pool:
                latencies = sorted(pool.map(timed, work))
            wall_seconds = time.perf_counter() - start
            metrics = harness.service.metrics()

        def percentile(fraction: float) -> float:
            return latencies[min(len(latencies) - 1, int(fraction * len(latencies)))]

        per_shards[str(shards)] = {
            "requests": len(work),
            "wall_seconds": wall_seconds,
            "requests_per_second": len(work) / wall_seconds if wall_seconds else None,
            "http_p50_seconds": percentile(0.50),
            "http_p95_seconds": percentile(0.95),
            "http_p99_seconds": percentile(0.99),
            "service_p50_seconds": metrics["latency"]["p50_seconds"],
            "service_p95_seconds": metrics["latency"]["p95_seconds"],
            "service_p99_seconds": metrics["latency"]["p99_seconds"],
        }

    reference = correlations[SERVE_SHARD_COUNTS[0]]
    return {
        "clients": args.serve_clients,
        "rounds": args.serve_rounds,
        "queries": list(queries),
        "shard_parity": all(corr == reference for corr in correlations.values()),
        "correlations": reference,
        "shards": per_shards,
    }


def _base_entry(args: argparse.Namespace, resolved_backend: str, executor: str) -> dict:
    return {
        "label": args.label,
        "timestamp": time.strftime("%Y-%m-%dT%H:%M:%S"),
        "python": platform.python_version(),
        "backend": resolved_backend,
        "scenario": {
            "workload": "tpch",
            "scale": args.scale,
            "sampling_rate": args.sampling_rate,
            "mcmc_iterations": args.iterations,
            "budget": BUDGET,
            "chains": args.chains,
            "executor": executor,
        },
    }


def bench_backend(backend_name: str, args: argparse.Namespace) -> list[dict[str, object]]:
    """Measure the full scenario under one columnar backend.

    The workload is rebuilt from scratch so that every encoding is produced by
    the requested backend (tables cache their encodings).  Returns one entry
    for the library scenario (with an ``"executors"`` sub-map under
    ``--executor all``) plus, with ``--service``, one service-mode entry.
    """
    resolved = columnar_backend.set_backend(backend_name)
    workload = tpch_workload(scale=args.scale, seed=0)
    entry = _base_entry(args, resolved, args.executor)
    entry.update(bench_joins(workload))
    if args.executor == "all":
        sweep: dict[str, dict[str, object]] = {}
        for executor in EXECUTORS:
            sweep[executor] = bench_acquire(workload, args, executor)
        entry["executors"] = sweep
        correlations = [
            {k: v for k, v in run.items() if k.endswith("_correlation")}
            for run in sweep.values()
        ]
        entry["executor_parity"] = all(c == correlations[0] for c in correlations)
        # The serial run's flat keys stay on the entry itself, so history
        # tooling (and check_multichain_parity.py) keeps working unchanged.
        entry.update(sweep["serial"])
    else:
        entry.update(bench_acquire(workload, args, args.executor))
    entries = [entry]
    if args.service:
        service_entry = _base_entry(args, resolved, args.executor)
        service_entry["mode"] = "service"
        service_entry["service"] = bench_service(workload, args)
        entries.append(service_entry)
    if args.catalog:
        storage_entry = _base_entry(args, resolved, args.executor)
        storage_entry["mode"] = "storage"
        storage_entry["storage"] = bench_storage(workload, args)
        entries.append(storage_entry)
    if args.serve:
        serve_entry = _base_entry(args, resolved, args.executor)
        serve_entry["mode"] = "serve"
        serve_entry["serve"] = bench_serve(workload, args)
        entries.append(serve_entry)
    return entries


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--output",
        type=Path,
        default=_REPO_ROOT / "BENCH_hotpath.json",
        help="JSON file the measurements are appended to",
    )
    parser.add_argument(
        "--label", default="current", help="label recorded with this measurement"
    )
    parser.add_argument(
        "--backend",
        default="both",
        choices=["both", "auto", "numpy", "python"],
        help="columnar backend(s) to measure ('both' appends one entry per backend)",
    )
    parser.add_argument(
        "--chains",
        type=int,
        default=1,
        help="number of parallel MCMC chains per acquisition (1 = the paper's walk)",
    )
    parser.add_argument(
        "--executor",
        default="serial",
        choices=[*EXECUTORS, "all"],
        help="executor for multi-chain walks (ignored when --chains 1); "
        "'all' sweeps every executor into one self-contained entry",
    )
    parser.add_argument(
        "--service",
        action="store_true",
        help="additionally measure cold vs. warm requests through one "
        "long-lived AcquisitionService (appends a mode='service' entry)",
    )
    parser.add_argument(
        "--catalog",
        action="store_true",
        help="additionally measure a cold build+persist vs. warm "
        "Marketplace.open() restart (appends a mode='storage' entry)",
    )
    parser.add_argument(
        "--serve",
        action="store_true",
        help="additionally measure requests/second and latency percentiles "
        "over HTTP at 1/2/4 shards (appends a mode='serve' entry)",
    )
    parser.add_argument(
        "--serve-rounds",
        type=int,
        default=20,
        help="measured passes over the workload queries per shard count (--serve)",
    )
    parser.add_argument(
        "--serve-clients",
        type=int,
        default=8,
        help="concurrent HTTP clients driving the serve benchmark (--serve)",
    )
    parser.add_argument(
        "--scale", type=float, default=SCALE, help="TPC-H workload scale factor"
    )
    parser.add_argument(
        "--sampling-rate",
        type=float,
        default=SAMPLING_RATE,
        help="offline-phase correlated sampling rate",
    )
    parser.add_argument(
        "--iterations",
        type=int,
        default=MCMC_ITERATIONS,
        help="MCMC iterations per chain",
    )
    args = parser.parse_args()

    if args.backend == "both":
        backends = ["python"]
        if columnar_backend.numpy_available():
            backends.append("numpy")
        else:
            print("numpy is not importable; measuring the pure-python backend only")
    else:
        backends = [args.backend]

    entries = []
    try:
        for backend_name in backends:
            entries.extend(bench_backend(backend_name, args))
    finally:
        columnar_backend.set_backend(None)

    history: list[dict[str, object]] = []
    if args.output.exists():
        try:
            history = json.loads(args.output.read_text())
        except (OSError, json.JSONDecodeError):
            history = []
    history.extend(entries)
    args.output.write_text(json.dumps(history, indent=2) + "\n")

    def show(mapping: dict, indent: str = "") -> None:
        for key, value in mapping.items():
            if isinstance(value, dict):
                print(f"{indent}{key}:")
                show(value, indent + "    ")
            elif isinstance(value, float):
                print(f"{indent}{key:>40}: {value:.4f}")
            else:
                print(f"{indent}{key:>40}: {value}")

    for entry in entries:
        mode = f" [{entry['mode']}]" if "mode" in entry else ""
        print(f"--- backend: {entry['backend']}{mode}")
        show(entry)
    print(f"\nwrote {args.output}")


if __name__ == "__main__":
    main()
