#!/usr/bin/env python
"""CI gate for dancelint, the static determinism/concurrency checker.

Three passes, in order:

1. **Rule self-test** — every shipped rule must fire on its positive fixture
   (``tests/analysis/fixtures/<CODE>_pos.py``) and stay silent on its
   negative fixture (``<CODE>_neg.py``).  A rule that cannot catch its own
   seeded violation is broken, and the gate fails *before* trusting pass 2.
2. **Strict pass** — ``src/repro`` must be clean under the shipped baseline
   (``scripts/dancelint_baseline.json``).  Any finding fails the gate: fix
   it, suppress it with a reason, or deliberately extend the baseline
   (``repro-dance lint --write-baseline``) so reviewers see the debt.
3. **Advisory pass** — ``tests/`` and ``scripts/`` are linted without a
   baseline and reported (the deliberately-dirty rule fixtures are skipped),
   but never fail the gate.

``--output PATH`` writes the strict pass's findings as the JSON CI artifact.
Exit codes: 0 all strict passes clean, 1 a rule self-test or the strict pass
failed, 2 configuration problems (missing fixtures, unreadable baseline).
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO_ROOT / "src"))

from repro.analysis import lint_paths, rule_codes  # noqa: E402
from repro.analysis.baseline import Baseline  # noqa: E402
from repro.analysis.report import format_text  # noqa: E402
from repro.exceptions import ReproError  # noqa: E402

FIXTURES = REPO_ROOT / "tests" / "analysis" / "fixtures"
BASELINE = REPO_ROOT / "scripts" / "dancelint_baseline.json"
STRICT_PATHS = ["src/repro"]
ADVISORY_PATHS = ["tests", "scripts"]


def self_test() -> list[str]:
    """Check every shipped rule against its seeded fixtures; return failures."""
    failures: list[str] = []
    for code in sorted(rule_codes()):
        if code.startswith("LNT"):  # framework diagnostics have no fixtures
            continue
        positive = FIXTURES / f"{code}_pos.py"
        negative = FIXTURES / f"{code}_neg.py"
        for path in (positive, negative):
            if not path.exists():
                failures.append(f"{code}: missing fixture {path.name}")
        if not positive.exists() or not negative.exists():
            continue
        fired = lint_paths([positive], select={code}, root=REPO_ROOT).findings
        silent = lint_paths([negative], select={code}, root=REPO_ROOT).findings
        if not fired:
            failures.append(f"{code}: did not fire on {positive.name}")
        if silent:
            failures.append(
                f"{code}: false positive on {negative.name}: "
                + "; ".join(f.render() for f in silent)
            )
    return failures


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--output",
        type=Path,
        default=None,
        metavar="PATH",
        help="write the strict pass's findings as a JSON artifact",
    )
    parser.add_argument(
        "--skip-advisory",
        action="store_true",
        help="skip the advisory tests/ + scripts/ pass",
    )
    args = parser.parse_args(argv)

    print("== dancelint self-test ==")
    failures = self_test()
    if failures:
        for failure in failures:
            print(f"  FAIL {failure}")
        return 1
    checked = sorted(c for c in rule_codes() if not c.startswith("LNT"))
    print(f"  {len(checked)} rules fired on _pos and stayed silent on _neg fixtures")

    print("== strict: src/repro (with shipped baseline) ==")
    try:
        baseline = Baseline.load(BASELINE)
        strict = lint_paths(STRICT_PATHS, baseline=baseline, root=REPO_ROOT)
    except ReproError as error:
        print(f"  error: {error}")
        return 2
    if args.output is not None:
        args.output.write_text(
            json.dumps(strict.to_dict(), indent=2, sort_keys=True) + "\n"
        )
        print(f"  wrote findings artifact to {args.output}")
    print("  " + format_text(strict, show_source=True).replace("\n", "\n  "))

    if not args.skip_advisory:
        print("== advisory: tests/ and scripts/ (informational) ==")
        advisory_files = [
            path
            for root in ADVISORY_PATHS
            for path in sorted((REPO_ROOT / root).rglob("*.py"))
            if FIXTURES not in path.parents
        ]
        advisory = lint_paths(advisory_files, root=REPO_ROOT)
        print("  " + format_text(advisory, show_source=False).replace("\n", "\n  "))

    return 0 if strict.ok else 1


if __name__ == "__main__":
    raise SystemExit(main())
