#!/usr/bin/env python
"""Assert the service-layer determinism contract on a small TPC-H scenario.

Serves a batch of three acquisition requests (Q1/Q2/Q3) through one
``AcquisitionService`` — concurrently, with shared caches and derived
per-request seeds — and replays the same requests as serial one-at-a-time
``DANCE.acquire()`` calls with the same seeds on a cold middleware.  The two
must agree bit-for-bit on every recommendation (target graph, correlation,
quality, weight, price, SQL).  A warm repeat of the batch must agree with the
cold one too (and, via the session's Step-1 memo, skip the landmark/Steiner
search while doing so).

``--queue`` additionally runs the admission-saturation smoke: a bounded queue
under the ``block`` policy must serve the identical batch (backpressure never
changes results), and a saturated queue under ``reject`` must shed requests
with ``AdmissionRejectedError`` while leaving every *served* request
bit-identical — then recover fully once the queue drains.

``--wfq`` runs the QoS smoke: a contended three-tier workload under the
weighted-fair-queueing scheduler (``ServiceConfig(qos=True)``) must serve
bit-identically to the serial single-FIFO reference, and a batch of
already-expired deadlines must be shed whole with ``DeadlineExceededError``
and recover bit-identically afterwards.

Used by the CI ``service-smoke`` job.  Run locally with::

    PYTHONPATH=src python scripts/check_service_parity.py [--queue] [--wfq]
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path

_REPO_ROOT = Path(__file__).resolve().parent.parent
_SRC = _REPO_ROOT / "src"
if str(_SRC) not in sys.path:
    sys.path.insert(0, str(_SRC))

from repro.core.config import DanceConfig, ServiceConfig
from repro.core.dance import DANCE
from repro.marketplace.dataset import MarketplaceDataset
from repro.marketplace.market import Marketplace
from repro.marketplace.shopper import AcquisitionRequest
from repro.pricing.models import EntropyPricingModel
from repro.search.acquisition import SearchRuntime
from repro.search.mcmc import MCMCConfig
from repro.service import AcquisitionService, request_seed
from repro.workloads.queries import queries_for
from repro.workloads.tpch import tpch_workload

SCALE = 0.2
SAMPLING_RATE = 0.5
ITERATIONS = 60
BUDGET = 1000.0
BATCH_WORKERS = 3


def build_marketplace(workload) -> Marketplace:
    pricing = EntropyPricingModel()
    marketplace = Marketplace(default_pricing=pricing)
    for name in workload.tables:
        marketplace.host(
            MarketplaceDataset(table=workload.dirty_or_clean(name), pricing=pricing)
        )
    return marketplace


def fingerprint(result) -> tuple:
    return (
        tuple(result.target_graph.nodes),
        tuple(tuple(sorted(edge)) for edge in result.target_graph.edges),
        result.estimated_correlation,
        result.estimated_quality,
        result.estimated_join_informativeness,
        result.estimated_price,
        tuple(result.sql()),
    )


def check_queue(workload, requests, reference_prints) -> int:
    """The admission-saturation smoke (``--queue``)."""
    from repro.exceptions import AdmissionRejectedError

    failures = 0

    # Block policy: a queue bound smaller than the batch back-pressures the
    # submitter but must serve the identical batch.
    config = DanceConfig(
        sampling_rate=SAMPLING_RATE,
        mcmc=MCMCConfig(iterations=ITERATIONS, seed=0),
        service=ServiceConfig(
            max_batch_workers=BATCH_WORKERS, max_queue_depth=1, admission="block"
        ),
    )
    with AcquisitionService(build_marketplace(workload), config) as service:
        bounded = service.acquire_batch(requests)
        queue = service.metrics()["queue"]
    if not bounded.ok:
        failures += 1
        print("FAIL[queue]: bounded block-policy batch reported errors")
    elif [fingerprint(item.result) for item in bounded] != reference_prints:
        failures += 1
        print("MISMATCH[queue]: block-policy bounded batch differs from unbounded")
    if queue["rejected"] != 0 or queue["admitted"] != len(requests):
        failures += 1
        print(f"FAIL[queue]: unexpected block-policy counters: {queue}")

    # Reject policy: saturate the queue (hold its only slot), shed the whole
    # batch, then drain and verify full recovery with bit-identical results.
    config = DanceConfig(
        sampling_rate=SAMPLING_RATE,
        mcmc=MCMCConfig(iterations=ITERATIONS, seed=0),
        service=ServiceConfig(
            max_batch_workers=BATCH_WORKERS, max_queue_depth=1, admission="reject"
        ),
    )
    with AcquisitionService(build_marketplace(workload), config) as service:
        service._admission.admit()  # occupy the single slot
        try:
            shed = service.acquire_batch(requests)
        finally:
            service._admission.release()
        if shed.ok or any(item.ok for item in shed):
            failures += 1
            print("FAIL[queue]: saturated reject-policy batch served requests")
        if not all(isinstance(item.error, AdmissionRejectedError) for item in shed):
            failures += 1
            print("FAIL[queue]: shed requests did not report AdmissionRejectedError")
        # Drained queue: serial requests admit one at a time, so none can be
        # shed, and each must reproduce the unbounded batch bit-for-bit.
        recovered_prints = [
            fingerprint(service.acquire(request, seed=request_seed(0, index)))
            for index, request in enumerate(requests)
        ]
        rejected = service.metrics()["queue"]["rejected"]
    if recovered_prints != reference_prints:
        failures += 1
        print("MISMATCH[queue]: post-saturation requests differ from unbounded batch")
    if rejected != len(requests):
        failures += 1
        print(f"FAIL[queue]: expected {len(requests)} rejections, counted {rejected}")

    if not failures:
        print(
            f"OK[queue]: block policy bit-identical under depth 1; reject policy "
            f"shed {len(requests)} and recovered bit-identically"
        )
    return failures


def check_wfq(workload, requests, reference_prints) -> int:
    """The QoS smoke (``--wfq``): WFQ bit-identity and deadline shedding."""
    from repro.exceptions import DeadlineExceededError

    failures = 0
    ladder = [("goldie", "gold"), ("silvia", "silver"), ("bronn", "bronze")]
    tiered = [
        AcquisitionRequest(
            source_attributes=list(request.source_attributes),
            target_attributes=list(request.target_attributes),
            budget=request.budget,
            shopper=ladder[index % len(ladder)][0],
            tier=ladder[index % len(ladder)][1],
        )
        for index, request in enumerate(requests)
    ]
    config = DanceConfig(
        sampling_rate=SAMPLING_RATE,
        mcmc=MCMCConfig(iterations=ITERATIONS, seed=0),
        service=ServiceConfig(max_batch_workers=BATCH_WORKERS, qos=True),
    )

    # Contended mixed-tier batch: three shoppers on three tiers fight for the
    # scheduler's single execution slot.  WFQ may reorder the grants any way
    # it likes — the served bytes must match the serial single-FIFO reference
    # exactly, because seeds and positions follow the request index.
    with AcquisitionService(build_marketplace(workload), config) as service:
        shaped = service.acquire_batch(tiered)
        qos = service.metrics()["qos"]
    if not shaped.ok:
        failures += 1
        print("FAIL[wfq]: contended mixed-tier batch reported errors")
    elif [fingerprint(item.result) for item in shaped] != reference_prints:
        failures += 1
        print("MISMATCH[wfq]: WFQ-scheduled batch differs from the serial reference")
    if not qos["enabled"]:
        failures += 1
        print("FAIL[wfq]: the metrics payload does not report QoS enabled")
    granted = {name: stats["requests"] for name, stats in qos["tiers"].items()}
    expected = {}
    for index in range(len(tiered)):
        tier = ladder[index % len(ladder)][1]
        expected[tier] = expected.get(tier, 0) + 1
    for name in granted:
        if granted.get(name, 0) != expected.get(name, 0):
            failures += 1
            print(f"FAIL[wfq]: per-tier grant counters {granted} != {expected}")
            break

    # Deadline shedding: a batch whose deadlines are already expired at
    # dequeue is shed whole with DeadlineExceededError (no request ever
    # burns a slot), and the service recovers bit-identically afterwards.
    expired = [
        AcquisitionRequest(
            source_attributes=list(request.source_attributes),
            target_attributes=list(request.target_attributes),
            budget=request.budget,
            shopper=f"hurried-{index}",
            deadline=0.0,
        )
        for index, request in enumerate(requests)
    ]
    with AcquisitionService(build_marketplace(workload), config) as service:
        shed = service.acquire_batch(expired)
        if shed.ok or any(item.ok for item in shed):
            failures += 1
            print("FAIL[wfq]: expired-deadline batch served requests")
        if not all(isinstance(item.error, DeadlineExceededError) for item in shed):
            failures += 1
            print("FAIL[wfq]: shed requests did not report DeadlineExceededError")
        recovered_prints = [
            fingerprint(service.acquire(request, seed=request_seed(0, index)))
            for index, request in enumerate(requests)
        ]
        deadline_exceeded = service.metrics()["qos"]["deadline_exceeded"]
    if recovered_prints != reference_prints:
        failures += 1
        print("MISMATCH[wfq]: post-shed requests differ from the serial reference")
    if deadline_exceeded != len(requests):
        failures += 1
        print(
            f"FAIL[wfq]: expected {len(requests)} deadline sheds, "
            f"counted {deadline_exceeded}"
        )

    if not failures:
        print(
            f"OK[wfq]: contended 3-tier WFQ batch bit-identical to serial "
            f"reference (grants {granted}); {len(requests)} deadline sheds "
            f"recovered bit-identically"
        )
    return failures


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--queue",
        action="store_true",
        help="additionally run the admission-saturation smoke (block + reject policies)",
    )
    parser.add_argument(
        "--wfq",
        action="store_true",
        help="additionally run the QoS smoke (WFQ bit-identity + deadline sheds)",
    )
    parser.add_argument(
        "--plan",
        default=None,
        help="serve the batch under this ExecutionPlan spec (e.g. "
        "'executor=process,chains=3,shared_store=on'); the serial replay "
        "keeps the same chain count, so the contract stays (seed, chains)",
    )
    args = parser.parse_args()

    workload = tpch_workload(scale=SCALE, seed=0)
    requests = [
        AcquisitionRequest(
            source_attributes=list(query.source_attributes),
            target_attributes=list(query.target_attributes),
            budget=BUDGET,
        )
        for query in queries_for(workload).values()
    ]
    config = DanceConfig(
        sampling_rate=SAMPLING_RATE,
        mcmc=MCMCConfig(iterations=ITERATIONS, seed=0),
        plan=args.plan,
        service=ServiceConfig(max_batch_workers=BATCH_WORKERS),
    )

    with AcquisitionService(build_marketplace(workload), config) as service:
        cold = service.acquire_batch(requests)
        warm = service.acquire_batch(requests)
        step1 = service.metrics()["step1_memo"]
    if not cold.ok:
        print(f"FAIL: batch reported errors: {[str(i.error) for i in cold.errors()]}")
        return 1
    cold_prints = [fingerprint(item.result) for item in cold]
    warm_prints = [fingerprint(item.result) for item in warm]

    # The serial replay keeps the served plan's chain count but runs every
    # chain in-process: the contract is (seed, chains), never the executor.
    serial_config = DanceConfig(
        sampling_rate=SAMPLING_RATE,
        mcmc=MCMCConfig(
            iterations=ITERATIONS, seed=0, chains=config.mcmc.chains, executor="serial"
        ),
        service=ServiceConfig(max_batch_workers=BATCH_WORKERS),
    )
    dance = DANCE(build_marketplace(workload), serial_config)
    dance.build_offline()
    serial_prints = []
    for index, request in enumerate(requests):
        runtime = SearchRuntime(mcmc_seed=request_seed(0, index))
        serial_prints.append(fingerprint(dance.acquire(request, runtime=runtime)))

    failures = 0
    for index, (batch_fp, serial_fp) in enumerate(zip(cold_prints, serial_prints)):
        if batch_fp != serial_fp:
            failures += 1
            print(f"MISMATCH request {index}: batch {batch_fp} != serial {serial_fp}")
    if warm_prints != cold_prints:
        failures += 1
        print("MISMATCH: warm batch differs from cold batch")
    if step1["hits"] < len(requests):
        failures += 1
        print(
            f"FAIL: warm repeat did not hit the Step-1 memo "
            f"(expected >= {len(requests)} hits, got {step1})"
        )

    if args.queue:
        failures += check_queue(workload, requests, cold_prints)
    if args.wfq:
        failures += check_wfq(workload, requests, cold_prints)

    if failures:
        print(f"\n{failures} service-parity failure(s)")
        return 1
    correlations = [fp[2] for fp in cold_prints]
    print(
        f"OK: batch of {len(requests)} (x{BATCH_WORKERS} workers, warm repeat) "
        f"bit-identical to serial DANCE.acquire: correlations={correlations}; "
        f"step1 memo hits={step1['hits']}"
    )
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
