"""Tests for the long-lived acquisition service (``repro.service``).

The contracts under test: a served request is bit-identical to a one-shot
``DANCE.acquire`` with the same seed; warm repeats are served from the shared
caches; session state is invalidated exactly when the join graph changes; and
failures stay per-request.
"""

from __future__ import annotations

import pytest

from repro.core.config import DanceConfig, ServiceConfig
from repro.core.dance import DANCE
from repro.exceptions import InfeasibleAcquisitionError, ReproError
from repro.marketplace.dataset import MarketplaceDataset
from repro.marketplace.market import Marketplace
from repro.marketplace.shopper import AcquisitionRequest
from repro.pricing.models import EntropyPricingModel
from repro.relational.table import Table
from repro.search.chains import chain_seed
from repro.search.mcmc import MCMCConfig
from repro.service import AcquisitionService, request_seed


def small_marketplace() -> Marketplace:
    pricing = EntropyPricingModel()
    marketplace = Marketplace(default_pricing=pricing)
    facts = Table.from_rows(
        "facts",
        ["good_key", "bad_key", "measure"],
        [(i % 10, i % 3, float(i % 8) * 10 + i % 3) for i in range(64)],
    )
    dims = Table.from_rows(
        "dims",
        ["good_key", "bad_key", "label"],
        [(i, i % 2, f"lbl{i}") for i in range(8)],
    )
    extra = Table.from_rows(
        "extra",
        ["bad_key", "bonus"],
        [(i % 3, float(i)) for i in range(12)],
    )
    for table in (facts, dims, extra):
        marketplace.host(MarketplaceDataset(table=table, pricing=pricing))
    return marketplace


def config(**service_kwargs) -> DanceConfig:
    return DanceConfig(
        sampling_rate=1.0,
        mcmc=MCMCConfig(iterations=40, seed=0),
        service=ServiceConfig(**service_kwargs),
    )


REQUEST = AcquisitionRequest(
    source_attributes=["measure"], target_attributes=["label"], budget=1e9
)


class TestRequestSeed:
    def test_request_zero_keeps_base_seed(self):
        assert request_seed(7, 0) == 7

    def test_same_recipe_as_chain_seeds(self):
        assert request_seed(7, 3) == chain_seed(7, 3)

    def test_distinct_across_indices(self):
        seeds = [request_seed(0, index) for index in range(32)]
        assert len(set(seeds)) == len(seeds)


class TestSingleRequest:
    def test_matches_one_shot_dance_with_same_seed(self):
        with AcquisitionService(small_marketplace(), config()) as service:
            served = service.acquire(REQUEST)
        dance = DANCE(small_marketplace(), config())
        dance.build_offline()
        one_shot = dance.acquire(REQUEST)
        assert served.estimated_correlation == one_shot.estimated_correlation
        assert served.sql() == one_shot.sql()

    def test_warm_repeat_hits_the_shared_caches(self):
        with AcquisitionService(small_marketplace(), config()) as service:
            cold = service.acquire(REQUEST)
            assert cold.mcmc_cache_hit_rate < 1.0
            warm = service.acquire(REQUEST)
            assert warm.mcmc_cache_hit_rate == 1.0
            assert warm.estimated_correlation == cold.estimated_correlation
            assert warm.sql() == cold.sql()

    def test_seed_override_is_deterministic(self):
        with AcquisitionService(small_marketplace(), config()) as service:
            other = service.acquire(REQUEST, seed=request_seed(0, 5))
            again = service.acquire(REQUEST, seed=request_seed(0, 5))
        assert other.estimated_correlation == again.estimated_correlation
        assert other.sql() == again.sql()

    def test_share_caches_off_still_deterministic(self):
        with AcquisitionService(
            small_marketplace(), config(share_caches=False)
        ) as service:
            first = service.acquire(REQUEST)
            second = service.acquire(REQUEST)
        assert first.estimated_correlation == second.estimated_correlation


class TestBatch:
    def test_batch_results_in_request_order_with_derived_seeds(self):
        requests = [REQUEST, REQUEST.with_budget(1e8), REQUEST]
        with AcquisitionService(small_marketplace(), config()) as service:
            batch = service.acquire_batch(requests)
        assert [item.index for item in batch] == [0, 1, 2]
        assert [item.seed for item in batch] == [request_seed(0, i) for i in range(3)]
        assert batch.ok
        assert all(item.elapsed_seconds >= 0.0 for item in batch)

    def test_empty_batch(self):
        with AcquisitionService(small_marketplace(), config()) as service:
            batch = service.acquire_batch([])
        assert len(batch) == 0
        assert batch.ok

    def test_failures_stay_per_request(self):
        bad = AcquisitionRequest(
            source_attributes=["measure"],
            target_attributes=["no_such_attribute"],
            budget=1e9,
        )
        with AcquisitionService(small_marketplace(), config()) as service:
            batch = service.acquire_batch([REQUEST, bad, REQUEST])
        assert batch[0].ok and batch[2].ok
        assert not batch[1].ok
        assert isinstance(batch[1].error, InfeasibleAcquisitionError)
        assert not batch.ok
        assert [item.index for item in batch.errors()] == [1]
        with pytest.raises(InfeasibleAcquisitionError):
            batch[1].require_result()

    def test_explicit_seeds_override_derivation(self):
        with AcquisitionService(small_marketplace(), config()) as service:
            batch = service.acquire_batch([REQUEST, REQUEST], seeds=[11, 11])
            assert (
                batch[0].result.estimated_correlation
                == batch[1].result.estimated_correlation
            )
            with pytest.raises(ReproError):
                service.acquire_batch([REQUEST], seeds=[1, 2])

    def test_summary_is_json_friendly(self):
        import json

        with AcquisitionService(small_marketplace(), config()) as service:
            batch = service.acquire_batch([REQUEST])
        payload = json.dumps(batch.summary(), default=str)
        assert "estimated_correlation" in payload


class TestSessionLifecycle:
    def test_refinement_is_disabled_for_served_requests(self):
        """An infeasible request must error, not mutate the shared session."""
        impossible = AcquisitionRequest(
            source_attributes=["measure"], target_attributes=["label"], budget=0.0
        )
        marketplace = small_marketplace()
        with AcquisitionService(marketplace, config()) as service:
            cost_before = service.dance.sample_cost
            batch = service.acquire_batch([impossible])
            assert not batch[0].ok
            assert service.dance.sample_cost == cost_before

    def test_register_source_tables_refreshes_incrementally(self):
        with AcquisitionService(small_marketplace(), config()) as service:
            service.acquire(REQUEST)
            graph = service.join_graph
            source = Table.from_rows(
                "myshop", ["bad_key", "score"], [(i % 3, i) for i in range(9)]
            )
            summary = service.register_source_tables([source])
            assert summary["mode"] == "incremental"
            assert service.join_graph is graph  # updated in place, not rebuilt
            touching = [
                edge
                for edge in service.join_graph.edges()
                if "myshop" in (edge.left, edge.right)
            ]
            assert summary["edge_recomputes"] == len(touching)
            # The new source participates in subsequent requests.
            widened = AcquisitionRequest(
                source_attributes=["score"], target_attributes=["label"], budget=1e9
            )
            assert service.acquire(widened).estimated_correlation is not None

    def test_graph_change_resets_session_caches(self):
        with AcquisitionService(small_marketplace(), config()) as service:
            service.acquire(REQUEST)
            assert service.describe()["evaluation_cache_entries"] > 0
            service.rebuild_offline(sampling_rate=1.0)
            description = service.describe()
            assert description["evaluation_cache_entries"] == 0
            assert description["cache_resets"] == 1
            # And the service still serves correctly after the reset.
            assert service.acquire(REQUEST).mcmc_cache_hit_rate < 1.0

    def test_close_is_idempotent_and_final(self):
        service = AcquisitionService(small_marketplace(), config())
        service.acquire(REQUEST)
        service.close()
        service.close()
        with pytest.raises(ReproError):
            service.acquire(REQUEST)
        with pytest.raises(ReproError):
            service.acquire_batch([REQUEST])

    def test_deferred_offline_phase_builds_on_first_request(self):
        service = AcquisitionService(
            small_marketplace(), config(), build_offline=False
        )
        try:
            result = service.acquire(REQUEST)
            assert result.estimated_correlation == pytest.approx(
                result.estimated_correlation
            )
        finally:
            service.close()

    def test_describe_counts_requests(self):
        with AcquisitionService(small_marketplace(), config()) as service:
            service.acquire(REQUEST)
            service.acquire_batch([REQUEST, REQUEST])
            description = service.describe()
        assert description["requests_served"] == 3
        assert description["batches_served"] == 1
        assert description["errors"] == 0
        assert description["ji_cache_entries"] > 0


class TestRequireResultIsolation:
    def test_raises_fresh_exception_chained_to_original(self):
        bad = AcquisitionRequest(
            source_attributes=["measure"],
            target_attributes=["no_such_attribute"],
            budget=1e9,
        )
        with AcquisitionService(small_marketplace(), config()) as service:
            batch = service.acquire_batch([bad])
        item = batch[0]
        traceback_before = item.error.__traceback__
        raised = []
        for _ in range(2):
            with pytest.raises(InfeasibleAcquisitionError) as excinfo:
                item.require_result()
            raised.append(excinfo.value)
        # Fresh instance per call — never the stored object, whose traceback
        # two callers across threads would otherwise race on.
        assert raised[0] is not item.error
        assert raised[1] is not item.error
        assert raised[0] is not raised[1]
        assert raised[0].__cause__ is item.error
        assert str(raised[0]) == str(item.error)
        # The stored original's traceback is untouched by the re-raises.
        assert item.error.__traceback__ is traceback_before

    def test_no_result_no_error_still_repro_error(self):
        from repro.service import ServedRequest

        item = ServedRequest(index=3, request=REQUEST, seed=0)
        with pytest.raises(ReproError, match="request 3 produced no result"):
            item.require_result()


class TestInFlightGauge:
    def test_in_flight_visible_during_a_request(self):
        with AcquisitionService(small_marketplace(), config()) as service:
            seen: list[int] = []
            original = service._dance.acquire

            def spy(request, *, runtime=None):
                seen.append(service.describe()["in_flight"])
                return original(request, runtime=runtime)

            service._dance.acquire = spy
            service.acquire(REQUEST)
        assert seen == [1]
        assert service.describe()["in_flight"] == 0

    def test_in_flight_decrements_on_failure(self):
        bad = AcquisitionRequest(
            source_attributes=["measure"],
            target_attributes=["no_such_attribute"],
            budget=1e9,
        )
        with AcquisitionService(small_marketplace(), config()) as service:
            service.acquire_batch([bad])
            assert service.describe()["in_flight"] == 0


class TestStep1Memo:
    def count_step1_calls(self, monkeypatch):
        import repro.search.acquisition as acquisition_module

        calls = []
        original = acquisition_module.minimal_weight_igraphs

        def counting(*args, **kwargs):
            calls.append(1)
            return original(*args, **kwargs)

        monkeypatch.setattr(acquisition_module, "minimal_weight_igraphs", counting)
        return calls

    def test_warm_request_skips_step1(self, monkeypatch):
        calls = self.count_step1_calls(monkeypatch)
        with AcquisitionService(small_marketplace(), config()) as service:
            cold = service.acquire(REQUEST)
            after_cold = len(calls)
            warm = service.acquire(REQUEST)
            assert len(calls) == after_cold  # Step 1 never re-ran
            assert warm.estimated_correlation == cold.estimated_correlation
            assert warm.sql() == cold.sql()
            memo = service.metrics()["step1_memo"]
            assert memo["enabled"] is True
            assert memo["hits"] >= 1

    def test_memo_disabled_reruns_step1_with_identical_results(self, monkeypatch):
        calls = self.count_step1_calls(monkeypatch)
        with AcquisitionService(
            small_marketplace(), config(step1_memo=False)
        ) as service:
            cold = service.acquire(REQUEST)
            after_cold = len(calls)
            warm = service.acquire(REQUEST)
            assert len(calls) > after_cold  # no memo: Step 1 re-ran
            assert warm.estimated_correlation == cold.estimated_correlation
            assert service.metrics()["step1_memo"] == {"enabled": False}

    def test_memo_invalidated_by_register_source_tables(self, monkeypatch):
        calls = self.count_step1_calls(monkeypatch)
        with AcquisitionService(small_marketplace(), config()) as service:
            service.acquire(REQUEST)
            entries_before = service.describe()["step1_memo_entries"]
            assert entries_before >= 1
            source = Table.from_rows(
                "myshop", ["bad_key", "score"], [(i % 3, i) for i in range(9)]
            )
            summary = service.register_source_tables([source])
            assert summary["mode"] == "incremental"  # graph_version bumped
            assert service.describe()["step1_memo_entries"] == 0
            before_retry = len(calls)
            service.acquire(REQUEST)
            assert len(calls) > before_retry  # memo was dropped: Step 1 re-ran

    def test_memo_invalidated_by_rebuild_offline(self):
        with AcquisitionService(small_marketplace(), config()) as service:
            service.acquire(REQUEST)
            assert service.describe()["step1_memo_entries"] >= 1
            service.rebuild_offline(sampling_rate=1.0)
            assert service.describe()["step1_memo_entries"] == 0
            # And the service still serves identically-seeded requests.
            assert service.acquire(REQUEST).estimated_correlation is not None


class TestServiceConfigValidation:
    def test_rejects_bad_batch_workers(self):
        with pytest.raises(ReproError):
            ServiceConfig(max_batch_workers=0)

    def test_rejects_bad_chain_pool_workers(self):
        with pytest.raises(ReproError):
            ServiceConfig(chain_pool_workers=0)

    def test_rejects_bad_stripes(self):
        with pytest.raises(ReproError):
            ServiceConfig(cache_stripes=0)

    def test_rejects_bad_queue_depth(self):
        with pytest.raises(ReproError):
            ServiceConfig(max_queue_depth=0)

    def test_rejects_unknown_admission_policy(self):
        with pytest.raises(ReproError):
            ServiceConfig(admission="fifo")

    def test_rejects_bad_metrics_window(self):
        with pytest.raises(ReproError):
            ServiceConfig(metrics_window=0)

    def test_service_seed_defaults_to_mcmc_seed(self):
        marketplace = small_marketplace()
        with AcquisitionService(
            marketplace, DanceConfig(sampling_rate=1.0, mcmc=MCMCConfig(seed=123))
        ) as service:
            assert service.seed == 123


class TestExecutionPlanPooling:
    """PR 8: the plan drives the session pool; shared-store pools survive
    catalog updates; a no-op refresh tears nothing down."""

    def plan_config(self, plan: str) -> DanceConfig:
        return DanceConfig(
            sampling_rate=1.0, mcmc=MCMCConfig(iterations=40, seed=0), plan=plan
        )

    def test_noop_refresh_keeps_pool_and_caches(self):
        source = Table.from_rows(
            "myshop", ["bad_key", "score"], [(i % 3, i) for i in range(9)]
        )
        with AcquisitionService(
            small_marketplace(),
            self.plan_config("executor=thread,chains=2"),
            source_tables=[source],
        ) as service:
            service.acquire(REQUEST)
            pool = service._chain_pool
            assert pool is not None
            version = service.dance.graph_version
            entries = service.describe()["evaluation_cache_entries"]
            assert entries > 0
            summary = service.register_source_tables([source])
            assert summary["mode"] == "noop"
            assert summary["edge_recomputes"] == 0
            assert service.dance.graph_version == version
            assert service._chain_pool is pool
            assert service.describe()["evaluation_cache_entries"] == entries
            assert service.describe()["cache_resets"] == 0

    def test_shared_pool_survives_register_delta_with_zero_resyncs(self):
        plan = "executor=process,chains=3"
        source = Table.from_rows(
            "myshop", ["bad_key", "score"], [(i % 3, i) for i in range(9)]
        )
        outcomes = []
        for spec in ("executor=serial,chains=3", plan):
            with AcquisitionService(
                small_marketplace(), self.plan_config(spec)
            ) as service:
                first = service.acquire(REQUEST)
                pool = service._chain_pool
                summary = service.register_source_tables([source])
                assert summary["mode"] == "incremental"
                second = service.acquire(REQUEST)
                description = service.describe()
                outcomes.append((first, second))
                if spec == plan:
                    # The warm pool survived the delta: same executor object,
                    # one delta published, zero full resyncs anywhere.
                    assert service._chain_pool is pool
                    store = description["shared_store"]
                    assert store is not None
                    assert store["deltas_published"] == 1
                    assert store["rebases"] == 0
                    assert store["worker_resyncs"] == 0
        (serial_first, serial_second), (shm_first, shm_second) = outcomes
        assert shm_first.mcmc_chain_correlations == serial_first.mcmc_chain_correlations
        assert shm_second.mcmc_chain_correlations == serial_second.mcmc_chain_correlations
        assert shm_first.sql() == serial_first.sql()
        assert shm_second.sql() == serial_second.sql()

    def test_per_call_policy_builds_no_persistent_pool(self):
        plan = "executor=thread,chains=2,pool_policy=per_call"
        with AcquisitionService(small_marketplace(), self.plan_config(plan)) as service:
            per_call = service.acquire(REQUEST)
            assert service._chain_pool is None
            assert service.describe()["chain_pool"] is None
        with AcquisitionService(
            small_marketplace(), self.plan_config("executor=thread,chains=2")
        ) as service:
            pooled = service.acquire(REQUEST)
            assert service._chain_pool is not None
        assert per_call.mcmc_chain_correlations == pooled.mcmc_chain_correlations

    def test_shared_store_segments_unlink_on_close(self):
        from repro.search.shm import live_segments

        service = AcquisitionService(
            small_marketplace(), self.plan_config("executor=process,chains=2")
        )
        try:
            service.acquire(REQUEST)
            assert service.describe()["shared_store"] is not None
            assert live_segments() != []
        finally:
            service.close()
        assert live_segments() == []
