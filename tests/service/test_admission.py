"""Tests for the service traffic layer: bounded admission and shopper fairness.

The contracts: admission decides whether/when a request runs, never what it
computes (served results stay bit-identical to the unbounded service); a full
queue blocks or rejects per policy; batch submission interleaves shoppers
round-robin while seeds and result positions follow the original index.
"""

from __future__ import annotations

import threading
import time

import pytest

from repro.core.config import DanceConfig, ServiceConfig
from repro.exceptions import AdmissionRejectedError, ReproError
from repro.marketplace.dataset import MarketplaceDataset
from repro.marketplace.market import Marketplace
from repro.marketplace.shopper import AcquisitionRequest
from repro.pricing.models import EntropyPricingModel
from repro.relational.table import Table
from repro.search.mcmc import MCMCConfig
from repro.service import AcquisitionService, AdmissionQueue, fair_order, request_seed


def small_marketplace() -> Marketplace:
    pricing = EntropyPricingModel()
    marketplace = Marketplace(default_pricing=pricing)
    facts = Table.from_rows(
        "facts",
        ["good_key", "bad_key", "measure"],
        [(i % 10, i % 3, float(i % 8) * 10 + i % 3) for i in range(64)],
    )
    dims = Table.from_rows(
        "dims",
        ["good_key", "bad_key", "label"],
        [(i, i % 2, f"lbl{i}") for i in range(8)],
    )
    for table in (facts, dims):
        marketplace.host(MarketplaceDataset(table=table, pricing=pricing))
    return marketplace


def config(**service_kwargs) -> DanceConfig:
    return DanceConfig(
        sampling_rate=1.0,
        mcmc=MCMCConfig(iterations=30, seed=0),
        service=ServiceConfig(**service_kwargs),
    )


REQUEST = AcquisitionRequest(
    source_attributes=["measure"], target_attributes=["label"], budget=1e9
)


def shopper_request(name: str) -> AcquisitionRequest:
    return AcquisitionRequest(
        source_attributes=["measure"],
        target_attributes=["label"],
        budget=1e9,
        shopper=name,
    )


class TestFairOrder:
    def test_round_robin_across_shoppers(self):
        assert fair_order(["a", "a", "a", "b", "b"]) == [0, 3, 1, 4, 2]

    def test_rotation_follows_first_appearance(self):
        assert fair_order(["b", "a", "b", "a"]) == [0, 1, 2, 3]
        assert fair_order(["a", "b", "b", "b"]) == [0, 1, 2, 3]
        assert fair_order(["b", "b", "b", "a"]) == [0, 3, 1, 2]

    def test_single_or_no_shopper_keeps_order(self):
        assert fair_order([None, None, None]) == [0, 1, 2]
        assert fair_order(["a", "a"]) == [0, 1]
        assert fair_order([]) == []

    def test_none_is_its_own_group(self):
        assert fair_order(["a", None, "a", None]) == [0, 1, 2, 3]

    def test_permutation(self):
        shoppers = ["a", "b", "c", "a", "b", "a", None, "c"]
        order = fair_order(shoppers)
        assert sorted(order) == list(range(len(shoppers)))


class TestAdmissionQueue:
    def test_unbounded_admits_everything(self):
        queue = AdmissionQueue(None, "reject")
        assert all(queue.admit() for _ in range(100))
        snapshot = queue.snapshot()
        assert snapshot["admitted"] == 100
        assert snapshot["rejected"] == 0
        assert snapshot["peak_depth"] == 100

    def test_reject_policy_sheds_at_depth(self):
        queue = AdmissionQueue(2, "reject")
        assert queue.admit() and queue.admit()
        assert not queue.admit()
        queue.release()
        assert queue.admit()
        snapshot = queue.snapshot()
        assert snapshot["rejected"] == 1
        assert snapshot["admitted"] == 3
        assert snapshot["depth"] == 2

    def test_block_policy_waits_for_release(self):
        queue = AdmissionQueue(1, "block")
        assert queue.admit()
        admitted = threading.Event()

        def blocked_admit():
            queue.admit()
            admitted.set()

        thread = threading.Thread(target=blocked_admit, daemon=True)
        thread.start()
        assert not admitted.wait(0.05)  # still blocked while the slot is held
        queue.release()
        assert admitted.wait(2.0)
        thread.join(2.0)
        assert queue.snapshot()["blocked_seconds"] > 0.0

    def test_release_without_admit_rejected(self):
        with pytest.raises(ReproError):
            AdmissionQueue(1, "block").release()

    def test_invalid_parameters(self):
        with pytest.raises(ReproError):
            AdmissionQueue(0, "block")
        with pytest.raises(ReproError):
            AdmissionQueue(1, "fifo")


class TestServiceAdmission:
    def test_reject_policy_raises_on_single_acquire(self):
        with AcquisitionService(
            small_marketplace(), config(max_queue_depth=1, admission="reject")
        ) as service:
            service._admission.admit()  # saturate the only slot
            try:
                with pytest.raises(AdmissionRejectedError):
                    service.acquire(REQUEST)
            finally:
                service._admission.release()
            # Draining the queue restores service.
            assert service.acquire(REQUEST).estimated_correlation is not None

    def test_reject_policy_sheds_batch_items(self):
        with AcquisitionService(
            small_marketplace(), config(max_queue_depth=1, admission="reject")
        ) as service:
            service._admission.admit()
            try:
                batch = service.acquire_batch([REQUEST, REQUEST])
            finally:
                service._admission.release()
            assert not batch.ok
            assert all(
                isinstance(item.error, AdmissionRejectedError) for item in batch
            )
            # Rejected items keep their index-derived seed and position.
            assert [item.index for item in batch] == [0, 1]
            assert [item.seed for item in batch] == [request_seed(0, i) for i in range(2)]
            assert service.metrics()["queue"]["rejected"] == 2
            # Rejections never executed: they count only in the queue, not
            # as served requests or search errors.
            description = service.describe()
            assert description["requests_served"] == 0
            assert description["errors"] == 0

    def test_bounded_block_batch_is_bit_identical_to_unbounded(self):
        requests = [REQUEST, REQUEST.with_budget(1e8), REQUEST]
        with AcquisitionService(small_marketplace(), config()) as service:
            unbounded = service.acquire_batch(requests)
        with AcquisitionService(
            small_marketplace(), config(max_queue_depth=1, admission="block")
        ) as service:
            bounded = service.acquire_batch(requests)
            queue = service.metrics()["queue"]
        assert bounded.ok and unbounded.ok
        for lhs, rhs in zip(bounded, unbounded):
            assert lhs.result.estimated_correlation == rhs.result.estimated_correlation
            assert lhs.result.sql() == rhs.result.sql()
        assert queue["rejected"] == 0
        assert queue["admitted"] == len(requests)
        assert queue["peak_depth"] <= 1

    def test_queue_counters_track_serving(self):
        with AcquisitionService(
            small_marketplace(), config(max_queue_depth=8)
        ) as service:
            service.acquire(REQUEST)
            service.acquire_batch([REQUEST, REQUEST])
            queue = service.metrics()["queue"]
        assert queue["admitted"] == 3
        assert queue["depth"] == 0
        assert queue["max_depth"] == 8
        assert queue["policy"] == "block"


class TestBatchFairness:
    def test_submission_order_interleaves_shoppers(self):
        requests = [
            shopper_request("alice"),
            shopper_request("alice"),
            shopper_request("alice"),
            shopper_request("bob"),
            shopper_request("bob"),
        ]
        served_order: list[int] = []
        with AcquisitionService(
            small_marketplace(), config(max_batch_workers=1)
        ) as service:
            original = service._serve_item

            def spy(request, *, index, seed, **kwargs):
                served_order.append(index)
                return original(request, index=index, seed=seed, **kwargs)

            service._serve_item = spy
            batch = service.acquire_batch(requests)
        assert served_order == [0, 3, 1, 4, 2]
        # Fairness only permutes submission: results sit at their request
        # position with their index-derived seed.
        assert [item.index for item in batch] == [0, 1, 2, 3, 4]
        assert [item.seed for item in batch] == [request_seed(0, i) for i in range(5)]

    def test_fairness_does_not_change_results(self):
        anonymous = [REQUEST, REQUEST.with_budget(1e8), REQUEST]
        mixed = [
            shopper_request("alice"),
            shopper_request("alice").with_budget(1e8),
            shopper_request("bob"),
        ]
        with AcquisitionService(small_marketplace(), config()) as service:
            plain = service.acquire_batch(anonymous)
        with AcquisitionService(small_marketplace(), config()) as service:
            fair = service.acquire_batch(mixed)
        for lhs, rhs in zip(plain, fair):
            assert lhs.result.estimated_correlation == rhs.result.estimated_correlation
            assert lhs.result.sql() == rhs.result.sql()

    def test_shopper_survives_with_budget_and_summary(self):
        request = shopper_request("alice").with_budget(5.0)
        assert request.shopper == "alice"
        with AcquisitionService(small_marketplace(), config()) as service:
            batch = service.acquire_batch([shopper_request("alice")])
        assert batch[0].summary()["shopper"] == "alice"


class TestBlockingBackpressure:
    def test_blocked_acquire_completes_after_release(self):
        with AcquisitionService(
            small_marketplace(), config(max_queue_depth=1, admission="block")
        ) as service:
            service._admission.admit()
            results: list[object] = []

            def blocked_request():
                results.append(service.acquire(REQUEST))

            thread = threading.Thread(target=blocked_request, daemon=True)
            thread.start()
            time.sleep(0.05)
            assert not results  # back-pressured while the slot is held
            service._admission.release()
            thread.join(10.0)
            assert len(results) == 1
            assert service.metrics()["queue"]["blocked_seconds"] > 0.0
