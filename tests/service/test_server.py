"""Serve-tier unit tests: Prometheus rendering, error mapping, lifecycle.

The ``/metrics`` surface is pinned two ways: a golden file rendered from a
handcrafted deterministic payload (every field exercised with a distinct
value), and a coverage walk asserting every leaf of a *real* ``metrics()``
payload maps to a well-formed Prometheus metric in
:data:`repro.service.server.FIELD_METRICS` — so a new ServiceMetrics field
cannot silently vanish from the endpoint.
"""

from __future__ import annotations

import json
import re
import urllib.error
import urllib.request
from pathlib import Path

import pytest

from repro.core.config import DanceConfig, ServiceConfig
from repro.exceptions import (
    AdmissionRejectedError,
    DeadlineExceededError,
    InfeasibleAcquisitionError,
    NoOwnedCandidatesError,
    RateLimitedError,
    ReproError,
    SearchError,
    StorageError,
)
from repro.marketplace.dataset import MarketplaceDataset
from repro.marketplace.market import Marketplace
from repro.pricing.models import EntropyPricingModel
from repro.pricing.sla import DEFAULT_TIERS, SlaTier
from repro.relational.table import Table
from repro.search.mcmc import MCMCConfig
from repro.service import AcquisitionService, ShardRouter
from repro.service.metrics import BUCKET_BOUNDS
from repro.service.qos import QosConfig
from repro.service.server import (
    FIELD_METRICS,
    PROMETHEUS_CONTENT_TYPE,
    AcquisitionHTTPServer,
    error_body,
    error_status,
    render_prometheus,
    request_from_spec,
    retry_after_header,
)

GOLDEN_PATH = Path(__file__).parent / "data" / "metrics_golden.prom"

#: Every field gets a distinct, float-exact value so a swapped pair of
#: metrics cannot render the same golden file.
GOLDEN_PAYLOAD = {
    "requests": 7,
    "errors": 1,
    "latency": {
        "count": 7,
        "mean_seconds": 0.5,
        "max_seconds": 2.0,
        "window_size": 6,
        "buckets": {
            label: count
            for label, count in zip(
                [f"<={bound:g}s" for bound in BUCKET_BOUNDS] + [">10s"],
                [1, 1, 1, 0, 1, 0, 1, 0, 0, 0, 1, 0, 0, 1],
            )
        },
        "p50_seconds": 0.25,
        "p95_seconds": 1.5,
        "p99_seconds": 1.75,
    },
    "queue_wait": {
        "count": 5,
        "mean_seconds": 0.1,
        "max_seconds": 0.75,
        "window_size": 4,
        "buckets": {
            label: count
            for label, count in zip(
                [f"<={bound:g}s" for bound in BUCKET_BOUNDS] + [">10s"],
                [2, 1, 0, 1, 0, 0, 0, 1, 0, 0, 0, 0, 0, 0],
            )
        },
        "p50_seconds": 0.05,
        "p95_seconds": 0.4,
        "p99_seconds": 0.45,
    },
    "execution": {
        "count": 6,
        "mean_seconds": 0.3,
        "max_seconds": 1.25,
        "window_size": 3,
        "buckets": {
            label: count
            for label, count in zip(
                [f"<={bound:g}s" for bound in BUCKET_BOUNDS] + [">10s"],
                [1, 0, 2, 0, 0, 1, 0, 1, 0, 1, 0, 0, 0, 0],
            )
        },
        "p50_seconds": 0.2,
        "p95_seconds": 1.0625,
        "p99_seconds": 1.125,
    },
    "cache_hit_rate": {
        "window_size": 5,
        "window_mean": 0.5,
        "older_half_mean": 0.25,
        "newer_half_mean": 0.75,
        "trend": 0.5,
    },
    "in_flight": 2,
    "queue": {
        "max_depth": 4,
        "policy": "reject",
        "depth": 1,
        "peak_depth": 3,
        "admitted": 9,
        "rejected": 2,
        "blocked_seconds": 0.125,
    },
    "qos": {
        "enabled": True,
        "slots": 3,
        "rate_limited": 4,
        "deadline_exceeded": 2,
        "tiers": {
            "bronze": {
                "weight": 1.0,
                "requests": 5,
                "rate_limited": 3,
                "deadline_exceeded": 2,
                "queue_wait": {
                    "count": 5,
                    "mean_seconds": 0.2,
                    "max_seconds": 0.625,
                    "window_size": 5,
                    "buckets": {
                        label: count
                        for label, count in zip(
                            [f"<={bound:g}s" for bound in BUCKET_BOUNDS] + [">10s"],
                            [1, 1, 0, 1, 0, 1, 0, 1, 0, 0, 0, 0, 0, 0],
                        )
                    },
                    "p50_seconds": 0.1,
                    "p95_seconds": 0.5625,
                    "p99_seconds": 0.59375,
                },
            },
            "gold": {
                "weight": 4.0,
                "requests": 2,
                "rate_limited": 1,
                "deadline_exceeded": 0,
                "queue_wait": {
                    "count": 2,
                    "mean_seconds": 0.015625,
                    "max_seconds": 0.03125,
                    "window_size": 2,
                    "buckets": {
                        label: count
                        for label, count in zip(
                            [f"<={bound:g}s" for bound in BUCKET_BOUNDS] + [">10s"],
                            [1, 1, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0],
                        )
                    },
                    "p50_seconds": 0.0234375,
                    "p95_seconds": 0.03,
                    "p99_seconds": 0.031,
                },
            },
        },
    },
    "step1_memo": {"enabled": True, "entries": 3, "hits": 5, "misses": 4},
    "shards": 2,
}


def small_marketplace() -> Marketplace:
    pricing = EntropyPricingModel()
    marketplace = Marketplace(default_pricing=pricing)
    facts = Table.from_rows(
        "facts",
        ["good_key", "bad_key", "measure"],
        [(i % 10, i % 3, float(i % 8) * 10 + i % 3) for i in range(64)],
    )
    dims = Table.from_rows(
        "dims",
        ["good_key", "bad_key", "label"],
        [(i, i % 2, f"lbl{i}") for i in range(8)],
    )
    for table in (facts, dims):
        marketplace.host(MarketplaceDataset(table=table, pricing=pricing))
    return marketplace


def small_config(**service_kwargs) -> DanceConfig:
    return DanceConfig(
        sampling_rate=1.0,
        mcmc=MCMCConfig(iterations=40, seed=0),
        service=ServiceConfig(**service_kwargs),
    )


def flatten_paths(payload: dict, prefix: str = "") -> set[str]:
    """Dotted leaf paths of a metrics payload.

    Bucket dicts and the per-tier QoS map are one leaf each: buckets render
    as the ``le``-labelled samples of a single histogram family, tiers as
    ``tier``-labelled samples of the per-tier families.
    """
    paths: set[str] = set()
    for key, value in payload.items():
        path = f"{prefix}{key}"
        if isinstance(value, dict) and key not in ("buckets", "tiers"):
            paths |= flatten_paths(value, f"{path}.")
        else:
            paths.add(path)
    return paths


# --------------------------------------------------------------- /metrics text
def test_render_prometheus_matches_golden_file():
    rendered = render_prometheus(GOLDEN_PAYLOAD, extra={"server_draining": 0.0})
    assert rendered == GOLDEN_PATH.read_text()


def test_field_metrics_covers_every_real_payload_leaf():
    with AcquisitionService(small_marketplace(), small_config(seed=0)) as service:
        single_paths = flatten_paths(service.metrics())
    with ShardRouter(small_marketplace(), small_config(seed=0), num_shards=2) as router:
        router_paths = flatten_paths(router.metrics())
    # The router payload is the single payload plus the shard gauge.
    assert router_paths == single_paths | {"shards"}
    assert single_paths | router_paths == set(FIELD_METRICS)


def test_field_metrics_names_are_valid_prometheus():
    name_pattern = re.compile(r"^[a-z][a-z0-9_]*$")
    rendered = render_prometheus(GOLDEN_PAYLOAD)
    declared_types = dict(
        re.findall(r"^# TYPE (\S+) (\S+)$", rendered, flags=re.MULTILINE)
    )
    for path, metric in FIELD_METRICS.items():
        assert name_pattern.match(metric), metric
        base = re.sub(r"_(bucket|sum|count)$", "", metric)
        assert base in declared_types, metric
        if metric.endswith("_total"):
            assert declared_types[base] == "counter", metric
        elif declared_types[base] != "histogram":
            assert declared_types[base] == "gauge", metric
        # Every mapped metric carries at least one sample line.
        assert re.search(rf"^{re.escape(metric)}[ {{]", rendered, flags=re.MULTILINE), metric


def test_histogram_buckets_are_cumulative_and_end_at_count():
    rendered = render_prometheus(GOLDEN_PAYLOAD)
    counts = [
        int(match)
        for match in re.findall(
            r'^dance_request_latency_seconds_bucket\{le="[^"]+"\} (\d+)$',
            rendered,
            flags=re.MULTILINE,
        )
    ]
    assert len(counts) == len(BUCKET_BOUNDS) + 1
    assert counts == sorted(counts)
    assert counts[-1] == GOLDEN_PAYLOAD["latency"]["count"]
    # _sum is mean * count, exactly.
    assert "dance_request_latency_seconds_sum 3.5" in rendered


def test_render_handles_empty_payload_with_nans():
    rendered = render_prometheus({})
    assert "dance_requests_total 0" in rendered
    assert "dance_request_latency_p50_seconds NaN" in rendered
    assert "dance_admission_max_depth NaN" in rendered
    assert "dance_shards" not in rendered


# --------------------------------------------------------------- error mapping
@pytest.mark.parametrize(
    ("error", "status"),
    [
        (AdmissionRejectedError("full"), 503),
        (RateLimitedError("paced out"), 429),
        (DeadlineExceededError("missed in queue"), 504),
        (SearchError("bad request shape"), 422),
        (InfeasibleAcquisitionError("no feasible acquisition"), 422),
        (NoOwnedCandidatesError("filtered"), 422),
        (StorageError("disk gone"), 500),
        (ReproError("generic library error"), 400),
        (RuntimeError("anything else"), 500),
    ],
)
def test_error_status_mapping(error, status):
    assert error_status(error) == status


def test_error_body_is_typed_and_traceback_free():
    try:
        raise InfeasibleAcquisitionError("no feasible acquisition")
    except InfeasibleAcquisitionError as error:
        body = error_body(error)
    assert body == {
        "error": {
            "type": "InfeasibleAcquisitionError",
            "message": "no feasible acquisition",
        }
    }
    assert "Traceback" not in json.dumps(body)


def test_retry_after_header_rounds_up_computed_hints():
    # No hint (or a degenerate one) falls back to the old constant "1".
    assert retry_after_header(None) == "1"
    assert retry_after_header(0.0) == "1"
    assert retry_after_header(float("inf")) == "1"
    # Computed hints round up to whole seconds, never below 1.
    assert retry_after_header(0.25) == "1"
    assert retry_after_header(2.1) == "3"
    assert retry_after_header(600.0) == "600"


def test_request_from_spec_rejects_malformed_specs():
    with pytest.raises(ReproError, match="JSON object"):
        request_from_spec(["not", "a", "dict"])
    with pytest.raises(ReproError, match="unknown query"):
        request_from_spec({"query": "Q99"}, queries={})
    with pytest.raises(ReproError, match="invalid numeric"):
        request_from_spec({"source": ["a"], "target": ["b"], "budget": "cheap"})


def test_request_from_spec_builds_explicit_requests():
    request = request_from_spec(
        {"source": ["m"], "target": ["l"], "budget": 5.0, "alpha": 0.5, "beta": 0.1,
         "shopper": "s1"}
    )
    assert request.source_attributes == ("m",)
    assert request.target_attributes == ("l",)
    assert request.budget == 5.0
    assert request.max_join_informativeness == 0.5
    assert request.min_quality == 0.1
    assert request.shopper == "s1"


def test_request_from_spec_carries_tier_and_deadline():
    spec = {"source": ["m"], "target": ["l"], "tier": "gold", "deadline": 2.5}
    request = request_from_spec(spec, default_tier="bronze")
    assert request.tier == "gold"  # the spec's own tier wins
    assert request.deadline == 2.5
    # The default (header-provided) tier applies when the spec names none.
    request = request_from_spec({"source": ["m"], "target": ["l"]}, default_tier="silver")
    assert request.tier == "silver"
    assert request.deadline is None


# ------------------------------------------------------------------- lifecycle
def http_json(url, payload=None, timeout=30.0, headers=None):
    data = json.dumps(payload).encode("utf-8") if payload is not None else None
    request = urllib.request.Request(
        url, data=data, method="POST" if data else "GET", headers=headers or {}
    )
    try:
        with urllib.request.urlopen(request, timeout=timeout) as response:
            return response.status, dict(response.headers), response.read()
    except urllib.error.HTTPError as error:
        return error.code, dict(error.headers), error.read()


@pytest.fixture()
def live_server():
    service = AcquisitionService(small_marketplace(), small_config(seed=0))
    server = AcquisitionHTTPServer(("127.0.0.1", 0), service)
    thread = server.serve_background()
    try:
        yield server
    finally:
        server.graceful_shutdown(timeout=10.0)
        thread.join(timeout=10.0)
        service.close()


def test_healthz_flips_during_graceful_shutdown(live_server):
    url = f"http://127.0.0.1:{live_server.port}"
    status, _, body = http_json(f"{url}/healthz")
    assert (status, json.loads(body)) == (200, {"status": "ok"})

    # Draining: health flips to 503 + Retry-After, /acquire refuses new work,
    # but the listener still answers (in-flight requests would finish here).
    assert live_server.drain(timeout=5.0) is True
    status, headers, body = http_json(f"{url}/healthz")
    assert status == 503
    assert json.loads(body) == {"status": "draining"}
    assert headers.get("Retry-After") == "1"

    status, _, body = http_json(
        f"{url}/acquire", {"source": ["measure"], "target": ["label"]}
    )
    assert status == 503
    assert json.loads(body)["error"]["type"] == "ServerDraining"

    # /metrics stays readable while draining and reports the drain gauge.
    status, _, body = http_json(f"{url}/metrics")
    assert status == 200
    assert "dance_server_draining 1" in body.decode("utf-8")

    # Closed: the listener is gone, connections fail outright.
    assert live_server.graceful_shutdown(timeout=5.0) is True
    with pytest.raises(urllib.error.URLError):
        urllib.request.urlopen(f"{url}/healthz", timeout=5.0)


def test_metrics_endpoint_serves_prometheus_content_type(live_server):
    url = f"http://127.0.0.1:{live_server.port}"
    status, headers, body = http_json(f"{url}/metrics")
    assert status == 200
    assert headers["Content-Type"] == PROMETHEUS_CONTENT_TYPE
    assert headers["Content-Length"] == str(len(body))


def test_http_errors_carry_typed_bodies_not_tracebacks(live_server):
    url = f"http://127.0.0.1:{live_server.port}"

    # Malformed JSON -> 400 InvalidRequest.
    request = urllib.request.Request(
        f"{url}/acquire", data=b"{not json", method="POST"
    )
    try:
        urllib.request.urlopen(request, timeout=30.0)
        raise AssertionError("expected HTTP 400")
    except urllib.error.HTTPError as error:
        assert error.code == 400
        body = json.loads(error.read())
    assert body["error"]["type"] == "InvalidRequest"

    # Infeasible request -> 422 with the exception class name.
    status, _, raw = http_json(
        f"{url}/acquire", {"source": ["measure"], "target": ["no_such_attribute"]}
    )
    assert status == 422
    body = json.loads(raw)
    assert body["error"]["type"] == "InfeasibleAcquisitionError"
    assert "Traceback" not in raw.decode("utf-8")


def test_saturated_reject_queue_maps_to_503_and_recovers():
    service = AcquisitionService(
        small_marketplace(),
        small_config(seed=0, max_queue_depth=1, admission="reject"),
    )
    server = AcquisitionHTTPServer(("127.0.0.1", 0), service)
    thread = server.serve_background()
    url = f"http://127.0.0.1:{server.port}"
    spec = {"source": ["measure"], "target": ["label"], "budget": 1e9, "seed": 3}
    try:
        # Saturate the admission queue from the side, as an in-flight
        # request would.
        assert service._admission.admit() is True
        status, headers, raw = http_json(f"{url}/acquire", spec)
        assert status == 503
        assert headers.get("Retry-After") == "1"
        assert json.loads(raw)["error"]["type"] == "AdmissionRejectedError"

        # Release the slot: the same request now succeeds.
        service._admission.release()
        status, _, raw = http_json(f"{url}/acquire", spec)
        assert status == 200
        assert json.loads(raw)["ok"] is True
    finally:
        server.graceful_shutdown(timeout=10.0)
        thread.join(timeout=10.0)
        service.close()


def test_qos_sheds_map_to_429_and_504_over_http():
    tiers = dict(DEFAULT_TIERS)
    tiers["bronze"] = SlaTier("bronze", weight=1.0, rate=0.001, burst=1)
    service = AcquisitionService(
        small_marketplace(), small_config(seed=0, qos=QosConfig(tiers=tiers))
    )
    server = AcquisitionHTTPServer(("127.0.0.1", 0), service, default_tier="silver")
    thread = server.serve_background()
    url = f"http://127.0.0.1:{server.port}"
    spec = {"source": ["measure"], "target": ["label"], "budget": 1e9}
    try:
        # A deadline of zero is already expired at dequeue: 504, never run.
        # (Distinct shopper so its token draw does not affect the next pair.)
        status, _, raw = http_json(
            f"{url}/acquire", {**spec, "shopper": "d", "deadline": 0.0}
        )
        assert status == 504
        assert json.loads(raw)["error"]["type"] == "DeadlineExceededError"

        # Bronze holds a single token refilling at 0.001/s: the first request
        # runs, the second sheds with 429 and a computed Retry-After.  The
        # spec's own tier beats the server-wide silver default.
        bronze = {**spec, "shopper": "a", "tier": "bronze"}
        status, _, _ = http_json(f"{url}/acquire", bronze)
        assert status == 200
        status, headers, raw = http_json(f"{url}/acquire", bronze)
        assert status == 429
        assert json.loads(raw)["error"]["type"] == "RateLimitedError"
        assert int(headers["Retry-After"]) >= 1

        # Sheds never poison other shoppers: a fresh shopper still runs, and
        # the X-Dance-Tier header stamps its tier into the served summary,
        # overriding the server-wide default tier.
        status, _, raw = http_json(
            f"{url}/acquire",
            {"requests": [{**spec, "shopper": "b"}]},
            headers={"X-Dance-Tier": "gold"},
        )
        assert status == 200
        body = json.loads(raw)
        assert body["ok"] is True
        assert body["results"][0]["tier"] == "gold"

        # No header and no spec tier: the server-wide default (CLI --tier)
        # applies instead of the scheduler's bronze fallback.
        status, _, raw = http_json(
            f"{url}/acquire", {"requests": [{**spec, "shopper": "c"}]}
        )
        assert status == 200
        assert json.loads(raw)["results"][0]["tier"] == "silver"

        # The shed counters surface in /metrics per tier.
        status, _, body = http_json(f"{url}/metrics")
        text = body.decode("utf-8")
        assert "dance_qos_enabled 1" in text
        assert "dance_qos_rate_limited_total 1" in text
        assert "dance_qos_deadline_exceeded_total 1" in text
        assert 'dance_tier_requests_total{tier="gold"} 1' in text
    finally:
        server.graceful_shutdown(timeout=10.0)
        thread.join(timeout=10.0)
        service.close()


def test_batch_summary_carries_error_types():
    with AcquisitionService(small_marketplace(), small_config(seed=0)) as service:
        good = request_from_spec(
            {"source": ["measure"], "target": ["label"], "budget": 1e9}
        )
        bad = request_from_spec(
            {"source": ["measure"], "target": ["no_such_attribute"], "budget": 1e9}
        )
        batch = service.acquire_batch([good, bad], seeds=[1, 2])
    summaries = batch.summary()
    assert "error" not in summaries[0]
    assert summaries[1]["error_type"] == "InfeasibleAcquisitionError"
    assert "Traceback" not in json.dumps(summaries)
