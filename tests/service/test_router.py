"""ShardRouter integration tests: real acquisitions, bit-identical folds.

The property suite (``tests/property/test_shard_router.py``) proves the fold
rule is partition-invariant on pure data; this suite runs the real thing —
N in-process service shards over one marketplace — and checks the served
bits against a single-shard :class:`AcquisitionService` at fixed shard
counts, plus the router-level admission, error and metrics contracts.
"""

from __future__ import annotations

import pytest

from repro.core.config import DanceConfig, ServiceConfig
from repro.exceptions import (
    AdmissionRejectedError,
    InfeasibleAcquisitionError,
    ReproError,
)
from repro.marketplace.dataset import MarketplaceDataset
from repro.marketplace.market import Marketplace
from repro.marketplace.shopper import AcquisitionRequest
from repro.pricing.models import EntropyPricingModel
from repro.relational.table import Table
from repro.search.mcmc import MCMCConfig
from repro.service import AcquisitionService, ShardRouter

REQUEST = AcquisitionRequest(
    source_attributes=["measure"], target_attributes=["label"], budget=1e9
)
INFEASIBLE = AcquisitionRequest(
    source_attributes=["measure"], target_attributes=["no_such_attribute"], budget=1e9
)

# The served bits of a result summary; cache/executor diagnostics excluded.
SERVED_KEYS = (
    "instances",
    "purchased_instances",
    "projections",
    "join_attributes",
    "estimated_correlation",
    "estimated_quality",
    "estimated_join_informativeness",
    "estimated_price",
    "igraph_size",
    "igraph_index",
    "queries",
)


def small_marketplace() -> Marketplace:
    pricing = EntropyPricingModel()
    marketplace = Marketplace(default_pricing=pricing)
    facts = Table.from_rows(
        "facts",
        ["good_key", "bad_key", "measure"],
        [(i % 10, i % 3, float(i % 8) * 10 + i % 3) for i in range(64)],
    )
    dims = Table.from_rows(
        "dims",
        ["good_key", "bad_key", "label"],
        [(i, i % 2, f"lbl{i}") for i in range(8)],
    )
    extra = Table.from_rows(
        "extra",
        ["bad_key", "bonus"],
        [(i % 3, float(i)) for i in range(12)],
    )
    for table in (facts, dims, extra):
        marketplace.host(MarketplaceDataset(table=table, pricing=pricing))
    return marketplace


def small_config(**service_kwargs) -> DanceConfig:
    return DanceConfig(
        sampling_rate=1.0,
        mcmc=MCMCConfig(iterations=40, seed=0),
        service=ServiceConfig(**service_kwargs),
    )


def served_bits(result) -> dict:
    summary = result.summary()
    return {key: summary[key] for key in SERVED_KEYS}


def reference_bits(seed: int) -> dict:
    with AcquisitionService(small_marketplace(), small_config(seed=0)) as service:
        return served_bits(service.acquire(REQUEST, seed=seed))


@pytest.mark.parametrize("num_shards", [1, 2, 3, 4])
def test_router_is_bit_identical_to_single_service(num_shards):
    reference = reference_bits(7)
    with ShardRouter(
        small_marketplace(), small_config(seed=0), num_shards=num_shards
    ) as router:
        assert served_bits(router.acquire(REQUEST, seed=7)) == reference
        # A warm repeat (Step-1 memo, evaluation memo) answers identically.
        assert served_bits(router.acquire(REQUEST, seed=7)) == reference


def test_router_batch_matches_service_batch():
    with AcquisitionService(small_marketplace(), small_config(seed=0)) as service:
        expected = service.acquire_batch([REQUEST, REQUEST, REQUEST])
    with ShardRouter(small_marketplace(), small_config(seed=0), num_shards=2) as router:
        batch = router.acquire_batch([REQUEST, REQUEST, REQUEST])
    assert batch.ok and expected.ok
    # Default per-index seeds must line up, and so must every served bit.
    assert [item.seed for item in batch] == [item.seed for item in expected]
    for mine, reference in zip(batch, expected):
        assert served_bits(mine.result) == served_bits(reference.result)


def test_router_surfaces_the_same_typed_error_as_single_service():
    with AcquisitionService(small_marketplace(), small_config(seed=0)) as service:
        with pytest.raises(InfeasibleAcquisitionError) as single_error:
            service.acquire(INFEASIBLE, seed=1)
    with ShardRouter(small_marketplace(), small_config(seed=0), num_shards=3) as router:
        with pytest.raises(InfeasibleAcquisitionError) as routed_error:
            router.acquire(INFEASIBLE, seed=1)
    assert type(routed_error.value) is type(single_error.value)
    assert str(routed_error.value) == str(single_error.value)


def test_router_owns_admission_not_the_shards():
    config = small_config(seed=0, max_queue_depth=1, admission="reject")
    with ShardRouter(small_marketplace(), config, num_shards=2) as router:
        # Shards run unbounded: a per-shard bound could admit a request on
        # some shards and reject it on others, breaking fold coverage.
        for shard in router.shards:
            assert shard.config.service.max_queue_depth is None
        assert router._admission.admit() is True
        with pytest.raises(AdmissionRejectedError):
            router.acquire(REQUEST, seed=3)
        router._admission.release()
        assert served_bits(router.acquire(REQUEST, seed=3)) == reference_bits(3)
        snapshot = router.metrics()["queue"]
        assert snapshot["rejected"] == 1


def test_router_metrics_count_requests_once():
    with ShardRouter(small_marketplace(), small_config(seed=0), num_shards=3) as router:
        router.acquire(REQUEST, seed=5)
        payload = router.metrics()
    assert payload["shards"] == 3
    assert payload["requests"] == 1
    assert payload["errors"] == 0
    assert payload["latency"]["count"] == 1


def test_router_describe_reports_assignment_and_shards():
    with ShardRouter(small_marketplace(), small_config(seed=0), num_shards=2) as router:
        description = router.describe()
    assignment = description["assignment"]
    assert set(assignment) == {"facts", "dims", "extra"}
    assert set(assignment.values()) <= {0, 1}
    assert len(description["shards"]) == 2


def test_router_rejects_invalid_configuration():
    marketplace = small_marketplace()
    with pytest.raises(ReproError):
        ShardRouter(marketplace, small_config(seed=0), num_shards=0)
    with pytest.raises(ReproError):
        ShardRouter(
            marketplace,
            small_config(seed=0),
            num_shards=2,
            assignment={"facts": 5},
        )


def test_execution_plan_rides_to_every_shard():
    """PR 8: a plan on the router's config drives each shard's pool the same
    way, and the sharded answer stays bit-identical to the unsharded one."""
    from repro.search.plan import ExecutionPlan

    plan = ExecutionPlan(executor="process", chains=2)
    config = DanceConfig(
        sampling_rate=1.0, mcmc=MCMCConfig(iterations=40, seed=0), plan=plan
    )
    with AcquisitionService(
        small_marketplace(),
        DanceConfig(sampling_rate=1.0, mcmc=MCMCConfig(iterations=40, seed=0), plan=plan),
    ) as service:
        reference = served_bits(service.acquire(REQUEST, seed=7))
    with ShardRouter(small_marketplace(), config, num_shards=2) as router:
        for shard in router.shards:
            assert shard.config.execution_plan == plan
        assert served_bits(router.acquire(REQUEST, seed=7)) == reference
