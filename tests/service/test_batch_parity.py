"""Cross-request determinism: batches are bit-identical to serial execution.

The acceptance contract of the service layer: a batch of N requests through
``AcquisitionService`` equals N serial ``DANCE.acquire()`` calls with the
same derived seeds — with and without shared caches, under both columnar
backends, and under every executor (serial / thread / process multi-chain
walks, concurrent and serial batch fan-out).
"""

from __future__ import annotations

import pytest

from repro.core.config import DanceConfig, ServiceConfig
from repro.core.dance import DANCE
from repro.marketplace.dataset import MarketplaceDataset
from repro.marketplace.market import Marketplace
from repro.marketplace.shopper import AcquisitionRequest
from repro.pricing.models import EntropyPricingModel
from repro.relational import backend as columnar_backend
from repro.relational.table import Table
from repro.search.acquisition import SearchRuntime
from repro.search.mcmc import MCMCConfig
from repro.service import AcquisitionService, request_seed


@pytest.fixture(params=["python", "numpy"])
def backend_name(request):
    """Run every parity test under both columnar backends."""
    if request.param == "numpy" and not columnar_backend.numpy_available():
        pytest.skip("numpy is not installed")
    with columnar_backend.use_backend(request.param):
        yield request.param


def build_marketplace() -> Marketplace:
    pricing = EntropyPricingModel()
    marketplace = Marketplace(default_pricing=pricing)
    facts = Table.from_rows(
        "facts",
        ["good_key", "bad_key", "measure"],
        [(i % 10, i % 3, float(i % 8) * 10 + i % 3) for i in range(64)],
    )
    dims = Table.from_rows(
        "dims",
        ["good_key", "bad_key", "label"],
        [(i, i % 2, f"lbl{i}") for i in range(8)],
    )
    extra = Table.from_rows(
        "extra",
        ["bad_key", "bonus"],
        [(i % 3, float(i)) for i in range(12)],
    )
    for table in (facts, dims, extra):
        marketplace.host(MarketplaceDataset(table=table, pricing=pricing))
    return marketplace


REQUESTS = [
    AcquisitionRequest(
        source_attributes=["measure"], target_attributes=["label"], budget=1e9
    ),
    AcquisitionRequest(
        source_attributes=["measure"],
        target_attributes=["label", "bonus"],
        budget=1e9,
    ),
    AcquisitionRequest(
        source_attributes=["measure"], target_attributes=["label"], budget=1e8
    ),
]


def fingerprint(result) -> tuple:
    """Everything observable about a recommendation, bit-for-bit."""
    return (
        tuple(result.target_graph.nodes),
        tuple(tuple(sorted(edge)) for edge in result.target_graph.edges),
        result.estimated_correlation,
        result.estimated_quality,
        result.estimated_join_informativeness,
        result.estimated_price,
        tuple(result.sql()),
    )


def serial_reference(mcmc: MCMCConfig, seed_base: int) -> list[tuple]:
    """N one-at-a-time ``DANCE.acquire()`` calls with the derived seeds."""
    dance = DANCE(build_marketplace(), DanceConfig(sampling_rate=1.0, mcmc=mcmc))
    dance.build_offline()
    reference = []
    for index, request in enumerate(REQUESTS):
        runtime = SearchRuntime(mcmc_seed=request_seed(seed_base, index))
        reference.append(fingerprint(dance.acquire(request, runtime=runtime)))
    return reference


def batch_fingerprints(config: DanceConfig) -> list[tuple]:
    with AcquisitionService(build_marketplace(), config) as service:
        batch = service.acquire_batch(REQUESTS)
    assert batch.ok
    return [fingerprint(item.result) for item in batch]


class TestBatchEqualsSerial:
    @pytest.mark.parametrize("share_caches", [True, False])
    @pytest.mark.parametrize("batch_workers", [1, 4])
    def test_single_chain(self, backend_name, share_caches, batch_workers):
        mcmc = MCMCConfig(iterations=40, seed=0)
        config = DanceConfig(
            sampling_rate=1.0,
            mcmc=mcmc,
            service=ServiceConfig(
                share_caches=share_caches, max_batch_workers=batch_workers
            ),
        )
        assert batch_fingerprints(config) == serial_reference(mcmc, seed_base=0)

    @pytest.mark.parametrize("executor", ["serial", "thread", "process"])
    def test_multi_chain_executors(self, backend_name, executor):
        if executor == "process" and backend_name == "python":
            pytest.skip("one process-executor leg per backend keeps the suite fast")
        mcmc = MCMCConfig(iterations=30, seed=0, chains=3, executor=executor)
        config = DanceConfig(
            sampling_rate=1.0,
            mcmc=mcmc,
            service=ServiceConfig(max_batch_workers=2),
        )
        assert batch_fingerprints(config) == serial_reference(mcmc, seed_base=0)

    def test_batch_equals_repeated_service_calls(self, backend_name):
        """Concurrent batch == the same service serving one request at a time."""
        config = DanceConfig(
            sampling_rate=1.0,
            mcmc=MCMCConfig(iterations=40, seed=0),
            service=ServiceConfig(max_batch_workers=4),
        )
        with AcquisitionService(build_marketplace(), config) as service:
            batch = service.acquire_batch(REQUESTS)
        with AcquisitionService(build_marketplace(), config) as service:
            one_at_a_time = [
                fingerprint(
                    service.acquire(request, seed=request_seed(0, index))
                )
                for index, request in enumerate(REQUESTS)
            ]
        assert [fingerprint(item.result) for item in batch] == one_at_a_time

    def test_nonzero_service_seed(self, backend_name):
        mcmc = MCMCConfig(iterations=40, seed=0)
        config = DanceConfig(
            sampling_rate=1.0,
            mcmc=mcmc,
            service=ServiceConfig(seed=99, max_batch_workers=2),
        )
        assert batch_fingerprints(config) == serial_reference(mcmc, seed_base=99)

    def test_repeated_batches_are_stable(self, backend_name):
        """A second identical batch (warm caches) is bit-identical to the first."""
        config = DanceConfig(
            sampling_rate=1.0,
            mcmc=MCMCConfig(iterations=40, seed=0),
            service=ServiceConfig(max_batch_workers=4),
        )
        with AcquisitionService(build_marketplace(), config) as service:
            first = [fingerprint(i.result) for i in service.acquire_batch(REQUESTS)]
            second = [fingerprint(i.result) for i in service.acquire_batch(REQUESTS)]
        assert first == second
