"""Tests for the service metrics subsystem (``repro.service.metrics``)."""

from __future__ import annotations

import json

import pytest

from repro.core.config import DanceConfig, ServiceConfig
from repro.exceptions import ReproError
from repro.marketplace.dataset import MarketplaceDataset
from repro.marketplace.market import Marketplace
from repro.marketplace.shopper import AcquisitionRequest
from repro.pricing.models import EntropyPricingModel
from repro.relational.table import Table
from repro.search.mcmc import MCMCConfig
from repro.service import AcquisitionService, CountingCache, LatencyHistogram, ServiceMetrics


class TestLatencyHistogram:
    def test_empty_snapshot(self):
        snapshot = LatencyHistogram().snapshot()
        assert snapshot["count"] == 0
        assert snapshot["p50_seconds"] is None
        assert snapshot["mean_seconds"] is None

    def test_percentiles_nearest_rank(self):
        histogram = LatencyHistogram()
        for value in range(1, 101):  # 0.01 .. 1.00
            histogram.record(value / 100.0)
        assert histogram.percentile(0.50) == pytest.approx(0.50)
        assert histogram.percentile(0.95) == pytest.approx(0.95)
        assert histogram.percentile(0.99) == pytest.approx(0.99)
        assert histogram.percentile(1.00) == pytest.approx(1.00)

    def test_single_sample(self):
        histogram = LatencyHistogram()
        histogram.record(0.2)
        assert histogram.percentile(0.5) == 0.2
        assert histogram.percentile(0.99) == 0.2

    def test_window_tracks_recent_lifetime_buckets_do_not(self):
        histogram = LatencyHistogram(window=4)
        for _ in range(10):
            histogram.record(5.0)  # old, slow
        for _ in range(4):
            histogram.record(0.002)  # recent, fast
        snapshot = histogram.snapshot()
        assert snapshot["count"] == 14  # lifetime
        assert snapshot["p99_seconds"] == pytest.approx(0.002)  # window only
        assert snapshot["buckets"]["<=2.5s"] == 0
        assert snapshot["buckets"]["<=5s"] == 10
        assert snapshot["buckets"]["<=0.0025s"] == 4

    def test_overflow_bucket(self):
        histogram = LatencyHistogram()
        histogram.record(60.0)
        assert histogram.snapshot()["buckets"][">10s"] == 1

    def test_invalid_parameters(self):
        with pytest.raises(ReproError):
            LatencyHistogram(window=0)
        with pytest.raises(ReproError):
            LatencyHistogram().percentile(0.0)
        with pytest.raises(ReproError):
            LatencyHistogram().percentile(1.5)


class TestServiceMetrics:
    def test_counts_requests_and_errors(self):
        metrics = ServiceMetrics()
        metrics.record_request(0.1, ok=True, cache_hit_rate=0.5)
        metrics.record_request(0.2, ok=False)
        snapshot = metrics.snapshot()
        assert snapshot["requests"] == 2
        assert snapshot["errors"] == 1
        assert snapshot["latency"]["count"] == 2

    def test_hit_rate_trend_warming(self):
        metrics = ServiceMetrics(window=8)
        for rate in (0.0, 0.1, 0.2, 0.3, 0.8, 0.9, 0.9, 1.0):
            metrics.record_request(0.01, ok=True, cache_hit_rate=rate)
        trend = metrics.snapshot()["cache_hit_rate"]
        assert trend["window_size"] == 8
        assert trend["older_half_mean"] == pytest.approx(0.15)
        assert trend["newer_half_mean"] == pytest.approx(0.9)
        assert trend["trend"] == pytest.approx(0.75)

    def test_trend_with_no_samples(self):
        trend = ServiceMetrics().snapshot()["cache_hit_rate"]
        assert trend["window_size"] == 0
        assert trend["window_mean"] is None
        assert trend["trend"] is None

    def test_single_sample_has_no_trend(self):
        metrics = ServiceMetrics()
        metrics.record_request(0.01, ok=True, cache_hit_rate=0.4)
        trend = metrics.snapshot()["cache_hit_rate"]
        assert trend["window_mean"] == pytest.approx(0.4)
        assert trend["older_half_mean"] is None
        assert trend["trend"] is None


class TestCountingCache:
    def test_counts_hits_and_misses(self):
        cache = CountingCache()
        assert cache.get("missing") is None
        cache["key"] = "value"
        assert cache.get("key") == "value"
        assert cache.get("key") == "value"
        assert cache.hits == 2
        assert cache.misses == 1
        assert cache.snapshot() == {"entries": 1, "hits": 2, "misses": 1}

    def test_default_value_on_miss(self):
        cache = CountingCache()
        assert cache.get("nope", 42) == 42
        assert cache.misses == 1

    def test_still_a_striped_cache(self):
        cache = CountingCache(stripes=4)
        for index in range(50):
            cache[index] = index * 2
        assert len(cache) == 50
        assert 49 in cache


def small_marketplace() -> Marketplace:
    pricing = EntropyPricingModel()
    marketplace = Marketplace(default_pricing=pricing)
    facts = Table.from_rows(
        "facts",
        ["good_key", "bad_key", "measure"],
        [(i % 10, i % 3, float(i % 8) * 10 + i % 3) for i in range(64)],
    )
    dims = Table.from_rows(
        "dims",
        ["good_key", "bad_key", "label"],
        [(i, i % 2, f"lbl{i}") for i in range(8)],
    )
    for table in (facts, dims):
        marketplace.host(MarketplaceDataset(table=table, pricing=pricing))
    return marketplace


REQUEST = AcquisitionRequest(
    source_attributes=["measure"], target_attributes=["label"], budget=1e9
)


class TestServiceMetricsIntegration:
    def test_metrics_dump_covers_the_traffic_layer(self):
        config = DanceConfig(
            sampling_rate=1.0,
            mcmc=MCMCConfig(iterations=30, seed=0),
            service=ServiceConfig(max_queue_depth=4),
        )
        with AcquisitionService(small_marketplace(), config) as service:
            service.acquire(REQUEST)
            service.acquire(REQUEST)
            metrics = service.metrics()
        assert metrics["requests"] == 2
        assert metrics["errors"] == 0
        assert metrics["in_flight"] == 0
        assert metrics["latency"]["p50_seconds"] is not None
        assert metrics["latency"]["p95_seconds"] is not None
        assert metrics["latency"]["p99_seconds"] is not None
        assert metrics["queue"]["admitted"] == 2
        assert metrics["step1_memo"]["enabled"] is True
        assert metrics["step1_memo"]["hits"] >= 1  # the warm repeat
        # The warm repeat is fully cached, so the window trend is upward.
        assert metrics["cache_hit_rate"]["window_mean"] > 0.0
        json.dumps(metrics)  # the dump is plain JSON

    def test_step1_schema_stable_before_first_request(self):
        config = DanceConfig(sampling_rate=1.0, mcmc=MCMCConfig(iterations=30, seed=0))
        with AcquisitionService(small_marketplace(), config) as service:
            memo = service.metrics()["step1_memo"]
        assert memo == {"enabled": True, "entries": 0, "hits": 0, "misses": 0}

    def test_describe_embeds_metrics(self):
        config = DanceConfig(sampling_rate=1.0, mcmc=MCMCConfig(iterations=30, seed=0))
        with AcquisitionService(small_marketplace(), config) as service:
            service.acquire(REQUEST)
            description = service.describe()
        assert description["metrics"]["requests"] == 1
        assert description["step1_memo_entries"] >= 1
        assert description["in_flight"] == 0

    def test_failed_requests_count_as_errors_with_latency(self):
        config = DanceConfig(sampling_rate=1.0, mcmc=MCMCConfig(iterations=30, seed=0))
        bad = AcquisitionRequest(
            source_attributes=["measure"], target_attributes=["nope"], budget=1e9
        )
        with AcquisitionService(small_marketplace(), config) as service:
            batch = service.acquire_batch([bad])
            metrics = service.metrics()
        assert not batch.ok
        assert metrics["errors"] == 1
        assert metrics["latency"]["count"] == 1
