"""Tests for the QoS scheduler: tiers, token buckets, deadlines, bit-identity.

The contract mirrors the admission layer's: QoS decides *whether and when* a
request runs — weighted by its SLA tier, paced by its token bucket, shed at
its deadline — never what it computes.  A contended mixed-tier batch must be
bit-identical to the plain serial service.
"""

from __future__ import annotations

import threading

import pytest

from repro.core.config import DanceConfig, ServiceConfig
from repro.exceptions import (
    AdmissionRejectedError,
    DeadlineExceededError,
    RateLimitedError,
    ReproError,
)
from repro.marketplace.dataset import MarketplaceDataset
from repro.marketplace.market import Marketplace
from repro.marketplace.shopper import AcquisitionRequest
from repro.pricing.models import EntropyPricingModel
from repro.pricing.sla import DEFAULT_TIERS, SlaTier
from repro.relational.table import Table
from repro.search.mcmc import MCMCConfig
from repro.service import AcquisitionService, request_seed
from repro.service.qos import QosConfig, QosScheduler, disabled_qos_snapshot, retry_after_hint


def request(shopper=None, tier=None, deadline=None) -> AcquisitionRequest:
    return AcquisitionRequest(
        source_attributes=["measure"],
        target_attributes=["label"],
        budget=1e9,
        shopper=shopper,
        tier=tier,
        deadline=deadline,
    )


class FakeClock:
    def __init__(self) -> None:
        self.now = 0.0

    def __call__(self) -> float:
        return self.now

    def advance(self, seconds: float) -> None:
        self.now += seconds


# ------------------------------------------------------------------ the config
class TestQosConfig:
    def test_normalize_spellings(self):
        assert QosConfig.normalize(None) is None
        assert QosConfig.normalize(False) is None
        for spelling in (True, "on", "default", "TRUE", "1"):
            config = QosConfig.normalize(spelling)
            assert isinstance(config, QosConfig)
            assert set(config.tiers) == {"bronze", "silver", "gold"}
            assert config.slots == 1
        ready = QosConfig(slots=2)
        assert QosConfig.normalize(ready) is ready

    def test_normalize_rejects_unknown_spellings(self):
        with pytest.raises(ReproError):
            QosConfig.normalize("sometimes")
        with pytest.raises(ReproError):
            QosConfig.normalize(3.14)

    def test_validation(self):
        with pytest.raises(ReproError):
            QosConfig(tiers={})
        with pytest.raises(ReproError):
            QosConfig(tiers={"a": SlaTier("b")})  # key / name mismatch
        with pytest.raises(ReproError):
            QosConfig(default_tier="platinum")
        with pytest.raises(ReproError):
            QosConfig(slots=0)
        assert QosConfig(slots=None).slots is None


# ----------------------------------------------------------------- retry hints
class TestRetryAfterHint:
    def test_degrades_to_one_without_history(self):
        assert retry_after_hint(10, None) == 1
        assert retry_after_hint(10, 0.0) == 1

    def test_scales_with_depth_times_p50(self):
        assert retry_after_hint(4, 2.0) == 8
        assert retry_after_hint(0, 2.0) == 2  # depth clamps to at least 1
        assert retry_after_hint(3, 0.1) == 1  # rounds up, floors at 1
        assert retry_after_hint(10_000, 60.0) == 600  # ceiling at 10 minutes


# --------------------------------------------------------------- the scheduler
class TestScheduler:
    def scheduler(self, clock=None, **kwargs) -> QosScheduler:
        return QosScheduler(QosConfig(), clock=clock or FakeClock(), **kwargs)

    def test_serial_grant_flow(self):
        clock = FakeClock()
        scheduler = self.scheduler(clock)
        ticket = scheduler.submit(request(shopper="a"))
        clock.advance(0.5)
        assert scheduler.await_grant(ticket) == 0.5
        assert scheduler.depth == 1  # executing counts toward depth
        scheduler.release(ticket)
        assert scheduler.depth == 0
        snapshot = scheduler.qos_snapshot()
        assert snapshot["enabled"] is True
        assert snapshot["tiers"]["bronze"]["requests"] == 1

    def test_default_tier_applies_to_anonymous_requests(self):
        scheduler = self.scheduler()
        assert scheduler.resolve_tier(request()) is DEFAULT_TIERS["bronze"]
        assert scheduler.resolve_tier(request(tier="gold")) is DEFAULT_TIERS["gold"]

    def test_unknown_tier_is_a_caller_error(self):
        scheduler = self.scheduler()
        with pytest.raises(ReproError, match="platinum"):
            scheduler.submit(request(tier="platinum"))

    def test_rate_limit_sheds_with_retry_after(self):
        clock = FakeClock()
        tiers = dict(DEFAULT_TIERS)
        tiers["bronze"] = SlaTier("bronze", rate=0.5, burst=2)
        scheduler = QosScheduler(QosConfig(tiers=tiers), clock=clock)
        for _ in range(2):  # the burst passes
            ticket = scheduler.submit(request(shopper="a"))
            scheduler.await_grant(ticket)
            scheduler.release(ticket)
        with pytest.raises(RateLimitedError) as excinfo:
            scheduler.submit(request(shopper="a"))
        assert excinfo.value.retry_after == pytest.approx(2.0)  # 1 token / 0.5 per s
        # Another shopper's bucket is untouched.
        ticket = scheduler.submit(request(shopper="b"))
        scheduler.await_grant(ticket)
        scheduler.release(ticket)
        # And the shed shopper recovers once the bucket refills.
        clock.advance(2.0)
        ticket = scheduler.submit(request(shopper="a"))
        scheduler.await_grant(ticket)
        scheduler.release(ticket)
        snapshot = scheduler.qos_snapshot()
        assert snapshot["rate_limited"] == 1
        assert snapshot["tiers"]["bronze"]["rate_limited"] == 1

    def test_zero_rate_bucket_has_no_finite_retry_after(self):
        tiers = dict(DEFAULT_TIERS)
        tiers["bronze"] = SlaTier("bronze", rate=0.0, burst=1)
        scheduler = QosScheduler(QosConfig(tiers=tiers), clock=FakeClock())
        scheduler.submit(request(shopper="a"))
        with pytest.raises(RateLimitedError) as excinfo:
            scheduler.submit(request(shopper="a"))
        assert excinfo.value.retry_after is None  # never refills: no hint

    def test_expired_deadline_sheds_at_dequeue(self):
        clock = FakeClock()
        scheduler = self.scheduler(clock)
        ticket = scheduler.submit(request(shopper="a", deadline=1.0))
        clock.advance(1.5)
        with pytest.raises(DeadlineExceededError):
            scheduler.await_grant(ticket)
        # The shed never occupied a slot: the next request grants immediately.
        ticket = scheduler.submit(request(shopper="a"))
        scheduler.await_grant(ticket)
        scheduler.release(ticket)
        snapshot = scheduler.qos_snapshot()
        assert snapshot["deadline_exceeded"] == 1
        assert snapshot["tiers"]["bronze"]["deadline_exceeded"] == 1

    def test_deadline_shed_uses_execution_estimate_headroom(self):
        clock = FakeClock()
        scheduler = QosScheduler(
            QosConfig(), clock=clock, execution_estimate=lambda: 2.0
        )
        # 1s of headroom is not enough for an estimated 2s execution.
        ticket = scheduler.submit(request(shopper="a", deadline=1.0))
        with pytest.raises(DeadlineExceededError):
            scheduler.await_grant(ticket)
        # 3s of headroom is.
        ticket = scheduler.submit(request(shopper="a", deadline=3.0))
        assert scheduler.await_grant(ticket) == 0.0
        scheduler.release(ticket)

    def test_reject_policy_sheds_at_max_depth(self):
        scheduler = self.scheduler(max_depth=1, policy="reject")
        ticket = scheduler.submit(request(shopper="a"))
        with pytest.raises(AdmissionRejectedError) as excinfo:
            scheduler.submit(request(shopper="b"))
        assert excinfo.value.retry_after >= 1
        snapshot = scheduler.snapshot()
        assert snapshot["rejected"] == 1
        assert snapshot["admitted"] == 1
        scheduler.await_grant(ticket)
        scheduler.release(ticket)

    def test_block_policy_waits_for_capacity(self):
        scheduler = self.scheduler(max_depth=1, policy="block")
        first = scheduler.submit(request(shopper="a"))
        scheduler.await_grant(first)
        submitted = threading.Event()
        tickets: list[object] = []

        def blocked_submit():
            tickets.append(scheduler.submit(request(shopper="b")))
            submitted.set()

        thread = threading.Thread(target=blocked_submit, daemon=True)
        thread.start()
        assert not submitted.wait(0.05)  # full: the submitter is blocked
        scheduler.release(first)
        assert submitted.wait(2.0)
        thread.join(2.0)
        scheduler.await_grant(tickets[0])
        scheduler.release(tickets[0])
        assert scheduler.snapshot()["blocked_seconds"] > 0.0

    def test_grants_follow_wfq_weight_order(self):
        scheduler = self.scheduler()
        # All submitted before any grant: bronze (weight 1) tags 1.0, 2.0;
        # gold (weight 4) tags 0.25, 0.5 — gold drains first.
        tickets = [
            scheduler.submit(request(shopper="slow", tier="bronze")),
            scheduler.submit(request(shopper="slow", tier="bronze")),
            scheduler.submit(request(shopper="fast", tier="gold")),
            scheduler.submit(request(shopper="fast", tier="gold")),
        ]
        granted: list[str] = []
        done = threading.Barrier(len(tickets) + 1)

        def serve(ticket, name):
            scheduler.await_grant(ticket)
            granted.append(name)
            scheduler.release(ticket)
            done.wait(timeout=10.0)

        names = ["bronze-1", "bronze-2", "gold-1", "gold-2"]
        for ticket, name in zip(tickets, names):
            threading.Thread(target=serve, args=(ticket, name), daemon=True).start()
        done.wait(timeout=10.0)
        assert granted == ["gold-1", "gold-2", "bronze-1", "bronze-2"]

    def test_abandon_withdraws_an_ungranted_ticket(self):
        scheduler = self.scheduler()
        first = scheduler.submit(request(shopper="a"))
        second = scheduler.submit(request(shopper="b"))
        scheduler.abandon(second)
        scheduler.await_grant(first)
        scheduler.release(first)
        assert scheduler.depth == 0
        # abandon() on a granted ticket is a programming error.
        ticket = scheduler.submit(request(shopper="d"))
        scheduler.await_grant(ticket)
        with pytest.raises(ReproError):
            scheduler.abandon(ticket)
        scheduler.release(ticket)

    def test_snapshot_keeps_the_admission_queue_schema(self):
        scheduler = self.scheduler(max_depth=4, policy="reject")
        assert set(scheduler.snapshot()) == {
            "max_depth",
            "policy",
            "depth",
            "peak_depth",
            "admitted",
            "rejected",
            "blocked_seconds",
        }
        assert set(scheduler.qos_snapshot()) == set(disabled_qos_snapshot())

    def test_invalid_parameters(self):
        with pytest.raises(ReproError):
            self.scheduler(policy="fifo")
        with pytest.raises(ReproError):
            self.scheduler(max_depth=0)


# ------------------------------------------------------------- the service path
def small_marketplace() -> Marketplace:
    pricing = EntropyPricingModel()
    marketplace = Marketplace(default_pricing=pricing)
    facts = Table.from_rows(
        "facts",
        ["good_key", "bad_key", "measure"],
        [(i % 10, i % 3, float(i % 8) * 10 + i % 3) for i in range(64)],
    )
    dims = Table.from_rows(
        "dims",
        ["good_key", "bad_key", "label"],
        [(i, i % 2, f"lbl{i}") for i in range(8)],
    )
    for table in (facts, dims):
        marketplace.host(MarketplaceDataset(table=table, pricing=pricing))
    return marketplace


def config(**service_kwargs) -> DanceConfig:
    return DanceConfig(
        sampling_rate=1.0,
        mcmc=MCMCConfig(iterations=30, seed=0),
        service=ServiceConfig(**service_kwargs),
    )


class TestServiceWithQos:
    def test_contended_mixed_tier_batch_is_bit_identical_to_plain_serial(self):
        requests = [
            request(shopper="a", tier="bronze"),
            request(shopper="b", tier="gold"),
            request(shopper="a", tier="bronze"),
            request(shopper="c", tier="silver"),
            request(shopper="b", tier="gold"),
        ]
        plain_requests = [request(shopper=r.shopper) for r in requests]
        with AcquisitionService(small_marketplace(), config()) as service:
            plain = service.acquire_batch(plain_requests)
        with AcquisitionService(
            small_marketplace(), config(qos=True, max_batch_workers=4)
        ) as service:
            shaped = service.acquire_batch(requests)
            metrics = service.metrics()
        assert plain.ok and shaped.ok
        for lhs, rhs in zip(shaped, plain):
            assert lhs.result.estimated_correlation == rhs.result.estimated_correlation
            assert lhs.result.sql() == rhs.result.sql()
        # Results sit at their request position with their index-derived seed.
        assert [item.index for item in shaped] == list(range(len(requests)))
        assert [item.seed for item in shaped] == [
            request_seed(0, i) for i in range(len(requests))
        ]
        assert metrics["qos"]["enabled"] is True
        tier_requests = {
            name: stats["requests"] for name, stats in metrics["qos"]["tiers"].items()
        }
        assert tier_requests == {"bronze": 2, "silver": 1, "gold": 2}

    def test_shed_requests_do_not_poison_the_batch(self):
        tiers = dict(DEFAULT_TIERS)
        tiers["bronze"] = SlaTier("bronze", rate=0.0001, burst=1)
        requests = [
            request(shopper="a"),  # takes bronze's only token
            request(shopper="a"),  # rate-shed
            request(shopper="b", deadline=0.0),  # deadline-shed at dequeue
            request(shopper="c", tier="gold"),  # unaffected
        ]
        with AcquisitionService(
            small_marketplace(),
            config(qos=QosConfig(tiers=tiers), max_batch_workers=1),
        ) as service:
            batch = service.acquire_batch(requests)
            description = service.describe()
        with AcquisitionService(small_marketplace(), config()) as plain:
            reference = plain.acquire(request(shopper="c"), seed=request_seed(0, 3))
        assert isinstance(batch[1].error, RateLimitedError)
        assert batch[1].error.retry_after is not None
        assert isinstance(batch[2].error, DeadlineExceededError)
        assert batch[0].ok and batch[3].ok
        # The survivor's bits match a plain serial service with the same seed.
        assert batch[3].result.sql() == reference.sql()
        # Sheds never executed: they count in qos accounting, not as served
        # requests or search errors.
        assert description["requests_served"] == 2
        assert description["errors"] == 0

    def test_single_acquire_sheds_raise_typed_errors(self):
        with AcquisitionService(
            small_marketplace(), config(qos=True)
        ) as service:
            with pytest.raises(DeadlineExceededError):
                service.acquire(request(deadline=0.0))
            # The service recovers: the shed consumed no slot.
            assert service.acquire(request()).estimated_correlation is not None
            assert service.metrics()["qos"]["deadline_exceeded"] == 1

    def test_queue_section_keeps_its_schema_under_qos(self):
        with AcquisitionService(small_marketplace(), config(qos=True)) as service:
            service.acquire(request())
            queue = service.metrics()["queue"]
        assert set(queue) == {
            "max_depth",
            "policy",
            "depth",
            "peak_depth",
            "admitted",
            "rejected",
            "blocked_seconds",
        }
        assert queue["admitted"] == 1
        assert queue["depth"] == 0

    def test_queue_wait_and_execution_split_in_metrics(self):
        with AcquisitionService(small_marketplace(), config(qos=True)) as service:
            service.acquire(request())
            metrics = service.metrics()
        assert metrics["queue_wait"]["count"] == 1
        assert metrics["execution"]["count"] == 1
        # Execution dominates the end-to-end latency of an uncontended call.
        assert metrics["execution"]["mean_seconds"] <= metrics["latency"]["mean_seconds"]
