"""Tests for the two-layer join graph (Definition 4.2 and Property 4.1)."""

from __future__ import annotations

import pytest

from repro.exceptions import GraphConstructionError
from repro.graph.join_graph import JoinGraph
from repro.pricing.models import FlatAttributePricingModel
from repro.relational.table import Table


@pytest.fixture
def tables() -> list[Table]:
    orders = Table.from_rows(
        "orders", ["custkey", "amount"], [(i % 5, float(i)) for i in range(40)]
    )
    customers = Table.from_rows(
        "customers", ["custkey", "nationkey", "segment"], [(i, i % 3, f"s{i % 2}") for i in range(5)]
    )
    nations = Table.from_rows("nations", ["nationkey", "nname"], [(i, f"n{i}") for i in range(3)])
    isolated = Table.from_rows("isolated", ["other"], [(1,)])
    return [orders, customers, nations, isolated]


@pytest.fixture
def join_graph(tables) -> JoinGraph:
    return JoinGraph(tables, pricing=FlatAttributePricingModel(1.0))


class TestConstruction:
    def test_instance_vertices(self, join_graph):
        assert set(join_graph.instance_names) == {"orders", "customers", "nations", "isolated"}
        assert len(join_graph) == 4

    def test_i_edges_follow_shared_attributes(self, join_graph):
        assert join_graph.has_edge("orders", "customers")
        assert join_graph.has_edge("customers", "nations")
        assert not join_graph.has_edge("orders", "nations")
        assert not join_graph.has_edge("isolated", "orders")

    def test_edge_weights_are_join_informativeness(self, join_graph):
        edge = join_graph.edge("orders", "customers")
        assert set(edge.weights) == {frozenset({"custkey"})}
        assert 0.0 <= edge.weight <= 1.0

    def test_edge_lookup_is_symmetric(self, join_graph):
        assert join_graph.edge("customers", "orders") is join_graph.edge("orders", "customers")

    def test_unknown_edge_raises(self, join_graph):
        with pytest.raises(GraphConstructionError):
            join_graph.edge("orders", "isolated")

    def test_neighbors(self, join_graph):
        assert join_graph.neighbors("customers") == ("nations", "orders")
        assert join_graph.neighbors("isolated") == ()

    def test_empty_samples_rejected(self):
        with pytest.raises(GraphConstructionError):
            JoinGraph({})

    def test_unknown_source_instance_rejected(self, tables):
        with pytest.raises(GraphConstructionError):
            JoinGraph(tables, source_instances=["nope"])

    def test_as_vertex_count(self, join_graph):
        # orders: 2 attrs -> 1; customers: 3 -> 4; nations: 2 -> 1; isolated: 1 -> 0
        assert join_graph.num_as_vertices() == 1 + 4 + 1 + 0

    def test_describe(self, join_graph):
        info = join_graph.describe()
        assert info["num_instances"] == 4
        assert info["num_i_edges"] == 2


class TestPropertyFourOne:
    def test_same_join_attributes_share_weight(self):
        """AS-edges over the same instance pair and join attributes share the weight
        map, so the graph stores one weight per (pair, attribute set)."""
        left = Table.from_rows("l", ["j", "k", "a"], [(i % 3, i % 4, i) for i in range(30)])
        right = Table.from_rows("r", ["j", "k", "b"], [(i % 3, i % 4, -i) for i in range(20)])
        graph = JoinGraph([left, right], max_join_attribute_size=2)
        edge = graph.edge("l", "r")
        assert frozenset({"j"}) in edge.weights
        assert frozenset({"k"}) in edge.weights
        assert frozenset({"j", "k"}) in edge.weights
        # the I-edge weight is the minimum over the per-attribute-set weights
        assert edge.weight == min(edge.weights.values())
        assert edge.best_join_attributes in edge.weights

    def test_join_attribute_choices_sorted_by_weight(self):
        left = Table.from_rows("l", ["j", "k", "a"], [(i % 3, i % 10, i) for i in range(30)])
        right = Table.from_rows("r", ["j", "k", "b"], [(i % 3, i, -i) for i in range(20)])
        graph = JoinGraph([left, right], max_join_attribute_size=1)
        choices = graph.edge("l", "r").join_attribute_choices()
        weights = [graph.edge("l", "r").weights[c] for c in choices]
        assert weights == sorted(weights)


class TestInstanceServices:
    def test_instances_with_attribute(self, join_graph):
        assert join_graph.instances_with_attribute("custkey") == ("customers", "orders")
        assert join_graph.instances_with_attribute("missing") == ()

    def test_price_of_projection(self, join_graph):
        assert join_graph.price_of("customers", ["custkey", "segment"]) == 2.0

    def test_source_instances_are_free(self, tables):
        graph = JoinGraph(tables, pricing=FlatAttributePricingModel(1.0), source_instances=["orders"])
        assert graph.price_of("orders", ["custkey"]) == 0.0

    def test_sample_lookup(self, join_graph, tables):
        assert join_graph.sample("orders") is tables[0]
        with pytest.raises(GraphConstructionError):
            join_graph.sample("nope")

    def test_add_instance_updates_edges(self, join_graph):
        suppliers = Table.from_rows(
            "suppliers", ["nationkey", "sname"], [(i % 3, f"s{i}") for i in range(6)]
        )
        join_graph.add_instance(suppliers)
        assert "suppliers" in join_graph
        assert join_graph.has_edge("suppliers", "nations")
        assert join_graph.has_edge("suppliers", "customers")

    def test_add_instance_replaces_existing(self, join_graph):
        replacement = Table.from_rows("isolated", ["custkey"], [(1,)])
        join_graph.add_instance(replacement)
        assert join_graph.has_edge("isolated", "orders")
