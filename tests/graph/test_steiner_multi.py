"""Tests for the multi-candidate Step 1 output (minimal_weight_igraphs)."""

from __future__ import annotations

import pytest

from repro.exceptions import InfeasibleAcquisitionError
from repro.graph.join_graph import JoinGraph
from repro.graph.steiner import minimal_weight_igraph, minimal_weight_igraphs
from repro.relational.table import Table


@pytest.fixture
def diamond_graph() -> JoinGraph:
    """Two alternative routes from ``left`` to ``right``: via ``top`` or ``bottom``."""
    left = Table.from_rows("left", ["a", "b", "payload"], [(i % 4, i % 6, i) for i in range(40)])
    top = Table.from_rows("top", ["a", "c"], [(i, i % 2) for i in range(4)])
    bottom = Table.from_rows("bottom", ["b", "c"], [(i, i % 2) for i in range(6)])
    right = Table.from_rows("right", ["c", "label"], [(i, f"l{i}") for i in range(2)])
    return JoinGraph([left, top, bottom, right])


class TestMultipleIGraphs:
    def test_returns_multiple_distinct_candidates(self, diamond_graph):
        igraphs = minimal_weight_igraphs(diamond_graph, ["left", "right"], rng=0)
        assert len(igraphs) >= 2
        node_sets = {igraph.nodes for igraph in igraphs}
        assert len(node_sets) == len(igraphs)
        for igraph in igraphs:
            assert igraph.contains_all(["left", "right"])

    def test_sorted_by_weight(self, diamond_graph):
        igraphs = minimal_weight_igraphs(diamond_graph, ["left", "right"], rng=0)
        weights = [igraph.total_weight for igraph in igraphs]
        assert weights == sorted(weights)

    def test_singular_wrapper_returns_lightest(self, diamond_graph):
        igraphs = minimal_weight_igraphs(diamond_graph, ["left", "right"], rng=3)
        single = minimal_weight_igraph(diamond_graph, ["left", "right"], rng=3)
        assert single == igraphs[0]

    def test_alpha_filters_candidates(self, diamond_graph):
        unfiltered = minimal_weight_igraphs(diamond_graph, ["left", "right"], rng=0)
        cutoff = unfiltered[0].total_weight + 1e-9
        filtered = minimal_weight_igraphs(
            diamond_graph, ["left", "right"], max_weight=cutoff, rng=0
        )
        assert all(igraph.total_weight <= cutoff for igraph in filtered)
        assert len(filtered) <= len(unfiltered)

    def test_alpha_below_everything_raises(self, diamond_graph):
        lightest = minimal_weight_igraphs(diamond_graph, ["left", "right"], rng=0)[0]
        if lightest.total_weight > 0:
            with pytest.raises(InfeasibleAcquisitionError):
                minimal_weight_igraphs(
                    diamond_graph,
                    ["left", "right"],
                    max_weight=lightest.total_weight / 2,
                    rng=0,
                )

    def test_single_terminal_single_candidate(self, diamond_graph):
        igraphs = minimal_weight_igraphs(diamond_graph, ["left"], rng=0)
        assert len(igraphs) == 1
        assert igraphs[0].nodes == ("left",)
