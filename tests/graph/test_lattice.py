"""Tests for the attribute-set lattice (Definition 4.1)."""

from __future__ import annotations

import pytest

from repro.exceptions import GraphConstructionError
from repro.graph.lattice import AttributeSetLattice
from repro.pricing.models import FlatAttributePricingModel
from repro.relational.table import Table


@pytest.fixture
def lattice() -> AttributeSetLattice:
    return AttributeSetLattice("d", ["A", "B", "C", "D"], min_size=2)


class TestCounts:
    def test_vertex_count_formula(self, lattice):
        # 2^4 - 4 - 1 = 11 vertices of size >= 2
        assert lattice.num_vertices() == 11

    def test_height(self, lattice):
        assert lattice.height == 3

    def test_single_attribute_vertices_allowed_when_min_size_one(self):
        lattice = AttributeSetLattice("d", ["A", "B"], min_size=1)
        assert lattice.num_vertices() == 3

    def test_empty_attributes_rejected(self):
        with pytest.raises(GraphConstructionError):
            AttributeSetLattice("d", [])

    def test_invalid_min_size_rejected(self):
        with pytest.raises(GraphConstructionError):
            AttributeSetLattice("d", ["A"], min_size=0)


class TestMembershipAndStructure:
    def test_contains(self, lattice):
        assert {"A", "B"} in lattice
        assert {"A"} not in lattice  # below min_size
        assert {"A", "Z"} not in lattice

    def test_iter_vertices_by_level(self, lattice):
        vertices = list(lattice.iter_vertices(max_size=2))
        assert len(vertices) == 6
        assert all(len(v) == 2 for v in vertices)

    def test_children(self, lattice):
        children = lattice.children({"A", "B"})
        assert frozenset({"A", "B", "C"}) in children
        assert frozenset({"A", "B", "D"}) in children
        assert len(children) == 2

    def test_parents(self, lattice):
        parents = lattice.parents({"A", "B", "C"})
        assert frozenset({"A", "B"}) in parents
        assert len(parents) == 3

    def test_parents_of_minimal_vertex_is_empty(self, lattice):
        assert lattice.parents({"A", "B"}) == []

    def test_is_ancestor(self, lattice):
        assert lattice.is_ancestor({"A", "B"}, {"A", "B", "C"})
        assert not lattice.is_ancestor({"A", "B"}, {"C", "D"})

    def test_level_of(self, lattice):
        assert lattice.level_of({"A", "B"}) == 1
        assert lattice.level_of({"A", "B", "C", "D"}) == 3

    def test_level_of_non_vertex_raises(self, lattice):
        with pytest.raises(GraphConstructionError):
            lattice.level_of({"A"})

    def test_vertices_containing(self, lattice):
        containing = lattice.vertices_containing({"A", "B"})
        assert all({"A", "B"} <= set(v) for v in containing)
        assert len(containing) == 4

    def test_vertices_containing_unknown_attribute(self, lattice):
        assert lattice.vertices_containing({"Z"}) == []


class TestPricing:
    def test_price_of_vertex(self):
        lattice = AttributeSetLattice("d", ["A", "B"], min_size=1)
        table = Table.from_rows("d", ["A", "B"], [(1, 2)])
        assert lattice.price_of({"A", "B"}, table, FlatAttributePricingModel(1.5)) == 3.0

    def test_price_of_non_vertex_raises(self, lattice):
        table = Table.from_rows("d", ["A", "B", "C", "D"], [(1, 2, 3, 4)])
        with pytest.raises(GraphConstructionError):
            lattice.price_of({"A"}, table, FlatAttributePricingModel())
