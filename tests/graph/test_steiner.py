"""Tests for Step 1: minimal-weight I-layer subgraphs."""

from __future__ import annotations

import pytest

from repro.exceptions import InfeasibleAcquisitionError, SearchError
from repro.graph.join_graph import JoinGraph
from repro.graph.steiner import igraph_join_order, minimal_weight_igraph
from repro.relational.table import Table


@pytest.fixture
def chain_graph() -> JoinGraph:
    """orders - customers - nations - regions chain, plus an isolated table."""
    # custkey ranges over 0..6 while customers only hold 0..4, so some order
    # rows have no matching customer and the edge's join informativeness is > 0
    orders = Table.from_rows("orders", ["custkey", "amount"], [(i % 7, float(i)) for i in range(30)])
    customers = Table.from_rows(
        "customers", ["custkey", "nationkey"], [(i, i % 3) for i in range(5)]
    )
    nations = Table.from_rows("nations", ["nationkey", "regionkey"], [(i, i % 2) for i in range(3)])
    regions = Table.from_rows("regions", ["regionkey", "rname"], [(i, f"r{i}") for i in range(2)])
    lonely = Table.from_rows("lonely", ["zzz"], [(1,)])
    return JoinGraph([orders, customers, nations, regions, lonely])


class TestMinimalWeightIGraph:
    def test_connects_terminals(self, chain_graph):
        igraph = minimal_weight_igraph(chain_graph, ["orders", "regions"], rng=0)
        assert igraph.contains_all(["orders", "regions"])
        # the chain is the only way to connect them
        assert set(igraph.nodes) == {"orders", "customers", "nations", "regions"}
        assert igraph.size == 4

    def test_single_terminal(self, chain_graph):
        igraph = minimal_weight_igraph(chain_graph, ["orders"], rng=0)
        assert igraph.nodes == ("orders",)
        assert igraph.total_weight == 0.0

    def test_adjacent_terminals_use_direct_edge(self, chain_graph):
        igraph = minimal_weight_igraph(chain_graph, ["orders", "customers"], rng=0)
        assert set(igraph.nodes) == {"orders", "customers"}
        assert igraph.total_weight == pytest.approx(
            chain_graph.edge("orders", "customers").weight
        )

    def test_unreachable_terminals_raise(self, chain_graph):
        with pytest.raises(InfeasibleAcquisitionError):
            minimal_weight_igraph(chain_graph, ["orders", "lonely"], rng=0)

    def test_weight_threshold_enforced(self, chain_graph):
        with pytest.raises(InfeasibleAcquisitionError):
            minimal_weight_igraph(chain_graph, ["orders", "regions"], max_weight=0.0, rng=0)

    def test_unknown_terminal_rejected(self, chain_graph):
        with pytest.raises(SearchError):
            minimal_weight_igraph(chain_graph, ["orders", "nope"], rng=0)

    def test_empty_terminals_rejected(self, chain_graph):
        with pytest.raises(SearchError):
            minimal_weight_igraph(chain_graph, [], rng=0)

    def test_total_weight_matches_edges(self, chain_graph):
        igraph = minimal_weight_igraph(chain_graph, ["orders", "regions"], rng=0)
        expected = sum(
            chain_graph.edge(left, right).weight for left, right in igraph.edges
        )
        assert igraph.total_weight == pytest.approx(expected)

    def test_deterministic_for_seed(self, chain_graph):
        first = minimal_weight_igraph(chain_graph, ["orders", "regions"], rng=5)
        second = minimal_weight_igraph(chain_graph, ["orders", "regions"], rng=5)
        assert first == second

    def test_landmark_seed_keyword_equals_int_rng(self, chain_graph):
        by_rng = minimal_weight_igraph(chain_graph, ["orders", "regions"], rng=5)
        by_seed = minimal_weight_igraph(
            chain_graph, ["orders", "regions"], landmark_seed=5
        )
        assert by_rng == by_seed

    def test_mutable_random_stream_rejected(self, chain_graph):
        import random

        with pytest.raises(SearchError, match="prior draws"):
            minimal_weight_igraph(
                chain_graph, ["orders", "regions"], rng=random.Random(0)
            )

    def test_both_seed_forms_rejected_together(self, chain_graph):
        with pytest.raises(SearchError, match="not both"):
            minimal_weight_igraph(
                chain_graph, ["orders", "regions"], rng=1, landmark_seed=2
            )


class TestJoinOrder:
    def test_order_keeps_prefixes_connected(self, chain_graph):
        igraph = minimal_weight_igraph(chain_graph, ["orders", "regions"], rng=0)
        order = igraph_join_order(igraph)
        assert set(order) == set(igraph.nodes)
        adjacency = {frozenset(edge) for edge in igraph.edges}
        placed = {order[0]}
        for name in order[1:]:
            assert any(frozenset((name, prev)) in adjacency for prev in placed)
            placed.add(name)

    def test_start_node_honoured(self, chain_graph):
        igraph = minimal_weight_igraph(chain_graph, ["orders", "regions"], rng=0)
        order = igraph_join_order(igraph, start="orders")
        assert order[0] == "orders"

    def test_empty_igraph(self):
        from repro.graph.steiner import IGraph

        assert igraph_join_order(IGraph((), (), 0.0)) == []
