"""Tests for join-graph / target-graph export (JSON and DOT)."""

from __future__ import annotations

import json

import pytest

from repro.graph.export import (
    join_graph_to_dict,
    join_graph_to_dot,
    target_graph_to_dict,
    target_graph_to_dot,
    write_dot,
    write_join_graph_json,
)
from repro.graph.join_graph import JoinGraph
from repro.graph.target import TargetGraph
from repro.relational.table import Table


@pytest.fixture
def join_graph() -> JoinGraph:
    orders = Table.from_rows("orders", ["custkey", "amount"], [(i % 4, float(i)) for i in range(20)])
    customers = Table.from_rows("customers", ["custkey", "segment"], [(i, f"s{i % 2}") for i in range(4)])
    return JoinGraph([orders, customers], source_instances=["orders"])


@pytest.fixture
def target_graph() -> TargetGraph:
    return TargetGraph(
        nodes=["orders", "customers"],
        edges=[frozenset({"custkey"})],
        projections={"orders": {"custkey", "amount"}, "customers": {"custkey", "segment"}},
        source_instances={"orders"},
    )


class TestDictExport:
    def test_join_graph_dict_round_trips_through_json(self, join_graph):
        payload = json.loads(json.dumps(join_graph_to_dict(join_graph)))
        assert {node["name"] for node in payload["nodes"]} == {"orders", "customers"}
        assert payload["edges"][0]["weight"] >= 0.0
        assert "custkey" in payload["edges"][0]["join_attribute_weights"]

    def test_source_flag_exported(self, join_graph):
        payload = join_graph_to_dict(join_graph)
        flags = {node["name"]: node["is_source"] for node in payload["nodes"]}
        assert flags["orders"] is True
        assert flags["customers"] is False

    def test_target_graph_dict(self, target_graph):
        payload = target_graph_to_dict(target_graph)
        assert payload["nodes"] == ["orders", "customers"]
        assert payload["edges"][0]["join_attributes"] == ["custkey"]
        assert payload["projections"]["customers"] == ["custkey", "segment"]


class TestDotExport:
    def test_join_graph_dot_contains_nodes_and_edges(self, join_graph):
        dot = join_graph_to_dot(join_graph)
        assert dot.startswith("graph")
        assert '"orders"' in dot and '"customers"' in dot
        assert "--" in dot
        assert "custkey" in dot

    def test_source_nodes_highlighted(self, join_graph):
        dot = join_graph_to_dot(join_graph)
        assert "lightblue" in dot

    def test_target_graph_dot_is_directed(self, target_graph):
        dot = target_graph_to_dot(target_graph)
        assert dot.startswith("digraph")
        assert "->" in dot
        assert "amount" in dot


class TestFileExport:
    def test_write_join_graph_json(self, join_graph, tmp_path):
        path = write_join_graph_json(join_graph, tmp_path / "nested" / "graph.json")
        assert path.exists()
        loaded = json.loads(path.read_text())
        assert len(loaded["nodes"]) == 2

    def test_write_dot(self, target_graph, tmp_path):
        path = write_dot(target_graph_to_dot(target_graph), tmp_path / "graph.dot")
        assert path.read_text().startswith("digraph")
