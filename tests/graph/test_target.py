"""Tests for target graphs (Definition 4.4): structure, evaluation, constraints."""

from __future__ import annotations

import pytest

from repro.exceptions import GraphConstructionError, SearchError
from repro.graph.target import TargetGraph, TargetGraphEvaluation, enumerate_covering_sets
from repro.pricing.models import FlatAttributePricingModel
from repro.quality.fd import FunctionalDependency
from repro.relational.table import Table


@pytest.fixture
def tables() -> dict[str, Table]:
    orders = Table.from_rows(
        "orders", ["custkey", "totalprice"], [(i % 5, float(i % 5) * 100 + i % 2) for i in range(40)]
    )
    customers = Table.from_rows(
        "customers",
        ["custkey", "nationkey", "segment"],
        [(i, i % 3, f"s{i % 3}") for i in range(5)],
    )
    nations = Table.from_rows("nations", ["nationkey", "nname"], [(i, f"n{i}") for i in range(3)])
    return {"orders": orders, "customers": customers, "nations": nations}


@pytest.fixture
def path_graph() -> TargetGraph:
    return TargetGraph(
        nodes=["orders", "customers", "nations"],
        edges=[frozenset({"custkey"}), frozenset({"nationkey"})],
        projections={
            "orders": {"custkey", "totalprice"},
            "customers": {"custkey", "nationkey"},
            "nations": {"nationkey", "nname"},
        },
        source_instances={"orders"},
    )


class TestConstruction:
    def test_default_parents_form_a_path(self, path_graph):
        assert path_graph.parents == [0, 1]
        assert path_graph.length == 3

    def test_default_projections_cover_join_attributes(self):
        graph = TargetGraph(
            nodes=["a", "b"],
            edges=[frozenset({"k"})],
        )
        assert graph.projections["a"] == frozenset({"k"})
        assert graph.projections["b"] == frozenset({"k"})

    def test_tree_shaped_parents(self):
        graph = TargetGraph(
            nodes=["hub", "left", "right"],
            edges=[frozenset({"x"}), frozenset({"y"})],
            parents=[0, 0],
        )
        pairs = graph.edge_pairs()
        assert pairs[0][:2] == ("hub", "left")
        assert pairs[1][:2] == ("hub", "right")

    def test_projection_missing_join_attribute_rejected(self):
        with pytest.raises(GraphConstructionError):
            TargetGraph(
                nodes=["a", "b"],
                edges=[frozenset({"k"})],
                projections={"a": {"other"}, "b": {"k"}},
            )

    def test_edge_count_mismatch_rejected(self):
        with pytest.raises(GraphConstructionError):
            TargetGraph(nodes=["a", "b"], edges=[])

    def test_duplicate_nodes_rejected(self):
        with pytest.raises(GraphConstructionError):
            TargetGraph(nodes=["a", "a"], edges=[frozenset({"k"})])

    def test_invalid_parent_rejected(self):
        with pytest.raises(GraphConstructionError):
            TargetGraph(nodes=["a", "b"], edges=[frozenset({"k"})], parents=[5])

    def test_empty_nodes_rejected(self):
        with pytest.raises(GraphConstructionError):
            TargetGraph(nodes=[], edges=[])

    def test_purchased_instances_exclude_sources(self, path_graph):
        assert path_graph.purchased_instances() == ["customers", "nations"]


class TestMutation:
    def test_replace_edge_rederives_projections(self, path_graph):
        replaced = path_graph.replace_edge(0, {"custkey"})
        assert replaced.edges[0] == frozenset({"custkey"})
        # non-join extras (totalprice, nname) survive the re-derivation
        assert "totalprice" in replaced.projections["orders"]
        assert "nname" in replaced.projections["nations"]

    def test_replace_edge_out_of_range(self, path_graph):
        with pytest.raises(SearchError):
            path_graph.replace_edge(5, {"custkey"})

    def test_with_projection(self, path_graph):
        updated = path_graph.with_projection("customers", {"custkey", "nationkey", "segment"})
        assert "segment" in updated.projections["customers"]

    def test_with_projection_unknown_instance(self, path_graph):
        with pytest.raises(SearchError):
            path_graph.with_projection("nope", {"x"})


class TestEvaluation:
    def test_joined_table_schema(self, path_graph, tables):
        joined = path_graph.joined_table(tables)
        assert {"totalprice", "nname"} <= set(joined.schema.names)
        assert len(joined) == 40

    def test_missing_table_raises(self, path_graph):
        with pytest.raises(SearchError):
            path_graph.joined_table({"orders": Table.empty("orders", ["custkey", "totalprice"])})

    def test_price_excludes_source_instances(self, path_graph, tables):
        pricing = FlatAttributePricingModel(1.0)
        # customers buys 2 attrs, nations buys 2 attrs; orders is owned
        assert path_graph.price(tables, pricing) == 4.0

    def test_weight_sums_edge_ji(self, path_graph, tables):
        weight = path_graph.weight(tables)
        assert 0.0 <= weight <= 2.0

    def test_evaluate_returns_all_metrics(self, path_graph, tables):
        fds = [FunctionalDependency("nationkey", "nname")]
        evaluation = path_graph.evaluate(
            tables, ["totalprice"], ["nname"], fds, FlatAttributePricingModel(1.0)
        )
        assert isinstance(evaluation, TargetGraphEvaluation)
        assert evaluation.correlation > 0.0
        assert evaluation.quality == 1.0
        assert evaluation.price == 4.0
        assert evaluation.join_rows == 40

    def test_satisfies_constraints(self):
        evaluation = TargetGraphEvaluation(
            correlation=2.0, quality=0.8, weight=1.0, price=10.0
        )
        assert evaluation.satisfies(max_weight=1.5, min_quality=0.5, budget=10.0)
        assert not evaluation.satisfies(max_weight=0.5)
        assert not evaluation.satisfies(min_quality=0.9)
        assert not evaluation.satisfies(budget=9.0)

    def test_intermediate_hook_applied(self, path_graph, tables):
        calls = []

        def hook(table):
            calls.append(len(table))
            return table

        path_graph.joined_table(tables, intermediate_hook=hook)
        assert len(calls) == 2


class TestEnumerateCoveringSets:
    def test_example_4_1_style_enumeration(self):
        covering = enumerate_covering_sets(
            {"A": ["v1", "v4"], "B": ["v1", "v5"], "C": ["v5", "v6"]}
        )
        assert frozenset({"v1", "v5"}) in covering
        assert all(isinstance(s, frozenset) for s in covering)
        # all sets must cover each attribute through at least one chosen instance
        assert len(covering) == len(set(covering))

    def test_missing_attribute_raises(self):
        with pytest.raises(SearchError):
            enumerate_covering_sets({"A": []})

    def test_max_sets_cap(self):
        covering = enumerate_covering_sets(
            {"A": [f"a{i}" for i in range(20)], "B": [f"b{i}" for i in range(20)]},
            max_sets=10,
        )
        assert len(covering) == 10
