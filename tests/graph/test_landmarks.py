"""Tests for the landmark-based approximate shortest-path index."""

from __future__ import annotations

import random

import networkx as nx
import pytest

from repro.exceptions import SearchError
from repro.graph.landmarks import (
    LandmarkIndex,
    canonical_landmark_seed,
    derive_landmark_seed,
)


@pytest.fixture
def weighted_graph() -> nx.Graph:
    graph = nx.Graph()
    edges = [
        ("a", "b", 0.1),
        ("b", "c", 0.2),
        ("c", "d", 0.1),
        ("a", "d", 1.0),
        ("d", "e", 0.3),
        ("b", "e", 0.9),
    ]
    for left, right, weight in edges:
        graph.add_edge(left, right, weight=weight)
    graph.add_node("island")
    return graph


class TestConstruction:
    def test_landmark_count_capped_by_graph_size(self, weighted_graph):
        index = LandmarkIndex(weighted_graph, num_landmarks=50, rng=0)
        assert len(index.landmarks) == weighted_graph.number_of_nodes()

    def test_empty_graph_rejected(self):
        with pytest.raises(SearchError):
            LandmarkIndex(nx.Graph())

    def test_invalid_landmark_count(self, weighted_graph):
        with pytest.raises(SearchError):
            LandmarkIndex(weighted_graph, num_landmarks=0)

    def test_deterministic_with_seed(self, weighted_graph):
        first = LandmarkIndex(weighted_graph, num_landmarks=3, rng=7)
        second = LandmarkIndex(weighted_graph, num_landmarks=3, rng=7)
        assert first.landmarks == second.landmarks


class TestSeedNormalization:
    """Step-1 output must depend only on declared inputs (the memo contract)."""

    def test_canonical_seed_maps_none_to_zero(self):
        assert canonical_landmark_seed(None) == 0
        assert canonical_landmark_seed(17) == 17

    def test_mutable_random_stream_rejected(self, weighted_graph):
        with pytest.raises(SearchError, match="prior draws"):
            canonical_landmark_seed(random.Random(0))
        with pytest.raises(SearchError):
            LandmarkIndex(weighted_graph, rng=random.Random(0))

    def test_non_integer_seed_rejected(self):
        with pytest.raises(SearchError):
            canonical_landmark_seed("seven")

    def test_landmark_seed_keyword_equals_int_rng(self, weighted_graph):
        by_rng = LandmarkIndex(weighted_graph, num_landmarks=3, rng=7)
        by_seed = LandmarkIndex(weighted_graph, num_landmarks=3, landmark_seed=7)
        assert by_rng.landmarks == by_seed.landmarks
        assert by_seed.landmark_seed == 7

    def test_default_seed_is_declared_not_silent(self, weighted_graph):
        explicit = LandmarkIndex(weighted_graph, num_landmarks=3, landmark_seed=0)
        implicit = LandmarkIndex(weighted_graph, num_landmarks=3)
        assert implicit.landmarks == explicit.landmarks
        assert implicit.landmark_seed == 0

    def test_both_seed_forms_rejected_together(self, weighted_graph):
        with pytest.raises(SearchError, match="not both"):
            LandmarkIndex(weighted_graph, rng=1, landmark_seed=2)

    def test_derived_seed_is_stable_and_domain_tagged(self):
        assert derive_landmark_seed(0) == derive_landmark_seed(0)
        # Distinct from the base seed and across bases: the landmark stream
        # never replays the MCMC proposal stream seeded from the same base.
        assert derive_landmark_seed(0) != 0
        assert derive_landmark_seed(0) != derive_landmark_seed(1)

    def test_index_ignores_prior_draws_entirely(self, weighted_graph):
        """Two indexes built mid-way through unrelated randomness agree."""
        random.seed(123)
        random.random()
        first = LandmarkIndex(weighted_graph, num_landmarks=3, landmark_seed=9)
        random.seed(456)
        for _ in range(10):
            random.random()
        second = LandmarkIndex(weighted_graph, num_landmarks=3, landmark_seed=9)
        assert first.landmarks == second.landmarks


class TestQueries:
    def test_estimate_is_upper_bound(self, weighted_graph):
        index = LandmarkIndex(weighted_graph, num_landmarks=6, rng=0)
        exact = nx.dijkstra_path_length(weighted_graph, "a", "e")
        assert index.estimate_distance("a", "e") >= exact - 1e-12

    def test_estimate_exact_when_all_nodes_are_landmarks(self, weighted_graph):
        index = LandmarkIndex(weighted_graph, num_landmarks=7, rng=1)
        exact = nx.dijkstra_path_length(weighted_graph, "a", "c")
        assert index.estimate_distance("a", "c") == pytest.approx(exact)

    def test_approximate_path_connects_endpoints(self, weighted_graph):
        index = LandmarkIndex(weighted_graph, num_landmarks=4, rng=2)
        path = index.approximate_path("a", "e")
        assert path[0] == "a"
        assert path[-1] == "e"
        # every consecutive pair is an actual edge
        for left, right in zip(path, path[1:]):
            assert weighted_graph.has_edge(left, right)

    def test_approximate_path_has_no_repeated_vertices(self, weighted_graph):
        index = LandmarkIndex(weighted_graph, num_landmarks=4, rng=3)
        path = index.approximate_path("a", "e")
        assert len(path) == len(set(path))

    def test_same_source_and_destination(self, weighted_graph):
        index = LandmarkIndex(weighted_graph, num_landmarks=2, rng=0)
        assert index.approximate_path("a", "a") == ["a"]

    def test_disconnected_vertex_unreachable(self, weighted_graph):
        index = LandmarkIndex(weighted_graph, num_landmarks=6, rng=0)
        assert index.estimate_distance("a", "island") == float("inf")
        assert index.approximate_path("a", "island") == []

    def test_path_weight(self, weighted_graph):
        index = LandmarkIndex(weighted_graph, num_landmarks=3, rng=0)
        assert index.path_weight(["a", "b", "c"]) == pytest.approx(0.3)
        assert index.path_weight(["a", "e"]) == float("inf")
