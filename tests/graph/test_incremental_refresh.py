"""Incremental join-graph refresh: recompute only edges touching changed instances.

The contract: JI weights are pure functions of the endpoint samples, so a
rebuild seeded with ``reuse_cache_from`` recomputes exactly the edges whose
endpoint samples changed (asserted through the ``edge_recomputes`` /
``ji_computations`` counters) and produces weights identical to a
from-scratch build.
"""

from __future__ import annotations

from repro.core.config import DanceConfig
from repro.core.dance import DANCE
from repro.graph.join_graph import JoinGraph
from repro.marketplace.dataset import MarketplaceDataset
from repro.marketplace.market import Marketplace
from repro.pricing.models import EntropyPricingModel
from repro.relational.table import Table


def triangle_tables() -> list[Table]:
    """Three instances forming a join triangle (every pair shares a key)."""
    return [
        Table.from_rows("alpha", ["k1", "k2", "a"], [(i % 4, i % 3, i) for i in range(24)]),
        Table.from_rows("beta", ["k1", "k3", "b"], [(i % 4, i % 5, i * 2) for i in range(20)]),
        Table.from_rows("gamma", ["k2", "k3", "c"], [(i % 3, i % 5, i * 3) for i in range(15)]),
    ]


def edges_touching(graph: JoinGraph, name: str) -> list:
    return [edge for edge in graph.edges() if name in (edge.left, edge.right)]


def weight_maps(graph: JoinGraph) -> dict[tuple[str, str], dict]:
    return {
        (edge.left, edge.right): dict(edge.weights) for edge in graph.edges()
    }


class TestCounters:
    def test_fresh_build_recomputes_every_edge(self):
        graph = JoinGraph(triangle_tables())
        assert graph.edge_recomputes == len(graph.edges()) == 3
        assert graph.ji_computations == len(graph._ji_cache)

    def test_cached_edge_weight_does_not_count(self):
        graph = JoinGraph(triangle_tables())
        computed = graph.ji_computations
        graph.edge_weight("alpha", "beta", ["k1"])
        assert graph.ji_computations == computed

    def test_describe_exposes_counters(self):
        description = JoinGraph(triangle_tables()).describe()
        assert description["edge_recomputes"] == 3
        assert description["ji_computations"] >= 3


class TestReuseCacheFrom:
    def test_unchanged_samples_recompute_nothing(self):
        tables = triangle_tables()
        prior = JoinGraph(tables)
        rebuilt = JoinGraph(tables, reuse_cache_from=prior)
        assert rebuilt.edge_recomputes == 0
        assert rebuilt.ji_computations == 0
        assert weight_maps(rebuilt) == weight_maps(prior)

    def test_one_replaced_sample_recomputes_only_its_edges(self):
        tables = triangle_tables()
        prior = JoinGraph(tables)
        replacement = Table.from_rows(
            "beta", ["k1", "k3", "b"], [(i % 2, i % 5, i) for i in range(30)]
        )
        rebuilt = JoinGraph(
            [tables[0], replacement, tables[2]], reuse_cache_from=prior
        )
        assert rebuilt.edge_recomputes == len(edges_touching(rebuilt, "beta")) == 2
        # The untouched edge keeps the identical weights without recomputation.
        untouched = rebuilt.edge("alpha", "gamma")
        assert dict(untouched.weights) == dict(prior.edge("alpha", "gamma").weights)

    def test_reused_weights_match_a_full_rebuild(self):
        tables = triangle_tables()
        prior = JoinGraph(tables)
        replacement = Table.from_rows(
            "beta", ["k1", "k3", "b"], [(i % 2, i % 5, i) for i in range(30)]
        )
        new_tables = [tables[0], replacement, tables[2]]
        incremental = JoinGraph(new_tables, reuse_cache_from=prior)
        from_scratch = JoinGraph(new_tables)
        assert weight_maps(incremental) == weight_maps(from_scratch)
        assert from_scratch.edge_recomputes == 3

    def test_content_equal_but_distinct_objects_are_recomputed(self):
        """The identity check is conservative: equal copies do not reuse."""
        tables = triangle_tables()
        prior = JoinGraph(tables)
        copies = [
            Table.from_rows(t.name, t.schema, list(t.iter_rows())) for t in tables
        ]
        rebuilt = JoinGraph(copies, reuse_cache_from=prior)
        assert rebuilt.edge_recomputes == 3
        assert weight_maps(rebuilt) == weight_maps(prior)


class TestDanceIncrementalRefresh:
    def build_dance(self) -> DANCE:
        pricing = EntropyPricingModel()
        marketplace = Marketplace(default_pricing=pricing)
        for table in triangle_tables():
            marketplace.host(MarketplaceDataset(table=table, pricing=pricing))
        dance = DANCE(marketplace, DanceConfig(sampling_rate=1.0))
        dance.build_offline()
        return dance

    def test_adding_a_source_is_incremental(self):
        dance = self.build_dance()
        graph = dance.join_graph
        version = dance.graph_version
        source = Table.from_rows("mine", ["k1", "mine_x"], [(i % 4, i) for i in range(10)])
        summary = dance.register_source_tables([source])
        assert summary["mode"] == "incremental"
        assert summary["added"] == ["mine"] and summary["replaced"] == []
        assert dance.join_graph is graph
        assert dance.graph_version == version + 1
        assert summary["edge_recomputes"] == len(edges_touching(graph, "mine"))

    def test_replacing_a_source_rebuilds_only_its_edges(self):
        dance = self.build_dance()
        source = Table.from_rows("mine", ["k1", "mine_x"], [(i % 4, i) for i in range(10)])
        dance.register_source_tables([source])
        replacement = Table.from_rows(
            "mine", ["k1", "mine_x"], [(i % 2, i * 7) for i in range(12)]
        )
        summary = dance.register_source_tables([replacement])
        assert summary["mode"] == "rebuild"
        assert summary["replaced"] == ["mine"]
        rebuilt = dance.join_graph
        assert summary["edge_recomputes"] == len(edges_touching(rebuilt, "mine"))

    def test_rebuild_weights_match_from_scratch(self):
        dance = self.build_dance()
        source = Table.from_rows("mine", ["k1", "mine_x"], [(i % 4, i) for i in range(10)])
        dance.register_source_tables([source])
        replacement = Table.from_rows(
            "mine", ["k1", "mine_x"], [(i % 2, i * 7) for i in range(12)]
        )
        dance.register_source_tables([replacement])
        graph = dance.join_graph
        scratch = JoinGraph(
            {name: graph.sample(name) for name in graph.instance_names},
            pricing=graph.pricing,
            source_instances=tuple(graph.source_instances),
        )
        assert weight_maps(graph) == weight_maps(scratch)

    def test_refinement_rebuild_reuses_source_source_edges(self):
        """Re-buying samples changes hosted tables only; source pairs reuse."""
        dance = self.build_dance()
        sources = [
            Table.from_rows("mine", ["k1", "mine_x"], [(i % 4, i) for i in range(10)]),
            Table.from_rows("yours", ["k1", "yours_y"], [(i % 4, -i) for i in range(10)]),
        ]
        dance.register_source_tables(sources)
        total_edges = len(dance.join_graph.edges())
        source_pair_edges = [
            edge
            for edge in dance.join_graph.edges()
            if {edge.left, edge.right} <= {"mine", "yours"}
        ]
        dance.build_offline(sampling_rate=1.0)
        rebuilt = dance.join_graph
        assert len(rebuilt.edges()) == total_edges
        assert rebuilt.edge_recomputes == total_edges - len(source_pair_edges)

    def test_deferred_registration_before_offline(self):
        pricing = EntropyPricingModel()
        marketplace = Marketplace(default_pricing=pricing)
        for table in triangle_tables():
            marketplace.host(MarketplaceDataset(table=table, pricing=pricing))
        dance = DANCE(marketplace, DanceConfig(sampling_rate=1.0))
        summary = dance.register_source_tables(
            [Table.from_rows("mine", ["k1", "x"], [(1, 2)])]
        )
        assert summary["mode"] == "deferred"
        dance.build_offline()
        assert "mine" in dance.join_graph.instance_names
