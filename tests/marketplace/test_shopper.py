"""Tests for the data shopper and acquisition requests."""

from __future__ import annotations

import pytest

from repro.exceptions import BudgetExceededError, SearchError
from repro.marketplace.dataset import MarketplaceDataset
from repro.marketplace.market import Marketplace, ProjectionQuery
from repro.marketplace.shopper import AcquisitionRequest, DataShopper
from repro.pricing.budget import Budget
from repro.pricing.models import FlatAttributePricingModel
from repro.relational.table import Table


@pytest.fixture
def market() -> Marketplace:
    pricing = FlatAttributePricingModel(3.0)
    market = Marketplace(default_pricing=pricing)
    table = Table.from_rows("census", ["zipcode", "population"], [("07030", 50000)])
    market.host(MarketplaceDataset(table=table, pricing=pricing))
    return market


@pytest.fixture
def shopper() -> DataShopper:
    source = Table.from_rows("local", ["zipcode", "age"], [("07030", 30)])
    return DataShopper(name="adam", source_tables=[source], budget=Budget(total=10.0))


class TestAcquisitionRequest:
    def test_valid_request(self):
        request = AcquisitionRequest(["age"], ["disease"], budget=5.0, min_quality=0.5)
        assert request.source_attributes == ("age",)
        assert request.target_attributes == ("disease",)

    def test_empty_targets_rejected(self):
        with pytest.raises(SearchError):
            AcquisitionRequest(["age"], [], budget=5.0)

    def test_negative_budget_rejected(self):
        with pytest.raises(SearchError):
            AcquisitionRequest(["age"], ["disease"], budget=-1.0)

    def test_invalid_quality_rejected(self):
        with pytest.raises(SearchError):
            AcquisitionRequest([], ["disease"], budget=5.0, min_quality=1.5)

    def test_negative_alpha_rejected(self):
        with pytest.raises(SearchError):
            AcquisitionRequest([], ["disease"], budget=5.0, max_join_informativeness=-0.1)

    def test_with_budget_keeps_other_fields(self):
        request = AcquisitionRequest(["age"], ["disease"], budget=5.0, min_quality=0.4)
        rebudgeted = request.with_budget(9.0)
        assert rebudgeted.budget == 9.0
        assert rebudgeted.min_quality == 0.4

    def test_no_source_attributes_allowed(self):
        request = AcquisitionRequest([], ["disease"], budget=5.0)
        assert request.source_attributes == ()


class TestDataShopper:
    def test_source_attribute_names(self, shopper):
        assert shopper.source_attribute_names() == ("zipcode", "age")
        assert shopper.owns_attribute("age")
        assert not shopper.owns_attribute("disease")

    def test_make_request_uses_remaining_budget(self, shopper):
        request = shopper.make_request(["population"])
        assert request.budget == pytest.approx(10.0)
        assert request.source_attributes == ("zipcode", "age")

    def test_make_request_with_explicit_sources(self, shopper):
        request = shopper.make_request(["population"], source_attributes=["age"])
        assert request.source_attributes == ("age",)

    def test_purchase_charges_budget_and_stores_receipts(self, shopper, market):
        queries = [ProjectionQuery("census", ["zipcode", "population"])]
        receipts = shopper.purchase(market, queries)
        assert len(receipts) == 1
        assert shopper.total_spent() == pytest.approx(6.0)
        assert shopper.purchased_tables()[0].attribute_names == ("zipcode", "population")

    def test_purchase_beyond_budget_raises(self, shopper, market):
        shopper.budget = Budget(total=1.0)
        with pytest.raises(BudgetExceededError):
            shopper.purchase(market, [ProjectionQuery("census", ["zipcode", "population"])])
