"""Tests for the marketplace's shared-attribute (candidate join key) map."""

from __future__ import annotations

import pytest

from repro.marketplace.market import Marketplace
from repro.relational.table import Table
from repro.relational.joins import inner_join
from repro.sampling.correlated import CorrelatedSampler


@pytest.fixture
def market() -> Marketplace:
    market = Marketplace(sample_row_price=0.0)
    market.host(Table.from_rows("orders", ["custkey", "amount"], [(i % 20, float(i)) for i in range(200)]))
    market.host(Table.from_rows("customers", ["custkey", "segment"], [(i, f"s{i % 3}") for i in range(20)]))
    market.host(Table.from_rows("standalone", ["payload"], [(i,) for i in range(10)]))
    return market


class TestSharedAttributeMap:
    def test_shared_attributes_detected(self, market):
        mapping = market.shared_attribute_map()
        assert mapping["orders"] == ("custkey",)
        assert mapping["customers"] == ("custkey",)

    def test_isolated_dataset_falls_back_to_all_attributes(self, market):
        mapping = market.shared_attribute_map()
        assert mapping["standalone"] == ("payload",)

    def test_samples_keyed_on_shared_attributes_stay_joinable(self, market):
        """Sampling on the shared-attribute map preserves the correlated-join property."""
        sampler = CorrelatedSampler(rate=0.4, seed=1)
        samples, _ = market.sell_samples(
            sampler, join_attributes_by_dataset=market.shared_attribute_map()
        )
        joined = inner_join(samples["orders"], samples["customers"])
        # every sampled order finds its (sampled) customer
        assert len(joined) == len(samples["orders"])

    def test_samples_without_map_lose_joinability(self, market):
        """Keying each dataset on all its attributes behaves like independent sampling."""
        sampler = CorrelatedSampler(rate=0.4, seed=1)
        samples, _ = market.sell_samples(sampler)
        joined = inner_join(samples["orders"], samples["customers"])
        correlated, _ = market.sell_samples(
            CorrelatedSampler(rate=0.4, seed=1),
            join_attributes_by_dataset=market.shared_attribute_map(),
        )
        correlated_join = inner_join(correlated["orders"], correlated["customers"])
        assert len(joined) <= len(correlated_join)
