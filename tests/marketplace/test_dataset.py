"""Tests for MarketplaceDataset."""

from __future__ import annotations

import pytest

from repro.marketplace.dataset import MarketplaceDataset
from repro.pricing.models import FlatAttributePricingModel
from repro.quality.fd import FunctionalDependency
from repro.relational.table import Table


@pytest.fixture
def dataset() -> MarketplaceDataset:
    rows = [(i, f"cat{i % 3}", f"lbl{i % 3}") for i in range(30)]
    table = Table.from_rows("catalog", ["id", "category", "label"], rows)
    return MarketplaceDataset(table=table, pricing=FlatAttributePricingModel(2.0))


class TestDataset:
    def test_basic_properties(self, dataset):
        assert dataset.name == "catalog"
        assert dataset.num_rows == 30
        assert "category" in dataset.schema

    def test_price_of_projection(self, dataset):
        assert dataset.price_of(["id", "label"]) == 4.0

    def test_catalog_entry_exposes_schema_only_metadata(self, dataset):
        entry = dataset.catalog_entry()
        assert entry["name"] == "catalog"
        assert entry["attributes"] == ["id", "category", "label"]
        assert entry["num_rows"] == 30
        assert entry["full_price"] == 6.0

    def test_fds_discovered_lazily_and_cached(self, dataset):
        fds = dataset.discovered_fds(max_violation=0.0, max_lhs_size=1)
        assert FunctionalDependency("category", "label") in fds
        assert dataset.discovered_fds() is dataset.fds

    def test_explicit_fds_bypass_discovery(self):
        table = Table.from_rows("t", ["a", "b"], [(1, 2)])
        fds = [FunctionalDependency("a", "b")]
        dataset = MarketplaceDataset(table=table, fds=fds)
        assert dataset.discovered_fds() == fds
