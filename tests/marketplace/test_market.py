"""Tests for the Marketplace: catalog, sample sales, billed queries."""

from __future__ import annotations

import pytest

from repro.exceptions import MarketplaceError
from repro.marketplace.dataset import MarketplaceDataset
from repro.marketplace.market import Marketplace, ProjectionQuery
from repro.pricing.models import FlatAttributePricingModel
from repro.relational.table import Table
from repro.sampling.correlated import CorrelatedSampler


@pytest.fixture
def market() -> Marketplace:
    pricing = FlatAttributePricingModel(1.0)
    market = Marketplace(default_pricing=pricing, sample_row_price=0.01)
    orders = Table.from_rows(
        "orders", ["custkey", "amount"], [(i % 10, float(i)) for i in range(100)]
    )
    customers = Table.from_rows(
        "customers", ["custkey", "segment"], [(i, f"seg{i % 3}") for i in range(10)]
    )
    market.host(MarketplaceDataset(table=orders, pricing=pricing))
    market.host(customers)  # bare table, wrapped with default pricing
    return market


class TestHosting:
    def test_dataset_names(self, market):
        assert set(market.dataset_names) == {"orders", "customers"}
        assert len(market) == 2
        assert "orders" in market

    def test_duplicate_hosting_rejected(self, market):
        with pytest.raises(MarketplaceError):
            market.host(Table.from_rows("orders", ["x"], [(1,)]))

    def test_remove(self, market):
        market.remove("orders")
        assert "orders" not in market
        with pytest.raises(MarketplaceError):
            market.remove("orders")

    def test_unknown_dataset_raises(self, market):
        with pytest.raises(MarketplaceError):
            market.dataset("nope")

    def test_catalog_lists_every_dataset(self, market):
        catalog = market.catalog()
        assert {entry["name"] for entry in catalog} == {"orders", "customers"}


class TestProjectionQuery:
    def test_sql_text(self):
        query = ProjectionQuery("orders", ["custkey", "amount"])
        assert query.to_sql() == "SELECT custkey, amount FROM orders;"
        assert str(query) == query.to_sql()

    def test_empty_attributes_select_star(self):
        assert ProjectionQuery("orders", []).to_sql() == "SELECT * FROM orders;"

    def test_frozen_and_hashable(self):
        a = ProjectionQuery("orders", ["x"])
        b = ProjectionQuery("orders", ("x",))
        assert a == b
        assert len({a, b}) == 1


class TestSamples:
    def test_sell_sample_bills_per_row(self, market):
        sampler = CorrelatedSampler(rate=0.5, seed=0)
        sample, price = market.sell_sample("orders", sampler, ["custkey"])
        assert price == pytest.approx(0.01 * len(sample))
        assert market.sample_revenue == pytest.approx(price)

    def test_sell_samples_all_datasets(self, market):
        sampler = CorrelatedSampler(rate=1.0)
        samples, total = market.sell_samples(sampler)
        assert set(samples) == {"orders", "customers"}
        assert total == pytest.approx(0.01 * (100 + 10))

    def test_sell_samples_subset(self, market):
        sampler = CorrelatedSampler(rate=1.0)
        samples, _ = market.sell_samples(sampler, names=["customers"])
        assert set(samples) == {"customers"}


class TestQueries:
    def test_price_and_execute(self, market):
        query = ProjectionQuery("customers", ["custkey", "segment"])
        assert market.price_query(query) == 2.0
        receipt = market.execute(query)
        assert receipt.price == 2.0
        assert receipt.result.attribute_names == ("custkey", "segment")
        assert market.query_revenue == 2.0

    def test_execute_all_and_total_revenue(self, market):
        queries = [
            ProjectionQuery("customers", ["segment"]),
            ProjectionQuery("orders", ["amount"]),
        ]
        receipts = market.execute_all(queries)
        assert len(receipts) == 2
        assert market.total_revenue() == pytest.approx(market.query_revenue)

    def test_unknown_attribute_rejected(self, market):
        with pytest.raises(MarketplaceError):
            market.execute(ProjectionQuery("orders", ["missing"]))

    def test_price_queries_sums(self, market):
        queries = [ProjectionQuery("orders", ["amount"]), ProjectionQuery("customers", ["segment"])]
        assert market.price_queries(queries) == pytest.approx(2.0)

    def test_describe(self, market):
        info = market.describe()
        assert info["num_datasets"] == 2
