"""Tests for the deterministic uniform hash used by correlated sampling."""

from __future__ import annotations

import statistics

from repro.sampling.hashing import uniform_hash, uniform_hashes


class TestDeterminism:
    def test_same_value_same_hash(self):
        assert uniform_hash("abc") == uniform_hash("abc")
        assert uniform_hash(42) == uniform_hash(42)

    def test_different_seeds_give_different_hashes(self):
        assert uniform_hash("abc", seed=0) != uniform_hash("abc", seed=1)

    def test_int_and_equal_float_hash_identically(self):
        assert uniform_hash(3) == uniform_hash(3.0)

    def test_bool_not_confused_with_int(self):
        assert uniform_hash(True) != uniform_hash(1)

    def test_none_has_a_hash(self):
        assert 0.0 <= uniform_hash(None) <= 1.0

    def test_tuples_hash_by_content(self):
        assert uniform_hash(("a", 1)) == uniform_hash(("a", 1))
        assert uniform_hash(("a", 1)) != uniform_hash(("a", 2))

    def test_nested_tuples(self):
        assert uniform_hash((("a",), 1)) == uniform_hash((("a",), 1))

    def test_arbitrary_objects_fall_back_to_repr(self):
        class Weird:
            def __repr__(self):
                return "weird-object"

        assert uniform_hash(Weird()) == uniform_hash(Weird())


class TestUniformity:
    def test_range(self):
        for value in ["a", "b", 1, 2.5, None, ("x", 1)]:
            assert 0.0 <= uniform_hash(value) <= 1.0

    def test_roughly_uniform_mean(self):
        hashes = uniform_hashes(range(2000))
        assert 0.45 <= statistics.mean(hashes) <= 0.55

    def test_roughly_uniform_quartiles(self):
        hashes = sorted(uniform_hashes(range(2000)))
        lower_quartile = hashes[len(hashes) // 4]
        upper_quartile = hashes[3 * len(hashes) // 4]
        assert 0.2 <= lower_quartile <= 0.3
        assert 0.7 <= upper_quartile <= 0.8

    def test_vector_form_matches_scalar(self):
        values = ["a", "b", "c"]
        assert uniform_hashes(values) == [uniform_hash(v) for v in values]
