"""Tests for correlated sampling."""

from __future__ import annotations

import pytest

from repro.exceptions import SamplingError
from repro.relational.joins import inner_join
from repro.relational.table import Table
from repro.sampling.correlated import CorrelatedSampler, correlated_sample


@pytest.fixture
def orders() -> Table:
    rows = [(i % 50, f"order{i}", float(i)) for i in range(400)]
    return Table.from_rows("orders", ["custkey", "label", "amount"], rows)


@pytest.fixture
def customers() -> Table:
    rows = [(i, f"cust{i}") for i in range(50)]
    return Table.from_rows("customers", ["custkey", "cname"], rows)


class TestCorrelatedSample:
    def test_rate_one_returns_everything(self, orders):
        sample = correlated_sample(orders, ["custkey"], 1.0)
        assert len(sample) == len(orders)

    def test_sample_size_close_to_rate(self, orders):
        sample = correlated_sample(orders, ["custkey"], 0.5, seed=0)
        assert 0.3 * len(orders) <= len(sample) <= 0.7 * len(orders)

    def test_deterministic(self, orders):
        first = correlated_sample(orders, ["custkey"], 0.4, seed=3)
        second = correlated_sample(orders, ["custkey"], 0.4, seed=3)
        assert first.column("label") == second.column("label")

    def test_key_based_inclusion_is_all_or_nothing(self, orders):
        """All rows sharing a join value are kept or dropped together."""
        sample = correlated_sample(orders, ["custkey"], 0.5, seed=1)
        sampled_keys = set(sample.column("custkey"))
        for key in sampled_keys:
            original_count = sum(1 for value in orders.column("custkey") if value == key)
            sampled_count = sum(1 for value in sample.column("custkey") if value == key)
            assert original_count == sampled_count

    def test_correlation_across_tables(self, orders, customers):
        """Sampled orders always find their customer in the sampled customers."""
        rate, seed = 0.5, 2
        orders_sample = correlated_sample(orders, ["custkey"], rate, seed=seed)
        customers_sample = correlated_sample(customers, ["custkey"], rate, seed=seed)
        joined = inner_join(orders_sample, customers_sample)
        assert len(joined) == len(orders_sample)

    def test_invalid_rate_rejected(self, orders):
        with pytest.raises(SamplingError):
            correlated_sample(orders, ["custkey"], 0.0)
        with pytest.raises(SamplingError):
            correlated_sample(orders, ["custkey"], 1.5)

    def test_none_join_values_sampled_independently(self):
        rows = [(None, i) for i in range(200)]
        table = Table.from_rows("t", ["k", "v"], rows)
        sample = correlated_sample(table, ["k"], 0.5, seed=0)
        # not all-or-nothing: roughly half survive
        assert 0.25 * len(table) <= len(sample) <= 0.75 * len(table)

    def test_sample_name(self, orders):
        assert correlated_sample(orders, ["custkey"], 0.5).name == "orders_sample"
        assert correlated_sample(orders, ["custkey"], 0.5, name="x").name == "x"


class TestCorrelatedSampler:
    def test_invalid_rate_rejected(self):
        with pytest.raises(SamplingError):
            CorrelatedSampler(rate=0.0)

    def test_sample_all_uses_per_table_join_attributes(self, orders, customers):
        sampler = CorrelatedSampler(rate=0.5, seed=0)
        samples = sampler.sample_all(
            [orders, customers], {"orders": ["custkey"], "customers": ["custkey"]}
        )
        assert [s.name for s in samples] == ["orders_sample", "customers_sample"]
        joined = inner_join(samples[0], samples[1])
        assert len(joined) == len(samples[0])

    def test_expected_sample_size(self, orders):
        sampler = CorrelatedSampler(rate=0.25)
        assert sampler.expected_sample_size(orders) == pytest.approx(100.0)
