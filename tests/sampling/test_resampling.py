"""Tests for correlated re-sampling of intermediate join results."""

from __future__ import annotations

import random

import pytest

from repro.exceptions import SamplingError
from repro.relational.table import Table
from repro.sampling.resampling import ResamplingPolicy, resample_if_large


@pytest.fixture
def big_table() -> Table:
    return Table.from_rows("big", ["k", "v"], [(i, i * 2) for i in range(500)])


class TestResampleIfLarge:
    def test_below_threshold_is_untouched(self, big_table):
        assert resample_if_large(big_table, 1000, 0.5, random.Random(0)) is big_table

    def test_above_threshold_is_shrunk(self, big_table):
        shrunk = resample_if_large(big_table, 100, 0.3, random.Random(0))
        assert len(shrunk) < len(big_table)
        assert 0.1 * len(big_table) <= len(shrunk) <= 0.5 * len(big_table)

    def test_rate_one_is_untouched(self, big_table):
        assert resample_if_large(big_table, 100, 1.0, random.Random(0)) is big_table

    def test_invalid_parameters(self, big_table):
        with pytest.raises(SamplingError):
            resample_if_large(big_table, -1, 0.5, random.Random(0))
        with pytest.raises(SamplingError):
            resample_if_large(big_table, 10, 0.0, random.Random(0))


class TestResamplingPolicy:
    def test_disabled_policy_never_resamples(self, big_table):
        policy = ResamplingPolicy.disabled()
        assert not policy.enabled
        assert policy(big_table) is big_table

    def test_enabled_policy_resamples_large_tables(self, big_table):
        policy = ResamplingPolicy(threshold=100, rate=0.4, seed=0)
        assert policy.enabled
        shrunk = policy(big_table)
        assert len(shrunk) < len(big_table)
        assert policy.cumulative_scale == pytest.approx(0.4)

    def test_small_tables_pass_through(self, big_table):
        policy = ResamplingPolicy(threshold=10_000, rate=0.4, seed=0)
        assert policy(big_table) is big_table
        assert policy.cumulative_scale == 1.0

    def test_reset_restores_reproducibility(self, big_table):
        policy = ResamplingPolicy(threshold=100, rate=0.4, seed=5)
        first = policy(big_table).column("k")
        policy.reset()
        second = policy(big_table).column("k")
        assert first == second

    def test_cumulative_scale_accumulates(self, big_table):
        policy = ResamplingPolicy(threshold=50, rate=0.5, seed=0)
        policy(big_table)
        policy(big_table)
        assert policy.cumulative_scale == pytest.approx(0.25)

    def test_invalid_configuration(self):
        with pytest.raises(SamplingError):
            ResamplingPolicy(threshold=-5)
        with pytest.raises(SamplingError):
            ResamplingPolicy(rate=0.0)
