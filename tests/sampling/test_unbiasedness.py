"""Empirical checks of the unbiasedness claims (Theorems 3.1 and 3.2).

The paper proves that the correlated-sampling estimator of join informativeness
and the correlated-re-sampling estimators of correlation and quality are
unbiased.  Here we verify the weaker, empirically-checkable statement: the mean
of the estimate over many hash families / re-sampling seeds is close to the
exact value, much closer than any individual estimate is guaranteed to be.
"""

from __future__ import annotations

import statistics

import pytest

from repro.infotheory.correlation import attribute_set_correlation
from repro.infotheory.join_informativeness import join_informativeness
from repro.quality.fd import FunctionalDependency
from repro.quality.measure import join_quality
from repro.relational.joins import join_path
from repro.relational.table import Table
from repro.sampling.correlated import CorrelatedSampler
from repro.sampling.estimators import SampleEstimator
from repro.sampling.resampling import ResamplingPolicy


@pytest.fixture(scope="module")
def pair() -> tuple[Table, Table]:
    left_rows = [(i % 40, f"l{i % 7}") for i in range(300)]
    right_rows = [(j, f"r{j % 5}") for j in range(60)]
    return (
        Table.from_rows("left", ["k", "lval"], left_rows),
        Table.from_rows("right", ["k", "rval"], right_rows),
    )


@pytest.fixture(scope="module")
def chain() -> list[Table]:
    a_rows = [(i, f"grp{i % 6}") for i in range(120)]
    b_rows = [(i, i % 30, float(i % 6) * 5 + (i % 2)) for i in range(120)]
    c_rows = [(j, f"label{j % 6}") for j in range(30)]
    return [
        Table.from_rows("a", ["x", "grp"], a_rows),
        Table.from_rows("b", ["x", "y", "measure"], b_rows),
        Table.from_rows("c", ["y", "label"], c_rows),
    ]


class TestJoinInformativenessUnbiasedness:
    def test_mean_estimate_close_to_exact(self, pair):
        left, right = pair
        exact = join_informativeness(left, right)
        estimates = []
        for seed in range(20):
            estimator = SampleEstimator(sampler=CorrelatedSampler(rate=0.5, seed=seed))
            estimates.append(estimator.estimate_join_informativeness(left, right))
        assert statistics.mean(estimates) == pytest.approx(exact, abs=0.12)

    def test_higher_rate_reduces_spread(self, pair):
        left, right = pair
        low, high = [], []
        for seed in range(12):
            low.append(
                SampleEstimator(
                    sampler=CorrelatedSampler(rate=0.3, seed=seed)
                ).estimate_join_informativeness(left, right)
            )
            high.append(
                SampleEstimator(
                    sampler=CorrelatedSampler(rate=0.9, seed=seed)
                ).estimate_join_informativeness(left, right)
            )
        assert statistics.pstdev(high) <= statistics.pstdev(low) + 0.02


class TestResamplingUnbiasedness:
    def test_correlation_estimate_mean_close_to_exact(self, chain):
        exact = attribute_set_correlation(join_path(chain), ["measure"], ["label"])
        estimates = []
        for seed in range(15):
            estimator = SampleEstimator(
                sampler=CorrelatedSampler(rate=1.0),
                resampling=ResamplingPolicy(threshold=40, rate=0.6, seed=seed),
            )
            estimates.append(estimator.estimate_correlation(chain, ["measure"], ["label"]))
        # re-sampling introduces noise but the mean stays near the exact value
        assert statistics.mean(estimates) == pytest.approx(exact, rel=0.35)

    def test_quality_estimate_mean_close_to_exact(self, chain):
        fds = [FunctionalDependency("grp", "label")]
        exact = join_quality(join_path(chain), fds)
        estimates = []
        for seed in range(15):
            estimator = SampleEstimator(
                sampler=CorrelatedSampler(rate=1.0),
                resampling=ResamplingPolicy(threshold=40, rate=0.6, seed=seed),
            )
            estimates.append(estimator.estimate_quality(chain, fds))
        assert statistics.mean(estimates) == pytest.approx(exact, abs=0.15)

    def test_estimation_independent_of_threshold_in_expectation(self, chain):
        """Theorem 3.2: the estimator stays unbiased regardless of eta."""
        exact = attribute_set_correlation(join_path(chain), ["measure"], ["label"])
        for threshold in (30, 60, 90):
            estimates = []
            for seed in range(10):
                estimator = SampleEstimator(
                    sampler=CorrelatedSampler(rate=1.0),
                    resampling=ResamplingPolicy(threshold=threshold, rate=0.7, seed=seed),
                )
                estimates.append(
                    estimator.estimate_correlation(chain, ["measure"], ["label"])
                )
            assert statistics.mean(estimates) == pytest.approx(exact, rel=0.4)
