"""Tests for the sample-based estimators of JI, correlation and quality."""

from __future__ import annotations

import pytest

from repro.infotheory.correlation import attribute_set_correlation
from repro.infotheory.join_informativeness import join_informativeness
from repro.quality.fd import FunctionalDependency
from repro.quality.measure import join_quality
from repro.relational.joins import join_path
from repro.relational.table import Table
from repro.sampling.correlated import CorrelatedSampler
from repro.sampling.estimators import SampleEstimator
from repro.sampling.resampling import ResamplingPolicy


@pytest.fixture
def chain_tables() -> list[Table]:
    """A three-table chain a(x) - b(x, y) - c(y) with a planted correlation."""
    a_rows = [(i, f"grp{i % 4}") for i in range(80)]
    b_rows = [(i, i % 20, float(i % 4) * 10 + (i % 3)) for i in range(80)]
    c_rows = [(j, f"label{j % 5}", f"cat{j % 2}") for j in range(20)]
    return [
        Table.from_rows("a", ["x", "grp"], a_rows),
        Table.from_rows("b", ["x", "y", "measure"], b_rows),
        Table.from_rows("c", ["y", "label", "cat"], c_rows),
    ]


@pytest.fixture
def estimator() -> SampleEstimator:
    return SampleEstimator(
        sampler=CorrelatedSampler(rate=0.6, seed=0),
        resampling=ResamplingPolicy(threshold=10_000, rate=0.5, seed=0),
    )


class TestJoinInformativenessEstimation:
    def test_full_rate_estimate_is_exact(self, chain_tables):
        estimator = SampleEstimator(sampler=CorrelatedSampler(rate=1.0))
        a, b, _ = chain_tables
        assert estimator.estimate_join_informativeness(a, b) == pytest.approx(
            join_informativeness(a, b)
        )

    def test_estimate_within_tolerance(self, chain_tables, estimator):
        a, b, _ = chain_tables
        exact = join_informativeness(a, b)
        estimate = estimator.estimate_join_informativeness(a, b)
        assert abs(exact - estimate) < 0.35

    def test_empty_sample_returns_one(self, chain_tables):
        estimator = SampleEstimator(sampler=CorrelatedSampler(rate=0.001, seed=1))
        a, b, _ = chain_tables
        value = estimator.estimate_join_informativeness(a, b)
        assert 0.0 <= value <= 1.0

    def test_presampled_inputs_used_directly(self, chain_tables, estimator):
        a, b, _ = chain_tables
        direct = estimator.estimate_join_informativeness(a, b, presampled=True)
        assert direct == pytest.approx(join_informativeness(a, b))


class TestCorrelationAndQualityEstimation:
    def test_full_rate_correlation_matches_exact(self, chain_tables):
        estimator = SampleEstimator(sampler=CorrelatedSampler(rate=1.0))
        exact = attribute_set_correlation(join_path(chain_tables), ["measure"], ["label"])
        estimate = estimator.estimate_correlation(chain_tables, ["measure"], ["label"])
        assert estimate == pytest.approx(exact)

    def test_full_rate_quality_matches_exact(self, chain_tables):
        estimator = SampleEstimator(sampler=CorrelatedSampler(rate=1.0))
        fds = [FunctionalDependency("grp", "label")]
        exact = join_quality(join_path(chain_tables), fds)
        assert estimator.estimate_quality(chain_tables, fds) == pytest.approx(exact)

    def test_sampled_estimates_are_finite_and_sane(self, chain_tables, estimator):
        correlation = estimator.estimate_correlation(chain_tables, ["measure"], ["label"])
        quality = estimator.estimate_quality(
            chain_tables, [FunctionalDependency("grp", "label")]
        )
        assert correlation >= 0.0
        assert 0.0 <= quality <= 1.0

    def test_resampling_bounds_intermediate_size(self, chain_tables):
        estimator = SampleEstimator(
            sampler=CorrelatedSampler(rate=1.0),
            resampling=ResamplingPolicy(threshold=20, rate=0.5, seed=0),
        )
        joined = estimator.joined_sample(chain_tables)
        # the final result was re-sampled at least once, so it is smaller than
        # the exact join (80 rows)
        assert len(joined) < len(join_path(chain_tables))

    def test_estimate_all_returns_every_metric(self, chain_tables, estimator):
        metrics = estimator.estimate_all(
            chain_tables,
            ["measure"],
            ["label"],
            [FunctionalDependency("grp", "label")],
        )
        assert set(metrics) == {"correlation", "quality", "join_informativeness", "join_rows"}
        assert metrics["join_rows"] >= 0

    def test_single_table_path(self, chain_tables, estimator):
        value = estimator.estimate_correlation([chain_tables[2]], ["label"], ["cat"])
        assert value >= 0.0
