"""Shared fixtures for the test suite."""

from __future__ import annotations

import pytest

from repro.marketplace.dataset import MarketplaceDataset
from repro.marketplace.market import Marketplace
from repro.pricing.models import EntropyPricingModel
from repro.quality.fd import FunctionalDependency
from repro.relational.schema import Attribute, AttributeType, Schema
from repro.relational.table import Table
from repro.workloads.tpch import tpch_workload


@pytest.fixture
def zip_table() -> Table:
    """The paper's D1 example: a zipcode table with one FD-violating row."""
    schema = Schema(
        [
            Attribute("zipcode", AttributeType.CATEGORICAL),
            Attribute("state", AttributeType.CATEGORICAL),
        ]
    )
    rows = [
        ("07003", "NJ"),
        ("07304", "NJ"),
        ("10001", "NY"),
        ("10001", "NJ"),  # violates zipcode -> state
    ]
    return Table.from_rows("d1_zip", schema, rows)


@pytest.fixture
def disease_table() -> Table:
    """The paper's D2 example: disease statistics by state."""
    schema = Schema(
        [
            Attribute("state", AttributeType.CATEGORICAL),
            Attribute("disease", AttributeType.CATEGORICAL),
            Attribute("cases", AttributeType.NUMERICAL),
        ]
    )
    rows = [
        ("MA", "Flu", 300),
        ("NJ", "Flu", 400),
        ("FL", "Lyme", 130),
        ("CA", "Lyme", 40),
        ("NJ", "Lyme", 200),
    ]
    return Table.from_rows("d2_disease", schema, rows)


@pytest.fixture
def example_d() -> Table:
    """The paper's Table 2 example instance (FD A -> B with two violations)."""
    schema = Schema(["A", "B"])
    rows = [("a1", "b1"), ("a1", "b1"), ("a1", "b2"), ("a1", "b3"), ("a2", "b2")]
    return Table.from_rows("example_d", schema, rows)


@pytest.fixture
def fd_a_b() -> FunctionalDependency:
    return FunctionalDependency(("A",), "B")


@pytest.fixture(scope="session")
def small_tpch():
    """A tiny TPC-H-like workload shared across tests (session-scoped for speed)."""
    return tpch_workload(scale=0.05, seed=0, dirty_rate=0.3)


@pytest.fixture(scope="session")
def tpch_marketplace(small_tpch) -> Marketplace:
    """A marketplace hosting the dirty variants of the small TPC-H workload."""
    pricing = EntropyPricingModel()
    market = Marketplace(default_pricing=pricing)
    for name in small_tpch.tables:
        market.host(
            MarketplaceDataset(table=small_tpch.dirty_or_clean(name), pricing=pricing)
        )
    return market
