"""Property tests: the columnar kernels are value-identical to reference code.

The dictionary-encoded join / entropy / join-informativeness kernels replaced
straightforward row-at-a-time implementations.  These tests keep simplified
copies of the original row-based algorithms as executable references and check
the columnar versions against them on randomized tables — including ``None``
join keys, colliding column names between the two sides, and empty tables.

The whole module runs twice, once per columnar backend (numpy and
pure-python; see :mod:`repro.relational.backend`), so the same references
double as parity oracles for the gated numpy kernels.
"""

from __future__ import annotations

from collections import Counter

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.relational import backend as columnar_backend_module
from repro.infotheory.correlation import attribute_set_correlation, correlation
from repro.infotheory.entropy import (
    entropy_of_codes,
    joint_entropy,
    joint_entropy_of_codes,
    shannon_entropy,
)
from repro.infotheory.join_informativeness import (
    join_informativeness,
    join_informativeness_from_pairs,
)
from repro.relational.joins import (
    _build_hash_index,
    _joined_schema,
    _resolve_join_attributes,
    full_outer_join,
    inner_join,
)
from repro.relational.schema import Attribute, AttributeType, Schema
from repro.relational.table import Table


@pytest.fixture(scope="module", params=["python", "numpy"], autouse=True)
def columnar_backend(request):
    """Run every test in this module under both columnar backends."""
    if request.param == "numpy" and not columnar_backend_module.numpy_available():
        pytest.skip("numpy is not installed")
    with columnar_backend_module.use_backend(request.param):
        yield request.param

# ---------------------------------------------------------------------- data
key_values = st.one_of(st.none(), st.integers(min_value=0, max_value=4))
payload_values = st.one_of(st.none(), st.sampled_from(["p", "q", "r", "s"]))


@st.composite
def joinable_tables(draw):
    """Two tables sharing join columns, a colliding payload name, and maybe no rows."""
    num_join_attrs = draw(st.integers(min_value=1, max_value=2))
    join_names = ["j0", "j1"][:num_join_attrs]
    n_left = draw(st.integers(min_value=0, max_value=25))
    n_right = draw(st.integers(min_value=0, max_value=25))

    def build(name, rows, extra_name):
        columns = {
            join_name: draw(
                st.lists(key_values, min_size=rows, max_size=rows)
            )
            for join_name in join_names
        }
        # "payload" exists on BOTH sides, so the join must rename the right copy
        columns["payload"] = draw(
            st.lists(payload_values, min_size=rows, max_size=rows)
        )
        columns[extra_name] = draw(
            st.lists(payload_values, min_size=rows, max_size=rows)
        )
        schema = Schema(list(columns))
        return Table(name, schema, columns)

    left = build("left", n_left, "left_only")
    right = build("right", n_right, "right_only")
    return left, right, join_names


# ------------------------------------------------------ reference algorithms
def reference_inner_join(left: Table, right: Table, on) -> Table:
    """The original row-at-a-time hash join."""
    join_attrs = _resolve_join_attributes(left, right, on)
    schema, right_extra = _joined_schema(left, right, join_attrs)
    right_index = _build_hash_index(right, join_attrs)
    left_cols = [left.column(a) for a in left.schema.names]
    right_cols = [right.column(a) for a in right_extra]
    rows = []
    for i, key in enumerate(left.key_tuples(join_attrs)):
        if any(v is None for v in key):
            continue
        matches = right_index.get(key)
        if not matches:
            continue
        left_values = tuple(col[i] for col in left_cols)
        for j in matches:
            rows.append(left_values + tuple(col[j] for col in right_cols))
    return Table.from_rows("ref", schema, rows)


def reference_full_outer_join(left: Table, right: Table, on) -> Table:
    """The original row-at-a-time full outer join."""
    join_attrs = _resolve_join_attributes(left, right, on)
    right_extra = [n for n in right.schema.names if n not in join_attrs]
    right_copy_attrs = [right.schema[a].renamed(f"{right.name}.{a}") for a in join_attrs]
    extra_attrs = []
    for n in right_extra:
        attribute = right.schema[n]
        if n in left.schema:
            attribute = attribute.renamed(f"{right.name}.{n}")
        extra_attrs.append(attribute)
    schema = Schema(list(left.schema.attributes) + right_copy_attrs + extra_attrs)
    right_index = _build_hash_index(right, join_attrs)
    matched = set()
    left_cols = [left.column(a) for a in left.schema.names]
    right_join_cols = [right.column(a) for a in join_attrs]
    right_extra_cols = [right.column(a) for a in right_extra]
    rows = []
    for i, key in enumerate(left.key_tuples(join_attrs)):
        left_values = tuple(col[i] for col in left_cols)
        matches = right_index.get(key) if not any(v is None for v in key) else None
        if matches:
            for j in matches:
                matched.add(j)
                rows.append(
                    left_values
                    + tuple(col[j] for col in right_join_cols)
                    + tuple(col[j] for col in right_extra_cols)
                )
        else:
            rows.append(left_values + (None,) * (len(join_attrs) + len(right_extra)))
    pad = (None,) * len(left.schema.names)
    for j in range(len(right)):
        if j in matched:
            continue
        rows.append(
            pad
            + tuple(col[j] for col in right_join_cols)
            + tuple(col[j] for col in right_extra_cols)
        )
    return Table.from_rows("ref", schema, rows)


# ------------------------------------------------------------------- joins
class TestColumnarJoins:
    @settings(max_examples=60, deadline=None)
    @given(joinable_tables())
    def test_inner_join_matches_reference(self, tables):
        left, right, join_names = tables
        result = inner_join(left, right, join_names)
        reference = reference_inner_join(left, right, join_names)
        assert result.schema == reference.schema
        assert list(result.iter_rows()) == list(reference.iter_rows())

    @settings(max_examples=60, deadline=None)
    @given(joinable_tables())
    def test_full_outer_join_matches_reference(self, tables):
        left, right, join_names = tables
        result = full_outer_join(left, right, join_names)
        reference = reference_full_outer_join(left, right, join_names)
        assert result.schema == reference.schema
        assert list(result.iter_rows()) == list(reference.iter_rows())

    def test_empty_both_sides(self):
        left = Table.empty("left", ["k", "a"])
        right = Table.empty("right", ["k", "b"])
        assert len(inner_join(left, right, ["k"])) == 0
        assert len(full_outer_join(left, right, ["k"])) == 0


# ----------------------------------------------------------------- entropy
class TestEncodedEntropy:
    @settings(max_examples=60, deadline=None)
    @given(st.lists(payload_values, max_size=40))
    def test_entropy_of_codes_matches_shannon(self, values):
        table = Table("t", Schema(["x"]), {"x": values})
        encoding = table.encoded("x")
        assert entropy_of_codes(encoding.codes, encoding.num_codes) == pytest.approx(
            shannon_entropy(values)
        )

    @settings(max_examples=60, deadline=None)
    @given(st.integers(min_value=0, max_value=30).flatmap(
        lambda n: st.tuples(
            st.lists(key_values, min_size=n, max_size=n),
            st.lists(payload_values, min_size=n, max_size=n),
        )
    ))
    def test_joint_entropy_of_codes_matches_reference(self, pair):
        x, y = pair
        table = Table("t", Schema(["x", "y"]), {"x": x, "y": y})
        x_enc, y_enc = table.encoded("x"), table.encoded("y")
        assert joint_entropy_of_codes(
            x_enc.codes, y_enc.codes, y_enc.num_codes
        ) == pytest.approx(joint_entropy(x, y))

    @settings(max_examples=60, deadline=None)
    @given(st.integers(min_value=0, max_value=30).flatmap(
        lambda n: st.tuples(
            st.lists(key_values, min_size=n, max_size=n),
            st.lists(payload_values, min_size=n, max_size=n),
        )
    ))
    def test_key_statistics_match_reference(self, pair):
        x, y = pair
        table = Table("t", Schema(["x", "y"]), {"x": x, "y": y})
        keys = table.key_tuples(["x", "y"])
        assert table.value_counts(["x", "y"]) == dict(Counter(keys))
        assert table.distinct_count(["x", "y"]) == len(set(keys))
        assert table.key_entropy(["x", "y"]) == pytest.approx(shannon_entropy(keys))


# ------------------------------------------------------------- correlation
@st.composite
def correlation_table(draw):
    n = draw(st.integers(min_value=1, max_value=30))
    numeric = draw(st.lists(st.integers(0, 9), min_size=n, max_size=n))
    categorical = draw(st.lists(payload_values, min_size=n, max_size=n))
    t0 = draw(st.lists(key_values, min_size=n, max_size=n))
    t1 = draw(st.lists(payload_values, min_size=n, max_size=n))
    schema = Schema(
        [
            Attribute("num", AttributeType.NUMERICAL),
            Attribute("cat", AttributeType.CATEGORICAL),
            Attribute("t0", AttributeType.CATEGORICAL),
            Attribute("t1", AttributeType.CATEGORICAL),
        ]
    )
    return Table(
        "t", schema, {"num": numeric, "cat": categorical, "t0": t0, "t1": t1}
    )


class TestColumnarCorrelation:
    @settings(max_examples=60, deadline=None)
    @given(correlation_table())
    def test_attribute_set_correlation_matches_reference(self, table):
        sources = ["num", "cat"]
        targets = ["t0", "t1"]
        target_keys = table.key_tuples(targets)
        reference = sum(
            correlation(
                table.column(attribute),
                target_keys,
                x_type=table.schema.type_of(attribute),
            )
            for attribute in sources
        )
        assert attribute_set_correlation(table, sources, targets) == pytest.approx(
            reference
        )

    def test_empty_table_is_zero(self):
        table = Table.empty("t", ["a", "b"])
        assert attribute_set_correlation(table, ["a"], ["b"]) == 0.0


# ------------------------------------------------- join informativeness (JI)
class TestHistogramJoinInformativeness:
    @settings(max_examples=60, deadline=None)
    @given(joinable_tables())
    def test_histogram_ji_matches_outer_join_pairs(self, tables):
        left, right, join_names = tables
        outer = reference_full_outer_join(left, right, join_names)
        left_keys = outer.key_tuples(join_names)
        right_keys = outer.key_tuples([f"{right.name}.{a}" for a in join_names])
        reference = join_informativeness_from_pairs(left_keys, right_keys)
        assert join_informativeness(left, right, join_names) == pytest.approx(
            reference
        )

    def test_empty_tables_yield_one(self):
        left = Table.empty("left", ["k"])
        right = Table.empty("right", ["k"])
        assert join_informativeness(left, right, ["k"]) == 1.0
