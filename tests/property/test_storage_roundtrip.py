"""Hypothesis property tests: catalog round trips are lossless and bit-stable.

Two layers of invariants, each across the full storage-engine x
columnar-backend matrix (sqlite always, duckdb when importable; pure-python
always, numpy when importable):

* **Payload round trips.**  Any table — arbitrary names, mixed ``None``s,
  numeric and categorical columns — survives ``table_to_blob`` /
  ``table_from_blob`` through a real backend unchanged, with its cached
  dictionary encodings rehydrated rather than re-encoded, and fingerprints
  that depend on content, not on the process or columnar backend.
* **End-to-end warm restarts.**  Persist -> reopen -> ``build_offline`` adopts
  the whole join graph (zero edge recomputes) and serves acquisitions
  bit-identical to the cold middleware — including after a
  ``register_source_tables`` delta with hypothesis-chosen shopper data.
"""

from __future__ import annotations

import tempfile
from pathlib import Path

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.config import DanceConfig
from repro.core.dance import DANCE
from repro.marketplace.market import Marketplace
from repro.marketplace.shopper import AcquisitionRequest
from repro.relational import backend as columnar_backend_module
from repro.relational.table import Table
from repro.search.mcmc import MCMCConfig
from repro.storage import (
    create_backend,
    duckdb_available,
    restore_encodings,
    table_fingerprint,
    table_from_blob,
    table_to_blob,
)
from repro.storage.serialize import encodings_to_blob

from tests.storage.test_marketplace_persist import small_marketplace

STORAGE_KINDS = ["sqlite"] + (["duckdb"] if duckdb_available() else [])


@pytest.fixture(scope="module", params=["python", "numpy"], autouse=True)
def columnar_backend(request):
    """Run every test in this module under both columnar backends."""
    if request.param == "numpy" and not columnar_backend_module.numpy_available():
        pytest.skip("numpy is not installed")
    with columnar_backend_module.use_backend(request.param):
        yield request.param


# ------------------------------------------------------------------ strategies
cells = st.one_of(
    st.none(),
    st.integers(min_value=-5, max_value=5),
    st.sampled_from(["x", "y", "z"]),
)
tables = st.builds(
    lambda rows: Table.from_rows(
        "t", ["a", "b", "c"], [tuple(row) for row in rows]
    ),
    st.lists(st.tuples(cells, cells, cells), min_size=0, max_size=20),
)
source_rows = st.lists(
    st.tuples(st.integers(min_value=0, max_value=4), st.integers(min_value=-9, max_value=9)),
    min_size=2,
    max_size=12,
)


# --------------------------------------------------------------- payload level
@pytest.mark.parametrize("kind", STORAGE_KINDS)
@given(table=tables)
@settings(max_examples=20, deadline=None)
def test_table_blob_round_trips_through_a_real_backend(kind, table):
    with tempfile.TemporaryDirectory() as scratch:
        with create_backend(kind, Path(scratch) / "cat") as backend:
            backend.put("tables", table.name, table_to_blob(table))
            restored = table_from_blob(backend.get("tables", table.name))
    assert restored.name == table.name
    assert [(a.name, a.type) for a in restored.schema] == [
        (a.name, a.type) for a in table.schema
    ]
    assert list(restored.iter_rows()) == list(table.iter_rows())
    assert table_fingerprint(restored) == table_fingerprint(table)


@given(table=tables)
@settings(max_examples=20, deadline=None)
def test_encodings_rehydrate_bit_identically(table):
    if len(table) == 0:
        return
    expected = table.encoded_key(("a", "b")).code_list()
    blob = encodings_to_blob(table)
    bare = table_from_blob(table_to_blob(table))
    assert restore_encodings(bare, blob) >= 1
    # The cached entry comes back under its original cache key, installed
    # before any kernel asks for it — rehydrated, not recomputed.
    assert set(bare._encodings) == set(table._encodings)
    assert bare.encoded_key(("a", "b")).code_list() == expected


@given(table=tables)
@settings(max_examples=20, deadline=None)
def test_fingerprint_tracks_content_not_identity(table):
    clone = Table.from_rows(
        table.name, [a.name for a in table.schema], list(table.iter_rows())
    )
    if [(a.name, a.type) for a in clone.schema] == [
        (a.name, a.type) for a in table.schema
    ]:
        assert table_fingerprint(clone) == table_fingerprint(table)
    renamed = Table.from_rows(
        table.name + "_other", [a.name for a in table.schema], list(table.iter_rows())
    )
    assert table_fingerprint(renamed) != table_fingerprint(table)


# ------------------------------------------------------------------ end to end
REQUEST = AcquisitionRequest(
    source_attributes=["measure"], target_attributes=["label"], budget=1e9
)


def _config(seed: int) -> DanceConfig:
    return DanceConfig(sampling_rate=1.0, mcmc=MCMCConfig(iterations=25, seed=seed))


@pytest.mark.parametrize("kind", STORAGE_KINDS)
@given(rows=source_rows, seed=st.integers(min_value=0, max_value=3))
@settings(max_examples=6, deadline=None)
def test_warm_restart_is_bit_identical_after_source_delta(kind, rows, seed):
    # Both sides register the shopper delta before the offline build: the
    # MCMC walk is only promised bit-stable across *identically ordered*
    # graphs, and the warm process replays the same registration sequence.
    source = Table.from_rows("mine", ["bad_key", "mine_x"], rows)

    cold = DANCE(small_marketplace(), _config(seed))
    cold.register_source_tables([source])
    cold.build_offline()
    expected = cold.acquire(REQUEST)

    with tempfile.TemporaryDirectory() as scratch:
        catalog = Path(scratch) / "cat"
        cold.persist(catalog, kind=kind)

        warm = DANCE(Marketplace.open(catalog), _config(seed))
        warm.register_source_tables([source])
        warm.build_offline()
        assert warm.join_graph.ji_computations == 0
        assert warm.join_graph.edge_recomputes == 0
        served = warm.acquire(REQUEST)

    assert served.estimated_correlation == expected.estimated_correlation
    assert served.sql() == expected.sql()
    assert served.estimated_price == expected.estimated_price
