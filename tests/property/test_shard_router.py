"""Hypothesis property tests: the shard fold is partition-invariant.

The :class:`~repro.service.router.ShardRouter` parity argument rests on pure
functions — ownership (:func:`candidate_owner`) is a total deterministic map,
and the winner fold (:func:`fold_index`) applied per shard and then across
shard winners picks the same candidate as one global fold, for *any* way of
partitioning candidates into shards.  These properties exercise that argument
directly, over arbitrary correlations (ties included), partitions, and shard
counts — far more partitions than the integration suite could afford to run
through real acquisitions.
"""

from __future__ import annotations

from collections import defaultdict

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.exceptions import (
    InfeasibleAcquisitionError,
    NoOwnedCandidatesError,
    ReproError,
    StorageError,
)
from repro.graph.steiner import IGraph
from repro.service.router import (
    candidate_home,
    candidate_owner,
    fold_errors,
    fold_index,
    instance_assignment,
    shard_candidate_filter,
)

# Correlations drawn from a small pool so ties are common — the tie-break is
# the interesting half of the fold rule.
correlations = st.floats(
    min_value=-2.0, max_value=2.0, allow_nan=False, width=32
).map(lambda value: round(value, 2))

instance_names = st.text(
    alphabet=st.characters(min_codepoint=97, max_codepoint=122), min_size=1, max_size=8
)


@st.composite
def indexed_candidates(draw):
    """Unique candidate indices with (possibly tied) correlations."""
    count = draw(st.integers(min_value=1, max_value=12))
    scores = draw(st.lists(correlations, min_size=count, max_size=count))
    return list(zip(scores, range(count)))


@st.composite
def partitioned_candidates(draw):
    pairs = draw(indexed_candidates())
    num_shards = draw(st.integers(min_value=1, max_value=6))
    labels = draw(
        st.lists(
            st.integers(min_value=0, max_value=num_shards - 1),
            min_size=len(pairs),
            max_size=len(pairs),
        )
    )
    return pairs, labels, num_shards


@settings(max_examples=300)
@given(partitioned_candidates())
def test_fold_is_invariant_to_partitioning(case):
    pairs, labels, _ = case
    global_winner = pairs[fold_index(pairs)]

    shards = defaultdict(list)
    for pair, label in zip(pairs, labels):
        shards[label].append(pair)
    shard_winners = [group[fold_index(group)] for group in shards.values()]

    assert shard_winners[fold_index(shard_winners)] == global_winner


@settings(max_examples=300)
@given(indexed_candidates())
def test_fold_picks_max_correlation_lowest_index(pairs):
    winner_correlation, winner_index = pairs[fold_index(pairs)]
    best = max(score for score, _ in pairs)
    assert winner_correlation == best
    assert winner_index == min(index for score, index in pairs if score == best)


def test_fold_index_of_empty_is_none():
    assert fold_index([]) is None


@settings(max_examples=200)
@given(
    names=st.lists(instance_names, min_size=1, max_size=12, unique=True),
    num_shards=st.integers(min_value=1, max_value=8),
)
def test_ownership_is_a_total_partition(names, num_shards):
    """Every candidate is owned by exactly one shard, whatever the map says."""
    assignment = instance_assignment(names, num_shards)
    assert set(assignment) == set(names)
    assert all(0 <= shard < num_shards for shard in assignment.values())

    # Candidates homed on assigned *and* unassigned instances alike.
    igraphs = [
        IGraph(nodes=(name, "zzz_extra"), edges=((name, "zzz_extra"),), total_weight=1.0)
        for name in names
    ] + [IGraph(nodes=("zzz_unassigned",), edges=(), total_weight=0.0)]
    filters = [
        shard_candidate_filter(shard, assignment, num_shards)
        for shard in range(num_shards)
    ]
    for index, igraph in enumerate(igraphs):
        owner = candidate_owner(igraph, assignment, num_shards)
        assert 0 <= owner < num_shards
        assert [owns(index, igraph) for owns in filters].count(True) == 1
        assert filters[owner](index, igraph)


@settings(max_examples=200)
@given(
    names=st.lists(instance_names, min_size=1, max_size=12, unique=True),
    num_shards=st.integers(min_value=1, max_value=8),
)
def test_assignment_is_input_order_invariant(names, num_shards):
    assert instance_assignment(names, num_shards) == instance_assignment(
        list(reversed(names)), num_shards
    )


def test_candidate_home_is_lexicographic_minimum():
    igraph = IGraph(nodes=("b", "a", "c"), edges=(("a", "b"), ("b", "c")), total_weight=2.0)
    assert candidate_home(igraph) == "a"


def test_fold_errors_prefers_first_real_error():
    sentinel = NoOwnedCandidatesError("owned nothing")
    real = InfeasibleAcquisitionError("genuinely infeasible")
    later = StorageError("also failed")
    assert fold_errors([sentinel, real, later]) is real
    assert fold_errors([real, sentinel]) is real


def test_fold_errors_degrades_all_sentinels_to_plain_infeasibility():
    folded = fold_errors([NoOwnedCandidatesError("a"), NoOwnedCandidatesError("b")])
    assert type(folded) is InfeasibleAcquisitionError
    assert str(folded) == "no feasible acquisition satisfies the request constraints"


def test_instance_assignment_rejects_bad_shard_counts():
    try:
        instance_assignment(["a"], 0)
    except ReproError:
        return
    raise AssertionError("expected ReproError for num_shards=0")
