"""Hypothesis property tests for the QoS mechanics (WFQ and token buckets).

The scheduler's fairness claims reduce to three WFQ properties — weighted
sharing under backlog, per-flow FIFO, no starvation — plus two token-bucket
properties: the level never exceeds the burst capacity and refill is monotone
in time.  All mechanics are pure (explicit clocks, no threads), so hypothesis
can drive them directly.
"""

from __future__ import annotations

from hypothesis import given
from hypothesis import strategies as st

from repro.service.qos import TokenBucket, WeightedFairQueue

flow_names = st.sampled_from(["a", "b", "c"])
weights = st.sampled_from([0.5, 1.0, 2.0, 4.0])


class TestWeightedFairQueueProperties:
    @given(
        wa=st.integers(min_value=1, max_value=5),
        wb=st.integers(min_value=1, max_value=5),
        rounds=st.integers(min_value=1, max_value=4),
    )
    def test_backlogged_flows_share_in_weight_proportion(self, wa, wb, rounds):
        # Two continuously backlogged flows with integer weights: every
        # virtual-time unit grants exactly wa : wb (start-time fair queueing
        # is exactly proportional under backlog, not just in expectation).
        queue = WeightedFairQueue()
        for _ in range(rounds * wa):
            queue.push("a", float(wa))
        for _ in range(rounds * wb):
            queue.push("b", float(wb))
        popped = [queue.pop()[3] for _ in range((wa + wb) * rounds)]
        for unit in range(rounds):
            window = popped[unit * (wa + wb) : (unit + 1) * (wa + wb)]
            assert window.count("a") == wa
            assert window.count("b") == wb

    @given(st.lists(flow_names, min_size=1, max_size=40), st.data())
    def test_per_flow_requests_never_reorder(self, flows, data):
        # Whatever the weights, one flow's own requests pop in push order
        # (finish tags are strictly increasing within a flow).
        queue = WeightedFairQueue()
        weight_of = {
            flow: data.draw(weights, label=f"weight[{flow}]") for flow in set(flows)
        }
        position = {
            id(queue.push(flow, weight_of[flow])): index
            for index, flow in enumerate(flows)
        }
        last_seen: dict[object, int] = {}
        for _ in range(len(flows)):
            entry = queue.pop()
            flow, index = entry[3], position[id(entry)]
            assert last_seen.get(flow, -1) < index
            last_seen[flow] = index

    @given(
        st.lists(
            st.tuples(flow_names, st.sampled_from(["push", "pop", "cancel"])),
            min_size=1,
            max_size=60,
        ),
        st.data(),
    )
    def test_no_push_is_ever_lost_or_starved(self, ops, data):
        # Any interleaving of pushes, pops and cancels drains to exactly the
        # non-cancelled pushes: nothing is lost, nothing waits forever.
        queue = WeightedFairQueue()
        weight_of = {
            flow: data.draw(weights, label=f"weight[{flow}]")
            for flow in {flow for flow, _ in ops}
        }
        waiting: list[list] = []
        expected: list[int] = []
        popped: list[int] = []
        for flow, op in ops:
            if op == "push":
                entry = queue.push(flow, weight_of[flow])
                entry_id = id(entry)
                waiting.append(entry)
                expected.append(entry_id)
            elif op == "pop" and len(queue):
                entry = queue.pop()
                waiting.remove(entry)
                popped.append(id(entry))
            elif op == "cancel" and waiting:
                entry = waiting.pop()
                queue.cancel(entry)
                expected.remove(id(entry))
        while len(queue):
            popped.append(id(queue.pop()))
        assert sorted(popped) == sorted(expected)
        assert len(queue) == 0

    @given(
        backlog=st.integers(min_value=1, max_value=20),
        heavy_weight=st.sampled_from([2.0, 4.0, 8.0]),
    )
    def test_waiting_flow_is_served_within_a_bounded_number_of_grants(
        self, backlog, heavy_weight
    ):
        # Starvation-freedom, concretely: a weight-1 request waiting behind a
        # heavy flow pops after at most ceil(weight) grants of that flow —
        # its finish tag is fixed while the heavy flow's tags keep climbing.
        queue = WeightedFairQueue()
        queue.push("light", 1.0)
        for _ in range(backlog):
            queue.push("heavy", heavy_weight)
        grants_before_light = 0
        while queue.pop()[3] != "light":
            grants_before_light += 1
        assert grants_before_light <= heavy_weight


class TestTokenBucketProperties:
    @given(
        rate=st.floats(min_value=0.0, max_value=100.0, allow_nan=False),
        burst=st.integers(min_value=1, max_value=10),
        steps=st.lists(
            st.tuples(
                st.floats(
                    min_value=0.0,
                    max_value=10.0,
                    allow_nan=False,
                    allow_infinity=False,
                ),
                st.booleans(),
            ),
            max_size=30,
        ),
    )
    def test_level_never_exceeds_burst(self, rate, burst, steps):
        # Whatever the take/idle pattern, the level stays within [0, burst].
        bucket = TokenBucket(rate, burst)
        now = 0.0
        for elapsed, take in steps:
            now += elapsed
            if take:
                bucket.take(now)
            else:
                bucket.retry_after(now)  # refill-only observation
            assert 0.0 <= bucket.tokens <= burst

    @given(
        rate=st.floats(min_value=0.01, max_value=50.0, allow_nan=False),
        burst=st.integers(min_value=1, max_value=10),
        drains=st.integers(min_value=0, max_value=10),
        t1=st.floats(min_value=0.0, max_value=100.0, allow_nan=False),
        t2=st.floats(min_value=0.0, max_value=100.0, allow_nan=False),
    )
    def test_refill_is_monotone_in_time(self, rate, burst, drains, t1, t2):
        # Draining the same number of tokens and then waiting longer never
        # leaves fewer tokens (refill is monotone, capped at burst).
        t_lo, t_hi = sorted((t1, t2))

        def level_after(elapsed: float) -> float:
            bucket = TokenBucket(rate, burst)
            for _ in range(drains):
                bucket.take(0.0)
            bucket.retry_after(elapsed)  # refills to `elapsed`
            return bucket.tokens

        assert level_after(t_lo) <= level_after(t_hi) + 1e-9

    @given(
        burst=st.integers(min_value=1, max_value=10),
        rate=st.floats(min_value=0.01, max_value=50.0, allow_nan=False),
    )
    def test_burst_takes_succeed_then_shed_until_refill(self, burst, rate):
        bucket = TokenBucket(rate, burst)
        assert all(bucket.take(0.0) for _ in range(burst))
        assert not bucket.take(0.0)  # the bucket is empty at time zero
        hint = bucket.retry_after(0.0)
        assert hint > 0.0
        assert bucket.take(hint * 1.001)  # one refill interval later it admits

    @given(
        burst=st.integers(min_value=1, max_value=10),
        takes=st.integers(min_value=1, max_value=50),
    )
    def test_unlimited_bucket_always_admits(self, burst, takes):
        for rate in (None, float("inf")):
            bucket = TokenBucket(rate, burst)
            assert all(bucket.take(0.0) for _ in range(takes))
            assert bucket.retry_after(0.0) == 0.0
