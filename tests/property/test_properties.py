"""Hypothesis property-based tests on the core data structures and invariants."""

from __future__ import annotations

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.infotheory.correlation import correlation
from repro.infotheory.cumulative import conditional_cumulative_entropy, cumulative_entropy
from repro.infotheory.entropy import (
    conditional_entropy,
    joint_entropy,
    mutual_information,
    shannon_entropy,
)
from repro.infotheory.join_informativeness import join_informativeness_from_pairs
from repro.quality.fd import FunctionalDependency
from repro.quality.measure import instance_quality
from repro.relational.schema import AttributeType
from repro.relational.joins import full_outer_join, inner_join
from repro.relational.table import Table
from repro.sampling.correlated import correlated_sample
from repro.sampling.hashing import uniform_hash

# ---------------------------------------------------------------------- values
symbols = st.sampled_from(["a", "b", "c", "d", "e"])
symbol_lists = st.lists(symbols, min_size=1, max_size=60)
paired_symbol_lists = st.integers(min_value=1, max_value=50).flatmap(
    lambda n: st.tuples(
        st.lists(symbols, min_size=n, max_size=n),
        st.lists(symbols, min_size=n, max_size=n),
    )
)
float_lists = st.lists(
    st.floats(min_value=-1e6, max_value=1e6, allow_nan=False, allow_infinity=False),
    min_size=0,
    max_size=50,
)
hashable_values = st.one_of(
    st.none(),
    st.booleans(),
    st.integers(min_value=-(10**9), max_value=10**9),
    st.floats(allow_nan=False, allow_infinity=False, width=32),
    st.text(max_size=20),
)


# -------------------------------------------------------------------- entropy
class TestEntropyProperties:
    @given(symbol_lists)
    def test_shannon_entropy_non_negative_and_bounded(self, values):
        import math

        entropy = shannon_entropy(values)
        assert entropy >= 0.0
        assert entropy <= math.log2(len(set(values))) + 1e-9

    @given(paired_symbol_lists)
    def test_conditioning_never_increases_entropy(self, pair):
        x, y = pair
        assert conditional_entropy(x, y) <= shannon_entropy(x) + 1e-9

    @given(paired_symbol_lists)
    def test_mutual_information_symmetric(self, pair):
        x, y = pair
        assert abs(mutual_information(x, y) - mutual_information(y, x)) < 1e-9

    @given(paired_symbol_lists)
    def test_joint_entropy_bounds(self, pair):
        x, y = pair
        joint = joint_entropy(x, y)
        assert joint >= max(shannon_entropy(x), shannon_entropy(y)) - 1e-9
        assert joint <= shannon_entropy(x) + shannon_entropy(y) + 1e-9

    @given(float_lists)
    def test_cumulative_entropy_non_negative(self, values):
        assert cumulative_entropy(values) >= -1e-9

    @given(paired_symbol_lists)
    def test_correlation_non_negative_categorical(self, pair):
        x, y = pair
        assert correlation(x, y, x_type=AttributeType.CATEGORICAL) >= -1e-9

    @given(paired_symbol_lists)
    def test_join_informativeness_bounds(self, pair):
        x, y = pair
        assert 0.0 <= join_informativeness_from_pairs(x, y) <= 1.0

    @given(
        st.lists(
            st.floats(min_value=0, max_value=100, allow_nan=False),
            min_size=2,
            max_size=40,
        ),
        st.lists(symbols, min_size=2, max_size=40),
    )
    def test_conditional_cumulative_entropy_not_exceeding_marginal(self, xs, ys):
        n = min(len(xs), len(ys))
        xs, ys = xs[:n], ys[:n]
        assert conditional_cumulative_entropy(xs, ys) <= cumulative_entropy(xs) + 1e-6


# -------------------------------------------------------------------- hashing
class TestHashingProperties:
    @given(hashable_values)
    def test_hash_in_unit_interval(self, value):
        assert 0.0 <= uniform_hash(value) <= 1.0

    @given(hashable_values, st.integers(min_value=0, max_value=10))
    def test_hash_deterministic(self, value, seed):
        assert uniform_hash(value, seed) == uniform_hash(value, seed)


# ---------------------------------------------------------------------- joins
table_rows = st.lists(
    st.tuples(st.integers(min_value=0, max_value=5), st.sampled_from(["x", "y", "z"])),
    min_size=0,
    max_size=30,
)


class TestJoinProperties:
    @given(table_rows, table_rows)
    @settings(max_examples=40)
    def test_inner_join_subset_of_outer_join(self, left_rows, right_rows):
        left = Table.from_rows("l", ["k", "a"], left_rows)
        right = Table.from_rows("r", ["k", "b"], right_rows)
        inner = inner_join(left, right)
        outer = full_outer_join(left, right)
        assert len(outer) >= len(inner)
        assert (
            len(outer) >= max(len(left), len(right)) - 1e-9
            if (left_rows or right_rows)
            else True
        )

    @given(table_rows, table_rows)
    @settings(max_examples=40)
    def test_inner_join_commutative_in_size(self, left_rows, right_rows):
        left = Table.from_rows("l", ["k", "a"], left_rows)
        right = Table.from_rows("r", ["k", "b"], right_rows)
        assert len(inner_join(left, right)) == len(inner_join(right, left))

    @given(table_rows)
    @settings(max_examples=40)
    def test_projection_preserves_row_count(self, rows):
        table = Table.from_rows("t", ["k", "a"], rows)
        assert len(table.project(["a"])) == len(table)


# ------------------------------------------------------------------- sampling
class TestSamplingProperties:
    @given(
        table_rows,
        st.floats(min_value=0.1, max_value=1.0),
        st.integers(min_value=0, max_value=5),
    )
    @settings(max_examples=40)
    def test_sample_is_subset_of_table(self, rows, rate, seed):
        table = Table.from_rows("t", ["k", "a"], rows)
        sample = correlated_sample(table, ["k"], rate, seed=seed)
        assert len(sample) <= len(table)
        original = table.value_counts(["k", "a"])
        for key, count in sample.value_counts(["k", "a"]).items():
            assert count <= original[key]

    @given(table_rows, st.integers(min_value=0, max_value=5))
    @settings(max_examples=40)
    def test_rate_one_is_identity(self, rows, seed):
        table = Table.from_rows("t", ["k", "a"], rows)
        assert len(correlated_sample(table, ["k"], 1.0, seed=seed)) == len(table)


# -------------------------------------------------------------------- quality
class TestQualityProperties:
    @given(table_rows)
    @settings(max_examples=40)
    def test_quality_in_unit_interval(self, rows):
        table = Table.from_rows("t", ["k", "a"], rows)
        quality = instance_quality(table, FunctionalDependency("k", "a"))
        assert 0.0 <= quality <= 1.0

    @given(st.lists(st.tuples(st.integers(0, 3), st.sampled_from(["x", "y"])), min_size=1, max_size=30))
    @settings(max_examples=40)
    def test_quality_at_least_number_of_groups_over_rows(self, rows):
        """Each LHS group contributes at least one correct row."""
        table = Table.from_rows("t", ["k", "a"], rows)
        quality = instance_quality(table, FunctionalDependency("k", "a"))
        groups = table.distinct_count(["k"])
        assert quality >= groups / len(table) - 1e-9
