"""Regression tests for config-mutation and stale-graph bugs in the middleware.

Each test here failed on the code before the fix it documents:

* ``build_dance(..., mcmc_iterations=N)`` used to replace ``config.mcmc`` on
  the *caller's* ``DanceConfig`` object;
* ``DANCE._rebuild_graph`` used to reach into the private
  ``Marketplace._default_pricing``;
* ``register_source_tables`` after ``build_offline()`` used to leave a stale
  join graph in which the new sources were silently absent.
"""

from __future__ import annotations

import pytest

from repro.core.config import DanceConfig
from repro.core.dance import DANCE, build_dance
from repro.marketplace.market import Marketplace
from repro.marketplace.shopper import AcquisitionRequest
from repro.pricing.models import FlatAttributePricingModel
from repro.relational.table import Table
from repro.search.mcmc import MCMCConfig


@pytest.fixture
def chain_marketplace() -> Marketplace:
    market = Marketplace()
    market.host(
        Table.from_rows(
            "orders",
            ["custkey", "totalprice"],
            [(i % 6, float(i % 6) * 100 + i % 2) for i in range(60)],
        )
    )
    market.host(
        Table.from_rows("customers", ["custkey", "nationkey"], [(i, i % 3) for i in range(6)])
    )
    market.host(
        Table.from_rows("nations", ["nationkey", "nname"], [(i, f"n{i}") for i in range(3)])
    )
    return market


class TestBuildDanceConfigMutation:
    def test_caller_config_is_not_mutated(self, chain_marketplace):
        config = DanceConfig(sampling_rate=0.8, mcmc=MCMCConfig(iterations=30, seed=7))
        original_mcmc = config.mcmc

        dance = build_dance(chain_marketplace, config=config, mcmc_iterations=5)

        assert config.mcmc is original_mcmc
        assert config.mcmc.iterations == 30
        assert dance.config.mcmc.iterations == 5
        assert dance.config.mcmc.seed == 7
        assert dance.config is not config

    def test_override_preserves_other_mcmc_knobs(self, chain_marketplace):
        config = DanceConfig(
            sampling_rate=0.8,
            mcmc=MCMCConfig(iterations=30, seed=3, projection_flip_probability=0.25),
        )
        dance = build_dance(chain_marketplace, config=config, mcmc_iterations=12)
        assert dance.config.mcmc.projection_flip_probability == 0.25
        assert config.mcmc.projection_flip_probability == 0.25
        assert config.mcmc.iterations == 30


class TestMarketplacePricingProperty:
    def test_pricing_property_exposes_default_model(self):
        model = FlatAttributePricingModel(price_per_attribute=2.0)
        market = Marketplace(default_pricing=model)
        assert market.pricing is model
        # the private name stays as a compatibility alias
        assert market._default_pricing is market.pricing

    def test_join_graph_uses_public_pricing(self, chain_marketplace):
        dance = DANCE(chain_marketplace, DanceConfig(sampling_rate=0.8))
        dance.build_offline()
        assert dance.join_graph.pricing is chain_marketplace.pricing


class TestRegisterSourcesAfterOffline:
    def test_late_source_registration_rebuilds_graph(self, chain_marketplace):
        dance = DANCE(chain_marketplace, DanceConfig(sampling_rate=0.8))
        dance.build_offline()
        assert "shopper_orders" not in dance.join_graph

        shopper_orders = Table.from_rows(
            "shopper_orders",
            ["custkey", "ordercount"],
            [(i % 6, float(i)) for i in range(12)],
        )
        dance.register_source_tables([shopper_orders])

        graph = dance.join_graph
        assert "shopper_orders" in graph
        assert "shopper_orders" in graph.source_instances
        # the new source is wired into the I-layer through its shared attribute
        assert graph.has_edge("shopper_orders", "customers")

    def test_late_source_participates_in_acquisition(self, chain_marketplace):
        dance = DANCE(
            chain_marketplace,
            DanceConfig(sampling_rate=0.8, mcmc=MCMCConfig(iterations=30, seed=0)),
        )
        dance.build_offline()
        shopper_orders = Table.from_rows(
            "shopper_orders",
            ["custkey", "spend"],
            [(i % 6, float(i % 6) * 10 + i % 3) for i in range(24)],
        )
        dance.register_source_tables([shopper_orders])
        result = dance.acquire(
            AcquisitionRequest(
                source_attributes=["spend"],
                target_attributes=["nname"],
                budget=1e6,
            )
        )
        assert "shopper_orders" in result.target_graph.nodes
        # owned instances are never purchased
        assert "shopper_orders" not in [query.dataset for query in result.queries]
        assert 0.0 <= result.mcmc_cache_hit_rate <= 1.0

    def test_registering_no_tables_keeps_graph(self, chain_marketplace):
        dance = DANCE(chain_marketplace, DanceConfig(sampling_rate=0.8))
        graph = dance.build_offline()
        dance.register_source_tables([])
        assert dance.join_graph is graph
