"""Tests for the DANCE middleware facade."""

from __future__ import annotations

import pytest

from repro.core.config import DanceConfig
from repro.core.dance import DANCE, build_dance
from repro.exceptions import InfeasibleAcquisitionError
from repro.marketplace.market import Marketplace
from repro.marketplace.shopper import AcquisitionRequest
from repro.relational.table import Table
from repro.search.mcmc import MCMCConfig


@pytest.fixture
def chain_marketplace() -> Marketplace:
    market = Marketplace()
    market.host(
        Table.from_rows(
            "orders",
            ["custkey", "totalprice"],
            [(i % 6, float(i % 6) * 100 + i % 2) for i in range(60)],
        )
    )
    market.host(
        Table.from_rows("customers", ["custkey", "nationkey"], [(i, i % 3) for i in range(6)])
    )
    market.host(
        Table.from_rows("nations", ["nationkey", "nname"], [(i, f"n{i}") for i in range(3)])
    )
    return market


@pytest.fixture
def config() -> DanceConfig:
    return DanceConfig(sampling_rate=0.8, mcmc=MCMCConfig(iterations=30, seed=0))


class TestOfflinePhase:
    def test_build_offline_buys_samples_and_builds_graph(self, chain_marketplace, config):
        dance = DANCE(chain_marketplace, config)
        graph = dance.build_offline()
        assert len(graph) == 3
        assert dance.sample_cost > 0.0
        assert chain_marketplace.sample_revenue == pytest.approx(dance.sample_cost)

    def test_join_graph_before_offline_raises(self, chain_marketplace, config):
        with pytest.raises(InfeasibleAcquisitionError):
            DANCE(chain_marketplace, config).join_graph

    def test_fds_collected_from_samples(self, chain_marketplace, config):
        dance = DANCE(chain_marketplace, config)
        dance.build_offline()
        assert any(fd.rhs == "nname" for fd in dance.fds)

    def test_known_fds_override_discovery(self, chain_marketplace, config):
        from repro.quality.fd import FunctionalDependency

        known = {"nations": [FunctionalDependency("nationkey", "nname")]}
        dance = DANCE(chain_marketplace, config, known_fds=known)
        dance.build_offline()
        assert FunctionalDependency("nationkey", "nname") in dance.fds

    def test_source_tables_become_source_instances(self, chain_marketplace, config):
        dance = DANCE(chain_marketplace, config)
        local = Table.from_rows("local", ["custkey", "age"], [(i, 20 + i) for i in range(6)])
        dance.register_source_tables([local])
        graph = dance.build_offline()
        assert "local" in graph.source_instances
        assert graph.price_of("local", ["custkey"]) == 0.0


class TestOnlinePhase:
    def test_acquire_returns_queries_and_estimates(self, chain_marketplace, config):
        dance = DANCE(chain_marketplace, config)
        request = AcquisitionRequest(["totalprice"], ["nname"], budget=1e6)
        result = dance.acquire(request)
        assert result.estimated_correlation > 0.0
        assert result.purchased_instances
        assert all(sql.startswith("SELECT") for sql in result.sql())
        assert result.igraph_size >= 2

    def test_acquire_without_offline_builds_automatically(self, chain_marketplace, config):
        dance = DANCE(chain_marketplace, config)
        request = AcquisitionRequest(["totalprice"], ["nname"], budget=1e6)
        assert dance.acquire(request).estimated_correlation >= 0.0

    def test_impossible_budget_raises_after_refinement(self, chain_marketplace, config):
        dance = DANCE(chain_marketplace, config)
        request = AcquisitionRequest(["totalprice"], ["nname"], budget=0.0)
        with pytest.raises(InfeasibleAcquisitionError):
            dance.acquire(request)

    def test_unknown_target_attribute_raises(self, chain_marketplace, config):
        dance = DANCE(chain_marketplace, config)
        request = AcquisitionRequest(["totalprice"], ["missing"], budget=1e6)
        with pytest.raises(InfeasibleAcquisitionError):
            dance.acquire(request)

    def test_purchase_loop_with_shopper(self, chain_marketplace, config):
        from repro.marketplace.shopper import DataShopper
        from repro.pricing.budget import Budget

        dance = DANCE(chain_marketplace, config)
        request = AcquisitionRequest(["totalprice"], ["nname"], budget=1e6)
        result = dance.acquire(request)

        shopper = DataShopper(name="adam", budget=Budget(total=1e6))
        receipts = shopper.purchase(chain_marketplace, result.queries)
        assert len(receipts) == len(result.queries)
        assert shopper.total_spent() == pytest.approx(
            sum(receipt.price for receipt in receipts)
        )

    def test_describe(self, chain_marketplace, config):
        dance = DANCE(chain_marketplace, config)
        dance.build_offline()
        info = dance.describe()
        assert info["num_fds"] >= 0
        assert info["join_graph"]["num_instances"] == 3


class TestBuildDance:
    def test_convenience_constructor(self, chain_marketplace):
        local = Table.from_rows("local", ["custkey", "age"], [(i, 30) for i in range(6)])
        dance = build_dance(
            chain_marketplace,
            config=DanceConfig(sampling_rate=0.9),
            source_tables=[local],
            mcmc_iterations=20,
        )
        assert "local" in dance.join_graph.source_instances
        assert dance.config.mcmc.iterations == 20
