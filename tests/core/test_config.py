"""Tests for DanceConfig."""

from __future__ import annotations

import pytest

from repro.core.config import DanceConfig
from repro.exceptions import SamplingError
from repro.sampling.resampling import ResamplingPolicy
from repro.search.mcmc import MCMCConfig


class TestDanceConfig:
    def test_defaults_are_valid(self):
        config = DanceConfig()
        assert 0.0 < config.sampling_rate <= 1.0
        assert config.num_landmarks >= 1
        assert isinstance(config.resampling, ResamplingPolicy)
        assert isinstance(config.mcmc, MCMCConfig)

    def test_invalid_sampling_rate(self):
        with pytest.raises(SamplingError):
            DanceConfig(sampling_rate=0.0)
        with pytest.raises(SamplingError):
            DanceConfig(sampling_rate=1.2)

    def test_invalid_landmarks(self):
        with pytest.raises(SamplingError):
            DanceConfig(num_landmarks=0)

    def test_invalid_refinement_settings(self):
        with pytest.raises(SamplingError):
            DanceConfig(max_refinement_rounds=-1)
        with pytest.raises(SamplingError):
            DanceConfig(refinement_rate_multiplier=0.5)

    def test_refined_doubles_sampling_rate(self):
        config = DanceConfig(sampling_rate=0.3, refinement_rate_multiplier=2.0)
        refined = config.refined()
        assert refined.sampling_rate == pytest.approx(0.6)
        assert refined.mcmc is config.mcmc

    def test_refined_caps_at_one(self):
        config = DanceConfig(sampling_rate=0.8, refinement_rate_multiplier=2.0)
        assert config.refined().sampling_rate == 1.0
