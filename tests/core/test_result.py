"""Tests for AcquisitionResult and query generation."""

from __future__ import annotations

from repro.core.result import AcquisitionResult, queries_for_target_graph
from repro.graph.target import TargetGraph, TargetGraphEvaluation


def _make_graph() -> TargetGraph:
    return TargetGraph(
        nodes=["orders", "customers", "nations"],
        edges=[frozenset({"custkey"}), frozenset({"nationkey"})],
        projections={
            "orders": {"custkey", "totalprice"},
            "customers": {"custkey", "nationkey"},
            "nations": {"nationkey", "nname"},
        },
        source_instances={"orders"},
    )


class TestQueriesForTargetGraph:
    def test_source_instances_excluded(self):
        queries = queries_for_target_graph(_make_graph())
        assert {q.dataset for q in queries} == {"customers", "nations"}

    def test_attributes_sorted_and_complete(self):
        queries = queries_for_target_graph(_make_graph())
        by_dataset = {q.dataset: q.attributes for q in queries}
        assert by_dataset["nations"] == ("nationkey", "nname")

    def test_extra_exclusions(self):
        queries = queries_for_target_graph(_make_graph(), exclude=["customers"])
        assert {q.dataset for q in queries} == {"nations"}


class TestAcquisitionResult:
    def test_summary_and_properties(self):
        graph = _make_graph()
        evaluation = TargetGraphEvaluation(
            correlation=2.5, quality=0.9, weight=0.8, price=12.0, join_rows=40
        )
        result = AcquisitionResult(
            target_graph=graph,
            evaluation=evaluation,
            queries=queries_for_target_graph(graph),
            sample_cost=0.5,
            igraph_size=3,
        )
        assert result.estimated_correlation == 2.5
        assert result.estimated_quality == 0.9
        assert result.estimated_join_informativeness == 0.8
        assert result.estimated_price == 12.0
        assert result.purchased_instances == ["customers", "nations"]
        assert len(result.sql()) == 2
        assert all(sql.startswith("SELECT") for sql in result.sql())

        summary = result.summary()
        assert summary["instances"] == ["orders", "customers", "nations"]
        assert summary["estimated_price"] == 12.0
        assert summary["igraph_size"] == 3
        assert summary["sample_cost"] == 0.5
        # Single-chain defaults of the multi-chain diagnostics.
        assert summary["mcmc_chains"] == 1
        assert summary["mcmc_executor"] == "serial"
        assert summary["mcmc_best_chain"] == 0
        assert summary["mcmc_chain_correlations"] == []

    def test_summary_carries_chain_diagnostics(self):
        graph = _make_graph()
        evaluation = TargetGraphEvaluation(
            correlation=2.5, quality=0.9, weight=0.8, price=12.0, join_rows=40
        )
        result = AcquisitionResult(
            target_graph=graph,
            evaluation=evaluation,
            mcmc_chains=4,
            mcmc_executor="thread",
            mcmc_best_chain=2,
            mcmc_chain_correlations=[2.5, 2.5, 2.5, None],
        )
        summary = result.summary()
        assert summary["mcmc_chains"] == 4
        assert summary["mcmc_executor"] == "thread"
        assert summary["mcmc_best_chain"] == 2
        assert summary["mcmc_chain_correlations"] == [2.5, 2.5, 2.5, None]
