"""Tests for the command-line interface."""

from __future__ import annotations

import json

import pytest

from repro.cli import build_parser, main


BASE_ARGS = ["--scale", "0.05", "--sampling-rate", "0.8", "--mcmc-iterations", "15"]


class TestParser:
    def test_requires_subcommand(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_catalog_defaults(self):
        args = build_parser().parse_args(["catalog"])
        assert args.workload == "tpch"
        assert args.func.__name__ == "cmd_catalog"

    def test_acquire_options(self):
        args = build_parser().parse_args(
            ["acquire", "--query", "Q1", "--budget", "55", "--top-k", "2"]
        )
        assert args.query == "Q1"
        assert args.budget == 55.0
        assert args.top_k == 2


class TestCatalogCommand:
    def test_text_output(self, capsys):
        assert main(["catalog", *BASE_ARGS]) == 0
        output = capsys.readouterr().out
        assert "lineitem" in output
        assert "orders" in output

    def test_json_output(self, capsys):
        assert main(["catalog", "--json", *BASE_ARGS]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert len(payload) == 8


class TestAcquireCommand:
    def test_predefined_query_text(self, capsys):
        code = main(["acquire", "--query", "Q1", "--budget", "1000", *BASE_ARGS])
        assert code == 0
        output = capsys.readouterr().out
        assert "SELECT" in output
        assert "estimated correlation" in output

    def test_explicit_attributes_json(self, capsys):
        code = main(
            [
                "acquire",
                "--source", "totalprice",
                "--target", "mktsegment",
                "--budget", "1000",
                "--json",
                *BASE_ARGS,
            ]
        )
        assert code == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["queries"]
        assert payload["estimated_price"] <= 1000

    def test_top_k_output(self, capsys):
        code = main(
            ["acquire", "--query", "Q1", "--budget", "1000", "--top-k", "2", *BASE_ARGS]
        )
        assert code == 0
        payload = json.loads(capsys.readouterr().out)
        assert isinstance(payload, list)
        assert payload[0]["rank"] == 1

    def test_missing_target_is_an_error(self, capsys):
        assert main(["acquire", "--budget", "10", *BASE_ARGS]) == 2

    def test_infeasible_request_returns_error_code(self, capsys):
        code = main(
            ["acquire", "--target", "does_not_exist", "--budget", "10", *BASE_ARGS]
        )
        assert code == 1
        assert "error" in capsys.readouterr().err


class TestExportGraphCommand:
    def test_describe_only(self, capsys):
        assert main(["export-graph", *BASE_ARGS]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["num_instances"] == 8

    def test_write_json_and_dot(self, tmp_path, capsys):
        json_path = tmp_path / "graph.json"
        dot_path = tmp_path / "graph.dot"
        code = main(
            [
                "export-graph",
                "--json-out", str(json_path),
                "--dot-out", str(dot_path),
                *BASE_ARGS,
            ]
        )
        assert code == 0
        assert json_path.exists()
        assert dot_path.read_text().startswith("graph")


class TestBatchCommand:
    def write_requests(self, tmp_path, specs):
        path = tmp_path / "requests.json"
        path.write_text(json.dumps(specs))
        return str(path)

    def test_batch_of_queries_and_explicit_attributes(self, tmp_path, capsys):
        path = self.write_requests(
            tmp_path,
            [
                {"query": "Q1", "budget": 1000},
                {"source": ["totalprice"], "target": ["rname"], "budget": 1000},
            ],
        )
        assert main(["batch", path, "--batch-workers", "2", *BASE_ARGS]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["service"]["requests"] == 2
        assert payload["service"]["errors"] == 0
        assert [item["index"] for item in payload["results"]] == [0, 1]
        assert all(item["ok"] for item in payload["results"])
        assert "estimated_correlation" in json.dumps(payload["results"][0])

    def test_batch_matches_serial_acquire(self, tmp_path, capsys):
        """Request 0 keeps the base seed, so it matches `acquire --query Q1`."""
        path = self.write_requests(tmp_path, [{"query": "Q1", "budget": 1000}])
        assert main(["batch", path, *BASE_ARGS]) == 0
        batch_payload = json.loads(capsys.readouterr().out)
        assert main(["acquire", "--query", "Q1", "--budget", "1000", "--json", *BASE_ARGS]) == 0
        acquire_payload = json.loads(capsys.readouterr().out)
        batch_result = batch_payload["results"][0]["result"]
        assert (
            batch_result["estimated_correlation"]
            == acquire_payload["estimated_correlation"]
        )
        assert batch_result["queries"] == acquire_payload["queries"]

    def test_failed_requests_reported_with_nonzero_exit(self, tmp_path, capsys):
        path = self.write_requests(
            tmp_path,
            [
                {"query": "Q1", "budget": 1000},
                {"source": [], "target": ["no_such_attr"], "budget": 10},
            ],
        )
        assert main(["batch", path, *BASE_ARGS]) == 1
        payload = json.loads(capsys.readouterr().out)
        assert payload["service"]["errors"] == 1
        assert payload["results"][1]["ok"] is False
        assert "error" in payload["results"][1]

    def test_rejects_malformed_request_file(self, tmp_path, capsys):
        path = tmp_path / "bad.json"
        path.write_text("{not json")
        assert main(["batch", str(path), *BASE_ARGS]) == 1
        assert "error" in capsys.readouterr().err

    def test_rejects_unknown_query_name(self, tmp_path, capsys):
        path = self.write_requests(tmp_path, [{"query": "Q9", "budget": 10}])
        assert main(["batch", path, *BASE_ARGS]) == 1
        assert "unknown query" in capsys.readouterr().err

    def test_bounded_queue_and_shoppers(self, tmp_path, capsys):
        path = self.write_requests(
            tmp_path,
            [
                {"query": "Q1", "budget": 1000, "shopper": "alice"},
                {"query": "Q2", "budget": 1000, "shopper": "bob"},
            ],
        )
        code = main(
            ["batch", path, "--queue-depth", "4", "--admission", "block", *BASE_ARGS]
        )
        assert code == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["service"]["queue_depth"] == 4
        assert payload["service"]["admission"] == "block"
        assert payload["service"]["rejected"] == 0
        assert payload["service"]["latency_p50_seconds"] > 0
        assert [item["shopper"] for item in payload["results"]] == ["alice", "bob"]
        assert payload["metrics"]["queue"]["admitted"] == 2
        assert payload["metrics"]["latency"]["count"] == 2

    def test_batch_summary_includes_metrics(self, tmp_path, capsys):
        path = self.write_requests(tmp_path, [{"query": "Q1", "budget": 1000}])
        assert main(["batch", path, *BASE_ARGS]) == 0
        payload = json.loads(capsys.readouterr().out)
        metrics = payload["metrics"]
        assert metrics["requests"] == 1
        assert metrics["step1_memo"]["enabled"] is True
        assert "p95_seconds" in metrics["latency"]
        assert "trend" in metrics["cache_hit_rate"]


class TestCatalogActions:
    def test_init_then_inspect(self, tmp_path, capsys):
        catalog = tmp_path / "market.catalog"
        assert main(["catalog", "init", "--catalog", str(catalog), *BASE_ARGS]) == 0
        assert catalog.exists()
        capsys.readouterr()
        assert main(["catalog", "inspect", "--catalog", str(catalog)]) == 0
        summary = json.loads(capsys.readouterr().out)
        assert summary["kind"] == "sqlite"
        assert summary["schema_version"] == 1
        assert summary["namespaces"]["tables"] == 8
        assert summary["offline"] is None  # init stores tables, not the graph

    def test_persist_includes_the_offline_phase(self, tmp_path, capsys):
        catalog = tmp_path / "market.catalog"
        assert main(["catalog", "persist", "--catalog", str(catalog), *BASE_ARGS]) == 0
        capsys.readouterr()
        assert main(["catalog", "inspect", "--catalog", str(catalog)]) == 0
        summary = json.loads(capsys.readouterr().out)
        assert summary["offline"]["ji_entries"] > 0
        assert "offline" in summary["namespaces"]

    def test_show_reads_back_from_the_catalog(self, tmp_path, capsys):
        catalog = tmp_path / "market.catalog"
        assert main(["catalog", "init", "--catalog", str(catalog), *BASE_ARGS]) == 0
        built = capsys.readouterr().out
        assert main(["catalog", "--json", "--catalog", str(catalog), *BASE_ARGS]) == 0
        from_catalog = json.loads(capsys.readouterr().out)
        assert len(from_catalog) == 8
        assert built  # the init run printed the same catalog

    def test_init_without_catalog_path_is_usage_error(self, capsys):
        assert main(["catalog", "init", *BASE_ARGS]) == 2
        assert "requires --catalog" in capsys.readouterr().err

    def test_inspect_missing_file_is_an_error(self, tmp_path, capsys):
        code = main(["catalog", "inspect", "--catalog", str(tmp_path / "absent")])
        assert code == 1
        assert "error" in capsys.readouterr().err


class TestBatchCatalogWarmRestart:
    def test_second_batch_run_restarts_warm(self, tmp_path, capsys):
        requests = tmp_path / "requests.json"
        requests.write_text(json.dumps([{"query": "Q1", "budget": 1000}]))
        catalog = tmp_path / "market.catalog"
        cold_args = ["batch", str(requests), "--catalog", str(catalog), *BASE_ARGS]
        assert main(cold_args) == 0
        cold = json.loads(capsys.readouterr().out)
        assert catalog.exists()

        assert main(cold_args) == 0
        warm = json.loads(capsys.readouterr().out)
        # The warm service adopted the checkpointed Step-1 memo: the request
        # is answered without a single landmark/Steiner search.
        assert warm["metrics"]["step1_memo"]["hits"] == 1
        assert warm["metrics"]["step1_memo"]["misses"] == 0
        assert (
            warm["results"][0]["result"]["estimated_correlation"]
            == cold["results"][0]["result"]["estimated_correlation"]
        )


class TestMetricsCommand:
    def test_default_traffic_dump(self, capsys):
        assert main(["metrics", "--budget", "1000", *BASE_ARGS]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["requests"] == 6  # three workload queries, served twice
        assert payload["errors"] == 0
        assert payload["in_flight"] == 0
        assert payload["latency"]["count"] == 6
        assert payload["latency"]["p99_seconds"] is not None
        assert payload["queue"]["policy"] == "block"
        assert payload["step1_memo"]["enabled"] is True

    def test_requests_file_and_reject_policy(self, tmp_path, capsys):
        path = tmp_path / "requests.json"
        path.write_text(json.dumps([{"query": "Q1", "budget": 1000}]))
        code = main(
            [
                "metrics",
                str(path),
                "--queue-depth", "2",
                "--admission", "reject",
                *BASE_ARGS,
            ]
        )
        assert code == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["requests"] == 1
        assert payload["queue"]["max_depth"] == 2
        assert payload["queue"]["policy"] == "reject"

    def test_nonzero_exit_when_requests_fail(self, tmp_path, capsys):
        path = tmp_path / "requests.json"
        path.write_text(
            json.dumps([{"source": [], "target": ["no_such_attr"], "budget": 10}])
        )
        assert main(["metrics", str(path), *BASE_ARGS]) == 1
        payload = json.loads(capsys.readouterr().out)
        assert payload["errors"] == 1
