"""Smoke tests for the experiment drivers at tiny scale.

The full-scale parameter sweeps live in ``benchmarks/``; these tests only check
that every driver runs end-to-end and produces rows with the expected columns
and sane values, so regressions in the harness are caught by the unit suite.
"""

from __future__ import annotations

import math

import pytest

from repro.experiments.common import (
    correlation_difference,
    load_workload,
    prepare_setup,
    summarize_rows,
    timed,
)
from repro.experiments.fig4 import run_fig4
from repro.experiments.fig5 import run_fig5_budget, run_fig5_instances
from repro.experiments.fig6 import run_fig6
from repro.experiments.fig7 import run_fig7
from repro.experiments.fig8 import run_fig8
from repro.experiments.table5 import run_table5
from repro.experiments.table6 import run_table6


class TestCommon:
    def test_load_workload_dispatch(self):
        assert load_workload("tpch", scale=0.05).name == "tpch"
        assert load_workload("tpce", scale=0.05).name == "tpce"
        with pytest.raises(KeyError):
            load_workload("unknown")

    def test_correlation_difference(self):
        assert correlation_difference(10.0, 8.0) == pytest.approx(0.2)
        assert correlation_difference(0.0, 5.0) == 0.0
        assert correlation_difference(5.0, 6.0) == 0.0  # clamped at 0

    def test_timed(self):
        value, elapsed = timed(lambda: 42)
        assert value == 42
        assert elapsed >= 0.0

    def test_summarize_rows(self):
        text = summarize_rows([{"a": 1.5, "b": "x"}], ["a", "b"])
        assert "1.5000" in text and "x" in text

    def test_prepare_setup_restricts_instances(self):
        setup = prepare_setup("tpch", "Q1", scale=0.05, num_instances=5, mcmc_iterations=10)
        assert len(setup.join_graph) <= 5
        assert setup.query.source_instance in setup.join_graph

    def test_budget_for_ratio_positive(self):
        setup = prepare_setup("tpch", "Q1", scale=0.05, mcmc_iterations=10)
        assert setup.budget_for_ratio(0.5) > 0.0


class TestDrivers:
    def test_table5(self):
        rows = run_table5(
            workloads={"tpch": load_workload("tpch", scale=0.05)}, fd_max_lhs_size=1
        )
        assert len(rows) == 1
        assert rows[0]["num_instances"] == 8
        assert rows[0]["avg_fds_per_table"] > 0

    def test_fig4_tiny(self):
        rows = run_fig4(
            query_names=("Q1",),
            instance_counts=(5,),
            scale=0.05,
            mcmc_iterations=10,
            include_gp=False,
        )
        assert len(rows) == 1
        assert rows[0]["heuristic_seconds"] > 0.0
        assert rows[0]["lp_seconds"] > 0.0

    def test_fig5_instances_tiny(self):
        rows = run_fig5_instances(
            query_names=("Q1",), instance_counts=(10,), scale=0.05, mcmc_iterations=10
        )
        assert len(rows) == 1
        assert rows[0]["igraph_size"] >= 1 or not rows[0]["feasible"]

    def test_fig5_budget_tiny(self):
        rows = run_fig5_budget(
            query_names=("Q1",), budget_ratios=(0.9,), scale=0.05, mcmc_iterations=10
        )
        assert len(rows) == 1
        assert rows[0]["affordable"] in (True, False)

    def test_fig6_tiny(self):
        rows = run_fig6(
            query_names=("Q1",), sampling_rates=(0.5,), scale=0.05, mcmc_iterations=10
        )
        assert len(rows) == 1
        assert 0.0 <= rows[0]["cd_vs_gp"] <= 1.0

    def test_fig7_tiny(self):
        rows = run_fig7(
            query_names=("Q1",), budget_ratios=(0.9,), scale=0.05, mcmc_iterations=10
        )
        assert len(rows) == 1
        assert rows[0]["gp_correlation"] >= 0.0

    def test_fig8_tiny(self):
        rows = run_fig8(
            query_names=("Q1",), resampling_rates=(0.5,), scale=0.05, mcmc_iterations=10
        )
        assert len(rows) == 1
        assert not math.isnan(rows[0]["difference"])

    def test_table6_tiny(self):
        rows = run_table6(query_names=("Q1",), scale=0.05, mcmc_iterations=10)
        assert len(rows) == 2
        approaches = {row["approach"] for row in rows}
        assert approaches == {"DANCE", "direct"}
