"""Tests for cumulative entropy (numerical-attribute correlation support)."""

from __future__ import annotations

import pytest

from repro.infotheory.cumulative import (
    conditional_cumulative_entropy,
    cumulative_entropy,
    cumulative_mutual_information,
)


class TestCumulativeEntropy:
    def test_constant_sample_is_zero(self):
        assert cumulative_entropy([5.0, 5.0, 5.0]) == 0.0

    def test_empty_and_singleton_are_zero(self):
        assert cumulative_entropy([]) == 0.0
        assert cumulative_entropy([3.0]) == 0.0

    def test_positive_for_spread_sample(self):
        assert cumulative_entropy([0.0, 1.0, 2.0, 3.0]) > 0.0

    def test_scaling_property(self):
        # Cumulative entropy scales linearly with the data scale.
        base = cumulative_entropy([0.0, 1.0, 2.0, 3.0])
        scaled = cumulative_entropy([0.0, 2.0, 4.0, 6.0])
        assert scaled == pytest.approx(2.0 * base)

    def test_translation_invariance(self):
        base = cumulative_entropy([0.0, 1.0, 2.0])
        shifted = cumulative_entropy([10.0, 11.0, 12.0])
        assert shifted == pytest.approx(base)

    def test_none_values_dropped(self):
        assert cumulative_entropy([None, 1.0, 2.0]) == pytest.approx(
            cumulative_entropy([1.0, 2.0])
        )

    def test_non_numeric_raises(self):
        with pytest.raises(ValueError):
            cumulative_entropy(["a", "b"])

    def test_integers_accepted(self):
        assert cumulative_entropy([1, 2, 3]) > 0.0


class TestConditionalCumulativeEntropy:
    def test_perfect_grouping_reduces_to_zero(self):
        x = [1.0, 1.0, 5.0, 5.0]
        y = ["a", "a", "b", "b"]
        assert conditional_cumulative_entropy(x, y) == pytest.approx(0.0)

    def test_uninformative_grouping_keeps_entropy(self):
        x = [1.0, 5.0, 1.0, 5.0]
        y = ["a", "a", "b", "b"]
        conditional = conditional_cumulative_entropy(x, y)
        assert conditional > 0.0

    def test_conditioning_never_increases_much(self):
        x = [1.0, 2.0, 3.0, 4.0, 5.0, 6.0]
        y = ["a", "b", "a", "b", "a", "b"]
        assert conditional_cumulative_entropy(x, y) <= cumulative_entropy(x) + 1e-9

    def test_mismatched_lengths_raise(self):
        with pytest.raises(ValueError):
            conditional_cumulative_entropy([1.0], ["a", "b"])

    def test_empty_sequences(self):
        assert conditional_cumulative_entropy([], []) == 0.0


class TestCumulativeMutualInformation:
    def test_informative_grouping_has_positive_cmi(self):
        x = [1.0, 1.1, 5.0, 5.1]
        y = ["lo", "lo", "hi", "hi"]
        assert cumulative_mutual_information(x, y) > 0.0

    def test_self_grouping_recovers_full_entropy(self):
        x = [1.0, 2.0, 3.0, 4.0]
        assert cumulative_mutual_information(x, x) == pytest.approx(cumulative_entropy(x))
