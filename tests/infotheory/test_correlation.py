"""Tests for the mixed-type correlation measure CORR(X, Y) (Definition 2.5)."""

from __future__ import annotations

import pytest

from repro.infotheory.correlation import (
    attribute_set_correlation,
    correlation,
    symmetric_correlation,
)
from repro.relational.schema import Attribute, AttributeType, Schema
from repro.relational.table import Table


@pytest.fixture
def health_table() -> Table:
    """Age group (categorical), disease (categorical), cases (numerical)."""
    schema = Schema(
        [
            Attribute("age_group"),
            Attribute("disease"),
            Attribute("cases", AttributeType.NUMERICAL),
        ]
    )
    rows = [
        ("young", "flu", 10.0),
        ("young", "flu", 12.0),
        ("young", "cold", 11.0),
        ("old", "lyme", 50.0),
        ("old", "lyme", 52.0),
        ("old", "arthritis", 49.0),
    ]
    return Table.from_rows("health", schema, rows)


class TestCorrelationFunction:
    def test_categorical_determined_equals_entropy(self):
        x = ["a", "b", "a", "b"]
        y = [1, 2, 1, 2]
        assert correlation(x, y) == pytest.approx(1.0)

    def test_categorical_independent_is_zero(self):
        x = ["a", "a", "b", "b"]
        y = ["p", "q", "p", "q"]
        assert correlation(x, y) == pytest.approx(0.0)

    def test_numerical_uses_cumulative_entropy(self):
        x = [1.0, 1.0, 9.0, 9.0]
        y = ["lo", "lo", "hi", "hi"]
        value = correlation(x, y, x_type=AttributeType.NUMERICAL)
        assert value > 0.0

    def test_mismatched_lengths_raise(self):
        with pytest.raises(ValueError):
            correlation(["a"], ["a", "b"])


class TestAttributeSetCorrelation:
    def test_correlated_attributes_score_higher_than_uncorrelated(self, health_table):
        corr_disease = attribute_set_correlation(health_table, ["age_group"], ["disease"])
        # shuffle-like uninformative target: cases rounded to a constant
        constant = health_table.append_column("const", ["k"] * len(health_table))
        corr_const = attribute_set_correlation(constant, ["age_group"], ["const"])
        assert corr_disease > corr_const

    def test_numerical_source_attribute(self, health_table):
        value = attribute_set_correlation(health_table, ["cases"], ["age_group"])
        assert value > 0.0

    def test_missing_attributes_give_zero(self, health_table):
        assert attribute_set_correlation(health_table, ["nope"], ["disease"]) == 0.0
        assert attribute_set_correlation(health_table, ["age_group"], ["nope"]) == 0.0

    def test_empty_table_gives_zero(self):
        table = Table.empty("t", ["a", "b"])
        assert attribute_set_correlation(table, ["a"], ["b"]) == 0.0

    def test_multiple_source_attributes_sum(self, health_table):
        both = attribute_set_correlation(health_table, ["age_group", "cases"], ["disease"])
        age_only = attribute_set_correlation(health_table, ["age_group"], ["disease"])
        cases_only = attribute_set_correlation(health_table, ["cases"], ["disease"])
        assert both == pytest.approx(age_only + cases_only)

    def test_multi_attribute_target_is_at_least_single(self, health_table):
        single = attribute_set_correlation(health_table, ["age_group"], ["disease"])
        joint = attribute_set_correlation(health_table, ["age_group"], ["disease", "cases"])
        assert joint >= single - 1e-9

    def test_symmetric_correlation_is_average(self, health_table):
        forward = attribute_set_correlation(health_table, ["age_group"], ["disease"])
        backward = attribute_set_correlation(health_table, ["disease"], ["age_group"])
        assert symmetric_correlation(health_table, ["age_group"], ["disease"]) == pytest.approx(
            (forward + backward) / 2
        )
