"""Tests for the classical correlation comparators (Pearson, Cramér's V)."""

from __future__ import annotations

import pytest

from repro.infotheory.comparators import cramers_v, pearson_correlation


class TestPearson:
    def test_perfect_positive(self):
        assert pearson_correlation([1, 2, 3, 4], [2, 4, 6, 8]) == pytest.approx(1.0)

    def test_perfect_negative(self):
        assert pearson_correlation([1, 2, 3], [3, 2, 1]) == pytest.approx(-1.0)

    def test_constant_series_is_zero(self):
        assert pearson_correlation([1, 1, 1], [1, 2, 3]) == 0.0

    def test_none_pairs_dropped(self):
        assert pearson_correlation([1, None, 3, 4], [2, 5, 6, 8]) == pytest.approx(
            pearson_correlation([1, 3, 4], [2, 6, 8])
        )

    def test_non_numeric_pairs_dropped(self):
        assert pearson_correlation(["a", 1, 2], ["b", 2, 4]) == pytest.approx(1.0)

    def test_too_few_points_is_zero(self):
        assert pearson_correlation([1], [2]) == 0.0


class TestCramersV:
    def test_perfect_association(self):
        x = ["a", "a", "b", "b"]
        y = ["p", "p", "q", "q"]
        assert cramers_v(x, y) == pytest.approx(1.0)

    def test_independence_is_near_zero(self):
        x = ["a", "a", "b", "b"] * 5
        y = ["p", "q", "p", "q"] * 5
        assert cramers_v(x, y) == pytest.approx(0.0, abs=1e-9)

    def test_single_level_is_zero(self):
        assert cramers_v(["a", "a"], ["p", "q"]) == 0.0

    def test_empty_is_zero(self):
        assert cramers_v([], []) == 0.0

    def test_bounds(self):
        x = ["a", "b", "c", "a", "b"]
        y = ["p", "p", "q", "q", "p"]
        assert 0.0 <= cramers_v(x, y) <= 1.0

    def test_mismatched_lengths_raise(self):
        with pytest.raises(ValueError):
            cramers_v(["a"], ["p", "q"])
