"""Tests for Shannon entropy, conditional entropy and mutual information."""

from __future__ import annotations

import math

import pytest

from repro.infotheory.entropy import (
    conditional_entropy,
    entropy_of_counts,
    entropy_of_distribution,
    joint_entropy,
    mutual_information,
    normalized_mutual_information,
    shannon_entropy,
)


class TestShannonEntropy:
    def test_uniform_two_symbols_is_one_bit(self):
        assert shannon_entropy(["a", "b"]) == pytest.approx(1.0)

    def test_constant_is_zero(self):
        assert shannon_entropy(["a"] * 10) == 0.0

    def test_empty_is_zero(self):
        assert shannon_entropy([]) == 0.0

    def test_uniform_four_symbols_is_two_bits(self):
        assert shannon_entropy(["a", "b", "c", "d"]) == pytest.approx(2.0)

    def test_skewed_distribution(self):
        # p = (0.75, 0.25): H = 0.75*log2(4/3) + 0.25*2
        expected = 0.75 * math.log2(4 / 3) + 0.25 * 2
        assert shannon_entropy(["a", "a", "a", "b"]) == pytest.approx(expected)

    def test_none_is_a_regular_symbol(self):
        assert shannon_entropy([None, "a"]) == pytest.approx(1.0)


class TestEntropyOfCounts:
    def test_matches_value_based(self):
        assert entropy_of_counts([2, 2]) == pytest.approx(shannon_entropy(["a", "a", "b", "b"]))

    def test_zero_counts_ignored(self):
        assert entropy_of_counts([4, 0]) == 0.0

    def test_empty(self):
        assert entropy_of_counts([]) == 0.0


class TestJointConditionalMutual:
    def test_joint_entropy_of_identical_sequences(self):
        x = ["a", "b", "a", "b"]
        assert joint_entropy(x, x) == pytest.approx(shannon_entropy(x))

    def test_joint_entropy_of_independent_uniform(self):
        x = ["a", "a", "b", "b"]
        y = ["p", "q", "p", "q"]
        assert joint_entropy(x, y) == pytest.approx(2.0)

    def test_conditional_entropy_fully_determined(self):
        x = ["a", "b", "a", "b"]
        y = [1, 2, 1, 2]
        assert conditional_entropy(x, y) == pytest.approx(0.0)

    def test_conditional_entropy_independent(self):
        x = ["a", "a", "b", "b"]
        y = ["p", "q", "p", "q"]
        assert conditional_entropy(x, y) == pytest.approx(1.0)

    def test_mutual_information_identical(self):
        x = ["a", "b", "a", "b"]
        assert mutual_information(x, x) == pytest.approx(1.0)

    def test_mutual_information_independent_is_zero(self):
        x = ["a", "a", "b", "b"]
        y = ["p", "q", "p", "q"]
        assert mutual_information(x, y) == pytest.approx(0.0)

    def test_mutual_information_never_negative(self):
        x = ["a", "b", "c", "a"]
        y = ["p", "p", "q", "q"]
        assert mutual_information(x, y) >= 0.0

    def test_mismatched_lengths_raise(self):
        with pytest.raises(ValueError):
            conditional_entropy(["a"], ["a", "b"])
        with pytest.raises(ValueError):
            mutual_information(["a"], ["a", "b"])
        with pytest.raises(ValueError):
            joint_entropy(["a"], ["a", "b"])

    def test_normalized_mutual_information_bounds(self):
        x = ["a", "b", "a", "b"]
        y = ["p", "q", "p", "q"]
        value = normalized_mutual_information(x, y)
        assert 0.0 <= value <= 1.0
        assert normalized_mutual_information(x, x) == pytest.approx(1.0)

    def test_normalized_mi_zero_joint_entropy(self):
        assert normalized_mutual_information(["a", "a"], ["b", "b"]) == 0.0


class TestEntropyOfDistribution:
    def test_explicit_distribution(self):
        assert entropy_of_distribution([0.5, 0.5]) == pytest.approx(1.0)

    def test_mapping_form(self):
        assert entropy_of_distribution({"a": 0.25, "b": 0.75}) == pytest.approx(
            shannon_entropy(["a", "b", "b", "b"])
        )

    def test_unnormalised_counts_are_normalised(self):
        assert entropy_of_distribution([1, 1, 1, 1]) == pytest.approx(2.0)

    def test_empty_or_zero(self):
        assert entropy_of_distribution([]) == 0.0
        assert entropy_of_distribution([0.0, 0.0]) == 0.0
