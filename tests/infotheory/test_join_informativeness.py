"""Tests for join informativeness (Definition 2.4)."""

from __future__ import annotations

import pytest

from repro.exceptions import JoinError
from repro.infotheory.join_informativeness import (
    join_informativeness,
    join_informativeness_from_pairs,
    path_join_informativeness,
)
from repro.relational.table import Table


class TestFromPairs:
    def test_bounds(self):
        left = ["a", "b", "c", None]
        right = ["a", "b", None, "d"]
        value = join_informativeness_from_pairs(left, right)
        assert 0.0 <= value <= 1.0

    def test_perfect_match_is_low(self):
        left = ["a", "b", "c", "d"]
        assert join_informativeness_from_pairs(left, left) == pytest.approx(0.0)

    def test_no_match_is_higher_than_full_match(self):
        unmatched = join_informativeness_from_pairs(
            ["a", "b", None, None], [None, None, "c", "d"]
        )
        matched = join_informativeness_from_pairs(["a", "b", "c", "d"], ["a", "b", "c", "d"])
        assert unmatched > matched
        # with two distinct unmatched values on each side, the NULL partner is
        # ambiguous, which costs exactly half of the joint entropy here
        assert unmatched == pytest.approx(0.5)

    def test_empty_pairs(self):
        assert join_informativeness_from_pairs([], []) == 1.0

    def test_constant_pair_is_zero(self):
        assert join_informativeness_from_pairs(["a", "a"], ["a", "a"]) == 0.0

    def test_mismatched_lengths_raise(self):
        with pytest.raises(ValueError):
            join_informativeness_from_pairs(["a"], ["a", "b"])


class TestJoinInformativeness:
    def test_fully_matching_tables_are_most_informative(self):
        left = Table.from_rows("l", ["k", "a"], [(1, "x"), (2, "y"), (3, "z")])
        right = Table.from_rows("r", ["k", "b"], [(1, "p"), (2, "q"), (3, "r")])
        assert join_informativeness(left, right) == pytest.approx(0.0)

    def test_disjoint_tables_are_less_informative_than_overlapping(self):
        left = Table.from_rows("l", ["k", "a"], [(1, "x"), (2, "y")])
        disjoint = Table.from_rows("r", ["k", "b"], [(3, "p"), (4, "q")])
        matching = Table.from_rows("r", ["k", "b"], [(1, "p"), (2, "q")])
        assert join_informativeness(left, disjoint) > join_informativeness(left, matching)
        assert join_informativeness(left, disjoint) >= 0.5

    def test_partial_overlap_is_between(self):
        left = Table.from_rows("l", ["k", "a"], [(1, "x"), (2, "y"), (3, "z")])
        right = Table.from_rows("r", ["k", "b"], [(1, "p"), (9, "q")])
        value = join_informativeness(left, right)
        assert 0.0 < value < 1.0

    def test_more_unmatched_values_raise_ji(self):
        left = Table.from_rows("l", ["k", "a"], [(i, "x") for i in range(10)])
        mostly_matching = Table.from_rows("r", ["k", "b"], [(i, "p") for i in range(9)] + [(99, "q")])
        barely_matching = Table.from_rows("r", ["k", "b"], [(0, "p")] + [(100 + i, "q") for i in range(9)])
        assert join_informativeness(left, barely_matching) > join_informativeness(
            left, mostly_matching
        )

    def test_meaningless_aggregation_join_penalised(self):
        """A join where one side's values barely overlap (the paper's DS ⋈ D5 case)."""
        detail = Table.from_rows(
            "detail", ["age", "addr"], [("[35,40]", "a"), ("[20,25]", "b"), ("[55,60]", "c")]
        )
        aggregate = Table.from_rows(
            "agg", ["age", "pop"], [("[35,40]", 100), ("[35,40]", 200), ("[35,40]", 300)]
        )
        good_pair = Table.from_rows(
            "good", ["age", "pop"], [("[35,40]", 1), ("[20,25]", 2), ("[55,60]", 3)]
        )
        assert join_informativeness(detail, aggregate) > join_informativeness(
            detail, good_pair
        )

    def test_explicit_join_attributes(self):
        # on j: all left rows match the single right "a" row -> JI 0
        # on k: nothing matches and several unmatched values pile up on each
        # side -> JI > 0, so the chosen join attribute matters
        left = Table.from_rows("l", ["k", "j"], [(1, "a"), (2, "a"), (3, "a")])
        right = Table.from_rows("r", ["k", "j"], [(8, "a"), (9, "b")])
        on_k = join_informativeness(left, right, on=["k"])
        on_j = join_informativeness(left, right, on=["j"])
        assert on_k > on_j

    def test_no_shared_attributes_raises(self):
        left = Table.from_rows("l", ["a"], [(1,)])
        right = Table.from_rows("r", ["b"], [(1,)])
        with pytest.raises(JoinError):
            join_informativeness(left, right)


class TestPathJoinInformativeness:
    def test_sum_over_path(self):
        a = Table.from_rows("a", ["x", "p"], [(1, "a")])
        b = Table.from_rows("b", ["x", "y"], [(1, 10)])
        c = Table.from_rows("c", ["y", "q"], [(10, "c")])
        total = path_join_informativeness([a, b, c])
        assert total == pytest.approx(
            join_informativeness(a, b) + join_informativeness(b, c)
        )

    def test_single_table_is_zero(self):
        a = Table.from_rows("a", ["x"], [(1,)])
        assert path_join_informativeness([a]) == 0.0
