"""Tests for the TPC-E-like workload generator."""

from __future__ import annotations

import networkx as nx
import pytest

from repro.quality.measure import instance_quality
from repro.workloads.tpce import TPCE_DIRTY_TABLES, TPCE_TABLE_NAMES, tpce_workload


@pytest.fixture(scope="module")
def workload():
    return tpce_workload(scale=0.05, seed=1, dirty_rate=0.2)


def _overlap_graph(workload) -> nx.Graph:
    graph = nx.Graph()
    names = list(workload.tables)
    graph.add_nodes_from(names)
    for i, left in enumerate(names):
        for right in names[i + 1 :]:
            shared = set(workload.tables[left].schema.names) & set(
                workload.tables[right].schema.names
            )
            if shared:
                graph.add_edge(left, right)
    return graph


class TestStructure:
    def test_twenty_nine_tables(self, workload):
        assert len(workload.tables) == 29
        assert set(workload.tables) == set(TPCE_TABLE_NAMES)

    def test_schema_overlap_graph_is_connected(self, workload):
        assert nx.is_connected(_overlap_graph(workload))

    def test_attribute_width_range(self, workload):
        widths = [len(table.schema) for table in workload.tables.values()]
        assert min(widths) >= 2
        assert max(widths) >= 6

    def test_long_join_path_exists(self, workload):
        """settlement → trade → security → company → industry → sector → exchange
        (plus account hops) gives a long chain, as the paper's Q3 needs."""
        path = [
            "settlement",
            "trade",
            "customer_account",
            "customer",
            "address",
            "zip_code",
        ]
        for left, right in zip(path, path[1:]):
            shared = set(workload.tables[left].schema.names) & set(
                workload.tables[right].schema.names
            )
            assert shared, f"{left} and {right} share no join attribute"
        market_path = ["trade", "security", "company", "industry", "sector", "exchange"]
        for left, right in zip(market_path, market_path[1:]):
            shared = set(workload.tables[left].schema.names) & set(
                workload.tables[right].schema.names
            )
            assert shared, f"{left} and {right} share no join attribute"

    def test_foreign_keys_reference_parents(self, workload):
        securities = set(workload.table("security").column("security_id"))
        assert set(workload.table("trade").column("security_id")) <= securities

    def test_deterministic(self):
        first = tpce_workload(scale=0.05, seed=3, dirty_rate=0.0)
        second = tpce_workload(scale=0.05, seed=3, dirty_rate=0.0)
        assert first.table("trade").column("t_price") == second.table("trade").column("t_price")


class TestDirtyData:
    def test_twenty_tables_are_dirty(self, workload):
        assert len(TPCE_DIRTY_TABLES) == 20
        # tables with at least one planted FD end up with a dirty variant
        expected_dirty = {name for name in TPCE_DIRTY_TABLES if workload.fds.get(name)}
        assert set(workload.dirty_tables) <= set(TPCE_DIRTY_TABLES)
        assert expected_dirty <= set(workload.dirty_tables)

    def test_dirty_quality_not_higher_than_clean(self, workload):
        for name, dirty in workload.dirty_tables.items():
            for fd in workload.fds[name]:
                assert instance_quality(dirty, fd) <= instance_quality(
                    workload.table(name), fd
                ) + 1e-9
