"""Tests for the evaluation queries Q1/Q2/Q3."""

from __future__ import annotations

import pytest

from repro.workloads.queries import queries_for, tpce_queries, tpch_queries
from repro.workloads.tpce import tpce_workload
from repro.workloads.tpch import tpch_workload


class TestTpchQueries:
    def test_three_queries_with_increasing_path_length(self):
        queries = tpch_queries()
        assert list(queries) == ["Q1", "Q2", "Q3"]
        lengths = [query.expected_path_length for query in queries.values()]
        assert lengths == sorted(lengths)
        assert lengths[0] == 2 and lengths[-1] == 5

    def test_attributes_exist_in_workload(self):
        workload = tpch_workload(scale=0.05, dirty_rate=0.0)
        for query in tpch_queries().values():
            assert query.source_instance in workload.tables
            source_schema = workload.table(query.source_instance).schema
            for attribute in query.source_attributes:
                assert attribute in source_schema
            all_attributes = {
                attr for table in workload.tables.values() for attr in table.schema.names
            }
            for attribute in query.target_attributes:
                assert attribute in all_attributes

    def test_involved_attributes(self):
        query = tpch_queries()["Q1"]
        assert query.involved_attributes() == query.source_attributes + query.target_attributes


class TestTpceQueries:
    def test_three_queries_with_increasing_path_length(self):
        queries = tpce_queries()
        lengths = [query.expected_path_length for query in queries.values()]
        assert lengths == sorted(lengths)
        assert lengths[0] == 3 and lengths[-1] == 8

    def test_attributes_exist_in_workload(self):
        workload = tpce_workload(scale=0.05, dirty_rate=0.0)
        all_attributes = {
            attr for table in workload.tables.values() for attr in table.schema.names
        }
        for query in tpce_queries().values():
            assert query.source_instance in workload.tables
            for attribute in query.involved_attributes():
                assert attribute in all_attributes


class TestDispatch:
    def test_queries_for_tpch(self):
        workload = tpch_workload(scale=0.05, dirty_rate=0.0)
        assert set(queries_for(workload)) == {"Q1", "Q2", "Q3"}

    def test_queries_for_tpce(self):
        workload = tpce_workload(scale=0.05, dirty_rate=0.0)
        assert set(queries_for(workload)) == {"Q1", "Q2", "Q3"}

    def test_unknown_workload_raises(self):
        from repro.workloads.galaxy import random_galaxy_workload

        with pytest.raises(KeyError):
            queries_for(random_galaxy_workload(num_tables=3))
