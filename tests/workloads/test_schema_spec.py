"""Tests for the declarative workload builder."""

from __future__ import annotations

import pytest

from repro.exceptions import SchemaError
from repro.quality.fd import FunctionalDependency
from repro.quality.measure import instance_quality
from repro.relational.schema import AttributeType
from repro.workloads.schema_spec import ColumnSpec, TableSpec, WorkloadBuilder


def _dimension_spec() -> TableSpec:
    return TableSpec(
        "dim",
        rows=20,
        columns=(
            ColumnSpec("dim_key", kind="key"),
            ColumnSpec("category", kind="categorical", prefix="cat", cardinality=4),
            ColumnSpec("label", kind="categorical", derived_from="category", prefix="lbl", cardinality=3),
            ColumnSpec("score", kind="numerical", low=0.0, high=10.0),
        ),
    )


def _fact_spec() -> TableSpec:
    return TableSpec(
        "fact",
        rows=100,
        columns=(
            ColumnSpec("dim_key", kind="foreign_key", references=("dim", "dim_key"), skew=0.5),
            ColumnSpec("value", kind="numerical", derived_from="dim_key", std=1.0),
        ),
    )


class TestColumnKinds:
    def test_key_column_is_unique(self):
        workload = WorkloadBuilder("w", seed=0).add(_dimension_spec()).build()
        keys = workload.table("dim").column("dim_key")
        assert len(set(keys)) == len(keys)

    def test_foreign_key_values_come_from_reference(self):
        workload = WorkloadBuilder("w", seed=0).extend([_dimension_spec(), _fact_spec()]).build()
        dim_keys = set(workload.table("dim").column("dim_key"))
        assert set(workload.table("fact").column("dim_key")) <= dim_keys

    def test_foreign_key_before_reference_rejected(self):
        builder = WorkloadBuilder("w").add(_fact_spec())
        with pytest.raises(SchemaError):
            builder.build()

    def test_derived_column_plants_fd(self):
        workload = WorkloadBuilder("w", seed=0).add(_dimension_spec()).build()
        fd = FunctionalDependency("category", "label")
        assert fd in workload.fds["dim"]
        assert instance_quality(workload.table("dim"), fd) == 1.0

    def test_derived_before_base_rejected(self):
        spec = TableSpec(
            "bad",
            rows=5,
            columns=(
                ColumnSpec("label", kind="categorical", derived_from="category"),
                ColumnSpec("category", kind="categorical"),
            ),
        )
        with pytest.raises(SchemaError):
            WorkloadBuilder("w").add(spec).build()

    def test_numerical_column_types(self):
        workload = WorkloadBuilder("w", seed=0).add(_dimension_spec()).build()
        schema = workload.table("dim").schema
        assert schema.type_of("score") is AttributeType.NUMERICAL
        assert schema.type_of("category") is AttributeType.CATEGORICAL

    def test_unknown_kind_rejected(self):
        spec = TableSpec("bad", rows=1, columns=(ColumnSpec("x", kind="mystery"),))
        with pytest.raises(SchemaError):
            WorkloadBuilder("w").add(spec).build()

    def test_negative_rows_rejected(self):
        with pytest.raises(SchemaError):
            TableSpec("bad", rows=-1, columns=())

    def test_deterministic_generation(self):
        first = WorkloadBuilder("w", seed=9).add(_dimension_spec()).build()
        second = WorkloadBuilder("w", seed=9).add(_dimension_spec()).build()
        assert first.table("dim").column("category") == second.table("dim").column("category")


class TestDirtyVariants:
    def test_dirty_rate_lowers_quality(self):
        builder = WorkloadBuilder("w", seed=0).add(_dimension_spec())
        workload = builder.build(dirty_tables=["dim"], dirty_rate=0.4)
        fd = FunctionalDependency("category", "label")
        assert instance_quality(workload.dirty_tables["dim"], fd) < 1.0
        # the clean copy is untouched
        assert instance_quality(workload.table("dim"), fd) == 1.0

    def test_dirty_unknown_table_rejected(self):
        builder = WorkloadBuilder("w", seed=0).add(_dimension_spec())
        with pytest.raises(SchemaError):
            builder.build(dirty_tables=["missing"], dirty_rate=0.3)

    def test_dirty_or_clean_prefers_dirty(self):
        builder = WorkloadBuilder("w", seed=0).add(_dimension_spec())
        workload = builder.build(dirty_tables=["dim"], dirty_rate=0.4)
        assert workload.dirty_or_clean("dim") is workload.dirty_tables["dim"]


class TestGeneratedWorkload:
    def test_subset(self):
        workload = WorkloadBuilder("w", seed=0).extend([_dimension_spec(), _fact_spec()]).build()
        subset = workload.subset(["dim"])
        assert list(subset.tables) == ["dim"]
        with pytest.raises(SchemaError):
            workload.subset(["missing"])

    def test_all_fds_deduplicated(self):
        workload = WorkloadBuilder("w", seed=0).extend([_dimension_spec(), _fact_spec()]).build()
        fds = workload.all_fds()
        assert len(fds) == len(set(fds))

    def test_describe_reports_extremes(self):
        workload = WorkloadBuilder("w", seed=0).extend([_dimension_spec(), _fact_spec()]).build()
        info = workload.describe()
        assert info["num_instances"] == 2
        assert info["max_instance_size"] == ("fact", 100)
        assert info["min_instance_size"] == ("dim", 20)

    def test_unknown_table_raises(self):
        workload = WorkloadBuilder("w", seed=0).add(_dimension_spec()).build()
        with pytest.raises(SchemaError):
            workload.table("missing")
