"""Tests for the TPC-H-like workload generator."""

from __future__ import annotations

import pytest

import networkx as nx

from repro.quality.measure import instance_quality
from repro.workloads.tpch import TPCH_DIRTY_TABLES, TPCH_TABLE_NAMES, tpch_workload


@pytest.fixture(scope="module")
def workload():
    return tpch_workload(scale=0.05, seed=0, dirty_rate=0.3)


class TestStructure:
    def test_eight_tables(self, workload):
        assert set(workload.tables) == set(TPCH_TABLE_NAMES)
        assert len(workload.tables) == 8

    def test_foreign_keys_reference_parents(self, workload):
        nations = workload.table("nation")
        regions = set(workload.table("region").column("regionkey"))
        assert set(nations.column("regionkey")) <= regions
        lineitem = workload.table("lineitem")
        orders = set(workload.table("orders").column("orderkey"))
        assert set(lineitem.column("orderkey")) <= orders

    def test_schema_overlap_graph_is_connected(self, workload):
        graph = nx.Graph()
        names = list(workload.tables)
        graph.add_nodes_from(names)
        for i, left in enumerate(names):
            for right in names[i + 1 :]:
                shared = set(workload.tables[left].schema.names) & set(
                    workload.tables[right].schema.names
                )
                if shared:
                    graph.add_edge(left, right)
        assert nx.is_connected(graph)

    def test_long_join_path_exists(self, workload):
        """lineitem -> orders -> customer -> nation -> region is a 5-instance path."""
        path = ["lineitem", "orders", "customer", "nation", "region"]
        for left, right in zip(path, path[1:]):
            shared = set(workload.tables[left].schema.names) & set(
                workload.tables[right].schema.names
            )
            assert shared, f"{left} and {right} share no join attribute"

    def test_bridge_attribute_toggle(self):
        with_bridge = tpch_workload(scale=0.05, dirty_rate=0.0)
        without_bridge = tpch_workload(
            scale=0.05, dirty_rate=0.0, include_bridge_attribute=False
        )
        assert "h_segment" in with_bridge.table("customer").schema
        assert "h_segment" not in without_bridge.table("customer").schema
        assert "h_segment" not in without_bridge.table("supplier").schema

    def test_scale_controls_row_counts(self):
        small = tpch_workload(scale=0.05, dirty_rate=0.0)
        large = tpch_workload(scale=0.3, dirty_rate=0.0)
        assert len(large.table("lineitem")) > len(small.table("lineitem"))

    def test_deterministic(self):
        first = tpch_workload(scale=0.05, seed=4, dirty_rate=0.0)
        second = tpch_workload(scale=0.05, seed=4, dirty_rate=0.0)
        assert first.table("orders").column("totalprice") == second.table("orders").column(
            "totalprice"
        )


class TestDirtyData:
    def test_dirty_tables_have_lower_quality(self, workload):
        for name in TPCH_DIRTY_TABLES:
            fds = workload.fds[name]
            if not fds:
                continue
            clean_quality = min(instance_quality(workload.table(name), fd) for fd in fds)
            dirty_quality = min(
                instance_quality(workload.dirty_tables[name], fd) for fd in fds
            )
            assert dirty_quality <= clean_quality

    def test_region_and_nation_stay_clean(self, workload):
        assert "region" not in workload.dirty_tables
        assert "nation" not in workload.dirty_tables

    def test_zero_dirty_rate_produces_no_dirty_tables(self):
        assert tpch_workload(scale=0.05, dirty_rate=0.0).dirty_tables == {}


class TestPlantedFds:
    def test_every_dirty_table_has_at_least_one_fd(self, workload):
        for name in TPCH_DIRTY_TABLES:
            assert workload.fds[name], f"{name} has no planted FD to corrupt"

    def test_fd_attributes_exist(self, workload):
        for name, fds in workload.fds.items():
            schema = workload.table(name).schema
            for fd in fds:
                assert all(attribute in schema for attribute in fd.attributes)
