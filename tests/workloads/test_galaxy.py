"""Tests for the random galaxy workload generator."""

from __future__ import annotations

import networkx as nx
import pytest

from repro.workloads.galaxy import random_galaxy_workload


class TestGalaxyWorkload:
    def test_table_count(self):
        workload = random_galaxy_workload(num_tables=5, rows_per_table=30, seed=0)
        assert len(workload.tables) == 5

    def test_single_table_allowed(self):
        workload = random_galaxy_workload(num_tables=1, rows_per_table=10, seed=0)
        assert len(workload.tables) == 1

    def test_invalid_count_rejected(self):
        with pytest.raises(ValueError):
            random_galaxy_workload(num_tables=0)

    def test_schema_overlap_graph_is_connected(self):
        workload = random_galaxy_workload(num_tables=7, rows_per_table=40, seed=2)
        graph = nx.Graph()
        names = list(workload.tables)
        graph.add_nodes_from(names)
        for i, left in enumerate(names):
            for right in names[i + 1 :]:
                shared = set(workload.tables[left].schema.names) & set(
                    workload.tables[right].schema.names
                )
                if shared:
                    graph.add_edge(left, right)
        assert nx.is_connected(graph)

    def test_every_table_has_a_planted_fd(self):
        workload = random_galaxy_workload(num_tables=4, rows_per_table=30, seed=1)
        for name in workload.tables:
            assert workload.fds[name]

    def test_dirty_rate_creates_dirty_variants(self):
        workload = random_galaxy_workload(
            num_tables=4, rows_per_table=60, seed=1, dirty_rate=0.3
        )
        assert workload.dirty_tables

    def test_deterministic(self):
        first = random_galaxy_workload(num_tables=4, rows_per_table=30, seed=5)
        second = random_galaxy_workload(num_tables=4, rows_per_table=30, seed=5)
        assert first.table("t1").column("t1_cat") == second.table("t1").column("t1_cat")

    def test_branching_limits_fanout(self):
        workload = random_galaxy_workload(num_tables=8, rows_per_table=20, seed=3, branching=1)
        # with branching=1 the workload is a chain: every table except the root
        # references exactly one parent, and each parent is referenced at most once
        reference_counts: dict[str, int] = {}
        for name, table in workload.tables.items():
            for attr in table.schema.names:
                if attr.endswith("_key") and not attr.startswith(name):
                    reference_counts[attr] = reference_counts.get(attr, 0) + 1
        assert all(count <= 2 for count in reference_counts.values())
