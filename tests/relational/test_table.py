"""Tests for repro.relational.table."""

from __future__ import annotations

import random

import pytest

from repro.exceptions import SchemaError
from repro.relational.schema import Attribute, AttributeType, Schema
from repro.relational.table import Table


@pytest.fixture
def people() -> Table:
    schema = Schema(
        [
            Attribute("name"),
            Attribute("city"),
            Attribute("age", AttributeType.NUMERICAL),
        ]
    )
    rows = [
        ("alice", "nyc", 30),
        ("bob", "nyc", 41),
        ("carol", "sf", 29),
        ("dave", "sf", 29),
        ("erin", "la", None),
    ]
    return Table.from_rows("people", schema, rows)


class TestConstruction:
    def test_from_rows_and_len(self, people):
        assert len(people) == 5
        assert people.num_rows == 5
        assert people.attribute_names == ("name", "city", "age")

    def test_from_dicts_fills_missing_with_none(self):
        table = Table.from_dicts("t", ["a", "b"], [{"a": 1}, {"a": 2, "b": 3}])
        assert table.column("b") == [None, 3]

    def test_empty(self):
        table = Table.empty("t", ["a"])
        assert len(table) == 0

    def test_row_width_mismatch_raises(self):
        with pytest.raises(SchemaError):
            Table.from_rows("t", ["a", "b"], [(1,)])

    def test_columns_must_cover_schema(self):
        with pytest.raises(SchemaError):
            Table("t", Schema(["a", "b"]), {"a": [1]})

    def test_unequal_column_lengths_raise(self):
        with pytest.raises(SchemaError):
            Table("t", Schema(["a", "b"]), {"a": [1], "b": [1, 2]})


class TestAccess:
    def test_column_and_row(self, people):
        assert people.column("city")[0] == "nyc"
        assert people.row(2) == ("carol", "sf", 29)

    def test_iter_rows_matches_to_dicts(self, people):
        rows = list(people.iter_rows())
        dicts = people.to_dicts()
        assert len(rows) == len(dicts) == 5
        assert dicts[0] == {"name": "alice", "city": "nyc", "age": 30}

    def test_key_tuples(self, people):
        keys = people.key_tuples(["city", "age"])
        assert keys[0] == ("nyc", 30)
        assert len(keys) == 5


class TestOperations:
    def test_project(self, people):
        projected = people.project(["city"])
        assert projected.attribute_names == ("city",)
        assert len(projected) == 5

    def test_project_unknown_raises(self, people):
        from repro.exceptions import UnknownAttributeError

        with pytest.raises(UnknownAttributeError):
            people.project(["nope"])

    def test_select(self, people):
        sf_only = people.select(lambda r: r["city"] == "sf")
        assert len(sf_only) == 2

    def test_take_preserves_order(self, people):
        taken = people.take([3, 0])
        assert taken.column("name") == ["dave", "alice"]

    def test_head(self, people):
        assert len(people.head(2)) == 2
        assert len(people.head(100)) == 5

    def test_rename(self, people):
        renamed = people.rename({"city": "town"})
        assert "town" in renamed.schema
        assert renamed.column("town") == people.column("city")

    def test_distinct_full_row(self):
        table = Table.from_rows("t", ["a"], [(1,), (1,), (2,)])
        assert len(table.distinct()) == 2

    def test_distinct_on_subset(self, people):
        assert len(people.distinct(["city"])) == 3

    def test_append_column(self, people):
        extended = people.append_column("country", ["us"] * 5)
        assert extended.column("country") == ["us"] * 5
        assert len(extended.schema) == 4

    def test_append_column_wrong_length(self, people):
        with pytest.raises(SchemaError):
            people.append_column("x", [1, 2])

    def test_concat(self, people):
        doubled = people.concat(people)
        assert len(doubled) == 10

    def test_concat_schema_mismatch(self, people):
        other = Table.from_rows("o", ["x"], [(1,)])
        with pytest.raises(SchemaError):
            people.concat(other)

    def test_shuffled_is_permutation(self, people):
        shuffled = people.shuffled(random.Random(3))
        assert sorted(shuffled.column("name")) == sorted(people.column("name"))

    def test_sample_rows_rate_one_keeps_all(self, people):
        assert len(people.sample_rows(1.0, random.Random(0))) == 5

    def test_with_name(self, people):
        assert people.with_name("other").name == "other"
        assert people.with_name("other").column("name") == people.column("name")


class TestSummaries:
    def test_distinct_count(self, people):
        assert people.distinct_count(["city"]) == 3

    def test_value_counts(self, people):
        counts = people.value_counts(["city"])
        assert counts[("nyc",)] == 2

    def test_null_fraction(self, people):
        assert people.null_fraction("age") == pytest.approx(0.2)
        assert Table.empty("t", ["a"]).null_fraction("a") == 0.0

    def test_describe(self, people):
        info = people.describe()
        assert info["num_rows"] == 5
        assert info["numerical"] == ["age"]

    def test_equality(self, people):
        assert people == people.with_name("people")
        assert people != people.project(["name"])


class TestConcurrentMemoisation:
    def test_adopt_encodings_is_safe_while_parent_caches_grow(self):
        """Regression: projecting a hot shared table while other threads
        memoise new encodings on it raised "dictionary changed size during
        iteration" (`_adopt_encodings_from` iterated the live cache dicts).
        The serve tier hits exactly this: concurrent requests project the
        same source tables from many handler threads."""
        import threading

        width = 120
        columns = [f"c{i}" for i in range(width)]
        table = Table.from_rows(
            "wide", columns, [tuple(f"v{i}_{r}" for i in range(width)) for r in range(4)]
        )
        # Pre-warm a slice so the adopting iteration has entries to walk.
        for name in columns[:20]:
            table.encoded(name)

        errors: list[BaseException] = []
        stop = threading.Event()

        def memoise():
            try:
                index = 20
                while not stop.is_set() and index < width:
                    table.encoded(columns[index])
                    table.key_entropy([columns[index]])
                    index += 1
            except BaseException as error:  # noqa: BLE001 - recorded for the assert
                errors.append(error)

        def adopt():
            try:
                for _ in range(300):
                    table.project(columns[:30])
            except BaseException as error:  # noqa: BLE001 - recorded for the assert
                errors.append(error)

        workers = [threading.Thread(target=memoise) for _ in range(2)]
        workers += [threading.Thread(target=adopt) for _ in range(2)]
        for worker in workers:
            worker.start()
        for worker in workers:
            worker.join(timeout=30.0)
        stop.set()
        assert errors == []
