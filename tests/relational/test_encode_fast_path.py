"""Property tests for the vectorised dictionary-encoding fast path.

``_encode_numpy`` must be bit-identical to the reference dict loop
(``_encode_python``) wherever it applies — same codes, same first-occurrence
value order, same python value types — and must decline (return ``None``)
whenever the two could disagree (mixed types, bools, ``None``, NaN,
beyond-int64 ints, tuples, strings).
"""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.relational import backend
from repro.relational.table import Table, _encode, _encode_numpy, _encode_python

pytestmark = pytest.mark.skipif(
    not backend.numpy_available(), reason="numpy is not installed"
)


@pytest.fixture(autouse=True)
def numpy_backend():
    with backend.use_backend("numpy"):
        yield


def as_list(codes) -> list[int]:
    return codes.tolist() if backend.is_array(codes) else list(codes)


def assert_bit_identical(values) -> None:
    reference = _encode_python(values)
    encoded = _encode(values)
    assert as_list(encoded.codes) == as_list(reference.codes)
    assert encoded.values == reference.values
    assert list(map(type, encoded.values)) == list(map(type, reference.values))


class TestParityProperties:
    @given(st.lists(st.integers(min_value=-(2**62), max_value=2**62)))
    @settings(max_examples=200, deadline=None)
    def test_int_columns(self, values):
        assert_bit_identical(values)

    @given(st.lists(st.integers(min_value=-20, max_value=20)))
    @settings(max_examples=100, deadline=None)
    def test_dense_int_columns_use_the_bucket_path(self, values):
        assert_bit_identical(values)
        if values:
            assert _encode_numpy(values) is not None

    @given(
        st.lists(
            st.floats(allow_nan=False, allow_infinity=True, width=64),
        )
    )
    @settings(max_examples=200, deadline=None)
    def test_float_columns(self, values):
        assert_bit_identical(values)

    @given(
        st.lists(
            st.one_of(
                st.integers(min_value=-100, max_value=100),
                st.floats(allow_nan=True),
                st.text(max_size=4),
                st.booleans(),
                st.none(),
                st.tuples(st.integers(), st.integers()),
            )
        )
    )
    @settings(max_examples=200, deadline=None)
    def test_arbitrary_mixed_columns(self, values):
        """The dispatcher always matches the reference, fast path or not."""
        assert_bit_identical(values)


class TestFastPathScope:
    def test_declines_bools(self):
        assert _encode_numpy([True, False, True]) is None

    def test_declines_bool_contaminated_ints(self):
        assert _encode_numpy([True, 1, 2]) is None

    def test_declines_nan(self):
        assert _encode_numpy([float("nan"), 1.0]) is None

    def test_declines_none(self):
        assert _encode_numpy([None, 1]) is None

    def test_declines_strings(self):
        assert _encode_numpy(["a", "b"]) is None

    def test_declines_beyond_int64(self):
        assert _encode_numpy([2**70, 1]) is None

    def test_declines_empty(self):
        assert _encode_numpy([]) is None

    def test_handles_negative_zero_like_the_dict_loop(self):
        assert_bit_identical([-0.0, 0.0, 1.0, -0.0])

    def test_wide_ints_use_the_sort_path(self):
        values = [10**12, -(10**12), 10**12, 0]
        assert _encode_numpy(values) is not None
        assert_bit_identical(values)

    def test_python_backend_keeps_the_dict_loop_container(self):
        with backend.use_backend("python"):
            encoding = _encode([1, 2, 1])
        assert isinstance(encoding.codes, list)


class TestTableIntegration:
    def test_table_encoding_matches_across_backends(self):
        rows = [(i % 7, float(i % 5) / 2, f"s{i % 3}") for i in range(200)]
        with backend.use_backend("python"):
            python_table = Table.from_rows("t", ["k", "v", "s"], rows)
            python_encodings = {
                name: (
                    as_list(python_table.encoded(name).codes),
                    python_table.encoded(name).values,
                )
                for name in ("k", "v", "s")
            }
        numpy_table = Table.from_rows("t", ["k", "v", "s"], rows)
        for name in ("k", "v", "s"):
            encoding = numpy_table.encoded(name)
            assert (as_list(encoding.codes), encoding.values) == python_encodings[name]

    def test_key_entropy_identical_across_paths(self):
        rows = [(i % 7, i % 4) for i in range(500)]
        with backend.use_backend("python"):
            reference = Table.from_rows("t", ["a", "b"], rows).key_entropy(["a", "b"])
        assert Table.from_rows("t", ["a", "b"], rows).key_entropy(["a", "b"]) == reference
