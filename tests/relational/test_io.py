"""Tests for CSV import/export."""

from __future__ import annotations

import pytest

from repro.exceptions import SchemaError
from repro.relational.io import read_csv, write_csv
from repro.relational.schema import AttributeType
from repro.relational.table import Table


class TestRoundTrip:
    def test_write_then_read(self, tmp_path):
        table = Table.from_rows(
            "cities", ["city", "population"], [("nyc", 8_000_000), ("sf", 800_000)]
        )
        path = write_csv(table, tmp_path / "cities.csv")
        loaded = read_csv(path)
        assert loaded.name == "cities"
        assert loaded.column("city") == ["nyc", "sf"]
        assert loaded.column("population") == [8_000_000, 800_000]
        assert loaded.schema.type_of("population") is AttributeType.NUMERICAL

    def test_none_round_trips_as_empty_cell(self, tmp_path):
        table = Table.from_rows("t", ["a", "b"], [(1, None), (2, "x")])
        loaded = read_csv(write_csv(table, tmp_path / "t.csv"))
        assert loaded.column("b") == [None, "x"]

    def test_floats_preserved(self, tmp_path):
        table = Table.from_rows("t", ["v"], [(1.5,), (2.25,)])
        loaded = read_csv(write_csv(table, tmp_path / "t.csv"))
        assert loaded.column("v") == [1.5, 2.25]

    def test_custom_name_overrides_stem(self, tmp_path):
        table = Table.from_rows("orig", ["a"], [(1,)])
        loaded = read_csv(write_csv(table, tmp_path / "file.csv"), name="renamed")
        assert loaded.name == "renamed"

    def test_empty_file_raises(self, tmp_path):
        path = tmp_path / "empty.csv"
        path.write_text("")
        with pytest.raises(SchemaError):
            read_csv(path)

    def test_write_creates_parent_dirs(self, tmp_path):
        table = Table.from_rows("t", ["a"], [(1,)])
        path = write_csv(table, tmp_path / "nested" / "dir" / "t.csv")
        assert path.exists()
