"""Tests for partitions / equivalence classes (paper Definition 2.1, Example 2.1)."""

from __future__ import annotations

from repro.relational.partitions import (
    correct_row_indices,
    equivalence_classes,
    partition,
    partition_error,
    refine,
    stripped_partition,
)
from repro.relational.table import Table


class TestPartition:
    def test_partition_groups_by_value(self, example_d):
        groups = partition(example_d, ["A"])
        assert set(groups) == {("a1",), ("a2",)}
        assert groups[("a1",)] == [0, 1, 2, 3]
        assert groups[("a2",)] == [4]

    def test_partition_on_two_attributes(self, example_d):
        groups = partition(example_d, ["A", "B"])
        assert len(groups) == 4
        assert groups[("a1", "b1")] == [0, 1]

    def test_equivalence_classes(self, example_d):
        classes = equivalence_classes(example_d, ["A"])
        sizes = sorted(len(c) for c in classes)
        assert sizes == [1, 4]

    def test_stripped_partition_drops_singletons(self, example_d):
        stripped = stripped_partition(example_d, ["A"])
        assert len(stripped) == 1
        assert len(stripped[0]) == 4

    def test_refine_equals_direct_partition(self, example_d):
        base = partition(example_d, ["A"])
        refined = refine(base, example_d, ["B"])
        direct = partition(example_d, ["A", "B"])
        assert {tuple(v) for v in refined.values()} == {tuple(v) for v in direct.values()}


class TestPartitionError:
    def test_example_from_paper(self, example_d):
        # C(D, A->B) = {t1, t2, t5}, so 2 of 5 tuples are erroneous.
        assert partition_error(example_d, ["A"], ["B"]) == 0.4

    def test_zero_error_when_fd_holds(self):
        table = Table.from_rows("t", ["A", "B"], [("a", "x"), ("a", "x"), ("b", "y")])
        assert partition_error(table, ["A"], ["B"]) == 0.0

    def test_empty_table_has_zero_error(self):
        table = Table.empty("t", ["A", "B"])
        assert partition_error(table, ["A"], ["B"]) == 0.0

    def test_error_is_fraction_of_rows(self):
        rows = [("a", 1), ("a", 1), ("a", 1), ("a", 2)]
        table = Table.from_rows("t", ["A", "B"], rows)
        assert partition_error(table, ["A"], ["B"]) == 0.25


class TestCorrectRows:
    def test_correct_rows_match_paper_example(self, example_d):
        correct = correct_row_indices(example_d, ["A"], ["B"])
        assert correct == {0, 1, 4}

    def test_rhs_overlapping_lhs_is_handled(self):
        table = Table.from_rows("t", ["A", "B"], [("a", "x"), ("a", "y")])
        correct = correct_row_indices(table, ["A", "B"], ["B"])
        # B is functionally determined by (A, B) trivially: everything correct.
        assert correct == {0, 1}
