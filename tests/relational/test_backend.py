"""Backend selection, numpy-masked fallback, parity, and encoding propagation."""

from __future__ import annotations

import pytest

from repro.infotheory.correlation import attribute_set_correlation
from repro.infotheory.join_informativeness import join_informativeness
from repro.relational import backend
from repro.relational.joins import full_outer_join, inner_join
from repro.relational.schema import Attribute, AttributeType, Schema
from repro.relational.table import Table


@pytest.fixture(autouse=True)
def _restore_backend_state():
    """Snapshot/restore the module-level backend selection around each test."""
    saved_override, saved_active = backend._override, backend._active
    yield
    backend._override, backend._active = saved_override, saved_active


def make_table(name: str = "t") -> Table:
    schema = Schema(
        [
            Attribute("k", AttributeType.CATEGORICAL),
            Attribute("num", AttributeType.NUMERICAL),
            Attribute("cat", AttributeType.CATEGORICAL),
        ]
    )
    rows = [
        ("a", 1, "x"),
        ("b", 2, "y"),
        ("a", 3, "x"),
        (None, 4, "z"),
        ("c", 2, "y"),
        ("a", 1, None),
    ]
    return Table.from_rows(name, schema, rows)


# ------------------------------------------------------------------ selection
class TestBackendSelection:
    def test_normalize_aliases(self):
        assert backend.normalize("np") == backend.NUMPY
        assert backend.normalize("NumPy") == backend.NUMPY
        assert backend.normalize("list") == backend.PYTHON
        assert backend.normalize("pure-python") == backend.PYTHON
        assert backend.normalize("") == backend.AUTO
        with pytest.raises(ValueError):
            backend.normalize("fortran")

    def test_auto_prefers_numpy_when_available(self):
        resolved = backend.set_backend("auto")
        expected = backend.NUMPY if backend.numpy_available() else backend.PYTHON
        assert resolved == expected

    def test_env_var_selects_python(self, monkeypatch):
        monkeypatch.setenv(backend.ENV_VAR, "python")
        backend.set_backend(None)  # clear the override, re-read the env var
        assert backend.active_backend() == backend.PYTHON
        table = make_table()
        assert isinstance(table.encoded("k").codes, list)

    def test_set_backend_controls_new_encodings(self):
        if not backend.numpy_available():
            pytest.skip("numpy is not installed")
        np = backend.get_numpy()
        with backend.use_backend("numpy"):
            array_codes = make_table().encoded("k").codes
        with backend.use_backend("python"):
            list_codes = make_table().encoded("k").codes
        assert isinstance(array_codes, np.ndarray)
        assert isinstance(list_codes, list)
        assert array_codes.tolist() == list_codes

    def test_config_knob_applies_backend(self):
        from repro.core.config import DanceConfig
        from repro.core.dance import DANCE
        from repro.marketplace.market import Marketplace

        DANCE(Marketplace([make_table()]), DanceConfig(backend="python"))
        assert backend.active_backend() == backend.PYTHON
        with pytest.raises(Exception):
            DanceConfig(backend="fortran")


# ------------------------------------------------------- numpy masked out
class TestNumpyMaskedFallback:
    def test_auto_falls_back_to_python(self, monkeypatch):
        monkeypatch.setattr(backend, "_NUMPY", None)
        backend.set_backend(None)
        assert not backend.numpy_available()
        assert backend.active_backend() == backend.PYTHON

    def test_explicit_numpy_request_warns_and_falls_back(self, monkeypatch):
        monkeypatch.setattr(backend, "_NUMPY", None)
        with pytest.warns(RuntimeWarning):
            resolved = backend.set_backend("numpy")
        assert resolved == backend.PYTHON

    def test_kernels_run_without_numpy(self, monkeypatch):
        monkeypatch.setattr(backend, "_NUMPY", None)
        backend.set_backend(None)
        left, right = make_table("left"), make_table("right")
        joined = inner_join(left, right, ["k"])
        assert isinstance(left.encoded_key(("k",)).codes, list)
        assert len(joined) == 11  # 'a': 3x3 pairs, 'b': 1, 'c': 1; None keys never match
        outer = full_outer_join(left, right, ["k"])
        assert len(outer) > len(joined)
        assert 0.0 <= join_informativeness(left, right, ["k"]) <= 1.0
        assert attribute_set_correlation(joined, ["num"], ["cat"]) >= 0.0

    def test_array_encodings_survive_backend_switch(self):
        if not backend.numpy_available():
            pytest.skip("numpy is not installed")
        with backend.use_backend("numpy"):
            table = make_table()
            table.encoded_key(("k",))  # cached as an array-backed encoding
        with backend.use_backend("python"):
            # Kernels dispatch on the container type, not on the active
            # backend, so the cached array encoding keeps working.
            other = make_table("other")
            joined = inner_join(table, other, ["k"])
        assert len(joined) == 11


# ----------------------------------------------------------------- parity
@pytest.mark.skipif(not backend.numpy_available(), reason="numpy is not installed")
class TestBackendParity:
    def _statistics(self) -> dict[str, float]:
        from repro.workloads.tpch import tpch_workload

        workload = tpch_workload(scale=0.1, seed=0)
        orders = workload.dirty_or_clean("orders")
        customer = workload.dirty_or_clean("customer")
        joined = inner_join(customer, orders)
        stats = {
            "ji": join_informativeness(customer, orders),
            "corr": attribute_set_correlation(
                joined,
                list(joined.schema.numerical_names())[:1],
                list(joined.schema.categorical_names())[:2],
            ),
            "entropy": customer.key_entropy(customer.schema.names[:2]),
        }
        stats["outer_rows"] = float(len(full_outer_join(customer, orders)))
        return stats

    def test_statistics_bit_identical_across_backends(self):
        with backend.use_backend("python"):
            python_stats = self._statistics()
        with backend.use_backend("numpy"):
            numpy_stats = self._statistics()
        # Bit-identical, not approximately equal: both backends must consume
        # the same counts in the same order through the same float reduction.
        assert python_stats == numpy_stats

    def test_join_results_identical_across_backends(self):
        left, right = make_table("left"), make_table("right")
        with backend.use_backend("python"):
            python_inner = inner_join(make_table("left"), make_table("right"), ["k"])
            python_outer = full_outer_join(make_table("left"), make_table("right"), ["k"])
        with backend.use_backend("numpy"):
            numpy_inner = inner_join(left, right, ["k"])
            numpy_outer = full_outer_join(left, right, ["k"])
        assert list(python_inner.iter_rows()) == list(numpy_inner.iter_rows())
        assert list(python_outer.iter_rows()) == list(numpy_outer.iter_rows())


# ------------------------------------------------- encoding propagation
class TestEncodingPropagation:
    def test_project_inherits_cached_encodings(self):
        table = make_table()
        encoding = table.encoded("k")
        key_encoding = table.encoded_key(("k", "cat"))
        entropy = table.key_entropy(("k",))
        projected = table.project(["k", "cat"])
        assert projected.encoded("k") is encoding
        assert projected.encoded_key(("k", "cat")) is key_encoding
        assert projected.key_entropy(("k",)) == entropy
        assert ("entropy", "k") in projected._stats

    def test_project_drops_encodings_of_dropped_columns(self):
        table = make_table()
        table.encoded("num")
        projected = table.project(["k"])
        assert ("num",) not in projected._encodings

    def test_with_name_and_rename_inherit(self):
        table = make_table()
        encoding = table.encoded("k")
        renamed = table.rename({"k": "key"})
        assert renamed.encoded("key") is encoding
        assert table.with_name("other").encoded("k") is encoding

    def test_take_re_encodes(self):
        table = make_table()
        table.encoded("k")
        subset = table.take([0, 2, 4])
        assert not subset._encodings  # gathered columns: nothing to inherit
        assert subset.encoded("k").values == ["a", "c"]

    def test_projected_encoding_matches_fresh_encoding(self):
        table = make_table()
        table.encoded_key(("k", "cat"))
        projected = table.project(["k", "cat"])
        fresh = Table(
            "fresh",
            projected.schema,
            {name: list(projected.column(name)) for name in projected.schema.names},
        )
        inherited = projected.encoded_key(("k", "cat"))
        rebuilt = fresh.encoded_key(("k", "cat"))
        assert list(inherited.codes) == list(rebuilt.codes)
        assert inherited.values == rebuilt.values
