"""Tests for repro.relational.schema."""

from __future__ import annotations

import pytest

from repro.exceptions import SchemaError, UnknownAttributeError
from repro.relational.schema import Attribute, AttributeType, Schema


class TestAttributeType:
    def test_infer_numerical(self):
        assert AttributeType.infer([1, 2, 3.5]) is AttributeType.NUMERICAL

    def test_infer_categorical_strings(self):
        assert AttributeType.infer(["a", "b"]) is AttributeType.CATEGORICAL

    def test_infer_mixed_is_categorical(self):
        assert AttributeType.infer([1, "a"]) is AttributeType.CATEGORICAL

    def test_infer_ignores_none(self):
        assert AttributeType.infer([None, 2, 3]) is AttributeType.NUMERICAL

    def test_infer_bools_are_categorical(self):
        assert AttributeType.infer([True, False]) is AttributeType.CATEGORICAL

    def test_infer_all_none_defaults_categorical(self):
        assert AttributeType.infer([None, None]) is AttributeType.CATEGORICAL


class TestAttribute:
    def test_default_type_is_categorical(self):
        assert Attribute("x").is_categorical()

    def test_empty_name_rejected(self):
        with pytest.raises(SchemaError):
            Attribute("")

    def test_renamed_keeps_type(self):
        attr = Attribute("x", AttributeType.NUMERICAL).renamed("y")
        assert attr.name == "y"
        assert attr.is_numerical()


class TestSchema:
    def test_from_strings(self):
        schema = Schema(["a", "b"])
        assert schema.names == ("a", "b")
        assert len(schema) == 2

    def test_duplicate_names_rejected(self):
        with pytest.raises(SchemaError):
            Schema(["a", "a"])

    def test_bad_entry_type_rejected(self):
        with pytest.raises(SchemaError):
            Schema([42])  # type: ignore[list-item]

    def test_contains_and_getitem(self):
        schema = Schema([Attribute("a", AttributeType.NUMERICAL), "b"])
        assert "a" in schema
        assert "z" not in schema
        assert schema["a"].is_numerical()

    def test_getitem_unknown_raises(self):
        with pytest.raises(UnknownAttributeError):
            Schema(["a"])["b"]

    def test_index_of(self):
        schema = Schema(["a", "b", "c"])
        assert schema.index_of("c") == 2
        with pytest.raises(UnknownAttributeError):
            schema.index_of("z")

    def test_project_preserves_requested_order(self):
        schema = Schema(["a", "b", "c"])
        assert schema.project(["c", "a"]).names == ("c", "a")

    def test_common_attributes_in_self_order(self):
        left = Schema(["a", "b", "c"])
        right = Schema(["c", "b", "x"])
        assert left.common_attributes(right) == ("b", "c")

    def test_union_appends_new_attributes(self):
        left = Schema(["a", "b"])
        right = Schema(["b", "c"])
        assert left.union(right).names == ("a", "b", "c")

    def test_rename(self):
        schema = Schema(["a", "b"]).rename({"a": "x"})
        assert schema.names == ("x", "b")

    def test_rename_unknown_raises(self):
        with pytest.raises(UnknownAttributeError):
            Schema(["a"]).rename({"z": "y"})

    def test_equality_and_hash(self):
        assert Schema(["a", "b"]) == Schema(["a", "b"])
        assert Schema(["a", "b"]) != Schema(["b", "a"])
        assert hash(Schema(["a"])) == hash(Schema(["a"]))

    def test_numerical_and_categorical_names(self):
        schema = Schema([Attribute("n", AttributeType.NUMERICAL), Attribute("c")])
        assert schema.numerical_names() == ("n",)
        assert schema.categorical_names() == ("c",)

    def test_validate_subset(self):
        schema = Schema(["a", "b"])
        assert schema.validate_subset(["b"]) == ("b",)
        with pytest.raises(UnknownAttributeError):
            schema.validate_subset(["b", "z"])
