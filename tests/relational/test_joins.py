"""Tests for repro.relational.joins."""

from __future__ import annotations

import pytest

from repro.exceptions import JoinError
from repro.relational.joins import (
    full_outer_join,
    inner_join,
    join_path,
    join_size_upper_bound,
    shared_join_attributes,
)
from repro.relational.table import Table


@pytest.fixture
def left() -> Table:
    return Table.from_rows("left", ["k", "a"], [(1, "x"), (2, "y"), (3, "z"), (None, "w")])


@pytest.fixture
def right() -> Table:
    return Table.from_rows("right", ["k", "b"], [(1, "p"), (1, "q"), (4, "r")])


class TestSharedAttributes:
    def test_shared(self, left, right):
        assert shared_join_attributes(left, right) == ("k",)

    def test_none_shared(self):
        a = Table.from_rows("a", ["x"], [(1,)])
        b = Table.from_rows("b", ["y"], [(1,)])
        assert shared_join_attributes(a, b) == ()


class TestInnerJoin:
    def test_basic_match_counts(self, left, right):
        joined = inner_join(left, right)
        assert len(joined) == 2  # k=1 matches two right rows
        assert set(joined.schema.names) == {"k", "a", "b"}

    def test_none_keys_never_match(self, left):
        other = Table.from_rows("other", ["k", "c"], [(None, "n")])
        assert len(inner_join(left, other)) == 0

    def test_explicit_join_attributes(self, left, right):
        joined = inner_join(left, right, on=["k"])
        assert len(joined) == 2

    def test_no_join_attributes_raises(self):
        a = Table.from_rows("a", ["x"], [(1,)])
        b = Table.from_rows("b", ["y"], [(1,)])
        with pytest.raises(JoinError):
            inner_join(a, b)

    def test_name_collision_prefixes_right(self):
        a = Table.from_rows("a", ["k", "v"], [(1, "av")])
        b = Table.from_rows("b", ["k", "v"], [(1, "bv")])
        joined = inner_join(a, b, on=["k"])
        assert "b.v" in joined.schema
        assert joined.column("b.v") == ["bv"]

    def test_natural_join_uses_all_shared_attributes(self):
        a = Table.from_rows("a", ["k", "v"], [(1, "av")])
        b = Table.from_rows("b", ["k", "v"], [(1, "bv")])
        # natural join matches on both k and v, and the v values differ
        assert len(inner_join(a, b)) == 0

    def test_multi_attribute_join(self):
        a = Table.from_rows("a", ["x", "y", "p"], [(1, 1, "a"), (1, 2, "b")])
        b = Table.from_rows("b", ["x", "y", "q"], [(1, 1, "c"), (2, 2, "d")])
        joined = inner_join(a, b)
        assert len(joined) == 1
        assert joined.row(0) == (1, 1, "a", "c")


class TestFullOuterJoin:
    def test_keeps_unmatched_both_sides(self, left, right):
        outer = full_outer_join(left, right)
        # matched: 2 rows (k=1 twice); left-only: k=2, k=3, k=None; right-only: k=4
        assert len(outer) == 6

    def test_right_join_key_copy_present(self, left, right):
        outer = full_outer_join(left, right)
        assert "right.k" in outer.schema
        pairs = list(zip(outer.column("k"), outer.column("right.k")))
        assert (2, None) in pairs
        assert (None, 4) in pairs

    def test_all_matched_means_no_nulls(self):
        a = Table.from_rows("a", ["k", "x"], [(1, "a")])
        b = Table.from_rows("b", ["k", "y"], [(1, "b")])
        outer = full_outer_join(a, b)
        assert len(outer) == 1
        assert None not in outer.row(0)


class TestJoinPath:
    def test_three_way_chain(self):
        a = Table.from_rows("a", ["x", "p"], [(1, "a1"), (2, "a2")])
        b = Table.from_rows("b", ["x", "y"], [(1, 10), (2, 20)])
        c = Table.from_rows("c", ["y", "q"], [(10, "c1"), (20, "c2")])
        joined = join_path([a, b, c])
        assert len(joined) == 2
        assert set(joined.schema.names) == {"x", "p", "y", "q"}

    def test_single_table_returned_unchanged(self):
        a = Table.from_rows("a", ["x"], [(1,)])
        assert join_path([a]) is a

    def test_empty_path_raises(self):
        with pytest.raises(JoinError):
            join_path([])

    def test_intermediate_hook_is_applied(self):
        a = Table.from_rows("a", ["x", "p"], [(1, "a1"), (2, "a2")])
        b = Table.from_rows("b", ["x", "y"], [(1, 10), (2, 20)])
        c = Table.from_rows("c", ["y", "q"], [(10, "c1"), (20, "c2")])
        calls = []

        def hook(table):
            calls.append(len(table))
            return table.head(1)

        joined = join_path([a, b, c], intermediate_hook=hook)
        assert calls  # hook ran on intermediates
        assert len(joined) <= 1

    def test_named_result(self):
        a = Table.from_rows("a", ["x"], [(1,)])
        b = Table.from_rows("b", ["x"], [(1,)])
        assert join_path([a, b], name="joined").name == "joined"


class TestJoinSizeBound:
    def test_upper_bound_is_exact_for_keys(self, left, right):
        bound = join_size_upper_bound(left, right)
        assert bound == len(inner_join(left, right))

    def test_zero_when_no_shared_attributes(self):
        a = Table.from_rows("a", ["x"], [(1,)])
        b = Table.from_rows("b", ["y"], [(1,)])
        assert join_size_upper_bound(a, b) == 0
