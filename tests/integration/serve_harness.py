"""Reusable end-to-end harness for the HTTP serve tier.

Spins a *real* :class:`~repro.service.server.AcquisitionHTTPServer` — single
service or :class:`~repro.service.router.ShardRouter` — on an ephemeral
loopback port and drives it with plain ``urllib`` clients, so a test (or the
``check_serve_parity.py`` / ``bench_hot_path.py --serve`` scripts, which
import this module off ``tests/integration``) exercises the full stack:
HTTP parsing → admission → session → search → storage.

The harness is deliberately free of pytest imports; everything is context
managers and plain functions.
"""

from __future__ import annotations

import json
import urllib.error
import urllib.request
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass

from repro.core.config import DanceConfig, ServiceConfig
from repro.marketplace.dataset import MarketplaceDataset
from repro.marketplace.market import Marketplace
from repro.pricing.models import EntropyPricingModel
from repro.relational.table import Table
from repro.search.mcmc import MCMCConfig
from repro.service import AcquisitionService, ShardRouter
from repro.service.server import AcquisitionHTTPServer
from repro.workloads.queries import queries_for
from repro.workloads.tpch import tpch_workload


# ------------------------------------------------------------------ http client
@dataclass
class HttpResponse:
    """One HTTP exchange's outcome; error statuses are values, not raises."""

    status: int
    headers: dict
    body: bytes

    @property
    def text(self) -> str:
        return self.body.decode("utf-8")

    def json(self) -> object:
        return json.loads(self.body.decode("utf-8"))


def http_request(
    url: str, *, method: str = "GET", payload: object = None, timeout: float = 120.0
) -> HttpResponse:
    """One urllib exchange; 4xx/5xx come back as :class:`HttpResponse` too."""
    data = None
    headers = {}
    if payload is not None:
        data = json.dumps(payload).encode("utf-8")
        headers["Content-Type"] = "application/json"
    request = urllib.request.Request(url, data=data, headers=headers, method=method)
    try:
        with urllib.request.urlopen(request, timeout=timeout) as response:
            return HttpResponse(response.status, dict(response.headers), response.read())
    except urllib.error.HTTPError as error:
        body = error.read()
        return HttpResponse(error.code, dict(error.headers), body)


# ------------------------------------------------------------------ marketplaces
def small_marketplace() -> Marketplace:
    """The three-table synthetic marketplace the service unit tests use.

    Small enough that a full offline phase plus a served request stays well
    under a second — the right scale for e2e tests that boot a server per
    test.
    """
    pricing = EntropyPricingModel()
    marketplace = Marketplace(default_pricing=pricing)
    facts = Table.from_rows(
        "facts",
        ["good_key", "bad_key", "measure"],
        [(i % 10, i % 3, float(i % 8) * 10 + i % 3) for i in range(64)],
    )
    dims = Table.from_rows(
        "dims",
        ["good_key", "bad_key", "label"],
        [(i, i % 2, f"lbl{i}") for i in range(8)],
    )
    extra = Table.from_rows(
        "extra",
        ["bad_key", "bonus"],
        [(i % 3, float(i)) for i in range(12)],
    )
    for table in (facts, dims, extra):
        marketplace.host(MarketplaceDataset(table=table, pricing=pricing))
    return marketplace


def small_config(**service_kwargs) -> DanceConfig:
    """The configuration paired with :func:`small_marketplace`."""
    return DanceConfig(
        sampling_rate=1.0,
        mcmc=MCMCConfig(iterations=40, seed=0),
        service=ServiceConfig(**service_kwargs),
    )


SMALL_REQUEST_SPEC = {
    "source": ["measure"],
    "target": ["label"],
    "budget": 1e9,
}


def tpch_marketplace(scale: float = 0.2, seed: int = 0):
    """``(marketplace, workload)`` on the TPC-H scenario the parity scripts use."""
    workload = tpch_workload(scale=scale, seed=seed)
    pricing = EntropyPricingModel()
    marketplace = Marketplace(default_pricing=pricing)
    for name in workload.tables:
        marketplace.host(
            MarketplaceDataset(table=workload.dirty_or_clean(name), pricing=pricing)
        )
    return marketplace, workload


# -------------------------------------------------------------------- harness
class ServeHarness:
    """A live server plus its hot service, torn down deterministically.

    >>> with ServeHarness() as harness:
    ...     response = harness.post("/acquire", SMALL_REQUEST_SPEC)

    Parameters mirror the ``serve`` CLI: ``shards=1`` fronts a plain
    :class:`AcquisitionService`; ``shards>1`` a :class:`ShardRouter`.
    ``marketplace`` defaults to :func:`small_marketplace` and ``config`` to
    :func:`small_config` with the given admission knobs.  Exit performs the
    real graceful shutdown (drain → optional checkpoint → close) and then
    closes the service.
    """

    def __init__(
        self,
        *,
        marketplace: Marketplace | None = None,
        config: DanceConfig | None = None,
        queries: dict | None = None,
        shards: int = 1,
        queue_depth: int | None = None,
        admission: str = "block",
        batch_workers: int = 4,
        catalog_path: str | None = None,
        drain_timeout: float = 30.0,
    ) -> None:
        if config is None:
            config = small_config(
                seed=0,
                max_batch_workers=batch_workers,
                max_queue_depth=queue_depth,
                admission=admission,
                catalog_path=catalog_path,
            )
        self.config = config
        self.shards = shards
        self.drain_timeout = drain_timeout
        marketplace = marketplace if marketplace is not None else small_marketplace()
        if shards > 1:
            self.service = ShardRouter(marketplace, config, num_shards=shards)
        else:
            self.service = AcquisitionService(marketplace, config)
        self.server = AcquisitionHTTPServer(
            ("127.0.0.1", 0), self.service, queries=queries or {}
        )
        self._thread = None

    # --------------------------------------------------------------- lifecycle
    def __enter__(self) -> "ServeHarness":
        self._thread = self.server.serve_background()
        return self

    def __exit__(self, *exc_info) -> None:
        self.shutdown()

    def shutdown(self) -> bool:
        """Graceful shutdown (idempotent); returns whether the drain completed."""
        drained = True
        if self._thread is not None:
            drained = self.server.graceful_shutdown(timeout=self.drain_timeout)
            self._thread.join(timeout=self.drain_timeout)
            self._thread = None
        self.service.close()
        return drained

    # ------------------------------------------------------------------ client
    @property
    def url(self) -> str:
        return f"http://127.0.0.1:{self.server.port}"

    def get(self, path: str, *, timeout: float = 120.0) -> HttpResponse:
        return http_request(f"{self.url}{path}", timeout=timeout)

    def post(self, path: str, payload: object, *, timeout: float = 120.0) -> HttpResponse:
        return http_request(
            f"{self.url}{path}", method="POST", payload=payload, timeout=timeout
        )

    def acquire(self, spec: dict, *, timeout: float = 120.0) -> HttpResponse:
        return self.post("/acquire", spec, timeout=timeout)

    def acquire_concurrently(
        self, specs: list, *, clients: int | None = None, timeout: float = 120.0
    ) -> list[HttpResponse]:
        """Fire one /acquire per spec from concurrent urllib clients.

        Responses come back in *spec order* regardless of completion order,
        so callers can zip them against expectations.
        """
        workers = clients if clients is not None else max(1, len(specs))
        with ThreadPoolExecutor(max_workers=workers) as pool:
            futures = [pool.submit(self.acquire, spec, timeout=timeout) for spec in specs]
            return [future.result() for future in futures]


def tpch_harness(
    *,
    scale: float = 0.2,
    sampling_rate: float = 0.5,
    iterations: int = 60,
    seed: int = 0,
    shards: int = 1,
    queue_depth: int | None = None,
    admission: str = "block",
    batch_workers: int = 3,
) -> ServeHarness:
    """A harness on the TPC-H parity scenario with named queries resolvable.

    The same scale / sampling-rate / iteration knobs as
    ``scripts/check_service_parity.py``, so served fingerprints line up with
    that script's reference numbers.
    """
    marketplace, workload = tpch_marketplace(scale=scale, seed=seed)
    config = DanceConfig(
        sampling_rate=sampling_rate,
        mcmc=MCMCConfig(iterations=iterations, seed=seed),
        service=ServiceConfig(
            seed=seed,
            max_batch_workers=batch_workers,
            max_queue_depth=queue_depth,
            admission=admission,
        ),
    )
    return ServeHarness(
        marketplace=marketplace,
        config=config,
        queries=dict(queries_for(workload)),
        shards=shards,
    )
