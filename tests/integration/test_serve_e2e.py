"""End-to-end serve-tier tests: real server, real sockets, real clients.

Every test boots an :class:`~repro.service.server.AcquisitionHTTPServer` on an
ephemeral port via :mod:`serve_harness` and talks to it with plain ``urllib``
clients.  The core claim under test is the serve tier's determinism contract:
the bits a client receives over HTTP are the bits a direct
``DANCE.acquire()`` call produces with the same seed — for single requests,
concurrent clients, batches, and the shard router alike.
"""

from __future__ import annotations

from serve_harness import SMALL_REQUEST_SPEC, ServeHarness, small_config, small_marketplace

from repro.core.dance import DANCE
from repro.marketplace.shopper import AcquisitionRequest
from repro.search.acquisition import SearchRuntime

# The served bits: everything a client acts on.  Cache/executor diagnostics
# (hit rates, chain pool kind) legitimately differ between a hot session and
# a cold direct run and are excluded on purpose.
SERVED_KEYS = (
    "instances",
    "purchased_instances",
    "projections",
    "join_attributes",
    "estimated_correlation",
    "estimated_quality",
    "estimated_join_informativeness",
    "estimated_price",
    "igraph_size",
    "igraph_index",
    "queries",
)


def served_bits(summary: dict) -> dict:
    return {key: summary[key] for key in SERVED_KEYS}


def direct_reference(seed: int) -> dict:
    """What a cold, serial ``DANCE.acquire`` answers for the same request."""
    dance = DANCE(small_marketplace(), small_config(seed=0))
    request = AcquisitionRequest(
        source_attributes=SMALL_REQUEST_SPEC["source"],
        target_attributes=SMALL_REQUEST_SPEC["target"],
        budget=SMALL_REQUEST_SPEC["budget"],
    )
    result = dance.acquire(request, runtime=SearchRuntime(mcmc_seed=seed))
    return served_bits(result.summary())


def test_single_acquire_matches_direct_dance():
    with ServeHarness() as harness:
        response = harness.acquire({**SMALL_REQUEST_SPEC, "seed": 7})
        assert response.status == 200
        body = response.json()
        assert body["ok"] is True
        assert body["seed"] == 7
        assert served_bits(body["result"]) == direct_reference(7)


def test_concurrent_clients_receive_identical_bits():
    with ServeHarness(batch_workers=4) as harness:
        responses = harness.acquire_concurrently(
            [{**SMALL_REQUEST_SPEC, "seed": 7}] * 6, clients=6
        )
        assert [response.status for response in responses] == [200] * 6
        bodies = [served_bits(response.json()["result"]) for response in responses]
        reference = direct_reference(7)
        assert all(body == reference for body in bodies)


def test_batch_endpoint_matches_direct_dance():
    with ServeHarness() as harness:
        response = harness.post(
            "/acquire",
            {
                "requests": [SMALL_REQUEST_SPEC, SMALL_REQUEST_SPEC],
                "seeds": [3, 11],
            },
        )
        assert response.status == 200
        body = response.json()
        assert body["ok"] is True
        assert body["rejected"] == 0
        summaries = body["results"]
        assert [item["seed"] for item in summaries] == [3, 11]
        assert served_bits(summaries[0]["result"]) == direct_reference(3)
        assert served_bits(summaries[1]["result"]) == direct_reference(11)


def test_sharded_server_matches_direct_dance():
    with ServeHarness(shards=3) as harness:
        response = harness.acquire({**SMALL_REQUEST_SPEC, "seed": 7})
        assert response.status == 200
        assert served_bits(response.json()["result"]) == direct_reference(7)


def test_healthz_and_metrics_report_live_state():
    with ServeHarness() as harness:
        health = harness.get("/healthz")
        assert health.status == 200
        assert health.json() == {"status": "ok"}

        assert harness.acquire({**SMALL_REQUEST_SPEC, "seed": 1}).status == 200
        metrics = harness.get("/metrics")
        assert metrics.status == 200
        assert metrics.headers["Content-Type"].startswith("text/plain")
        assert "dance_requests_total 1" in metrics.text
        assert "dance_server_draining 0" in metrics.text


def test_unknown_routes_return_404():
    with ServeHarness() as harness:
        assert harness.get("/nope").status == 404
        assert harness.post("/nope", {}).status == 404
