"""End-to-end integration tests: workload → marketplace → DANCE → purchase."""

from __future__ import annotations

import pytest

from repro.core.config import DanceConfig
from repro.core.dance import DANCE
from repro.infotheory.correlation import attribute_set_correlation
from repro.marketplace.shopper import AcquisitionRequest, DataShopper
from repro.pricing.budget import Budget
from repro.relational.joins import join_path
from repro.search.mcmc import MCMCConfig
from repro.workloads.queries import tpch_queries


@pytest.fixture(scope="module")
def dance(tpch_marketplace_module):
    config = DanceConfig(sampling_rate=0.6, mcmc=MCMCConfig(iterations=40, seed=0))
    dance = DANCE(tpch_marketplace_module, config)
    dance.build_offline()
    return dance


@pytest.fixture(scope="module")
def tpch_marketplace_module():
    from repro.marketplace.dataset import MarketplaceDataset
    from repro.marketplace.market import Marketplace
    from repro.pricing.models import EntropyPricingModel
    from repro.workloads.tpch import tpch_workload

    workload = tpch_workload(scale=0.05, seed=0, dirty_rate=0.3)
    pricing = EntropyPricingModel()
    market = Marketplace(default_pricing=pricing)
    for name in workload.tables:
        market.host(MarketplaceDataset(table=workload.dirty_or_clean(name), pricing=pricing))
    return market


class TestOfflinePhase:
    def test_join_graph_covers_all_hosted_datasets(self, dance, tpch_marketplace_module):
        assert len(dance.join_graph) == len(tpch_marketplace_module)

    def test_join_graph_connects_the_tpch_chain(self, dance):
        graph = dance.join_graph
        assert graph.has_edge("orders", "customer")
        assert graph.has_edge("customer", "nation")
        assert graph.has_edge("nation", "region")
        assert graph.has_edge("lineitem", "orders")


class TestAcquisitionQueries:
    @pytest.mark.parametrize("query_name", ["Q1", "Q2", "Q3"])
    def test_each_paper_query_is_answerable(self, dance, query_name):
        query = tpch_queries()[query_name]
        request = AcquisitionRequest(
            source_attributes=query.source_attributes,
            target_attributes=query.target_attributes,
            budget=1e6,
        )
        result = dance.acquire(request)
        assert result.estimated_correlation >= 0.0
        provided = set()
        for name in result.target_graph.nodes:
            provided |= set(result.target_graph.projections[name])
        assert set(query.target_attributes) <= provided

    def test_purchased_data_supports_the_correlation_analysis(
        self, dance, tpch_marketplace_module
    ):
        """Buy the recommended projections and compute the correlation locally."""
        query = tpch_queries()["Q2"]
        request = AcquisitionRequest(
            source_attributes=query.source_attributes,
            target_attributes=query.target_attributes,
            budget=1e6,
        )
        result = dance.acquire(request)

        shopper = DataShopper(name="adam", budget=Budget(total=1e6))
        receipts = shopper.purchase(tpch_marketplace_module, result.queries)
        purchased = {receipt.result.name: receipt.result for receipt in receipts}

        # join the purchased projections along the recommended target graph
        tables = {}
        for name in result.target_graph.nodes:
            if name in purchased:
                tables[name] = purchased[name]
            else:
                tables[name] = tpch_marketplace_module.dataset(name).table
        joined = result.target_graph.joined_table(tables)
        correlation = attribute_set_correlation(
            joined, query.source_attributes, query.target_attributes
        )
        assert len(joined) > 0
        assert correlation >= 0.0

    def test_budget_constrains_price(self, dance):
        query = tpch_queries()["Q1"]
        generous = dance.acquire(
            AcquisitionRequest(query.source_attributes, query.target_attributes, budget=1e6)
        )
        tight_budget = max(1.0, generous.estimated_price * 0.5)
        try:
            tight = dance.acquire(
                AcquisitionRequest(
                    query.source_attributes, query.target_attributes, budget=tight_budget
                )
            )
        except Exception:
            return  # infeasible under the tight budget: acceptable outcome
        assert tight.estimated_price <= tight_budget + 1e-6


class TestJoinPathSanity:
    def test_natural_tpch_join_is_nonempty(self, tpch_marketplace_module):
        orders = tpch_marketplace_module.dataset("orders").table
        customer = tpch_marketplace_module.dataset("customer").table
        nation = tpch_marketplace_module.dataset("nation").table
        region = tpch_marketplace_module.dataset("region").table
        joined = join_path(
            [orders.project(["custkey", "totalprice"]), customer.project(["custkey", "nationkey"]),
             nation.project(["nationkey", "regionkey"]), region]
        )
        assert len(joined) > 0
        assert "rname" in joined.schema
