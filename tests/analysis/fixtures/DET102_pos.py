"""Positive fixture: builtin hash() routing (DET102 fires)."""

def stripe_for(key: str, stripes: int) -> int:
    return hash(key) % stripes
