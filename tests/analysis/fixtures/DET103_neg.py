"""Negative fixture: sorted wrappers and order-insensitive reductions."""

def fold(items):
    total = ""
    for item in sorted({"b", "a", "c"}):
        total += item
    count = len({x for x in items})
    smallest = min(x for x in set(items))
    return total, count, smallest
