"""Positive fixture: folds over bare sets (DET103 fires twice)."""

def fold(items):
    total = ""
    for item in {"b", "a", "c"}:
        total += item
    return total + "".join(str(x) for x in set(items))
