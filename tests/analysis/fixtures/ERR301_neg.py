"""Negative fixture: narrow catches, cleanup-and-reraise, wrap-to-typed."""

class TypedError(Exception):
    pass


def careful(action, cleanup):
    try:
        action()
    except ValueError:
        return None
    try:
        action()
    except BaseException:
        cleanup()
        raise
    try:
        action()
    except Exception as error:
        raise TypedError("wrapped") from error
