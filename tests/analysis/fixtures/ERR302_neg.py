"""Negative fixture: typed errors (dual-inheritance keeps both contracts)."""

class ReproError(Exception):
    pass


class MeasureError(ReproError, ValueError):
    pass


def check(value: int) -> int:
    if value < 0:
        raise MeasureError("value must be >= 0")
    return value
