"""Negative fixture: snapshot under the lock, then iterate the copy."""
import threading


class Registry:
    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._entries: dict[str, int] = {}

    def dump(self) -> list[str]:
        with self._lock:
            snapshot = list(self._entries.items())
        lines = []
        for key, value in snapshot:
            lines.append(f"{key}={value}")
        return lines
