"""Positive fixture: iterating a live shared dict (the PR 7 bug shape)."""
import threading


class Registry:
    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._entries: dict[str, int] = {}

    def dump(self) -> list[str]:
        lines = []
        for key, value in self._entries.items():
            lines.append(f"{key}={value}")
        return lines
