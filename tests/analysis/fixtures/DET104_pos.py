"""Positive fixture: wall-clock and entropy reads (DET104 fires)."""
import os
import time
import uuid

stamp = time.time()
token = uuid.uuid4()
noise = os.urandom(8)
implicit_now = time.strftime("%Y-%m-%d")
