"""Negative fixture: the owner pairs creation with close and unlink."""
from multiprocessing import shared_memory


class Store:
    def __init__(self) -> None:
        self._segments = []

    def publish(self, payload: bytes) -> str:
        segment = shared_memory.SharedMemory(create=True, size=len(payload))
        segment.buf[: len(payload)] = payload
        self._segments.append(segment)
        return segment.name

    def close(self) -> None:
        for segment in self._segments:
            segment.close()
            segment.unlink()
        self._segments.clear()
