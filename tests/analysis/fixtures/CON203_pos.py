"""Positive fixture: a segment owner that never closes or unlinks."""
from multiprocessing import shared_memory


class LeakyStore:
    def publish(self, payload: bytes):
        segment = shared_memory.SharedMemory(create=True, size=len(payload))
        segment.buf[: len(payload)] = payload
        return segment.name
