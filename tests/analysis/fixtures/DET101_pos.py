"""Positive fixture: unseeded randomness (DET101 fires twice)."""
import random

value = random.random()
rng = random.Random()
