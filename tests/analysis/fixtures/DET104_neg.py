"""Negative fixture: durations and explicit-epoch conversions are fine."""
import time

start = time.perf_counter()
elapsed = time.perf_counter() - start
tick = time.monotonic()
epoch_text = time.strftime("%Y-%m-%d", time.gmtime(0))
