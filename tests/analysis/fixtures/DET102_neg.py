"""Negative fixture: blake2b is the stable hash."""
import hashlib

def stripe_for(key: str, stripes: int) -> int:
    digest = hashlib.blake2b(key.encode(), digest_size=8).digest()
    return int.from_bytes(digest, "big") % stripes
