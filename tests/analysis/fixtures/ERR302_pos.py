"""Positive fixture: raising builtins (ERR302 fires twice)."""

def check(value: int) -> int:
    if value < 0:
        raise ValueError("value must be >= 0")
    if value > 100:
        raise KeyError("value out of range")
    return value
