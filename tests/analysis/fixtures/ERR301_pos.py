"""Positive fixture: broad catches that swallow (ERR301 fires twice)."""

def swallow(action):
    try:
        action()
    except Exception:
        pass
    try:
        action()
    except:  # noqa: E722
        return None
