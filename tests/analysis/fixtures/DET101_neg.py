"""Negative fixture: explicitly seeded RNGs are fine."""
import random

rng = random.Random(42)
value = rng.random()
other = random.Random(b"derived-seed")
