"""Negative fixture: every access holds the lock or is *_locked."""
import threading


class Counter:
    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._count = 0  # guarded-by: self._lock

    def bump(self) -> None:
        with self._lock:
            self._count += 1

    def peek(self) -> int:
        with self._lock:
            return self._count

    def _drain_locked(self) -> int:
        value = self._count
        self._count = 0
        return value
