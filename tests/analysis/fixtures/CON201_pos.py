"""Positive fixture: guarded attribute touched without its lock."""
import threading


class Counter:
    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._count = 0  # guarded-by: self._lock

    def bump(self) -> None:
        with self._lock:
            self._count += 1

    def peek(self) -> int:
        return self._count
