"""Per-rule behaviour: every fixture pair, plus the precision carve-outs."""

from __future__ import annotations

from pathlib import Path

import pytest

from repro.analysis import lint_paths, lint_source, rule_codes

FIXTURES = Path(__file__).parent / "fixtures"
SHIPPED = sorted(code for code in rule_codes() if not code.startswith("LNT"))


def test_shipped_rule_inventory() -> None:
    assert SHIPPED == [
        "CON201",
        "CON202",
        "CON203",
        "DET101",
        "DET102",
        "DET103",
        "DET104",
        "ERR301",
        "ERR302",
    ]


@pytest.mark.parametrize("code", SHIPPED)
def test_rule_fires_on_positive_fixture(code: str) -> None:
    result = lint_paths([FIXTURES / f"{code}_pos.py"], select={code})
    assert result.findings, f"{code} must fire on its positive fixture"
    assert all(f.code == code for f in result.findings)


@pytest.mark.parametrize("code", SHIPPED)
def test_rule_silent_on_negative_fixture(code: str) -> None:
    result = lint_paths([FIXTURES / f"{code}_neg.py"], select={code})
    assert not result.findings, [f.render() for f in result.findings]


def test_det101_seeded_random_passes() -> None:
    findings = lint_source("import random\nrng = random.Random(7)\n")
    assert not [f for f in findings if f.code == "DET101"]


def test_det101_sees_from_import_alias() -> None:
    findings = lint_source("from random import Random as R\nrng = R()\n")
    assert [f for f in findings if f.code == "DET101"]


def test_det103_sorted_wrapper_is_ordered() -> None:
    findings = lint_source("for x in sorted({3, 1, 2}):\n    print(x)\n")
    assert not [f for f in findings if f.code == "DET103"]


def test_det103_comprehension_inside_sorted_passes() -> None:
    findings = lint_source("names = sorted(n for n in {'b', 'a'})\n")
    assert not [f for f in findings if f.code == "DET103"]


def test_det103_sum_of_set_comprehension_still_fires() -> None:
    # Float addition is not associative, so sum() is NOT order-insensitive.
    findings = lint_source("total = sum(x for x in {0.1, 0.2, 0.3})\n")
    assert [f for f in findings if f.code == "DET103"]


def test_det103_keys_algebra_fires_but_plain_keys_passes() -> None:
    fires = lint_source("d, e = {}, {}\nfor k in d.keys() - e.keys():\n    pass\n")
    assert [f for f in fires if f.code == "DET103"]
    silent = lint_source("d = {}\nfor k in d.keys():\n    pass\n")
    assert not [f for f in silent if f.code == "DET103"]


def test_err301_reraise_and_wrap_to_typed_exempt() -> None:
    source = (
        "def f(action, cleanup):\n"
        "    try:\n"
        "        action()\n"
        "    except BaseException:\n"
        "        cleanup()\n"
        "        raise\n"
        "    try:\n"
        "        action()\n"
        "    except Exception as error:\n"
        "        raise RuntimeError('typed') from error\n"
    )
    assert not [f for f in lint_source(source) if f.code == "ERR301"]


def test_err301_tuple_containing_exception_fires() -> None:
    source = "try:\n    pass\nexcept (ValueError, Exception):\n    pass\n"
    assert [f for f in lint_source(source) if f.code == "ERR301"]


def test_err302_reraising_caught_builtin_is_exempt() -> None:
    # `raise` with no expression and `raise error` of a bound name are not
    # constructing a builtin; only `raise ValueError(...)` style is flagged.
    source = (
        "def f(action):\n"
        "    try:\n"
        "        action()\n"
        "    except ValueError as error:\n"
        "        raise\n"
    )
    assert not [f for f in lint_source(source) if f.code == "ERR302"]


def test_con201_locked_suffix_and_dunder_init_exempt() -> None:
    source = (
        "import threading\n\n\n"
        "class C:\n"
        "    def __init__(self):\n"
        "        self._lock = threading.Lock()\n"
        "        self._state = {}  # guarded-by: self._lock\n\n"
        "    def _mutate_locked(self):\n"
        "        self._state['k'] = 1\n"
    )
    assert not [f for f in lint_source(source) if f.code == "CON201"]


def test_con201_nested_function_does_not_inherit_lock() -> None:
    source = (
        "import threading\n\n\n"
        "class C:\n"
        "    def __init__(self):\n"
        "        self._lock = threading.Lock()\n"
        "        self._state = 0  # guarded-by: self._lock\n\n"
        "    def run(self):\n"
        "        with self._lock:\n"
        "            def worker():\n"
        "                return self._state\n"
        "            return worker\n"
    )
    # The closure may outlive the with-block, so the lexical lock does not
    # cover it.
    assert [f for f in lint_source(source) if f.code == "CON201"]


def test_con201_requires_threaded_module() -> None:
    source = (
        "class C:\n"
        "    def __init__(self):\n"
        "        self._lock = object()\n"
        "        self._state = 0  # guarded-by: self._lock\n\n"
        "    def peek(self):\n"
        "        return self._state\n"
    )
    # No threading-family import: the file is single-threaded by construction.
    assert not [f for f in lint_source(source) if f.code == "CON201"]


def test_con202_snapshot_under_lock_passes() -> None:
    source = (
        "import threading\n\n\n"
        "class C:\n"
        "    def __init__(self):\n"
        "        self._lock = threading.Lock()\n"
        "        self._d = {}\n\n"
        "    def dump(self):\n"
        "        with self._lock:\n"
        "            return [k for k in self._d.keys()]\n"
    )
    assert not [f for f in lint_source(source) if f.code == "CON202"]


def test_parse_error_is_a_finding_not_a_crash() -> None:
    findings = lint_source("def broken(:\n")
    assert [f for f in findings if f.code == "LNT000"]
