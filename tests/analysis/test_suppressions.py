"""Suppression syntax: coverage, reasons, and the LNT001 audit diagnostic."""

from __future__ import annotations

from repro.analysis import lint_source
from repro.analysis.suppressions import parse_guards, parse_suppressions


def codes(findings) -> list[str]:
    return [f.code for f in findings]


def test_trailing_suppression_covers_its_line() -> None:
    src = "import time\n\nnow = time.time()  # dancelint: disable=DET104 -- test scaffolding\n"
    assert "DET104" not in codes(lint_source(src))


def test_standalone_suppression_covers_next_code_line() -> None:
    src = (
        "import time\n\n"
        "# dancelint: disable=DET104 -- test scaffolding\n"
        "now = time.time()\n"
    )
    assert "DET104" not in codes(lint_source(src))


def test_standalone_suppression_skips_comment_lines() -> None:
    src = (
        "import time\n\n"
        "# dancelint: disable=DET104 -- test scaffolding\n"
        "# more prose about why\n"
        "now = time.time()\n"
    )
    assert "DET104" not in codes(lint_source(src))


def test_suppression_does_not_leak_past_the_next_statement() -> None:
    src = (
        "import time\n\n"
        "# dancelint: disable=DET104 -- only the first read\n"
        "a = time.time()\n"
        "b = time.time()\n"
    )
    assert codes(lint_source(src)).count("DET104") == 1


def test_multi_code_suppression() -> None:
    src = (
        "import time\n\n"
        "x = hash(time.time())  # dancelint: disable=DET102,DET104 -- scaffolding\n"
    )
    result = codes(lint_source(src))
    assert "DET102" not in result and "DET104" not in result


def test_unrelated_code_is_not_suppressed() -> None:
    src = "import time\n\nnow = time.time()  # dancelint: disable=ERR301 -- wrong code\n"
    assert "DET104" in codes(lint_source(src))


def test_bare_suppression_of_audited_rule_emits_lnt001() -> None:
    src = "x = hash('k')  # dancelint: disable=DET102\n"
    result = codes(lint_source(src))
    assert "DET102" not in result
    assert "LNT001" in result


def test_reasoned_suppression_of_audited_rule_is_silent() -> None:
    src = "x = hash('k')  # dancelint: disable=DET102 -- routing only, in-process\n"
    assert codes(lint_source(src)) == []


def test_bare_suppression_of_unaudited_rule_is_fine() -> None:
    src = (
        "for x in {3, 1, 2}:  # dancelint: disable=DET103\n"
        "    print(x)\n"
    )
    assert codes(lint_source(src)) == []


def test_parse_suppressions_table() -> None:
    lines = [
        "x = 1",
        "# dancelint: disable=DET101,ERR302 -- because reasons",
        "y = 2",
        "z = 3  # dancelint: disable=DET102",
    ]
    table = parse_suppressions(lines)
    assert table[2].codes == frozenset({"DET101", "ERR302"})
    assert table[2].reason == "because reasons"
    assert table[3].codes == frozenset({"DET101", "ERR302"})  # carried forward
    assert table[4].codes == frozenset({"DET102"})
    assert table[4].reason is None
    assert 1 not in table


def test_parse_guards() -> None:
    lines = [
        "self._lock = threading.Lock()",
        "self._depth = 0  # guarded-by: self._slot_freed",
        "self._stats = {}  # guarded-by: self._locks[index]",
    ]
    guards = parse_guards(lines)
    assert guards[2] == "self._slot_freed"
    assert guards[3] == "self._locks[index]"
    assert 1 not in guards
