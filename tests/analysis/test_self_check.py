"""The repo's own invariants: src/repro is clean under the shipped baseline.

This is the test-suite mirror of the ``static-analysis`` CI job — a rule or
annotation change that dirties the tree fails here first, locally.
"""

from __future__ import annotations

import subprocess
import sys
from pathlib import Path

from repro.analysis import lint_paths
from repro.analysis.baseline import Baseline

REPO_ROOT = Path(__file__).resolve().parent.parent.parent
SHIPPED_BASELINE = REPO_ROOT / "scripts" / "dancelint_baseline.json"


def test_src_repro_is_clean_under_shipped_baseline() -> None:
    baseline = Baseline.load(SHIPPED_BASELINE)
    result = lint_paths([REPO_ROOT / "src" / "repro"], baseline=baseline, root=REPO_ROOT)
    assert result.ok, "\n" + "\n".join(f.render() for f in result.findings)
    # The baseline is exact: every accepted entry still matches a real
    # finding, so stale entries (fixed debt left in the file) fail too.
    assert result.baselined == len(baseline), (
        f"baseline lists {len(baseline)} finding(s) but only "
        f"{result.baselined} matched; regenerate scripts/dancelint_baseline.json"
    )


def test_check_invariants_script_passes() -> None:
    completed = subprocess.run(
        [sys.executable, str(REPO_ROOT / "scripts" / "check_invariants.py"),
         "--skip-advisory"],
        capture_output=True,
        text=True,
        cwd=REPO_ROOT,
        timeout=120,
    )
    assert completed.returncode == 0, completed.stdout + completed.stderr


def test_every_shipped_suppression_carries_a_reason() -> None:
    """Audited rules (DET102/DET104/ERR301) are only ever suppressed with
    a written justification anywhere under src/repro — LNT001 enforces it
    at lint time; this pins the current tree to zero bare suppressions."""
    result = lint_paths([REPO_ROOT / "src" / "repro"], root=REPO_ROOT)
    bare = [f for f in result.findings if f.code == "LNT001"]
    assert not bare, "\n".join(f.render() for f in bare)
