"""Baseline persistence: round trips, count-aware matching, line-move stability."""

from __future__ import annotations

from pathlib import Path

import pytest

from repro.analysis import lint_paths, lint_source
from repro.analysis.baseline import Baseline
from repro.exceptions import ReproError

DIRTY = "import time\n\nnow = time.time()\n"


def findings_of(source: str):
    return lint_source(source, path="module.py")


def test_round_trip(tmp_path: Path) -> None:
    findings = findings_of(DIRTY)
    assert findings
    path = tmp_path / "baseline.json"
    Baseline.from_findings(findings).write(path)
    loaded = Baseline.load(path)
    fresh, absorbed = loaded.filter(findings)
    assert fresh == [] and absorbed == len(findings)


def test_baseline_survives_line_moves(tmp_path: Path) -> None:
    baseline = Baseline.from_findings(findings_of(DIRTY))
    # Insert unrelated lines above: line numbers change, content does not.
    moved = "import time\n\nx = 1\ny = 2\n\nnow = time.time()\n"
    fresh, absorbed = baseline.filter(findings_of(moved))
    assert fresh == [] and absorbed == 1


def test_editing_the_flagged_line_unbaselines_it() -> None:
    baseline = Baseline.from_findings(findings_of(DIRTY))
    edited = "import time\n\nnow = time.time() + 1.0\n"
    fresh, _ = baseline.filter(findings_of(edited))
    assert fresh, "an edited flagged line must resurface"


def test_count_aware_matching() -> None:
    baseline = Baseline.from_findings(findings_of(DIRTY))
    doubled = "import time\n\nnow = time.time()\nnow = time.time()\n"
    fresh, absorbed = baseline.filter(findings_of(doubled))
    # One occurrence is accepted debt; adding a second identical line is new.
    assert absorbed == 1 and len(fresh) == 1


def test_load_rejects_missing_and_malformed(tmp_path: Path) -> None:
    with pytest.raises(ReproError, match="does not exist"):
        Baseline.load(tmp_path / "nope.json")
    bad = tmp_path / "bad.json"
    bad.write_text("not json at all")
    with pytest.raises(ReproError, match="cannot read baseline"):
        Baseline.load(bad)
    wrong = tmp_path / "wrong.json"
    wrong.write_text('{"version": 99, "entries": []}')
    with pytest.raises(ReproError, match="version"):
        Baseline.load(wrong)


def test_lint_paths_reports_baselined_count(tmp_path: Path) -> None:
    target = tmp_path / "module.py"
    target.write_text(DIRTY)
    first = lint_paths([target], root=tmp_path)
    assert first.findings
    path = tmp_path / "baseline.json"
    Baseline.from_findings(first.findings).write(path)
    second = lint_paths([target], baseline=Baseline.load(path), root=tmp_path)
    assert second.ok and second.baselined == len(first.findings)


def test_merge_sums_counts() -> None:
    one = Baseline.from_findings(findings_of(DIRTY))
    merged = Baseline.merge([one, one])
    doubled = "import time\n\nnow = time.time()\nnow = time.time()\n"
    fresh, absorbed = merged.filter(findings_of(doubled))
    assert fresh == [] and absorbed == 2
