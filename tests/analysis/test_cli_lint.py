"""The ``repro-dance lint`` subcommand: exit codes, formats, baselines."""

from __future__ import annotations

import json
from pathlib import Path

from repro.cli import main

DIRTY = "import time\n\nnow = time.time()\n"
CLEAN = "import time\n\nstart = time.perf_counter()\n"


def write(tmp_path: Path, name: str, body: str) -> Path:
    path = tmp_path / name
    path.write_text(body)
    return path


def test_clean_file_exits_zero(tmp_path: Path, capsys) -> None:
    target = write(tmp_path, "clean.py", CLEAN)
    assert main(["lint", str(target)]) == 0
    assert "0 finding(s)" in capsys.readouterr().out


def test_findings_exit_one_with_source_context(tmp_path: Path, capsys) -> None:
    target = write(tmp_path, "dirty.py", DIRTY)
    assert main(["lint", str(target)]) == 1
    out = capsys.readouterr().out
    assert "DET104" in out and "time.time()" in out


def test_json_format_matches_artifact_schema(tmp_path: Path, capsys) -> None:
    target = write(tmp_path, "dirty.py", DIRTY)
    assert main(["lint", str(target), "--format", "json"]) == 1
    payload = json.loads(capsys.readouterr().out)
    assert payload["summary"]["errors"] == 1
    (finding,) = payload["findings"]
    assert finding["code"] == "DET104"
    assert finding["path"].endswith("dirty.py")
    assert finding["fingerprint"]


def test_select_restricts_rules(tmp_path: Path) -> None:
    target = write(tmp_path, "dirty.py", DIRTY)
    assert main(["lint", str(target), "--select", "ERR301,ERR302"]) == 0
    assert main(["lint", str(target), "--select", "DET104"]) == 1


def test_unknown_select_code_is_a_usage_error(tmp_path: Path, capsys) -> None:
    target = write(tmp_path, "clean.py", CLEAN)
    assert main(["lint", str(target), "--select", "NOPE999"]) == 2
    assert "unknown rule codes" in capsys.readouterr().err


def test_missing_path_is_a_usage_error(tmp_path: Path, capsys) -> None:
    assert main(["lint", str(tmp_path / "absent.py")]) == 2
    assert "does not exist" in capsys.readouterr().err


def test_write_then_use_baseline_round_trip(tmp_path: Path, capsys) -> None:
    target = write(tmp_path, "dirty.py", DIRTY)
    baseline = tmp_path / "baseline.json"
    assert main(["lint", str(target), "--write-baseline", str(baseline)]) == 0
    capsys.readouterr()
    assert main(["lint", str(target), "--baseline", str(baseline)]) == 0
    assert "1 baselined" in capsys.readouterr().out
    # New debt on top of the baseline still fails.
    target.write_text(DIRTY + "again = time.time()\n")
    assert main(["lint", str(target), "--baseline", str(baseline)]) == 1


def test_missing_baseline_is_a_usage_error(tmp_path: Path, capsys) -> None:
    target = write(tmp_path, "clean.py", CLEAN)
    assert main(["lint", str(target), "--baseline", str(tmp_path / "nope.json")]) == 2
    assert "does not exist" in capsys.readouterr().err


def test_explain_lists_every_rule(capsys) -> None:
    assert main(["lint", "--explain"]) == 0
    out = capsys.readouterr().out
    for code in ("DET101", "DET102", "DET103", "DET104",
                 "CON201", "CON202", "CON203", "ERR301", "ERR302"):
        assert code in out
