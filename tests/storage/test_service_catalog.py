"""Service-level catalog persistence: warm restores, checkpoints, degradation.

A service configured with ``ServiceConfig(catalog_path=...)`` adopts the
catalog's offline state at startup (zero JI recomputes on the warm build),
restores its session caches (JI cache + Step-1 memo) fingerprint-guarded, and
checkpoints the refreshed state on ``register_source_tables``.  Restoring is
an optimisation, never a correctness dependency: mismatched or unusable
catalogs degrade to a cold session with a warning.
"""

from __future__ import annotations

import pytest

from repro.core.config import DanceConfig, ServiceConfig
from repro.marketplace.shopper import AcquisitionRequest
from repro.relational.table import Table
from repro.search.mcmc import MCMCConfig
from repro.service import AcquisitionService

from tests.storage.test_marketplace_persist import small_marketplace

REQUEST = AcquisitionRequest(
    source_attributes=["measure"], target_attributes=["label"], budget=1e9
)

SOURCE = Table.from_rows(
    "mine", ["bad_key", "mine_x"], [(i % 3, i) for i in range(10)]
)


def config(catalog_path=None, **service_kwargs) -> DanceConfig:
    return DanceConfig(
        sampling_rate=1.0,
        mcmc=MCMCConfig(iterations=40, seed=0),
        service=ServiceConfig(
            catalog_path=None if catalog_path is None else str(catalog_path),
            **service_kwargs,
        ),
    )


class TestWarmServiceRestart:
    def test_restart_restores_offline_state_and_caches(self, tmp_path):
        catalog = tmp_path / "cat"
        with AcquisitionService(small_marketplace(), config(catalog)) as service:
            expected = service.acquire(REQUEST)
            service.persist()
        assert catalog.exists()

        # A brand-new process would rebuild the marketplace from scratch; the
        # catalog_path makes both the offline state and the session caches
        # (Step-1 memo included) visible again.
        with AcquisitionService(small_marketplace(), config(catalog)) as warm:
            assert warm.join_graph.ji_computations == 0
            assert warm.join_graph.edge_recomputes == 0
            served = warm.acquire(REQUEST)
            memo = warm.metrics()["step1_memo"]
        assert served.estimated_correlation == expected.estimated_correlation
        assert served.sql() == expected.sql()
        assert memo["hits"] == 1 and memo["misses"] == 0

    def test_restart_from_opened_marketplace(self, tmp_path):
        from repro.marketplace.market import Marketplace

        catalog = tmp_path / "cat"
        with AcquisitionService(small_marketplace(), config(catalog)) as service:
            expected = service.acquire(REQUEST)
            service.persist()
        with AcquisitionService(Marketplace.open(catalog), config(catalog)) as warm:
            assert warm.join_graph.ji_computations == 0
            served = warm.acquire(REQUEST)
        assert served.estimated_correlation == expected.estimated_correlation

    def test_missing_catalog_is_a_cold_start(self, tmp_path):
        with AcquisitionService(
            small_marketplace(), config(tmp_path / "absent")
        ) as service:
            assert service.join_graph.ji_computations > 0
            service.acquire(REQUEST)

    def test_catalog_for_different_data_serves_cold(self, tmp_path):
        catalog = tmp_path / "cat"
        with AcquisitionService(small_marketplace(), config(catalog)) as service:
            service.persist()

        market = small_marketplace()
        market.remove("extra")
        market.host(
            Table.from_rows("extra", ["bad_key", "bonus"], [(1, 2.0), (2, 3.0)])
        )
        with AcquisitionService(market, config(catalog)) as cold:
            assert cold.join_graph.ji_computations > 0  # fingerprints miss
            cold.acquire(REQUEST)

    def test_unreadable_catalog_degrades_with_a_warning(self, tmp_path):
        catalog = tmp_path / "cat"
        catalog.write_bytes(b"garbage, not a catalog")
        with pytest.warns(RuntimeWarning, match="catalog"):
            service = AcquisitionService(small_marketplace(), config(catalog))
        with service:
            assert service.join_graph.ji_computations > 0
            service.acquire(REQUEST)


class TestRegisterCheckpoints:
    def test_register_source_tables_checkpoints_the_catalog(self, tmp_path):
        catalog = tmp_path / "cat"
        with AcquisitionService(small_marketplace(), config(catalog)) as service:
            summary = service.register_source_tables([SOURCE])
            assert summary["checkpointed"] is True
            expected = service.acquire(REQUEST)
        assert catalog.exists()

        # Restarting with the same source tables adopts the checkpointed
        # post-delta graph wholesale: zero JI computations again.
        with AcquisitionService(
            small_marketplace(), config(catalog), source_tables=[SOURCE]
        ) as warm:
            assert warm.join_graph.ji_computations == 0
            served = warm.acquire(REQUEST)
        assert served.estimated_correlation == expected.estimated_correlation
        assert served.sql() == expected.sql()

    def test_no_catalog_means_no_checkpoint_key(self):
        with AcquisitionService(small_marketplace(), config()) as service:
            summary = service.register_source_tables([SOURCE])
        assert "checkpointed" not in summary


class TestExplicitPersist:
    def test_persist_to_explicit_path(self, tmp_path):
        with AcquisitionService(small_marketplace(), config()) as service:
            service.acquire(REQUEST)
            service.persist(tmp_path / "cat")
        assert (tmp_path / "cat").exists()
        with AcquisitionService(
            small_marketplace(), config(tmp_path / "cat")
        ) as warm:
            assert warm.join_graph.ji_computations == 0

    def test_persist_without_a_target_checkpoints_in_memory(self):
        from repro.storage import NS_SESSION, InMemoryBackend

        with AcquisitionService(small_marketplace(), config()) as service:
            service.acquire(REQUEST)
            backend = service.persist()
        assert isinstance(backend, InMemoryBackend)
        assert backend.get(NS_SESSION, "caches") is not None
