"""Backend contract, factory inference, duckdb fallback, atomic persistence.

Every concrete :class:`~repro.storage.CatalogBackend` must behave identically
through the blob/metadata interface; the factory must infer engines sensibly,
sniff existing files, and degrade duckdb to sqlite exactly like the numpy
fallback in ``repro/relational/backend.py``.
"""

from __future__ import annotations

import pytest

from repro.exceptions import ReproError, StorageError
from repro.storage import (
    MEMORY,
    SCHEMA_VERSION,
    SQLITE,
    InMemoryBackend,
    SQLiteBackend,
    atomic_persist,
    create_backend,
    detect_kind,
    duckdb_available,
    normalize_kind,
    open_backend,
)
from repro.storage import duckdb as duckdb_module
from repro.storage.duckdb import DuckDBBackend


def _backend_params():
    params = [MEMORY, SQLITE]
    if duckdb_available():
        params.append("duckdb")
    return params


@pytest.fixture(params=_backend_params())
def backend(request, tmp_path):
    if request.param == MEMORY:
        built = InMemoryBackend()
    else:
        built = create_backend(request.param, tmp_path / f"cat.{request.param}")
    yield built
    built.close()


class TestNormalizeKind:
    def test_aliases(self):
        assert normalize_kind("sqlite3") == SQLITE
        assert normalize_kind("SQLite") == SQLITE
        assert normalize_kind("ram") == MEMORY
        assert normalize_kind("inmemory") == MEMORY
        assert normalize_kind(None) is None

    def test_unknown_kind_raises_typed_error(self):
        with pytest.raises(StorageError):
            normalize_kind("postgres")

    def test_storage_error_is_a_repro_error(self):
        assert issubclass(StorageError, ReproError)


class TestBackendContract:
    def test_blob_round_trip_and_overwrite(self, backend):
        assert backend.get("tables", "a") is None
        backend.put("tables", "a", b"payload-1")
        assert backend.get("tables", "a") == b"payload-1"
        backend.put("tables", "a", b"payload-2")
        assert backend.get("tables", "a") == b"payload-2"

    def test_keys_are_sorted_per_namespace(self, backend):
        backend.put("tables", "zeta", b"z")
        backend.put("tables", "alpha", b"a")
        backend.put("offline", "state", b"s")
        assert backend.keys("tables") == ["alpha", "zeta"]
        assert backend.keys("missing") == []
        assert backend.namespaces() == ["offline", "tables"]

    def test_delete_is_idempotent(self, backend):
        backend.put("tables", "a", b"x")
        backend.delete("tables", "a")
        backend.delete("tables", "a")
        assert backend.get("tables", "a") is None

    def test_meta_round_trip(self, backend):
        backend.put_meta("answer", {"value": 42, "nested": [1, "two"]})
        assert backend.get_meta("answer") == {"value": 42, "nested": [1, "two"]}
        assert backend.get_meta("missing", "fallback") == "fallback"

    def test_non_json_meta_raises(self, backend):
        with pytest.raises(StorageError):
            backend.put_meta("bad", object())

    def test_schema_version_lifecycle(self, backend):
        with pytest.raises(StorageError):
            backend.check_schema_version()
        backend.initialize()
        assert backend.check_schema_version() == SCHEMA_VERSION
        backend.put_meta("schema_version", SCHEMA_VERSION + 99)
        with pytest.raises(StorageError):
            backend.check_schema_version()

    def test_describe_counts_namespaces(self, backend):
        backend.initialize()
        backend.put("tables", "a", b"x")
        summary = backend.describe()
        assert summary["kind"] == backend.kind
        assert summary["schema_version"] == SCHEMA_VERSION
        assert summary["namespaces"] == {"tables": 1}

    def test_context_manager_closes(self, backend):
        with backend as inside:
            inside.put("tables", "a", b"x")
        if backend.kind != MEMORY:
            with pytest.raises(StorageError):
                backend.get("tables", "a")


class TestDiskPersistence:
    @pytest.mark.parametrize(
        "kind", [SQLITE] + (["duckdb"] if duckdb_available() else [])
    )
    def test_blobs_survive_reopen(self, tmp_path, kind):
        path = tmp_path / f"cat.{kind}"
        with create_backend(kind, path) as backend:
            backend.initialize()
            backend.put("tables", "a", b"\x00\xffbinary")
            backend.flush()
        with open_backend(path) as reopened:
            assert reopened.kind == kind
            assert reopened.get("tables", "a") == b"\x00\xffbinary"

    def test_detect_kind_sniffs_sqlite(self, tmp_path):
        path = tmp_path / "cat"
        with create_backend(SQLITE, path) as backend:
            backend.initialize()
        assert detect_kind(path) == SQLITE

    def test_detect_kind_missing_file(self, tmp_path):
        with pytest.raises(StorageError, match="no catalog"):
            detect_kind(tmp_path / "absent")

    def test_detect_kind_directory(self, tmp_path):
        with pytest.raises(StorageError, match="directory"):
            detect_kind(tmp_path)

    def test_detect_kind_garbage_file(self, tmp_path):
        path = tmp_path / "garbage"
        path.write_bytes(b"definitely not a database header")
        with pytest.raises(StorageError, match="not a recognised catalog"):
            detect_kind(path)

    def test_open_backend_rejects_uninitialised_file(self, tmp_path):
        path = tmp_path / "empty"
        with create_backend(SQLITE, path):
            pass  # valid sqlite file, but never stamped as a catalog
        with pytest.raises(StorageError, match="not a marketplace catalog"):
            open_backend(path)

    def test_open_backend_passes_instances_through(self):
        backend = InMemoryBackend()
        backend.initialize()
        assert open_backend(backend) is backend


class TestFactoryInference:
    def test_no_kind_no_path_is_memory(self):
        assert isinstance(create_backend(), InMemoryBackend)

    def test_no_kind_with_path_is_sqlite(self, tmp_path):
        with create_backend(path=tmp_path / "cat") as backend:
            assert isinstance(backend, SQLiteBackend)

    def test_memory_rejects_a_path(self, tmp_path):
        with pytest.raises(StorageError):
            create_backend(MEMORY, tmp_path / "cat")

    def test_disk_kinds_require_a_path(self):
        with pytest.raises(StorageError):
            create_backend(SQLITE)


# ------------------------------------------------------- duckdb masked out
class TestDuckdbMaskedFallback:
    """duckdb absent: same degradation contract as numpy in relational/backend."""

    def test_create_warns_and_falls_back_to_sqlite(self, tmp_path, monkeypatch):
        monkeypatch.setattr(duckdb_module, "_DUCKDB", None)
        assert not duckdb_available()
        with pytest.warns(RuntimeWarning, match="duckdb is not importable"):
            backend = create_backend("duckdb", tmp_path / "cat")
        with backend:
            assert isinstance(backend, SQLiteBackend)
            backend.initialize()
        assert detect_kind(tmp_path / "cat") == SQLITE

    def test_direct_construction_is_a_hard_error(self, tmp_path, monkeypatch):
        monkeypatch.setattr(duckdb_module, "_DUCKDB", None)
        with pytest.raises(StorageError, match="duckdb is not importable"):
            DuckDBBackend(tmp_path / "cat")

    def test_opening_a_duckdb_file_is_a_hard_error(self, tmp_path, monkeypatch):
        # A silent sqlite fallback would misread the file, so open refuses.
        monkeypatch.setattr(duckdb_module, "_DUCKDB", None)
        path = tmp_path / "cat.duckdb"
        path.write_bytes(b"\x00" * 8 + b"DUCK" + b"\x00" * 52)
        assert detect_kind(path) == "duckdb"
        with pytest.raises(StorageError, match="duckdb is not importable"):
            open_backend(path)


class TestAtomicPersist:
    def test_writes_and_returns_target(self, tmp_path):
        target = tmp_path / "cat"

        def writer(backend):
            backend.initialize()
            backend.put("tables", "a", b"x")

        assert atomic_persist(target, SQLITE, writer) == target
        with open_backend(target) as backend:
            assert backend.get("tables", "a") == b"x"

    def test_failed_writer_keeps_the_previous_catalog(self, tmp_path):
        target = tmp_path / "cat"

        def good(backend):
            backend.initialize()
            backend.put("tables", "a", b"original")

        atomic_persist(target, SQLITE, good)

        def bad(backend):
            backend.initialize()
            backend.put("tables", "a", b"partial")
            raise RuntimeError("mid-write crash")

        with pytest.raises(RuntimeError):
            atomic_persist(target, SQLITE, bad)
        with open_backend(target) as backend:
            assert backend.get("tables", "a") == b"original"
        assert [p.name for p in tmp_path.iterdir()] == ["cat"]  # no temp leftovers

    def test_missing_parent_directory_is_a_typed_error(self, tmp_path):
        with pytest.raises(StorageError, match="does not exist"):
            atomic_persist(tmp_path / "absent" / "cat", SQLITE, lambda backend: None)
