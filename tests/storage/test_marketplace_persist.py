"""Marketplace persist/open: lazy hydration, encoding rehydration, atomicity.

The contracts under test: ``persist() -> Marketplace.open()`` reproduces the
free catalog bit-for-bit (in hosting order); reopened datasets stay lazy until
their table is touched and come back with their dictionary encodings
*rehydrated* rather than re-encoded; checkpointing a lazy catalog never forces
hydration; an interrupted persist never corrupts an existing catalog; and
missing/corrupt catalogs fail with typed ``StorageError``s.
"""

from __future__ import annotations

import pytest

from repro.exceptions import StorageError
from repro.marketplace.dataset import MarketplaceDataset
from repro.marketplace.market import Marketplace
from repro.pricing.models import EntropyPricingModel
from repro.relational.table import Table
from repro.storage import (
    NS_TABLES,
    InMemoryBackend,
    StoredDataset,
    create_backend,
    duckdb_available,
)

KINDS = ["sqlite"] + (["duckdb"] if duckdb_available() else [])


def small_marketplace() -> Marketplace:
    pricing = EntropyPricingModel()
    marketplace = Marketplace(default_pricing=pricing)
    facts = Table.from_rows(
        "facts",
        ["good_key", "bad_key", "measure"],
        [(i % 10, i % 3, float(i % 8) * 10 + i % 3) for i in range(64)],
    )
    dims = Table.from_rows(
        "dims",
        ["good_key", "bad_key", "label"],
        [(i, i % 2, f"lbl{i}") for i in range(8)],
    )
    extra = Table.from_rows(
        "extra",
        ["bad_key", "bonus"],
        [(i % 3, float(i)) for i in range(12)],
    )
    for table in (facts, dims, extra):
        marketplace.host(MarketplaceDataset(table=table, pricing=pricing))
    return marketplace


def rows_of(table: Table) -> list[tuple]:
    return list(table.iter_rows())


@pytest.mark.parametrize("kind", KINDS)
class TestRoundTrip:
    def test_catalog_is_bit_identical_in_hosting_order(self, tmp_path, kind):
        market = small_marketplace()
        market.persist(tmp_path / "cat", kind=kind)
        reopened = Marketplace.open(tmp_path / "cat")
        assert reopened.dataset_names == market.dataset_names
        assert reopened.catalog() == market.catalog()
        assert reopened.sample_row_price == market.sample_row_price

    def test_datasets_stay_lazy_until_touched(self, tmp_path, kind):
        small_marketplace().persist(tmp_path / "cat", kind=kind)
        reopened = Marketplace.open(tmp_path / "cat")
        dataset = reopened.dataset("facts")
        assert isinstance(dataset, StoredDataset)
        assert not dataset.hydrated
        # The schema surface never touches the table blob.
        assert dataset.num_rows == 64
        assert "measure" in dataset.schema
        assert not dataset.hydrated
        assert rows_of(dataset.table) == rows_of(
            small_marketplace().dataset("facts").table
        )
        assert dataset.hydrated

    def test_encodings_are_rehydrated_not_reencoded(self, tmp_path, kind):
        market = small_marketplace()
        original = market.dataset("facts").table
        original.encoded_key(("good_key",))  # populate the lazy encoding cache
        market.persist(tmp_path / "cat", kind=kind)
        table = Marketplace.open(tmp_path / "cat").dataset("facts").table
        # The persisted encoding is installed at hydration time, before any
        # kernel asks for it — rehydrated, not recomputed.
        assert ("good_key",) in table._encodings
        assert table.encoded_key(("good_key",)).code_list() == original.encoded_key(
            ("good_key",)
        ).code_list()

    def test_repersisting_a_lazy_catalog_does_not_hydrate(self, tmp_path, kind):
        small_marketplace().persist(tmp_path / "cat", kind=kind)
        reopened = Marketplace.open(tmp_path / "cat")
        reopened.persist(tmp_path / "copy", kind=kind)
        assert not any(
            dataset.hydrated for dataset in map(reopened.dataset, reopened.dataset_names)
        )
        copy = Marketplace.open(tmp_path / "copy")
        assert copy.catalog() == reopened.catalog()
        assert rows_of(copy.dataset("dims").table) == rows_of(
            small_marketplace().dataset("dims").table
        )


class TestInMemoryBackend:
    def test_attach_and_persist_in_place(self):
        market = small_marketplace()
        backend = market.attach_storage()
        assert isinstance(backend, InMemoryBackend)
        market.persist()
        reopened = Marketplace.open(backend)
        assert reopened.catalog() == market.catalog()

    def test_repersist_clears_and_rewrites(self):
        market = small_marketplace()
        market.persist()  # attaches a fresh in-memory backend
        backend = market.storage
        market.remove("extra")
        market.persist()
        assert market.storage is backend
        assert Marketplace.open(backend).dataset_names == market.dataset_names


class TestAtomicity:
    def test_failed_persist_keeps_the_previous_catalog(self, tmp_path):
        market = small_marketplace()
        market.persist(tmp_path / "cat")
        before = Marketplace.open(tmp_path / "cat").catalog()

        def explode(backend):
            raise RuntimeError("simulated crash inside the atomic write")

        with pytest.raises(RuntimeError):
            small_marketplace().persist(tmp_path / "cat", extra=explode)
        assert sorted(p.name for p in tmp_path.iterdir()) == ["cat"]
        assert Marketplace.open(tmp_path / "cat").catalog() == before

    def test_persist_into_missing_directory_is_typed(self, tmp_path):
        with pytest.raises(StorageError, match="does not exist"):
            small_marketplace().persist(tmp_path / "absent" / "cat")


class TestTypedOpenErrors:
    def test_missing_catalog(self, tmp_path):
        with pytest.raises(StorageError, match="no catalog"):
            Marketplace.open(tmp_path / "absent")

    def test_garbage_file(self, tmp_path):
        path = tmp_path / "garbage"
        path.write_bytes(b"this is not any kind of database")
        with pytest.raises(StorageError, match="not a recognised catalog"):
            Marketplace.open(path)

    def test_catalog_without_a_marketplace(self, tmp_path):
        path = tmp_path / "cat"
        with create_backend("sqlite", path) as backend:
            backend.initialize()  # versioned, but no marketplace metadata
        with pytest.raises(StorageError, match="holds no marketplace"):
            Marketplace.open(path)

    def test_missing_table_blob_fails_at_hydration(self, tmp_path):
        small_marketplace().persist(tmp_path / "cat")
        market = Marketplace.open(tmp_path / "cat")
        market.storage.delete(NS_TABLES, "facts")
        with pytest.raises(StorageError, match="no table data"):
            market.dataset("facts").table
