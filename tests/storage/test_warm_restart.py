"""Warm restarts: persisted offline state makes ``build_offline`` free.

``DANCE.persist`` stores the JI edge weights, discovered FDs, and per-instance
content fingerprints; a process that reopens the catalog and rebuilds the
offline phase must adopt every weight (zero JI computations, zero edge
recomputes) and serve acquisitions bit-identical to the cold run.  Adoption is
fingerprint-guarded: any change to an instance's data invalidates exactly the
entries that touch it, never correctness.
"""

from __future__ import annotations

import pytest

from repro.core.config import DanceConfig
from repro.core.dance import DANCE
from repro.marketplace.market import Marketplace
from repro.marketplace.shopper import AcquisitionRequest
from repro.relational import backend as columnar_backend
from repro.relational.table import Table
from repro.search.mcmc import MCMCConfig
from repro.storage import NS_TABLES, duckdb_available
from repro.storage import serialize as storage_serialize

from tests.storage.test_marketplace_persist import small_marketplace

KINDS = ["sqlite"] + (["duckdb"] if duckdb_available() else [])

REQUEST = AcquisitionRequest(
    source_attributes=["measure"], target_attributes=["label"], budget=1e9
)


def config() -> DanceConfig:
    return DanceConfig(sampling_rate=1.0, mcmc=MCMCConfig(iterations=40, seed=0))


def cold_dance() -> DANCE:
    dance = DANCE(small_marketplace(), config())
    dance.build_offline()
    return dance


def weight_map(graph) -> dict:
    return {(edge.left, edge.right): dict(edge.weights) for edge in graph.edges()}


@pytest.mark.parametrize("kind", KINDS)
class TestZeroRecomputeRestart:
    def test_warm_build_adopts_every_edge(self, tmp_path, kind):
        cold = cold_dance()
        cold.persist(tmp_path / "cat", kind=kind)

        warm = DANCE(Marketplace.open(tmp_path / "cat"), config())
        warm.build_offline()
        assert warm.join_graph.ji_computations == 0
        assert warm.join_graph.edge_recomputes == 0
        assert weight_map(warm.join_graph) == weight_map(cold.join_graph)

    def test_fds_are_adopted_not_rediscovered(self, tmp_path, kind):
        cold = cold_dance()
        cold.persist(tmp_path / "cat", kind=kind)
        warm = DANCE(Marketplace.open(tmp_path / "cat"), config())
        warm.build_offline()
        assert warm.fds == cold.fds

    def test_acquisitions_are_bit_identical(self, tmp_path, kind):
        cold = cold_dance()
        expected = cold.acquire(REQUEST)
        cold.persist(tmp_path / "cat", kind=kind)

        warm = DANCE(Marketplace.open(tmp_path / "cat"), config())
        warm.build_offline()
        served = warm.acquire(REQUEST)
        assert served.estimated_correlation == expected.estimated_correlation
        assert served.sql() == expected.sql()


class TestFingerprintGuard:
    def test_changed_instance_invalidates_only_its_edges(self, tmp_path):
        cold = cold_dance()
        total_edges = len(cold.join_graph.edges())
        touching_extra = sum(
            1 for edge in cold.join_graph.edges() if "extra" in (edge.left, edge.right)
        )
        cold.persist(tmp_path / "cat")

        # Overwrite one instance's payload behind the catalog's back: the
        # stored fingerprint no longer matches, so its JI entries must not
        # be adopted — but everything else still is.
        market = Marketplace.open(tmp_path / "cat")
        tampered = Table.from_rows(
            "extra", ["bad_key", "bonus"], [(i % 5, float(i * 3)) for i in range(9)]
        )
        market.storage.put(
            NS_TABLES, "extra", storage_serialize.table_to_blob(tampered)
        )
        market.storage.delete("encodings", "extra")
        market.dataset("extra")._entry["num_rows"] = len(tampered)

        warm = DANCE(market, config())
        warm.build_offline()
        assert 0 < warm.join_graph.edge_recomputes <= touching_extra
        assert len(warm.join_graph.edges()) == total_edges

    def test_offline_state_for_other_data_warms_nothing(self, tmp_path):
        cold_dance().persist(tmp_path / "cat")
        # A scratch-built marketplace with *different* tables attached to the
        # same catalog: every fingerprint misses, the build is simply cold.
        market = small_marketplace()
        market.remove("extra")
        market.host(
            Table.from_rows("extra", ["bad_key", "bonus"], [(1, 2.0), (2, 3.0)])
        )
        market.attach_storage(path=tmp_path / "cat")
        dance = DANCE(market, config())
        dance.build_offline()
        assert dance.join_graph.ji_computations > 0


@pytest.mark.skipif(
    not columnar_backend.numpy_available(), reason="numpy is not installed"
)
class TestCrossColumnarBackendRestart:
    def test_numpy_catalog_reopens_bit_identically_under_python(self, tmp_path):
        with columnar_backend.use_backend("numpy"):
            cold = cold_dance()
            expected = cold.acquire(REQUEST)
            cold.persist(tmp_path / "cat")
        with columnar_backend.use_backend("python"):
            warm = DANCE(Marketplace.open(tmp_path / "cat"), config())
            warm.build_offline()
            assert warm.join_graph.edge_recomputes == 0
            served = warm.acquire(REQUEST)
        assert served.estimated_correlation == expected.estimated_correlation
        assert served.sql() == expected.sql()
