"""Tests for controlled inconsistency injection."""

from __future__ import annotations

import random

import pytest

from repro.exceptions import QualityError
from repro.quality.dirty import inject_inconsistency, inject_inconsistency_multi
from repro.quality.fd import FunctionalDependency
from repro.quality.measure import instance_quality
from repro.relational.table import Table


@pytest.fixture
def clean_table() -> Table:
    rows = [(f"g{i % 5}", f"v{i % 5}", i) for i in range(100)]
    return Table.from_rows("clean", ["grp", "val", "idx"], rows)


@pytest.fixture
def fd_grp_val() -> FunctionalDependency:
    return FunctionalDependency("grp", "val")


class TestInjection:
    def test_quality_drops_by_roughly_the_rate(self, clean_table, fd_grp_val):
        dirty = inject_inconsistency(clean_table, fd_grp_val, 0.3, rng=1)
        quality = instance_quality(dirty, fd_grp_val)
        assert quality == pytest.approx(0.7, abs=0.1)

    def test_zero_rate_is_a_noop(self, clean_table, fd_grp_val):
        assert inject_inconsistency(clean_table, fd_grp_val, 0.0) is clean_table

    def test_schema_and_size_preserved(self, clean_table, fd_grp_val):
        dirty = inject_inconsistency(clean_table, fd_grp_val, 0.2, rng=2)
        assert dirty.schema == clean_table.schema
        assert len(dirty) == len(clean_table)

    def test_only_rhs_column_changes(self, clean_table, fd_grp_val):
        dirty = inject_inconsistency(clean_table, fd_grp_val, 0.2, rng=3)
        assert dirty.column("grp") == clean_table.column("grp")
        assert dirty.column("idx") == clean_table.column("idx")
        assert dirty.column("val") != clean_table.column("val")

    def test_deterministic_with_same_seed(self, clean_table, fd_grp_val):
        first = inject_inconsistency(clean_table, fd_grp_val, 0.2, rng=7)
        second = inject_inconsistency(clean_table, fd_grp_val, 0.2, rng=7)
        assert first.column("val") == second.column("val")

    def test_invalid_rate_rejected(self, clean_table, fd_grp_val):
        with pytest.raises(QualityError):
            inject_inconsistency(clean_table, fd_grp_val, 1.5)

    def test_inapplicable_fd_rejected(self, clean_table):
        with pytest.raises(QualityError):
            inject_inconsistency(clean_table, FunctionalDependency("grp", "missing"), 0.1)

    def test_empty_table_is_noop(self, fd_grp_val):
        empty = Table.empty("t", ["grp", "val"])
        assert inject_inconsistency(empty, fd_grp_val, 0.5) is empty

    def test_numeric_rhs_can_be_corrupted(self):
        rows = [("a", 1)] * 10
        table = Table.from_rows("t", ["k", "v"], rows)
        dirty = inject_inconsistency(table, FunctionalDependency("k", "v"), 0.3, rng=0)
        assert instance_quality(dirty, FunctionalDependency("k", "v")) < 1.0

    def test_accepts_random_instance(self, clean_table, fd_grp_val):
        dirty = inject_inconsistency(clean_table, fd_grp_val, 0.1, rng=random.Random(5))
        assert len(dirty) == len(clean_table)


class TestMultiFdInjection:
    def test_rate_split_across_fds(self, clean_table):
        fds = [FunctionalDependency("grp", "val"), FunctionalDependency("grp", "idx")]
        dirty = inject_inconsistency_multi(clean_table, fds, 0.4, rng=4)
        q_val = instance_quality(dirty, fds[0])
        q_idx = instance_quality(dirty, fds[1])
        assert q_val < 1.0
        assert q_idx < 1.0

    def test_no_fds_is_noop(self, clean_table):
        assert inject_inconsistency_multi(clean_table, [], 0.4) is clean_table
