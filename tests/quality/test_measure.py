"""Tests for the quality measures Q(D, F) and Q(D) (Definitions 2.2 / 2.3, Example 2.2)."""

from __future__ import annotations

import pytest

from repro.quality.fd import FunctionalDependency
from repro.quality.measure import (
    correct_records,
    instance_quality,
    join_quality,
    quality_of_tables,
    violating_records,
)
from repro.relational.joins import inner_join
from repro.relational.table import Table


@pytest.fixture
def paper_d1() -> Table:
    """A compressed version of the paper's Table 3(a): FD A -> B, quality 0.75.

    Twelve majority rows carry B = b1 with C values that never match D2, while
    the four minority rows (b2/b3) carry the C values c1..c3 that do match D2.
    """
    rows = [("a1", "b1", f"c{i}") for i in range(10, 22)]  # 12 correct rows, unmatched C
    rows += [("a1", "b2", "c1"), ("a1", "b2", "c2"), ("a1", "b3", "c3"), ("a1", "b3", "c3")]
    return Table.from_rows("d1", ["A", "B", "C"], rows)


@pytest.fixture
def paper_d2() -> Table:
    """The paper's Table 3(b): FD D -> E, quality 0.6."""
    rows = [
        ("c1", "d1", "e1"),
        ("c1", "d1", "e1"),
        ("c2", "d1", "e2"),
        ("c3", "d1", "e2"),
        ("c4", "d1", "e2"),
    ]
    return Table.from_rows("d2", ["C", "D", "E"], rows)


class TestInstanceQuality:
    def test_paper_example_2_1(self, example_d, fd_a_b):
        assert instance_quality(example_d, fd_a_b) == pytest.approx(0.6)
        assert correct_records(example_d, fd_a_b) == {0, 1, 4}

    def test_clean_table_has_quality_one(self):
        table = Table.from_rows("t", ["A", "B"], [("a", "x"), ("a", "x"), ("b", "y")])
        assert instance_quality(table, FunctionalDependency("A", "B")) == 1.0

    def test_empty_table_has_quality_one(self):
        table = Table.empty("t", ["A", "B"])
        assert instance_quality(table, FunctionalDependency("A", "B")) == 1.0

    def test_inapplicable_fd_counts_everything_correct(self, example_d):
        fd = FunctionalDependency("A", "Z")
        assert instance_quality(example_d, fd) == 1.0

    def test_violating_records_complement(self, example_d, fd_a_b):
        assert violating_records(example_d, fd_a_b) == {2, 3}

    def test_d2_quality(self, paper_d2):
        assert instance_quality(paper_d2, FunctionalDependency("D", "E")) == pytest.approx(0.6)


class TestJoinQuality:
    def test_join_changes_quality(self, paper_d1, paper_d2):
        """High-quality instances can become low-quality after join (Example 2.2)."""
        fd_ab = FunctionalDependency("A", "B")
        fd_de = FunctionalDependency("D", "E")
        q1 = instance_quality(paper_d1, fd_ab)
        q2 = instance_quality(paper_d2, fd_de)
        joined = inner_join(paper_d1, paper_d2)
        q_joined = join_quality(joined, [fd_ab, fd_de])
        assert q1 == pytest.approx(0.75)
        assert q2 == pytest.approx(0.6)
        # the joined result keeps only C values c1..c3, where the B values flip
        # to b2/b3-dominated and D->E splits, so quality drops below both inputs
        assert q_joined == pytest.approx(0.2)
        assert q_joined < min(q1, q2)

    def test_intersection_of_correct_sets(self):
        rows = [("a", "x", "p", "u"), ("a", "x", "p", "v"), ("a", "y", "q", "u")]
        table = Table.from_rows("t", ["A", "B", "C", "D"], rows)
        fd1 = FunctionalDependency("A", "B")  # correct rows {0, 1}
        fd2 = FunctionalDependency("C", "D")  # correct rows {0 or 1} ∪ {2}
        quality = join_quality(table, [fd1, fd2])
        assert 0.0 < quality < 1.0

    def test_no_applicable_fds_means_quality_one(self, example_d):
        assert join_quality(example_d, [FunctionalDependency("X", "Y")]) == 1.0

    def test_empty_fd_list(self, example_d):
        assert join_quality(example_d, []) == 1.0

    def test_quality_of_tables_joins_first(self, paper_d1, paper_d2):
        fds = [FunctionalDependency("A", "B"), FunctionalDependency("D", "E")]
        direct = join_quality(inner_join(paper_d1, paper_d2), fds)
        assert quality_of_tables([paper_d1, paper_d2], fds) == pytest.approx(direct)

    def test_quality_of_single_table(self, example_d, fd_a_b):
        assert quality_of_tables([example_d], [fd_a_b]) == pytest.approx(0.6)

    def test_quality_of_no_tables(self):
        assert quality_of_tables([], []) == 1.0

    def test_disjoint_correct_sets_give_zero(self):
        rows = [("a", "x", "p", "u"), ("a", "y", "q", "u"), ("a", "y", "q", "v")]
        # A->B correct = the two a/y rows {1,2}; C->D on q: largest is {1} or {2}...
        table = Table.from_rows("t", ["A", "B", "C", "D"], rows)
        quality = join_quality(
            table, [FunctionalDependency("A", "B"), FunctionalDependency("C", "D")]
        )
        assert 0.0 <= quality <= 1.0
