"""Tests for TANE-style AFD discovery."""

from __future__ import annotations

import pytest

from repro.exceptions import QualityError
from repro.quality.discovery import count_afds_per_table, discover_afds
from repro.quality.fd import FunctionalDependency
from repro.relational.table import Table


@pytest.fixture
def employee_table() -> Table:
    """dept -> manager holds exactly; name is a key; salary determined by nothing."""
    rows = [
        ("alice", "eng", "dan", 100),
        ("bob", "eng", "dan", 110),
        ("carol", "sales", "eve", 90),
        ("dave", "sales", "eve", 95),
        ("erin", "hr", "fay", 80),
    ]
    return Table.from_rows("employees", ["name", "dept", "manager", "salary"], rows)


class TestDiscovery:
    def test_finds_planted_fd(self, employee_table):
        fds = discover_afds(employee_table, max_violation=0.0, max_lhs_size=1)
        assert FunctionalDependency("dept", "manager") in fds
        assert FunctionalDependency("manager", "dept") in fds

    def test_key_determines_everything(self, employee_table):
        fds = discover_afds(employee_table, max_violation=0.0, max_lhs_size=1)
        rhs_of_name = {fd.rhs for fd in fds if fd.lhs == ("name",)}
        assert rhs_of_name == {"dept", "manager", "salary"}

    def test_minimality_pruning(self, employee_table):
        fds = discover_afds(employee_table, max_violation=0.0, max_lhs_size=2)
        # dept -> manager is minimal, so (dept, salary) -> manager must not be reported
        assert FunctionalDependency(("dept", "salary"), "manager") not in fds
        assert FunctionalDependency("dept", "manager") in fds

    def test_approximate_threshold(self, zip_table):
        strict = discover_afds(zip_table, max_violation=0.0, max_lhs_size=1)
        relaxed = discover_afds(zip_table, max_violation=0.3, max_lhs_size=1)
        assert FunctionalDependency("zipcode", "state") not in strict
        assert FunctionalDependency("zipcode", "state") in relaxed

    def test_empty_table(self):
        assert discover_afds(Table.empty("t", ["a", "b"])) == []

    def test_restricted_attributes(self, employee_table):
        fds = discover_afds(
            employee_table, max_violation=0.0, max_lhs_size=1, attributes=["dept", "manager"]
        )
        assert all(set(fd.attributes) <= {"dept", "manager"} for fd in fds)

    def test_invalid_parameters(self, employee_table):
        with pytest.raises(QualityError):
            discover_afds(employee_table, max_violation=1.0)
        with pytest.raises(QualityError):
            discover_afds(employee_table, max_lhs_size=0)

    def test_deterministic_order(self, employee_table):
        first = discover_afds(employee_table, max_violation=0.0, max_lhs_size=2)
        second = discover_afds(employee_table, max_violation=0.0, max_lhs_size=2)
        assert first == second


class TestCountPerTable:
    def test_counts(self, employee_table, zip_table):
        counts = count_afds_per_table(
            [employee_table, zip_table], max_violation=0.0, max_lhs_size=1
        )
        assert set(counts) == {"employees", "d1_zip"}
        assert counts["employees"] > 0
