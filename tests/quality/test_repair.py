"""Tests for FD repair and the clean-before-join counterexample."""

from __future__ import annotations

import pytest

from repro.quality.dirty import inject_inconsistency
from repro.quality.fd import FunctionalDependency
from repro.quality.measure import instance_quality, join_quality
from repro.quality.repair import majority_repair, repair_all, repair_report
from repro.relational.joins import inner_join
from repro.relational.table import Table


@pytest.fixture
def dirty_table() -> Table:
    rows = [(f"g{i % 4}", f"v{i % 4}", i) for i in range(80)]
    table = Table.from_rows("t", ["grp", "val", "idx"], rows)
    return inject_inconsistency(table, FunctionalDependency("grp", "val"), 0.3, rng=3)


class TestMajorityRepair:
    def test_repair_restores_exact_fd(self, dirty_table):
        fd = FunctionalDependency("grp", "val")
        assert instance_quality(dirty_table, fd) < 1.0
        repaired = majority_repair(dirty_table, fd)
        assert instance_quality(repaired, fd) == 1.0

    def test_repair_only_touches_rhs(self, dirty_table):
        repaired = majority_repair(dirty_table, FunctionalDependency("grp", "val"))
        assert repaired.column("grp") == dirty_table.column("grp")
        assert repaired.column("idx") == dirty_table.column("idx")

    def test_repair_keeps_majority_values(self):
        rows = [("a", "x"), ("a", "x"), ("a", "y"), ("b", "z")]
        table = Table.from_rows("t", ["k", "v"], rows)
        repaired = majority_repair(table, FunctionalDependency("k", "v"))
        assert repaired.column("v") == ["x", "x", "x", "z"]

    def test_tie_broken_deterministically(self):
        rows = [("a", "x"), ("a", "y")]
        table = Table.from_rows("t", ["k", "v"], rows)
        first = majority_repair(table, FunctionalDependency("k", "v"))
        second = majority_repair(table, FunctionalDependency("k", "v"))
        assert first.column("v") == second.column("v")
        assert len(set(first.column("v"))) == 1

    def test_null_lhs_rows_untouched(self):
        rows = [(None, "x"), (None, "y"), ("a", "x"), ("a", "y"), ("a", "x")]
        table = Table.from_rows("t", ["k", "v"], rows)
        repaired = majority_repair(table, FunctionalDependency("k", "v"))
        assert repaired.column("v")[:2] == ["x", "y"]
        assert repaired.column("v")[2:] == ["x", "x", "x"]

    def test_inapplicable_fd_is_noop(self, dirty_table):
        assert majority_repair(dirty_table, FunctionalDependency("grp", "zzz")) is dirty_table

    def test_empty_table_is_noop(self):
        empty = Table.empty("t", ["k", "v"])
        assert majority_repair(empty, FunctionalDependency("k", "v")) is empty


class TestRepairAll:
    def test_multiple_fds(self):
        rows = [("a", "x", "p"), ("a", "y", "p"), ("a", "x", "q"), ("b", "z", "r")]
        table = Table.from_rows("t", ["k", "v", "w"], rows)
        fds = [FunctionalDependency("k", "v"), FunctionalDependency("k", "w")]
        repaired = repair_all(table, fds)
        for fd in fds:
            assert instance_quality(repaired, fd) == 1.0

    def test_repair_report_counts_violations(self, dirty_table):
        fd = FunctionalDependency("grp", "val")
        report = repair_report(dirty_table, [fd])
        assert report["total_rewrites"] > 0
        assert report["per_fd"][str(fd)] == report["total_rewrites"]


class TestCleanBeforeJoinCounterexample:
    def test_repaired_instances_can_still_join_dirty(self):
        """Example 2.2 of the paper: per-instance cleaning does not guarantee a
        high-quality join result, so quality must be measured after the join."""
        d1_rows = [("a1", "b1", f"c{i}") for i in range(10, 22)]
        d1_rows += [("a1", "b2", "c1"), ("a1", "b2", "c2"), ("a1", "b3", "c3"), ("a1", "b3", "c3")]
        d1 = Table.from_rows("d1", ["A", "B", "C"], d1_rows)
        d2_rows = [("c1", "d1", "e1"), ("c1", "d1", "e1"), ("c2", "d1", "e2"),
                   ("c3", "d1", "e2"), ("c4", "d1", "e2")]
        d2 = Table.from_rows("d2", ["C", "D", "E"], d2_rows)

        fd_ab = FunctionalDependency("A", "B")
        fd_de = FunctionalDependency("D", "E")

        cleaned_d1 = majority_repair(d1, fd_ab)
        cleaned_d2 = majority_repair(d2, fd_de)
        assert instance_quality(cleaned_d1, fd_ab) == 1.0
        assert instance_quality(cleaned_d2, fd_de) == 1.0

        # joining the *cleaned* instances restricts D1 to its minority C values,
        # which after repair all collapsed to the majority B value — but D2's E
        # values still split, so the joined quality is below 1 even though each
        # input was repaired to perfection ... or the join keeps quality 1 but
        # differs from the truthful (uncleaned, then measured) quality.
        joined_clean = inner_join(cleaned_d1, cleaned_d2)
        joined_dirty = inner_join(d1, d2)
        quality_clean_first = join_quality(joined_clean, [fd_ab, fd_de])
        quality_measured_on_join = join_quality(joined_dirty, [fd_ab, fd_de])
        # cleaning first hides the inconsistency that the shopper would actually
        # receive: the clean-first estimate is higher than the real joined quality
        assert quality_clean_first > quality_measured_on_join
