"""Tests for FunctionalDependency semantics."""

from __future__ import annotations

import pytest

from repro.exceptions import QualityError
from repro.quality.fd import FunctionalDependency
from repro.relational.table import Table


class TestConstruction:
    def test_string_lhs_becomes_tuple(self):
        fd = FunctionalDependency("a", "b")
        assert fd.lhs == ("a",)
        assert fd.rhs == "b"

    def test_multi_attribute_lhs(self):
        fd = FunctionalDependency(("a", "b"), "c")
        assert fd.attributes == ("a", "b", "c")

    def test_empty_lhs_rejected(self):
        with pytest.raises(QualityError):
            FunctionalDependency((), "b")

    def test_empty_rhs_rejected(self):
        with pytest.raises(QualityError):
            FunctionalDependency(("a",), "")

    def test_trivial_fd_rejected(self):
        with pytest.raises(QualityError):
            FunctionalDependency(("a", "b"), "a")

    def test_str_representation(self):
        assert str(FunctionalDependency(("a", "b"), "c")) == "a,b -> c"

    def test_hashable_and_equal(self):
        assert FunctionalDependency("a", "b") == FunctionalDependency(("a",), "b")
        assert len({FunctionalDependency("a", "b"), FunctionalDependency("a", "b")}) == 1

    def test_decompose(self):
        fds = FunctionalDependency.decompose(("x",), ["y", "z"])
        assert [str(fd) for fd in fds] == ["x -> y", "x -> z"]


class TestSemantics:
    def test_applies_to(self, zip_table):
        fd = FunctionalDependency("zipcode", "state")
        assert fd.applies_to(zip_table)
        assert not FunctionalDependency("zipcode", "country").applies_to(zip_table)

    def test_holds_exactly_false_on_dirty_table(self, zip_table):
        assert not FunctionalDependency("zipcode", "state").holds_exactly(zip_table)

    def test_holds_exactly_true_on_clean_table(self):
        table = Table.from_rows("t", ["z", "s"], [("1", "NJ"), ("1", "NJ"), ("2", "NY")])
        assert FunctionalDependency("z", "s").holds_exactly(table)

    def test_holds_approximately(self, zip_table):
        fd = FunctionalDependency("zipcode", "state")
        # 3 of 4 rows are correct -> quality 0.75
        assert fd.holds_approximately(zip_table, 0.7)
        assert not fd.holds_approximately(zip_table, 0.9)

    def test_invalid_theta_rejected(self, zip_table):
        fd = FunctionalDependency("zipcode", "state")
        with pytest.raises(QualityError):
            fd.holds_approximately(zip_table, 0.0)
        with pytest.raises(QualityError):
            fd.holds_approximately(zip_table, 1.5)

    def test_missing_attribute_means_not_holding(self, zip_table):
        assert not FunctionalDependency("zipcode", "country").holds_exactly(zip_table)
