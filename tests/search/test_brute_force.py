"""Tests for the LP / GP exhaustive baselines."""

from __future__ import annotations

import pytest

from repro.exceptions import InfeasibleAcquisitionError
from repro.graph.join_graph import JoinGraph
from repro.quality.fd import FunctionalDependency
from repro.relational.table import Table
from repro.sampling.correlated import CorrelatedSampler
from repro.search.brute_force import global_optimal, local_optimal


@pytest.fixture
def full_tables() -> dict[str, Table]:
    orders = Table.from_rows(
        "orders", ["custkey", "totalprice"], [(i % 6, float(i % 6) * 50 + i % 2) for i in range(60)]
    )
    customers = Table.from_rows(
        "customers", ["custkey", "nationkey", "segment"], [(i, i % 3, f"s{i % 3}") for i in range(6)]
    )
    nations = Table.from_rows("nations", ["nationkey", "nname"], [(i, f"n{i}") for i in range(3)])
    return {"orders": orders, "customers": customers, "nations": nations}


@pytest.fixture
def sampled_graph(full_tables) -> JoinGraph:
    sampler = CorrelatedSampler(rate=0.8, seed=0)
    samples = {
        name: sampler.sample(table, [a for a in table.schema.names if a.endswith("key")], name=name)
        for name, table in full_tables.items()
    }
    return JoinGraph(samples, source_instances=["orders"])


@pytest.fixture
def fds() -> list[FunctionalDependency]:
    return [FunctionalDependency("nationkey", "nname")]


class TestLocalOptimal:
    def test_finds_feasible_candidate(self, sampled_graph, fds):
        result = local_optimal(sampled_graph, ["totalprice"], ["nname"], fds, budget=1e9)
        assert result.feasible
        assert result.candidates_evaluated > 0
        assert result.feasible_candidates > 0

    def test_zero_budget_is_infeasible(self, sampled_graph, fds):
        result = local_optimal(sampled_graph, ["totalprice"], ["nname"], fds, budget=0.0)
        assert not result.feasible
        with pytest.raises(InfeasibleAcquisitionError):
            result.require_feasible()

    def test_optimum_at_least_any_candidate(self, sampled_graph, fds):
        from repro.search.candidates import enumerate_target_graphs

        result = local_optimal(sampled_graph, ["totalprice"], ["nname"], fds, budget=1e9)
        samples = {name: sampled_graph.sample(name) for name in sampled_graph.instance_names}
        best = result.best_evaluation.correlation
        for candidate in enumerate_target_graphs(sampled_graph, ["totalprice"], ["nname"]):
            evaluation = candidate.evaluate(
                samples, ["totalprice"], ["nname"], fds, sampled_graph.pricing
            )
            assert best >= evaluation.correlation - 1e-9


class TestGlobalOptimal:
    def test_evaluates_on_full_data(self, sampled_graph, full_tables, fds):
        result = global_optimal(
            sampled_graph, full_tables, ["totalprice"], ["nname"], fds, budget=1e9
        )
        assert result.feasible
        # the correlation is measured on full data (60 joined rows), so it uses
        # every order row, not just the sampled ones
        assert result.best_evaluation.join_rows == 60

    def test_missing_full_table_rejected(self, sampled_graph, full_tables, fds):
        incomplete = dict(full_tables)
        del incomplete["nations"]
        with pytest.raises(InfeasibleAcquisitionError):
            global_optimal(sampled_graph, incomplete, ["totalprice"], ["nname"], fds, budget=1e9)

    def test_gp_at_least_as_good_as_lp_choice_on_full_data(
        self, sampled_graph, full_tables, fds
    ):
        lp = local_optimal(sampled_graph, ["totalprice"], ["nname"], fds, budget=1e9)
        gp = global_optimal(
            sampled_graph, full_tables, ["totalprice"], ["nname"], fds, budget=1e9
        )
        lp_on_full = lp.best_graph.evaluate(
            full_tables, ["totalprice"], ["nname"], fds, sampled_graph.pricing
        )
        assert gp.best_evaluation.correlation >= lp_on_full.correlation - 1e-9
