"""Tests for candidate generation: paths, initial target graphs, enumeration."""

from __future__ import annotations

import pytest

from repro.exceptions import SearchError
from repro.graph.join_graph import JoinGraph
from repro.graph.steiner import minimal_weight_igraph
from repro.relational.table import Table
from repro.search.candidates import (
    build_initial_target_graph,
    candidate_paths,
    enumerate_target_graphs,
    terminal_instances,
)


@pytest.fixture
def chain_graph() -> JoinGraph:
    orders = Table.from_rows(
        "orders", ["custkey", "totalprice"], [(i % 5, float(i)) for i in range(30)]
    )
    customers = Table.from_rows(
        "customers", ["custkey", "nationkey", "segment"], [(i, i % 3, f"s{i % 2}") for i in range(5)]
    )
    nations = Table.from_rows("nations", ["nationkey", "nname"], [(i, f"n{i}") for i in range(3)])
    return JoinGraph(
        [orders, customers, nations],
        source_instances=["orders"],
    )


class TestTerminalInstances:
    def test_source_prefers_owned_instances(self, chain_graph):
        sources, targets = terminal_instances(chain_graph, ["totalprice"], ["nname"])
        assert sources == ["orders"]
        assert targets == ["nations"]

    def test_missing_attribute_raises(self, chain_graph):
        with pytest.raises(SearchError):
            terminal_instances(chain_graph, ["missing"], ["nname"])
        with pytest.raises(SearchError):
            terminal_instances(chain_graph, ["totalprice"], ["missing"])

    def test_shared_instance_reused(self, chain_graph):
        sources, targets = terminal_instances(chain_graph, ["totalprice"], ["nname", "nationkey"])
        # nationkey appears in customers and nations; nations is already chosen
        assert targets == ["nations"]


class TestCandidatePaths:
    def test_paths_connect_source_to_target_instances(self, chain_graph):
        paths = candidate_paths(chain_graph, ["totalprice"], ["nname"])
        assert ["orders", "customers", "nations"] in paths

    def test_no_source_attributes_still_yields_paths(self, chain_graph):
        paths = candidate_paths(chain_graph, [], ["nname"])
        assert any(path[-1] == "nations" or path[0] == "nations" for path in paths)

    def test_max_paths_cap(self, chain_graph):
        paths = candidate_paths(chain_graph, ["totalprice"], ["nname"], max_paths=1)
        assert len(paths) == 1

    def test_single_instance_path_when_attributes_colocated(self, chain_graph):
        paths = candidate_paths(chain_graph, ["custkey"], ["segment"])
        assert ["customers"] in paths


class TestInitialTargetGraph:
    def test_covers_requested_attributes(self, chain_graph):
        igraph = minimal_weight_igraph(chain_graph, ["orders", "nations"], rng=0)
        graph = build_initial_target_graph(chain_graph, igraph, ["totalprice"], ["nname"])
        provided = set()
        for name in graph.nodes:
            provided |= set(graph.projections[name])
        assert {"totalprice", "nname"} <= provided

    def test_edges_use_lightest_join_attributes(self, chain_graph):
        igraph = minimal_weight_igraph(chain_graph, ["orders", "nations"], rng=0)
        graph = build_initial_target_graph(chain_graph, igraph, ["totalprice"], ["nname"])
        for parent, child, attrs in graph.edge_pairs():
            assert attrs == chain_graph.edge(parent, child).best_join_attributes

    def test_source_instances_carried_over(self, chain_graph):
        igraph = minimal_weight_igraph(chain_graph, ["orders", "nations"], rng=0)
        graph = build_initial_target_graph(chain_graph, igraph, ["totalprice"], ["nname"])
        assert "orders" in graph.source_instances

    def test_joinable_on_samples(self, chain_graph):
        igraph = minimal_weight_igraph(chain_graph, ["orders", "nations"], rng=0)
        graph = build_initial_target_graph(chain_graph, igraph, ["totalprice"], ["nname"])
        tables = {name: chain_graph.sample(name) for name in graph.nodes}
        joined = graph.joined_table(tables)
        assert len(joined) > 0


class TestEnumeration:
    def test_enumerates_at_least_the_natural_path(self, chain_graph):
        graphs = list(enumerate_target_graphs(chain_graph, ["totalprice"], ["nname"]))
        assert graphs
        assert any(set(g.nodes) == {"orders", "customers", "nations"} for g in graphs)

    def test_all_candidates_cover_attributes(self, chain_graph):
        for graph in enumerate_target_graphs(chain_graph, ["totalprice"], ["nname"]):
            provided = set()
            for name in graph.nodes:
                provided |= set(chain_graph.sample(name).schema.names)
            assert {"totalprice", "nname"} <= provided

    def test_caps_respected(self, chain_graph):
        graphs = list(
            enumerate_target_graphs(
                chain_graph, ["totalprice"], ["nname"], max_paths=1, max_graphs_per_path=1
            )
        )
        assert len(graphs) <= 1

    def test_single_instance_candidate(self, chain_graph):
        graphs = list(enumerate_target_graphs(chain_graph, ["custkey"], ["segment"]))
        assert any(g.length == 1 and g.nodes == ["customers"] for g in graphs)
