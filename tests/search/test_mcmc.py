"""Tests for the MCMC search (Algorithm 1)."""

from __future__ import annotations

import pytest

from repro.exceptions import InfeasibleAcquisitionError
from repro.graph.join_graph import JoinGraph
from repro.graph.steiner import minimal_weight_igraph
from repro.quality.fd import FunctionalDependency
from repro.relational.table import Table
from repro.search.candidates import build_initial_target_graph
from repro.search.mcmc import MCMCConfig, mcmc_search


@pytest.fixture
def setup():
    """A small graph with two alternative join attributes between two instances."""
    # good_key ranges over 0..9 on the fact side but the dimension only holds
    # 0..7, so the edge's join informativeness is strictly positive (some fact
    # rows have no dimension partner) and the α constraint can actually bite.
    facts = Table.from_rows(
        "facts",
        ["good_key", "bad_key", "measure"],
        [(i % 10, i % 3, float(i % 8) * 10 + i % 3) for i in range(64)],
    )
    dims = Table.from_rows(
        "dims",
        ["good_key", "bad_key", "label"],
        [(i, i % 2, f"lbl{i}") for i in range(8)],
    )
    join_graph = JoinGraph([facts, dims], source_instances=["facts"])
    igraph = minimal_weight_igraph(join_graph, ["facts", "dims"], rng=0)
    initial = build_initial_target_graph(join_graph, igraph, ["measure"], ["label"])
    tables = {"facts": facts, "dims": dims}
    fds = [FunctionalDependency("good_key", "label")]
    return join_graph, initial, tables, fds


class TestMCMCSearch:
    def test_finds_a_feasible_graph(self, setup):
        join_graph, initial, tables, fds = setup
        result = mcmc_search(
            join_graph, initial, tables, ["measure"], ["label"], fds,
            budget=1e9, config=MCMCConfig(iterations=50, seed=0),
        )
        assert result.feasible
        graph, evaluation = result.require_feasible()
        assert evaluation.correlation > 0.0
        assert result.iterations == 50

    def test_best_correlation_never_decreases_along_trace(self, setup):
        join_graph, initial, tables, fds = setup
        result = mcmc_search(
            join_graph, initial, tables, ["measure"], ["label"], fds,
            budget=1e9, config=MCMCConfig(iterations=80, seed=1, record_trace=True),
        )
        assert result.best_evaluation.correlation >= max(result.trace) - 1e-9

    def test_respects_budget_constraint(self, setup):
        join_graph, initial, tables, fds = setup
        result = mcmc_search(
            join_graph, initial, tables, ["measure"], ["label"], fds,
            budget=0.0, config=MCMCConfig(iterations=30, seed=0),
        )
        assert not result.feasible
        with pytest.raises(InfeasibleAcquisitionError):
            result.require_feasible()

    def test_respects_quality_constraint(self, setup):
        join_graph, initial, tables, fds = setup
        impossible = mcmc_search(
            join_graph, initial, tables, ["measure"], ["label"], fds,
            budget=1e9, min_quality=1.01, config=MCMCConfig(iterations=10, seed=0),
        )
        assert not impossible.feasible

    def test_respects_weight_constraint(self, setup):
        join_graph, initial, tables, fds = setup
        initial_eval = initial.evaluate(
            tables, ["measure"], ["label"], fds, join_graph.pricing
        )
        # the initial graph uses the minimum-weight join attributes, so any
        # threshold strictly below its weight rules out every candidate
        threshold = initial_eval.weight / 2 if initial_eval.weight > 0 else -0.1
        result = mcmc_search(
            join_graph, initial, tables, ["measure"], ["label"], fds,
            budget=1e9, max_weight=threshold, config=MCMCConfig(iterations=10, seed=0),
        )
        assert not result.feasible

    def test_deterministic_for_fixed_seed(self, setup):
        join_graph, initial, tables, fds = setup
        config = MCMCConfig(iterations=40, seed=3, record_trace=True)
        first = mcmc_search(
            join_graph, initial, tables, ["measure"], ["label"], fds, budget=1e9, config=config
        )
        second = mcmc_search(
            join_graph, initial, tables, ["measure"], ["label"], fds, budget=1e9, config=config
        )
        assert first.best_evaluation.correlation == second.best_evaluation.correlation
        assert first.trace == second.trace

    def test_projection_flip_proposals(self, setup):
        join_graph, initial, tables, fds = setup
        config = MCMCConfig(iterations=60, seed=2, projection_flip_probability=0.5)
        result = mcmc_search(
            join_graph, initial, tables, ["measure"], ["label"], fds, budget=1e9, config=config
        )
        assert result.feasible

    def test_zero_iterations_keeps_initial(self, setup):
        join_graph, initial, tables, fds = setup
        result = mcmc_search(
            join_graph, initial, tables, ["measure"], ["label"], fds,
            budget=1e9, config=MCMCConfig(iterations=0, seed=0),
        )
        assert result.feasible
        assert result.best_graph.nodes == initial.nodes

    def test_evaluation_cache_reports_hit_rate(self, setup):
        """Revisited candidates are served from the memo table and counted."""
        join_graph, initial, tables, fds = setup
        result = mcmc_search(
            join_graph, initial, tables, ["measure"], ["label"], fds,
            budget=1e9, config=MCMCConfig(iterations=100, seed=0),
        )
        # Only two join-attribute choices exist, so a 100-step walk must
        # revisit previously-evaluated candidates many times.
        assert result.evaluation_cache_hits > 0
        assert result.evaluation_cache_misses >= 1
        assert 0.0 < result.evaluation_cache_hit_rate < 1.0
        assert result.evaluation_cache_hit_rate == pytest.approx(
            result.evaluation_cache_hits
            / (result.evaluation_cache_hits + result.evaluation_cache_misses)
        )

    def test_stochastic_hook_disables_memoisation(self, setup):
        """Evaluations whose re-sampling hook fired must not be memoised.

        Caching a stochastic evaluation would freeze one random draw per
        candidate; with a hook that always resamples, every visit must
        re-evaluate (zero cache hits).
        """
        import random as random_module

        join_graph, initial, tables, fds = setup
        rng = random_module.Random(0)

        def always_resample(intermediate):
            return intermediate.sample_rows(0.9, rng)

        result = mcmc_search(
            join_graph, initial, tables, ["measure"], ["label"], fds,
            budget=1e9, config=MCMCConfig(iterations=40, seed=0),
            intermediate_hook=always_resample,
        )
        assert result.evaluation_cache_hits == 0
        assert result.evaluation_cache_misses > 1

    def test_noop_hook_keeps_memoisation(self, setup):
        """A hook that never alters the intermediate keeps full caching."""
        join_graph, initial, tables, fds = setup
        result = mcmc_search(
            join_graph, initial, tables, ["measure"], ["label"], fds,
            budget=1e9, config=MCMCConfig(iterations=100, seed=0),
            intermediate_hook=lambda intermediate: intermediate,
        )
        assert result.evaluation_cache_hits > 0

    def test_cached_walk_matches_uncached_evaluations(self, setup):
        """Memoised evaluations must be value-identical to fresh ones."""
        join_graph, initial, tables, fds = setup
        result = mcmc_search(
            join_graph, initial, tables, ["measure"], ["label"], fds,
            budget=1e9, config=MCMCConfig(iterations=60, seed=5),
        )
        best_graph, best_eval = result.require_feasible()
        fresh = best_graph.evaluate(
            tables, ["measure"], ["label"], fds, join_graph.pricing
        )
        assert best_eval.correlation == pytest.approx(fresh.correlation)
        assert best_eval.quality == pytest.approx(fresh.quality)
        assert best_eval.weight == pytest.approx(fresh.weight)
        assert best_eval.price == pytest.approx(fresh.price)

    def test_prefers_informative_join_attribute(self, setup):
        """With enough iterations the walk should end on the informative key.

        Joining on ``bad_key`` (2 values) collapses the dimension labels, giving
        much lower correlation than joining on ``good_key`` (8 values).
        """
        join_graph, initial, tables, fds = setup
        bad_start = initial.replace_edge(0, {"bad_key"})
        result = mcmc_search(
            join_graph, bad_start, tables, ["measure"], ["label"], fds,
            budget=1e9, config=MCMCConfig(iterations=100, seed=4),
        )
        best_graph, best_eval = result.require_feasible()
        start_eval = bad_start.evaluate(
            tables, ["measure"], ["label"], fds, join_graph.pricing
        )
        assert best_eval.correlation >= start_eval.correlation
