"""Tests for the combined two-step heuristic acquisition."""

from __future__ import annotations

import pytest

from repro.exceptions import InfeasibleAcquisitionError
from repro.graph.join_graph import JoinGraph
from repro.quality.fd import FunctionalDependency
from repro.relational.table import Table
from repro.search.acquisition import heuristic_acquisition
from repro.search.mcmc import MCMCConfig


@pytest.fixture
def chain_graph() -> JoinGraph:
    # custkey spans 0..6 on orders but only 0..4 on customers, so the
    # orders-customers edge has strictly positive join informativeness and the
    # α-threshold test below can reject the only available I-graph.
    orders = Table.from_rows(
        "orders", ["custkey", "totalprice"], [(i % 7, float(i % 5) * 100 + i % 2) for i in range(50)]
    )
    customers = Table.from_rows(
        "customers", ["custkey", "nationkey"], [(i, i % 3) for i in range(5)]
    )
    nations = Table.from_rows("nations", ["nationkey", "nname"], [(i, f"n{i}") for i in range(3)])
    unrelated = Table.from_rows("unrelated", ["foo"], [(1,)])
    return JoinGraph(
        [orders, customers, nations, unrelated], source_instances=["orders"]
    )


@pytest.fixture
def fds() -> list[FunctionalDependency]:
    return [FunctionalDependency("nationkey", "nname")]


class TestHeuristicAcquisition:
    def test_end_to_end_feasible(self, chain_graph, fds):
        result = heuristic_acquisition(
            chain_graph, ["totalprice"], ["nname"], fds,
            budget=1e9, mcmc_config=MCMCConfig(iterations=40, seed=0), rng=0,
        )
        assert result.feasible
        graph, evaluation = result.require_feasible()
        assert set(graph.nodes) == {"orders", "customers", "nations"}
        assert evaluation.correlation > 0.0
        assert result.igraph_size == 3

    def test_unreachable_target_raises(self, chain_graph, fds):
        with pytest.raises(InfeasibleAcquisitionError):
            heuristic_acquisition(
                chain_graph, ["totalprice"], ["foo"], fds, budget=1e9, rng=0
            )

    def test_alpha_threshold_enforced_in_step_one(self, chain_graph, fds):
        with pytest.raises(InfeasibleAcquisitionError):
            heuristic_acquisition(
                chain_graph, ["totalprice"], ["nname"], fds,
                budget=1e9, max_weight=0.0, rng=0,
            )

    def test_budget_infeasibility_reported_not_raised(self, chain_graph, fds):
        result = heuristic_acquisition(
            chain_graph, ["totalprice"], ["nname"], fds,
            budget=0.0, mcmc_config=MCMCConfig(iterations=10, seed=0), rng=0,
        )
        assert not result.feasible
        assert result.igraph_size == 3

    def test_missing_attribute_raises(self, chain_graph, fds):
        with pytest.raises(InfeasibleAcquisitionError):
            heuristic_acquisition(chain_graph, ["totalprice"], ["missing"], fds, budget=1e9, rng=0)

    def test_no_source_attributes(self, chain_graph, fds):
        result = heuristic_acquisition(
            chain_graph, [], ["nname"], fds,
            budget=1e9, mcmc_config=MCMCConfig(iterations=10, seed=0), rng=0,
        )
        assert result.feasible

    def test_custom_evaluation_tables(self, chain_graph, fds):
        """Evaluating on full tables (GP-style) still returns a feasible result."""
        full = {name: chain_graph.sample(name) for name in chain_graph.instance_names}
        result = heuristic_acquisition(
            chain_graph, ["totalprice"], ["nname"], fds,
            budget=1e9, evaluation_tables=full,
            mcmc_config=MCMCConfig(iterations=10, seed=0), rng=0,
        )
        assert result.feasible
