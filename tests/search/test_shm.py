"""Tests for the zero-copy shared-memory executor substrate (``repro.search.shm``).

The contracts under test: a :class:`SharedColumnStore` round-trips the encoded
columnar state bit-identically (codes, histograms, value order) — in-process
and across a real spawned interpreter, under both columnar backends; worker
sessions apply versioned deltas in place and hard-resync only on version gaps
or fingerprint changes; and every published segment is unlinked on close.
"""

from __future__ import annotations

import os
import pickle
import subprocess
import sys
import tempfile
from dataclasses import replace

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.exceptions import ReproError
from repro.graph.join_graph import JoinGraph
from repro.quality.fd import FunctionalDependency
from repro.relational import backend as relational_backend
from repro.relational.table import Table
from repro.search import shm
from repro.search.chains import ChainScheduler, shared_chain_pool
from repro.search.mcmc import MCMCConfig
from repro.search.candidates import build_initial_target_graph
from repro.graph.steiner import minimal_weight_igraph

BACKENDS = ["python"] + (["numpy"] if relational_backend.numpy_available() else [])

SRC_DIR = os.path.join(os.path.dirname(os.path.dirname(os.path.dirname(__file__))), "src")


def assert_tables_identical(original: Table, rebuilt: Table) -> None:
    assert rebuilt.name == original.name
    assert rebuilt.schema.names == original.schema.names
    assert list(rebuilt.iter_rows()) == list(original.iter_rows())
    for key, encoding in original._encodings.items():
        copy = rebuilt._encodings[key]
        assert list(shm._as_code_iter(copy.codes)) == list(
            shm._as_code_iter(encoding.codes)
        )
        assert copy.values == encoding.values  # value order is part of the contract
        assert list(copy.counts()) == list(encoding.counts())


@pytest.mark.parametrize("backend", BACKENDS)
class TestRoundTripInProcess:
    def test_codes_values_and_counts_round_trip(self, backend):
        with relational_backend.use_backend(backend):
            facts = Table.from_rows(
                "facts",
                ["good_key", "bad_key", "measure"],
                [(i % 10, i % 3, float(i % 8) * 10 + i % 3) for i in range(64)],
            )
            # Force the multi-column key path and the histogram caches so the
            # export carries them (shared codes objects must dedup too).
            facts.encoded_key(["good_key", "bad_key"])
            for column in facts.schema.names:
                facts.encoded(column).counts()
            store = shm.SharedColumnStore("test-roundtrip")
            try:
                manifest = store.export_tables(
                    {"facts": facts}, version=0, kind="base", meta={"k": "v"}
                )
                attached, meta, attachments = shm.attach_tables(manifest)
                try:
                    assert meta == {"k": "v"}
                    assert_tables_identical(facts, attached["facts"])
                finally:
                    attached.clear()
                    for segment in attachments:
                        try:
                            segment.close()
                        except BufferError:
                            pass
            finally:
                store.close()

    def test_fingerprint_mismatch_is_rejected(self, backend):
        with relational_backend.use_backend(backend):
            table = Table.from_rows("t", ["a"], [(1,), (2,), (1,)])
            store = shm.SharedColumnStore("test-corrupt")
            try:
                manifest = store.export_tables(
                    {"t": table}, version=0, kind="base", meta={}
                )
                forged = replace(
                    manifest,
                    meta=replace(manifest.meta, digest="00" * 16),
                )
                with pytest.raises(ReproError, match="fingerprint"):
                    shm.attach_tables(forged)
            finally:
                store.close()


# The spawned child re-attaches the manifest from nothing but segment names
# and pickles the rebuilt tables back — proving a fresh interpreter (no
# inherited objects, fork or not) sees bit-identical state.
CHILD_SCRIPT = """
import pickle, sys
from repro.search import shm

with open(sys.argv[1], "rb") as fh:
    manifest = pickle.load(fh)
tables, meta, attachments = shm.attach_tables(manifest)
payload = {
    name: {
        "rows": list(table.iter_rows()),
        "encodings": {
            repr(key): (
                list(shm._as_code_iter(encoding.codes)),
                encoding.values,
                list(encoding.counts()),
            )
            for key, encoding in table._encodings.items()
        },
    }
    for name, table in tables.items()
}
with open(sys.argv[2], "wb") as fh:
    pickle.dump({"meta": meta, "tables": payload}, fh)
tables.clear()
for segment in attachments:
    try:
        segment.close()
    except BufferError:
        pass
"""


@st.composite
def column_values(draw, num_rows):
    kind = draw(st.sampled_from(["int", "float", "text"]))
    if kind == "int":
        element = st.integers(-3, 3)
    elif kind == "float":
        element = st.floats(allow_nan=False, width=64)
    else:
        element = st.text(alphabet="abxyz", max_size=3)
    return draw(st.lists(element, min_size=num_rows, max_size=num_rows))


@st.composite
def small_tables(draw):
    num_rows = draw(st.integers(1, 12))
    num_cols = draw(st.integers(1, 3))
    columns = {
        f"c{index}": draw(column_values(num_rows)) for index in range(num_cols)
    }
    rows = list(zip(*columns.values())) if columns else []
    return Table.from_rows("prop", list(columns), rows)


class TestSpawnedProcessProperty:
    @settings(
        max_examples=8,
        deadline=None,
        suppress_health_check=[HealthCheck.too_slow],
    )
    @given(table=small_tables(), backend=st.sampled_from(BACKENDS))
    def test_round_trips_bit_identically_across_a_process(self, table, backend):
        with relational_backend.use_backend(backend):
            rebuilt = Table.from_rows(
                table.name, list(table.schema.names), list(table.iter_rows())
            )
            for column in rebuilt.schema.names:
                rebuilt.encoded(column).counts()
            if len(rebuilt.schema.names) > 1:
                rebuilt.encoded_key(list(rebuilt.schema.names))
            store = shm.SharedColumnStore("test-spawn")
            try:
                manifest = store.export_tables(
                    {rebuilt.name: rebuilt}, version=0, kind="base", meta={"n": 1}
                )
                with tempfile.TemporaryDirectory() as tmp:
                    manifest_path = os.path.join(tmp, "manifest.pkl")
                    out_path = os.path.join(tmp, "out.pkl")
                    with open(manifest_path, "wb") as fh:
                        pickle.dump(manifest, fh)
                    env = dict(os.environ)
                    env["PYTHONPATH"] = SRC_DIR + os.pathsep + env.get("PYTHONPATH", "")
                    subprocess.run(
                        [sys.executable, "-c", CHILD_SCRIPT, manifest_path, out_path],
                        env=env,
                        check=True,
                        timeout=120,
                    )
                    with open(out_path, "rb") as fh:
                        seen = pickle.load(fh)
            finally:
                store.close()
        assert seen["meta"] == {"n": 1}
        child = seen["tables"][rebuilt.name]
        assert child["rows"] == list(rebuilt.iter_rows())
        for key, encoding in rebuilt._encodings.items():
            codes, values, counts = child["encodings"][repr(key)]
            assert codes == list(shm._as_code_iter(encoding.codes))
            assert values == encoding.values
            assert counts == list(encoding.counts())


@pytest.fixture
def graph_setup():
    facts = Table.from_rows(
        "facts",
        ["good_key", "bad_key", "measure"],
        [(i % 10, i % 3, float(i % 8) * 10 + i % 3) for i in range(64)],
    )
    dims = Table.from_rows(
        "dims",
        ["good_key", "bad_key", "label"],
        [(i, i % 2, f"lbl{i}") for i in range(8)],
    )
    join_graph = JoinGraph([facts, dims], source_instances=["facts"])
    fds = [FunctionalDependency("good_key", "label")]
    return join_graph, {"facts": facts, "dims": dims}, fds


class TestWorkerSessions:
    def test_cold_load_then_warm_reuse(self, graph_setup):
        join_graph, _, fds = graph_setup
        state = shm.SharedChainState(join_graph, fds, token="test-session")
        try:
            _, stats = shm.ensure_session(state.spec())
            assert stats == {"cold_load": 1, "resyncs": 0, "deltas_applied": 0}
            session, stats = shm.ensure_session(state.spec())
            assert stats == {"cold_load": 0, "resyncs": 0, "deltas_applied": 0}
            # Zero JI recomputation: the preloaded weights cover every edge.
            assert session.graph.edge_recomputes == 0
            assert sorted(session.graph.instance_tables()) == ["dims", "facts"]
        finally:
            shm.drop_session("test-session")
            state.close()

    def test_delta_applies_in_place_without_resync(self, graph_setup):
        join_graph, tables, fds = graph_setup
        state = shm.SharedChainState(join_graph, fds, token="test-delta")
        try:
            session, _ = shm.ensure_session(state.spec())
            dims2 = Table.from_rows(
                "dims",
                ["good_key", "bad_key", "label"],
                [(i, i % 2, f"new{i}") for i in range(8)],
            )
            new_graph = JoinGraph([tables["facts"], dims2], source_instances=["facts"])
            state.publish_delta(new_graph, fds, version=1, changed=("dims",))
            assert state.stats()["rebases"] == 0
            session, stats = shm.ensure_session(state.spec())
            assert stats == {"cold_load": 0, "resyncs": 0, "deltas_applied": 1}
            assert session.version == 1
            assert list(session.graph.sample("dims").column("label")) == [
                f"new{i}" for i in range(8)
            ]
        finally:
            shm.drop_session("test-delta")
            state.close()

    def test_version_jump_falls_back_to_rebase_and_resync(self, graph_setup):
        join_graph, tables, fds = graph_setup
        state = shm.SharedChainState(join_graph, fds, token="test-gap")
        try:
            shm.ensure_session(state.spec())
            new_graph = JoinGraph(
                [tables["facts"], tables["dims"]], source_instances=["facts"]
            )
            # version jumps 0 -> 5: the state must rebase, and the worker
            # session must hard-resync off the changed base fingerprint.
            state.publish_delta(new_graph, fds, version=5, changed=("dims",))
            assert state.stats()["rebases"] == 1
            session, stats = shm.ensure_session(state.spec())
            assert stats["resyncs"] == 1
            assert session.version == 5
        finally:
            shm.drop_session("test-gap")
            state.close()

    def test_close_unlinks_every_segment(self, graph_setup):
        join_graph, _, fds = graph_setup
        state = shm.SharedChainState(join_graph, fds, token="test-unlink")
        names = state.segment_names()
        assert names and all(os.path.exists(f"/dev/shm/{n}") for n in names)
        state.close()
        assert not any(os.path.exists(f"/dev/shm/{n}") for n in names)
        state.close()  # idempotent


class TestSharedSchedulerParity:
    """ChainScheduler over a shared-store pool is bit-identical to serial,
    and a warm pool survives a published delta with zero resyncs."""

    def run_scheduler(self, join_graph, tables, fds, *, pool=None, pool_state=None,
                      executor="serial"):
        igraph = minimal_weight_igraph(join_graph, ["facts", "dims"], rng=0)
        initial = build_initial_target_graph(
            join_graph, igraph, ["measure"], ["label"]
        )
        scheduler = ChainScheduler(
            chains=3, executor=executor, pool=pool, pool_state=pool_state
        )
        return scheduler.run(
            join_graph,
            initial,
            tables,
            ["measure"],
            ["label"],
            fds,
            budget=1e9,
            config=MCMCConfig(iterations=40, seed=0),
        )

    def test_shared_pool_matches_serial_and_survives_deltas(self, graph_setup):
        join_graph, tables, fds = graph_setup
        reference = self.run_scheduler(join_graph, tables, fds)
        pool, state = shared_chain_pool(
            join_graph, fds, token="test-shared-parity", max_workers=2
        )
        try:
            assert state.covers(join_graph, tables, fds)
            warm = self.run_scheduler(
                join_graph, tables, fds, pool=pool, pool_state=state,
                executor="process",
            )
            assert warm.chain_correlations == reference.chain_correlations
            # Ship a delta: the same pool keeps serving, zero full resyncs.
            dims2 = Table.from_rows(
                "dims",
                ["good_key", "bad_key", "label"],
                [(i, i % 2, f"lbl{i}") for i in range(8)],
            )
            new_tables = {"facts": tables["facts"], "dims": dims2}
            new_graph = JoinGraph(
                [tables["facts"], dims2], source_instances=["facts"]
            )
            state.publish_delta(new_graph, fds, version=1, changed=("dims",))
            assert state.covers(new_graph, new_tables, fds)
            after = self.run_scheduler(
                new_graph, new_tables, fds, pool=pool, pool_state=state,
                executor="process",
            )
            serial_after = self.run_scheduler(new_graph, new_tables, fds)
            assert after.chain_correlations == serial_after.chain_correlations
            stats = state.stats()
            assert stats["rebases"] == 0
            assert stats["worker_resyncs"] == 0
            assert stats["worker_deltas_applied"] >= 1
        finally:
            pool.shutdown()
            state.close()
        assert shm.live_segments() == []
