"""Tests for the top-k acquisition extension."""

from __future__ import annotations

import pytest

from repro.exceptions import InfeasibleAcquisitionError
from repro.graph.join_graph import JoinGraph
from repro.graph.target import TargetGraphEvaluation
from repro.quality.fd import FunctionalDependency
from repro.relational.table import Table
from repro.search.mcmc import MCMCConfig
from repro.search.topk import RankedOption, ScoreWeights, top_k_acquisition


@pytest.fixture
def join_graph() -> JoinGraph:
    """Two instances with two alternative join attributes, so at least two
    distinct purchase options exist."""
    facts = Table.from_rows(
        "facts",
        ["good_key", "bad_key", "measure"],
        [(i % 8, i % 2, float(i % 8) * 10 + i % 3) for i in range(64)],
    )
    dims = Table.from_rows(
        "dims",
        ["good_key", "bad_key", "label", "extra"],
        [(i, i % 2, f"lbl{i}", f"x{i % 3}") for i in range(8)],
    )
    return JoinGraph([facts, dims], source_instances=["facts"])


@pytest.fixture
def fds() -> list[FunctionalDependency]:
    return [FunctionalDependency("good_key", "label")]


class TestScoreWeights:
    def test_score_combines_all_terms(self):
        weights = ScoreWeights(
            correlation_weight=2.0, quality_weight=1.0, weight_penalty=1.0, price_penalty=1.0
        )
        evaluation = TargetGraphEvaluation(
            correlation=3.0, quality=0.5, weight=1.0, price=10.0
        )
        score = weights.score(evaluation, budget=20.0, max_weight=2.0)
        assert score == pytest.approx(2.0 * 3.0 + 0.5 - 1.0 * 0.5 - 1.0 * 0.5)

    def test_infinite_alpha_uses_unit_scale(self):
        weights = ScoreWeights()
        evaluation = TargetGraphEvaluation(correlation=1.0, quality=1.0, weight=0.5, price=5.0)
        score = weights.score(evaluation, budget=10.0, max_weight=float("inf"))
        assert score == pytest.approx(1.0 + 1.0 - 0.5 * 0.5 - 0.5 * 0.5)

    def test_higher_price_lowers_score(self):
        weights = ScoreWeights()
        cheap = TargetGraphEvaluation(correlation=1.0, quality=1.0, weight=0.0, price=1.0)
        expensive = TargetGraphEvaluation(correlation=1.0, quality=1.0, weight=0.0, price=9.0)
        assert weights.score(cheap, budget=10.0, max_weight=1.0) > weights.score(
            expensive, budget=10.0, max_weight=1.0
        )


class TestTopKAcquisition:
    def test_returns_ranked_distinct_options(self, join_graph, fds):
        options = top_k_acquisition(
            join_graph, ["measure"], ["label"], fds,
            k=3, budget=1e9, mcmc_config=MCMCConfig(iterations=40, seed=0), rng=0,
        )
        assert 1 <= len(options) <= 3
        assert [option.rank for option in options] == list(range(1, len(options) + 1))
        scores = [option.score for option in options]
        assert scores == sorted(scores, reverse=True)
        signatures = {
            frozenset(
                (name, option.target_graph.projections[name])
                for name in option.target_graph.purchased_instances()
            )
            for option in options
        }
        assert len(signatures) == len(options)

    def test_multiple_options_found_when_alternatives_exist(self, join_graph, fds):
        options = top_k_acquisition(
            join_graph, ["measure"], ["label"], fds,
            k=5, budget=1e9, mcmc_config=MCMCConfig(iterations=60, seed=1), rng=0,
        )
        # the two join attributes (good_key / bad_key) give at least two options
        assert len(options) >= 2

    def test_all_options_satisfy_constraints(self, join_graph, fds):
        budget = 30.0
        options = top_k_acquisition(
            join_graph, ["measure"], ["label"], fds,
            k=4, budget=budget, min_quality=0.1,
            mcmc_config=MCMCConfig(iterations=40, seed=2), rng=0,
        )
        for option in options:
            assert option.evaluation.price <= budget + 1e-6
            assert option.evaluation.quality >= 0.1 - 1e-9

    def test_k_one_matches_best_option(self, join_graph, fds):
        all_options = top_k_acquisition(
            join_graph, ["measure"], ["label"], fds,
            k=5, budget=1e9, mcmc_config=MCMCConfig(iterations=40, seed=3), rng=0,
        )
        just_one = top_k_acquisition(
            join_graph, ["measure"], ["label"], fds,
            k=1, budget=1e9, mcmc_config=MCMCConfig(iterations=40, seed=3), rng=0,
        )
        assert len(just_one) == 1
        assert just_one[0].score == pytest.approx(all_options[0].score)

    def test_invalid_k_rejected(self, join_graph, fds):
        with pytest.raises(InfeasibleAcquisitionError):
            top_k_acquisition(join_graph, ["measure"], ["label"], fds, k=0, budget=1.0)

    def test_zero_budget_yields_no_options(self, join_graph, fds):
        options = top_k_acquisition(
            join_graph, ["measure"], ["label"], fds,
            k=3, budget=0.0, mcmc_config=MCMCConfig(iterations=10, seed=0), rng=0,
        )
        assert options == []

    def test_summary_is_json_friendly(self, join_graph, fds):
        import json

        options = top_k_acquisition(
            join_graph, ["measure"], ["label"], fds,
            k=2, budget=1e9, mcmc_config=MCMCConfig(iterations=20, seed=0), rng=0,
        )
        assert options
        payload = json.dumps([option.summary() for option in options])
        decoded = json.loads(payload)
        assert decoded[0]["rank"] == 1
        assert isinstance(options[0], RankedOption)
