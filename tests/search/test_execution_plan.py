"""Tests for the unified :class:`~repro.search.plan.ExecutionPlan` (PR 8).

The contracts under test: the plan is the single source of truth for
executor/chains/pool configuration; every legacy spelling maps onto an
equivalent plan (with a ``DeprecationWarning`` where the spelling is
user-facing); and a plan produces bit-identical results to the knobs it
replaced.
"""

from __future__ import annotations

import os
import warnings

import pytest

from repro.core.config import DanceConfig, ServiceConfig
from repro.core.dance import DANCE
from repro.exceptions import ReproError
from repro.marketplace.dataset import MarketplaceDataset
from repro.marketplace.market import Marketplace
from repro.marketplace.shopper import AcquisitionRequest
from repro.pricing.models import EntropyPricingModel
from repro.relational.table import Table
from repro.search.acquisition import SearchRuntime
from repro.search.mcmc import MCMCConfig
from repro.search.plan import ExecutionPlan


class TestParse:
    def test_full_spec(self):
        plan = ExecutionPlan.parse(
            "executor=process,chains=4,workers=2,shared_store=on,pool_policy=per_call"
        )
        assert plan == ExecutionPlan(
            executor="process",
            chains=4,
            workers=2,
            shared_store=True,
            pool_policy="per_call",
        )

    def test_bare_token_is_executor(self):
        assert ExecutionPlan.parse("thread") == ExecutionPlan(executor="thread")

    def test_bool_words(self):
        assert ExecutionPlan.parse("shared_store=off").shared_store is False
        assert ExecutionPlan.parse("shared_store=1").shared_store is True
        assert ExecutionPlan.parse("shared_store=no").shared_store is False

    def test_spec_round_trips(self):
        for spec in (
            "executor=serial,chains=1",
            "executor=process,chains=4,workers=2,shared_store=on",
            "executor=thread,chains=3,pool_policy=per_call",
        ):
            plan = ExecutionPlan.parse(spec)
            assert ExecutionPlan.parse(plan.spec()) == plan

    @pytest.mark.parametrize(
        "bad",
        [
            "executor=carrier-pigeon",
            "chains=zero",
            "chains=0",
            "workers=0",
            "shared_store=maybe",
            "pool_policy=leaky",
            "frobnicate=1",
        ],
    )
    def test_rejects_bad_specs(self, bad):
        with pytest.raises(ReproError):
            ExecutionPlan.parse(bad)

    def test_normalize_accepts_plan_string_none(self):
        plan = ExecutionPlan(executor="thread", chains=2)
        assert ExecutionPlan.normalize(plan) is plan
        assert ExecutionPlan.normalize("thread,chains=2") == plan
        assert ExecutionPlan.normalize(None) is None
        with pytest.raises(ReproError):
            ExecutionPlan.normalize(42)


class TestDerivedViews:
    def test_shared_store_auto_follows_executor(self):
        assert ExecutionPlan(executor="process", chains=2).wants_shared_store
        assert not ExecutionPlan(executor="thread", chains=2).wants_shared_store
        assert not ExecutionPlan(
            executor="process", chains=2, shared_store=False
        ).wants_shared_store

    def test_resolved_workers_explicit_wins(self):
        assert ExecutionPlan(executor="thread", chains=4, workers=2).resolved_workers() == 2

    def test_resolved_workers_thread_default(self):
        assert ExecutionPlan(executor="thread", chains=3).resolved_workers() == 3
        assert ExecutionPlan(executor="thread", chains=100).resolved_workers() == 8

    def test_resolved_workers_process_capped_at_cpus(self):
        width = ExecutionPlan(executor="process", chains=100).resolved_workers()
        assert width == min(8, max(1, os.cpu_count() or 1))


def small_marketplace() -> Marketplace:
    pricing = EntropyPricingModel()
    marketplace = Marketplace(default_pricing=pricing)
    facts = Table.from_rows(
        "facts",
        ["good_key", "bad_key", "measure"],
        [(i % 10, i % 3, float(i % 8) * 10 + i % 3) for i in range(64)],
    )
    dims = Table.from_rows(
        "dims",
        ["good_key", "bad_key", "label"],
        [(i, i % 2, f"lbl{i}") for i in range(8)],
    )
    for table in (facts, dims):
        marketplace.host(MarketplaceDataset(table=table, pricing=pricing))
    return marketplace


REQUEST = AcquisitionRequest(
    source_attributes=["measure"], target_attributes=["label"], budget=1e9
)


class TestConfigIntegration:
    def test_plan_overrides_mcmc_knobs(self):
        config = DanceConfig(
            mcmc=MCMCConfig(iterations=10, chains=1, executor="serial"),
            plan="executor=thread,chains=3",
        )
        assert config.mcmc.chains == 3
        assert config.mcmc.executor == "thread"
        assert config.execution_plan.executor == "thread"

    def test_service_level_plan_applies(self):
        config = DanceConfig(service=ServiceConfig(plan="executor=thread,chains=2"))
        assert config.mcmc.chains == 2
        assert config.execution_plan.executor == "thread"

    def test_dance_plan_wins_over_service_plan(self):
        config = DanceConfig(
            plan="executor=serial,chains=1",
            service=ServiceConfig(plan="executor=thread,chains=4"),
        )
        assert config.mcmc.chains == 1
        assert config.execution_plan.executor == "serial"

    def test_legacy_knobs_fold_into_equivalent_plan(self):
        config = DanceConfig(mcmc=MCMCConfig(chains=3, executor="thread"))
        assert config.execution_plan == ExecutionPlan.from_legacy(
            executor="thread", chains=3
        )

    def test_chain_pool_workers_warns_and_maps(self):
        with pytest.warns(DeprecationWarning, match="chain_pool_workers"):
            config = DanceConfig(service=ServiceConfig(chain_pool_workers=2))
        assert config.execution_plan.workers == 2

    def test_plan_survives_refinement_copy(self):
        config = DanceConfig(plan="executor=thread,chains=2")
        assert config.refined().execution_plan == config.execution_plan

    def test_plan_free_config_warns_nothing(self):
        with warnings.catch_warnings():
            warnings.simplefilter("error", DeprecationWarning)
            DanceConfig(mcmc=MCMCConfig(chains=2, executor="thread"))


class TestAliasEquivalence:
    """The plan spelling and the legacy spelling produce identical results."""

    def test_plan_matches_legacy_knobs_bit_for_bit(self):
        legacy = DanceConfig(
            sampling_rate=1.0,
            mcmc=MCMCConfig(iterations=30, seed=0, chains=2, executor="thread"),
        )
        planned = DanceConfig(
            sampling_rate=1.0,
            mcmc=MCMCConfig(iterations=30, seed=0),
            plan="executor=thread,chains=2",
        )
        results = []
        for config in (legacy, planned):
            dance = DANCE(small_marketplace(), config)
            dance.build_offline()
            results.append(dance.acquire(REQUEST))
        assert results[0].mcmc_chain_correlations == results[1].mcmc_chain_correlations
        assert results[0].estimated_correlation == results[1].estimated_correlation
        assert results[0].sql() == results[1].sql()

    def test_runtime_plan_overrides_executor_not_results(self):
        config = DanceConfig(
            sampling_rate=1.0,
            mcmc=MCMCConfig(iterations=30, seed=0, chains=2, executor="serial"),
        )
        dance = DANCE(small_marketplace(), config)
        dance.build_offline()
        baseline = dance.acquire(REQUEST)
        rerouted = dance.acquire(
            REQUEST,
            runtime=SearchRuntime(plan=ExecutionPlan(executor="thread", chains=2)),
        )
        assert rerouted.mcmc_executor == "thread"
        assert rerouted.mcmc_chains == 2
        assert rerouted.mcmc_chain_correlations == baseline.mcmc_chain_correlations
        assert rerouted.estimated_correlation == baseline.estimated_correlation


class TestCLI:
    def test_plan_flag_parses_and_wins(self):
        from repro.cli import build_parser

        args = build_parser().parse_args(
            ["acquire", "--query", "Q1", "--chains", "2", "--executor", "thread",
             "--plan", "executor=serial,chains=1"]
        )
        assert args.plan == "executor=serial,chains=1"
        config = DanceConfig(
            mcmc=MCMCConfig(chains=args.chains, executor=args.executor),
            plan=args.plan,
        )
        assert config.mcmc.executor == "serial"
        assert config.mcmc.chains == 1
