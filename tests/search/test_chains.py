"""Tests for the parallel multi-chain MCMC search (``repro.search.chains``).

The contract under test: for a fixed ``(seed, chains)`` the multi-chain
search returns bit-identical best graphs and correlations under every
executor (serial / thread / process), ``chains=1`` reproduces the
single-chain walk exactly, and the shared caches only change who pays for
each evaluation — never the outcome.
"""

from __future__ import annotations

import pytest

from repro.core.config import DanceConfig
from repro.core.dance import DANCE
from repro.exceptions import InfeasibleAcquisitionError, SearchError
from repro.graph.join_graph import JoinGraph
from repro.graph.steiner import minimal_weight_igraph
from repro.marketplace.shopper import AcquisitionRequest
from repro.quality.fd import FunctionalDependency
from repro.relational.table import Table
from repro.search.acquisition import heuristic_acquisition
from repro.search.candidates import build_initial_target_graph
from repro.search.chains import (
    ChainScheduler,
    LockStripedCache,
    MultiChainResult,
    chain_seed,
)
from repro.search.mcmc import MCMCConfig, mcmc_search

EXECUTORS = ("serial", "thread", "process")


@pytest.fixture
def setup():
    """The test_mcmc fixture graph: two join-attribute choices between two tables."""
    facts = Table.from_rows(
        "facts",
        ["good_key", "bad_key", "measure"],
        [(i % 10, i % 3, float(i % 8) * 10 + i % 3) for i in range(64)],
    )
    dims = Table.from_rows(
        "dims",
        ["good_key", "bad_key", "label"],
        [(i, i % 2, f"lbl{i}") for i in range(8)],
    )
    join_graph = JoinGraph([facts, dims], source_instances=["facts"])
    igraph = minimal_weight_igraph(join_graph, ["facts", "dims"], rng=0)
    initial = build_initial_target_graph(join_graph, igraph, ["measure"], ["label"])
    tables = {"facts": facts, "dims": dims}
    fds = [FunctionalDependency("good_key", "label")]
    return join_graph, initial, tables, fds


def run_multi(setup, *, chains, executor, iterations=50, seed=0, **kwargs):
    join_graph, initial, tables, fds = setup
    return mcmc_search(
        join_graph,
        initial,
        tables,
        ["measure"],
        ["label"],
        fds,
        budget=kwargs.pop("budget", 1e9),
        config=MCMCConfig(
            iterations=iterations,
            seed=seed,
            chains=chains,
            executor=executor,
            **kwargs,
        ),
    )


class TestChainSeed:
    def test_chain_zero_keeps_base_seed(self):
        assert chain_seed(17, 0) == 17

    def test_derived_seeds_are_deterministic_and_distinct(self):
        seeds = [chain_seed(0, index) for index in range(16)]
        assert seeds == [chain_seed(0, index) for index in range(16)]
        assert len(set(seeds)) == 16

    def test_different_base_seeds_decorrelate(self):
        assert chain_seed(0, 1) != chain_seed(1, 1)

    def test_negative_index_rejected(self):
        with pytest.raises(SearchError):
            chain_seed(0, -1)


class TestLockStripedCache:
    def test_get_set_len_contains(self):
        cache = LockStripedCache(stripes=4)
        assert cache.get(("a",)) is None
        assert cache.get(("a",), 5) == 5
        cache[("a",)] = 1
        cache[("b", 2)] = 2
        assert cache.get(("a",)) == 1
        assert ("b", 2) in cache
        assert ("c",) not in cache
        assert len(cache) == 2

    def test_update_merges_a_plain_dict(self):
        cache = LockStripedCache(stripes=2)
        cache.update({1: "one", 2: "two"})
        assert cache.get(1) == "one"
        assert len(cache) == 2

    def test_invalid_stripes_rejected(self):
        with pytest.raises(SearchError):
            LockStripedCache(stripes=0)


class TestConfigValidation:
    def test_invalid_chains_rejected(self):
        with pytest.raises(SearchError):
            MCMCConfig(chains=0)

    def test_invalid_executor_rejected(self):
        with pytest.raises(SearchError):
            MCMCConfig(executor="gpu")

    def test_scheduler_validates_too(self):
        with pytest.raises(SearchError):
            ChainScheduler(chains=0)
        with pytest.raises(SearchError):
            ChainScheduler(chains=2, executor="gpu")


class TestSingleChainParity:
    def test_chains_one_is_the_plain_single_chain_walk(self, setup):
        """``chains=1`` takes the original code path and returns MCMCResult."""
        single = run_multi(setup, chains=1, executor="serial", record_trace=True)
        assert not isinstance(single, MultiChainResult)

    def test_scheduler_chain_zero_reproduces_single_chain(self, setup):
        join_graph, initial, tables, fds = setup
        config = MCMCConfig(iterations=50, seed=0, record_trace=True)
        single = mcmc_search(
            join_graph, initial, tables, ["measure"], ["label"], fds,
            budget=1e9, config=config,
        )
        multi = ChainScheduler(chains=1).run(
            join_graph, initial, tables, ["measure"], ["label"], fds,
            budget=1e9, config=config,
        )
        assert isinstance(multi, MultiChainResult)
        assert multi.n_chains == 1
        chain = multi.chain_results[0]
        assert chain.trace == single.trace
        assert chain.accepted_steps == single.accepted_steps
        assert chain.feasible_steps == single.feasible_steps
        assert multi.best_evaluation.correlation == single.best_evaluation.correlation
        assert multi.best_graph.nodes == single.best_graph.nodes
        assert multi.best_graph.edges == single.best_graph.edges

    def test_mcmc_result_exposes_the_chain_surface(self, setup):
        """Single-chain results duck-type MultiChainResult's diagnostics."""
        single = run_multi(setup, chains=1, executor="serial")
        assert single.n_chains == 1
        assert single.executor == "serial"
        assert single.best_chain_index == 0
        assert single.chain_correlations == [single.best_evaluation.correlation]

    def test_multi_chain_best_at_least_single_chain(self, setup):
        single = run_multi(setup, chains=1, executor="serial")
        multi = run_multi(setup, chains=4, executor="serial")
        assert multi.best_evaluation.correlation >= single.best_evaluation.correlation


class TestExecutorBitIdentity:
    def test_executors_agree_on_the_fixture_graph(self, setup):
        results = {
            executor: run_multi(setup, chains=4, executor=executor, record_trace=True)
            for executor in EXECUTORS
        }
        reference = results["serial"]
        for executor, result in results.items():
            assert result.executor == executor
            assert result.best_chain_index == reference.best_chain_index
            assert (
                result.best_evaluation.correlation
                == reference.best_evaluation.correlation
            )
            assert result.best_graph.nodes == reference.best_graph.nodes
            assert result.best_graph.edges == reference.best_graph.edges
            assert result.chain_correlations == reference.chain_correlations
            # The walks themselves are bit-identical, not just the winner.
            assert result.traces == reference.traces
            assert [c.accepted_steps for c in result.chain_results] == [
                c.accepted_steps for c in reference.chain_results
            ]

    @pytest.mark.parametrize("executor", EXECUTORS)
    def test_executors_agree_on_tpch(self, tpch_marketplace, executor):
        """Serial / thread / process bit-identity on the Fig. 4 TPC-H scenario."""
        config = DanceConfig(
            sampling_rate=0.5,
            mcmc=MCMCConfig(iterations=30, seed=0, chains=3, executor=executor),
        )
        dance = DANCE(tpch_marketplace, config)
        dance.build_offline()
        request = AcquisitionRequest(
            source_attributes=["totalprice"],
            target_attributes=["nname"],
            budget=1e6,
        )
        result = dance.acquire(request)
        # Reference run: serial executor, same seed/chains.
        reference_config = DanceConfig(
            sampling_rate=0.5,
            mcmc=MCMCConfig(iterations=30, seed=0, chains=3, executor="serial"),
        )
        reference_dance = DANCE(tpch_marketplace, reference_config)
        reference_dance.build_offline()
        reference = reference_dance.acquire(request)
        assert result.estimated_correlation == reference.estimated_correlation
        assert result.target_graph.nodes == reference.target_graph.nodes
        assert result.target_graph.edges == reference.target_graph.edges
        assert result.mcmc_chain_correlations == reference.mcmc_chain_correlations
        assert result.mcmc_chains == 3
        assert result.mcmc_executor == executor

    def test_repeated_runs_are_deterministic(self, setup):
        first = run_multi(setup, chains=3, executor="thread", seed=9)
        second = run_multi(setup, chains=3, executor="thread", seed=9)
        assert first.best_evaluation.correlation == second.best_evaluation.correlation
        assert first.chain_correlations == second.chain_correlations
        assert first.best_chain_index == second.best_chain_index


class TestSharedCacheAccounting:
    def test_serial_chains_share_the_evaluation_cache(self, setup):
        """Later chains are served from earlier chains' work."""
        single = run_multi(setup, chains=1, executor="serial")
        multi = run_multi(setup, chains=4, executor="serial")
        # Chains 1..3 revisit candidates chain 0 already evaluated, so the
        # total distinct evaluations stay what one chain needed.
        assert multi.evaluation_cache_misses == single.evaluation_cache_misses
        assert multi.evaluation_cache_hits > single.evaluation_cache_hits
        assert multi.evaluation_cache_size == single.evaluation_cache_misses
        # Serial chain 0 behaves exactly like the single-chain walk ...
        chain0 = multi.chain_results[0]
        assert chain0.evaluation_cache_misses == single.evaluation_cache_misses
        # ... and every later chain pays nothing.
        for chain in multi.chain_results[1:]:
            assert chain.evaluation_cache_misses == 0

    def test_process_chains_pay_per_chain_but_merge_caches(self, setup):
        multi = run_multi(setup, chains=4, executor="process")
        serial = run_multi(setup, chains=4, executor="serial")
        # Private caches: every chain re-pays its own misses.
        assert multi.evaluation_cache_misses > serial.evaluation_cache_misses
        # The merged cache still deduplicates across chains.
        assert multi.evaluation_cache_size == serial.evaluation_cache_size
        assert multi.ji_cache_size == serial.ji_cache_size

    def test_caller_supplied_caches_are_used_and_survive(self, setup):
        """mcmc_search(chains>1) must honour external caches, per its docs."""
        join_graph, initial, tables, fds = setup
        evaluation_cache: dict = {}
        ji_cache: dict = {}
        first = mcmc_search(
            join_graph, initial, tables, ["measure"], ["label"], fds,
            budget=1e9,
            config=MCMCConfig(iterations=50, seed=0, chains=2, executor="serial"),
            evaluation_cache=evaluation_cache,
            ji_cache=ji_cache,
        )
        assert len(evaluation_cache) == first.evaluation_cache_misses > 0
        assert len(ji_cache) > 0
        # A second search over the pre-warmed caches pays zero misses ...
        second = mcmc_search(
            join_graph, initial, tables, ["measure"], ["label"], fds,
            budget=1e9,
            config=MCMCConfig(iterations=50, seed=0, chains=2, executor="serial"),
            evaluation_cache=evaluation_cache,
            ji_cache=ji_cache,
        )
        assert second.evaluation_cache_misses == 0
        # ... and still returns the identical result.
        assert (
            second.best_evaluation.correlation == first.best_evaluation.correlation
        )

    def test_process_executor_merges_into_caller_caches(self, setup):
        join_graph, initial, tables, fds = setup
        evaluation_cache: dict = {}
        mcmc_search(
            join_graph, initial, tables, ["measure"], ["label"], fds,
            budget=1e9,
            config=MCMCConfig(iterations=50, seed=0, chains=2, executor="process"),
            evaluation_cache=evaluation_cache,
        )
        assert len(evaluation_cache) > 0

    def test_aggregate_counters_are_sums(self, setup):
        multi = run_multi(setup, chains=3, executor="serial")
        assert multi.iterations == sum(c.iterations for c in multi.chain_results)
        assert multi.accepted_steps == sum(
            c.accepted_steps for c in multi.chain_results
        )
        assert multi.feasible_steps == sum(
            c.feasible_steps for c in multi.chain_results
        )
        assert multi.evaluation_cache_hit_rate == pytest.approx(
            multi.evaluation_cache_hits
            / (multi.evaluation_cache_hits + multi.evaluation_cache_misses)
        )


class TestTraceGating:
    def test_trace_off_by_default(self, setup):
        single = run_multi(setup, chains=1, executor="serial")
        assert single.trace == []
        multi = run_multi(setup, chains=3, executor="serial")
        assert multi.traces == [[], [], []]
        assert multi.trace == []

    def test_record_trace_opts_in_per_chain(self, setup):
        multi = run_multi(
            setup, chains=3, executor="serial", iterations=40, record_trace=True
        )
        assert all(len(trace) == 40 for trace in multi.traces)
        assert multi.trace == multi.chain_results[multi.best_chain_index].trace

    def test_gating_does_not_change_the_walk(self, setup):
        with_trace = run_multi(setup, chains=2, executor="serial", record_trace=True)
        without = run_multi(setup, chains=2, executor="serial", record_trace=False)
        assert (
            with_trace.best_evaluation.correlation
            == without.best_evaluation.correlation
        )
        assert with_trace.chain_correlations == without.chain_correlations


class TestInfeasibleAggregation:
    def test_no_feasible_chain_reports_infeasible(self, setup):
        multi = run_multi(setup, chains=3, executor="serial", budget=0.0, iterations=10)
        assert isinstance(multi, MultiChainResult)
        assert not multi.feasible
        assert multi.best_chain_index is None
        assert multi.best_graph is None
        assert multi.chain_correlations == [None, None, None]
        with pytest.raises(InfeasibleAcquisitionError):
            multi.require_feasible()


class TestHeuristicIntegration:
    def test_heuristic_acquisition_surfaces_multi_chain(self, setup):
        join_graph, _, _, fds = setup
        result = heuristic_acquisition(
            join_graph,
            ["measure"],
            ["label"],
            fds,
            budget=1e9,
            mcmc_config=MCMCConfig(iterations=40, seed=0, chains=3, executor="thread"),
            rng=0,
        )
        assert result.feasible
        assert isinstance(result.mcmc, MultiChainResult)
        assert result.mcmc.n_chains == 3
        single = heuristic_acquisition(
            join_graph,
            ["measure"],
            ["label"],
            fds,
            budget=1e9,
            mcmc_config=MCMCConfig(iterations=40, seed=0),
            rng=0,
        )
        assert (
            result.best_evaluation.correlation >= single.best_evaluation.correlation
        )


class TestPersistentPools:
    """External executor pools: reused across runs, never shut down, bit-identical."""

    def run_with_pool(self, setup, *, executor, pool, pool_state=None, seed=0):
        join_graph, initial, tables, fds = setup
        scheduler = ChainScheduler(
            chains=3, executor=executor, pool=pool, pool_state=pool_state
        )
        return scheduler.run(
            join_graph,
            initial,
            tables,
            ["measure"],
            ["label"],
            fds,
            budget=1e9,
            config=MCMCConfig(iterations=40, seed=seed),
        )

    def test_external_thread_pool_is_reused_and_bit_identical(self, setup):
        from concurrent.futures import ThreadPoolExecutor

        reference = run_multi(setup, chains=3, executor="thread", iterations=40)
        pool = ThreadPoolExecutor(max_workers=3)
        try:
            first = self.run_with_pool(setup, executor="thread", pool=pool)
            second = self.run_with_pool(setup, executor="thread", pool=pool)
        finally:
            pool.shutdown()
        assert first.chain_correlations == reference.chain_correlations
        assert second.chain_correlations == reference.chain_correlations

    def test_external_process_pool_with_light_payloads(self, setup):
        from repro.search.chains import process_chain_pool

        join_graph, _, tables, fds = setup
        reference = run_multi(setup, chains=3, executor="process", iterations=40)
        pool, state = process_chain_pool(
            join_graph, fds, token="test-pool", max_workers=2
        )
        try:
            assert state.covers(join_graph, tables, fds)
            first = self.run_with_pool(
                setup, executor="process", pool=pool, pool_state=state
            )
            second = self.run_with_pool(
                setup, executor="process", pool=pool, pool_state=state
            )
        finally:
            pool.shutdown()
        assert first.chain_correlations == reference.chain_correlations
        assert second.chain_correlations == reference.chain_correlations

    def test_stale_pool_state_falls_back_to_full_payloads(self, setup):
        from repro.search.chains import process_chain_pool

        join_graph, _, tables, fds = setup
        reference = run_multi(setup, chains=3, executor="process", iterations=40)
        other_graph = JoinGraph(
            [tables["facts"], tables["dims"]], source_instances=["facts"]
        )
        pool, state = process_chain_pool(
            other_graph, fds, token="stale-pool", max_workers=2
        )
        try:
            # The state covers a different graph object: heavy payloads go out,
            # the preloaded worker state is ignored, results stay identical.
            assert not state.covers(join_graph, tables, fds)
            result = self.run_with_pool(
                setup, executor="process", pool=pool, pool_state=state
            )
        finally:
            pool.shutdown()
        assert result.chain_correlations == reference.chain_correlations

    def test_in_place_graph_mutation_invalidates_coverage(self, setup):
        """Identity alone cannot detect add_instance; the revision counter must."""
        from repro.search.chains import process_chain_pool

        join_graph, _, tables, fds = setup
        pool, state = process_chain_pool(
            join_graph, fds, token="mutation-pool", max_workers=2
        )
        try:
            assert state.covers(join_graph, tables, fds)
            extra = Table.from_rows(
                "extra", ["bad_key", "bonus"], [(i % 3, float(i)) for i in range(6)]
            )
            join_graph.add_instance(extra)
            # Same object, but mutated: workers hold a pre-mutation pickle, so
            # light payloads must be refused...
            assert not state.covers(join_graph, tables, fds)
            # ...and the run still works (and stays correct) via full payloads.
            result = self.run_with_pool(
                setup, executor="process", pool=pool, pool_state=state
            )
        finally:
            pool.shutdown()
        reference = run_multi(setup, chains=3, executor="process", iterations=40)
        assert result.chain_correlations == reference.chain_correlations

    def test_state_does_not_cover_foreign_tables(self, setup):
        from repro.search.chains import process_chain_pool

        join_graph, _, tables, fds = setup
        pool, state = process_chain_pool(
            join_graph, fds, token="cover-pool", max_workers=1
        )
        pool.shutdown()
        foreign = {
            name: Table.from_rows(name, table.schema, list(table.iter_rows()))
            for name, table in tables.items()
        }
        assert not state.covers(join_graph, foreign, fds)
        assert not state.covers(join_graph, tables, [])
