"""Tests for the pricing models."""

from __future__ import annotations

import pytest

from repro.exceptions import PricingError
from repro.pricing.models import (
    EntropyPricingModel,
    FlatAttributePricingModel,
    PerCellPricingModel,
)
from repro.relational.table import Table


@pytest.fixture
def catalog_table() -> Table:
    rows = [(i, f"name{i}", f"cat{i % 3}", float(i % 10)) for i in range(60)]
    return Table.from_rows("catalog", ["id", "name", "category", "score"], rows)


class TestEntropyPricing:
    def test_price_positive(self, catalog_table):
        model = EntropyPricingModel()
        assert model.price(catalog_table, ["category"]) > 0.0

    def test_informative_attributes_cost_more(self, catalog_table):
        model = EntropyPricingModel(base_price=0.0)
        # id has maximal entropy (unique), category only ~log2(3) bits
        assert model.price(catalog_table, ["id"]) > model.price(catalog_table, ["category"])

    def test_supersets_cost_at_least_as_much(self, catalog_table):
        model = EntropyPricingModel()
        smaller = model.price(catalog_table, ["category"])
        larger = model.price(catalog_table, ["category", "score"])
        assert larger >= smaller

    def test_price_full_prices_whole_schema(self, catalog_table):
        model = EntropyPricingModel()
        assert model.price_full(catalog_table) == pytest.approx(
            model.price(catalog_table, catalog_table.schema.names)
        )

    def test_empty_table_costs_base_price(self):
        model = EntropyPricingModel(base_price=0.5)
        empty = Table.empty("t", ["a"])
        assert model.price(empty, ["a"]) == 0.5

    def test_empty_attribute_set_rejected(self, catalog_table):
        with pytest.raises(PricingError):
            EntropyPricingModel().price(catalog_table, [])

    def test_negative_parameters_rejected(self):
        with pytest.raises(PricingError):
            EntropyPricingModel(unit_price=-1.0)
        with pytest.raises(PricingError):
            EntropyPricingModel(base_price=-0.1)

    def test_bigger_table_costs_more(self, catalog_table):
        model = EntropyPricingModel(base_price=0.0)
        small = catalog_table.head(10)
        assert model.price(catalog_table, ["category"]) > model.price(small, ["category"])


class TestFlatAttributePricing:
    def test_price_scales_with_attribute_count(self, catalog_table):
        model = FlatAttributePricingModel(price_per_attribute=2.0)
        assert model.price(catalog_table, ["id"]) == 2.0
        assert model.price(catalog_table, ["id", "name"]) == 4.0

    def test_negative_price_rejected(self):
        with pytest.raises(PricingError):
            FlatAttributePricingModel(price_per_attribute=-1.0)

    def test_unknown_attribute_rejected(self, catalog_table):
        from repro.exceptions import UnknownAttributeError

        with pytest.raises(UnknownAttributeError):
            FlatAttributePricingModel().price(catalog_table, ["missing"])


class TestPerCellPricing:
    def test_price_is_rows_times_attributes(self, catalog_table):
        model = PerCellPricingModel(price_per_cell=0.01)
        assert model.price(catalog_table, ["id", "name"]) == pytest.approx(
            0.01 * len(catalog_table) * 2
        )

    def test_negative_price_rejected(self):
        with pytest.raises(PricingError):
            PerCellPricingModel(price_per_cell=-0.5)
