"""Tests for priced SLA tiers: validation, tiered pricing, shopper subscription."""

from __future__ import annotations

import pytest

from repro.exceptions import BudgetExceededError, PricingError
from repro.marketplace.shopper import AcquisitionRequest, DataShopper
from repro.pricing.budget import Budget
from repro.pricing.arbitrage import verify_arbitrage_free
from repro.pricing.models import EntropyPricingModel
from repro.pricing.sla import (
    DEFAULT_TIER_NAME,
    DEFAULT_TIERS,
    SlaTier,
    TieredPricingModel,
    resolve_tier,
)
from repro.relational.table import Table


@pytest.fixture
def small_table() -> Table:
    rows = [(i % 4, f"c{i % 2}", f"d{i % 3}") for i in range(24)]
    return Table.from_rows("small", ["a", "b", "c"], rows)


class TestSlaTier:
    def test_defaults_are_an_unlimited_weight_one_tier(self):
        tier = SlaTier("basic")
        assert tier.weight == 1.0
        assert tier.rate is None
        assert tier.burst == 8
        assert tier.price_multiplier == 1.0
        assert tier.charge(10.0) == 10.0

    def test_charge_applies_the_multiplier(self):
        tier = SlaTier("gold", weight=4.0, price_multiplier=2.5)
        assert tier.charge(10.0) == 25.0
        assert tier.charge(0.0) == 0.0

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"name": ""},
            {"name": "t", "weight": 0.0},
            {"name": "t", "weight": -1.0},
            {"name": "t", "weight": float("inf")},
            {"name": "t", "rate": -0.5},
            {"name": "t", "burst": 0},
            {"name": "t", "price_multiplier": -0.1},
        ],
    )
    def test_invalid_parameters_rejected(self, kwargs):
        with pytest.raises(PricingError):
            SlaTier(**kwargs)

    def test_default_ladder_is_ordered_by_weight_and_price(self):
        bronze, silver, gold = (
            DEFAULT_TIERS["bronze"],
            DEFAULT_TIERS["silver"],
            DEFAULT_TIERS["gold"],
        )
        assert bronze.weight < silver.weight < gold.weight
        assert bronze.price_multiplier < silver.price_multiplier < gold.price_multiplier
        assert DEFAULT_TIER_NAME == "bronze"


class TestResolveTier:
    def test_none_resolves_to_the_default(self):
        assert resolve_tier(None) is DEFAULT_TIERS[DEFAULT_TIER_NAME]

    def test_name_and_object_spellings(self):
        assert resolve_tier("gold") is DEFAULT_TIERS["gold"]
        custom = SlaTier("custom", weight=3.0)
        assert resolve_tier(custom) is custom  # objects pass through untouched

    def test_unknown_name_lists_known_tiers(self):
        with pytest.raises(PricingError, match="bronze"):
            resolve_tier("platinum")

    def test_custom_table_and_default(self):
        table = {"only": SlaTier("only")}
        assert resolve_tier(None, table, default="only") is table["only"]
        with pytest.raises(PricingError):
            resolve_tier("bronze", table)


class TestTieredPricingModel:
    def test_price_is_base_times_multiplier(self, small_table):
        base = EntropyPricingModel()
        tiered = TieredPricingModel(base, DEFAULT_TIERS["gold"])
        for attributes in (["a"], ["a", "b"], ["a", "b", "c"]):
            assert tiered.price(small_table, attributes) == pytest.approx(
                2.5 * base.price(small_table, attributes)
            )

    def test_tiered_model_stays_arbitrage_free(self, small_table):
        # A non-negative constant multiplier preserves monotonicity and
        # subadditivity, so the priced tier cannot introduce arbitrage.
        for tier in DEFAULT_TIERS.values():
            model = TieredPricingModel(EntropyPricingModel(), tier)
            report = verify_arbitrage_free(model, [small_table])
            assert report == {"small": True}


class TestShopperSubscription:
    def shopper(self, budget: float = 100.0) -> DataShopper:
        table = Table.from_rows("mine", ["k", "v"], [(i, i % 3) for i in range(8)])
        return DataShopper(
            name="alice", source_tables=[table], budget=Budget(total=budget)
        )

    def test_requests_are_stamped_with_the_tier_name(self):
        shopper = self.shopper()
        assert shopper.make_request(["v"]).tier is None
        subscribed = shopper.subscribe("gold")
        assert subscribed is DEFAULT_TIERS["gold"]
        request = shopper.make_request(["v"], deadline=2.0)
        assert request.tier == "gold"
        assert request.deadline == 2.0

    def test_request_carries_name_never_parameters(self):
        shopper = self.shopper()
        shopper.subscribe(SlaTier("gold", weight=4.0, price_multiplier=2.5))
        request = shopper.make_request(["v"])
        # Only the name travels: the scheduler reads weight/rate/burst from
        # its own tier table, so a shopper cannot self-assign a weight.
        assert request.tier == "gold"
        assert not hasattr(request, "weight")

    def test_request_validation_rejects_negative_deadline(self):
        from repro.exceptions import SearchError

        with pytest.raises(SearchError):
            AcquisitionRequest(
                source_attributes=["a"],
                target_attributes=["b"],
                budget=1.0,
                deadline=-1.0,
            )

    def test_subscribed_purchase_charges_the_multiplier(self):
        charged: list[float] = []

        class _Budget(Budget):
            def charge(self, amount: float) -> None:
                charged.append(amount)
                super().charge(amount)

        class _Marketplace:
            def price_query(self, query) -> float:
                return 4.0

            def execute(self, query):
                return query

        shopper = self.shopper()
        shopper.budget = _Budget(total=100.0)
        shopper.purchase(_Marketplace(), ["q1"])
        shopper.subscribe("gold")
        shopper.purchase(_Marketplace(), ["q2"])
        assert charged == [4.0, 10.0]  # 4.0 base, then 4.0 x 2.5 gold

    def test_tier_premium_still_bounded_by_budget(self):
        class _Marketplace:
            def price_query(self, query) -> float:
                return 4.0

            def execute(self, query):
                return query

        shopper = self.shopper(budget=5.0)
        shopper.subscribe("gold")  # 4.0 x 2.5 = 10.0 > 5.0
        with pytest.raises(BudgetExceededError):
            shopper.purchase(_Marketplace(), ["q1"])
