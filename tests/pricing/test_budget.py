"""Tests for budget bookkeeping and budget ratios."""

from __future__ import annotations

import pytest

from repro.exceptions import BudgetExceededError, PricingError
from repro.pricing.budget import Budget, budget_from_ratio, price_bounds


class TestPriceBounds:
    def test_bounds(self):
        assert price_bounds([3.0, 1.0, 2.0]) == (1.0, 3.0)

    def test_single_option(self):
        assert price_bounds([5.0]) == (5.0, 5.0)

    def test_empty_rejected(self):
        with pytest.raises(PricingError):
            price_bounds([])

    def test_negative_rejected(self):
        with pytest.raises(PricingError):
            price_bounds([1.0, -2.0])


class TestBudgetFromRatio:
    def test_ratio_times_upper_bound(self):
        budget = budget_from_ratio([10.0, 20.0], 0.5)
        assert budget.total == pytest.approx(10.0)

    def test_ratio_one_affords_everything(self):
        budget = budget_from_ratio([10.0, 20.0], 1.0)
        assert budget.can_afford(20.0)

    def test_small_ratio_may_be_below_lower_bound(self):
        budget = budget_from_ratio([10.0, 20.0], 0.1)
        assert budget.total < 10.0  # below LB: the N/A case of Figure 5(c)

    def test_invalid_ratio(self):
        with pytest.raises(PricingError):
            budget_from_ratio([10.0], 0.0)
        with pytest.raises(PricingError):
            budget_from_ratio([10.0], 1.5)


class TestBudget:
    def test_charge_and_remaining(self):
        budget = Budget(total=10.0)
        budget.charge(4.0)
        assert budget.spent == 4.0
        assert budget.remaining == pytest.approx(6.0)

    def test_overspend_raises(self):
        budget = Budget(total=5.0)
        with pytest.raises(BudgetExceededError):
            budget.charge(6.0)

    def test_can_afford_tolerance(self):
        budget = Budget(total=5.0)
        assert budget.can_afford(5.0)
        assert not budget.can_afford(5.01)

    def test_negative_charge_rejected(self):
        with pytest.raises(PricingError):
            Budget(total=5.0).charge(-1.0)

    def test_negative_total_rejected(self):
        with pytest.raises(PricingError):
            Budget(total=-1.0)

    def test_copy_is_independent(self):
        budget = Budget(total=10.0, spent=2.0)
        clone = budget.copy()
        clone.charge(3.0)
        assert budget.spent == 2.0
        assert clone.spent == 5.0

    def test_remaining_never_negative(self):
        budget = Budget(total=1.0, spent=2.0)
        assert budget.remaining == 0.0
