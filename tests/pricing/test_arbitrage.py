"""Tests for arbitrage-freeness checks (monotonicity and subadditivity)."""

from __future__ import annotations

import pytest

from repro.pricing.arbitrage import is_monotone, is_subadditive, verify_arbitrage_free
from repro.pricing.models import EntropyPricingModel, FlatAttributePricingModel, PricingModel
from repro.relational.table import Table


@pytest.fixture
def small_table() -> Table:
    rows = [(i % 4, f"c{i % 2}", f"d{i % 3}") for i in range(24)]
    return Table.from_rows("small", ["a", "b", "c"], rows)


class _SupersetDiscountModel(PricingModel):
    """A deliberately broken model: buying everything is cheaper than one attribute."""

    def price(self, table, attributes):
        attributes = self._validate(table, attributes)
        if len(attributes) == len(table.schema):
            return 0.5
        return float(len(attributes))


class _SuperAdditiveModel(PricingModel):
    """A deliberately broken model: the union costs more than the parts combined."""

    def price(self, table, attributes):
        attributes = self._validate(table, attributes)
        return float(len(attributes)) ** 3


class TestStructuralChecks:
    def test_entropy_model_is_monotone(self, small_table):
        assert is_monotone(EntropyPricingModel(), small_table)

    def test_entropy_model_is_subadditive(self, small_table):
        assert is_subadditive(EntropyPricingModel(), small_table)

    def test_flat_model_is_arbitrage_free(self, small_table):
        model = FlatAttributePricingModel()
        assert is_monotone(model, small_table)
        assert is_subadditive(model, small_table)

    def test_superset_discount_model_is_not_monotone(self, small_table):
        assert not is_monotone(_SupersetDiscountModel(), small_table)

    def test_superadditive_model_is_not_subadditive(self, small_table):
        assert not is_subadditive(_SuperAdditiveModel(), small_table)

    def test_max_subset_size_limits_work(self, small_table):
        assert is_monotone(EntropyPricingModel(), small_table, max_subset_size=2)


class TestVerifyArbitrageFree:
    def test_per_table_report(self, small_table):
        other = Table.from_rows("other", ["x", "y"], [(1, "a"), (2, "b")])
        report = verify_arbitrage_free(EntropyPricingModel(), [small_table, other])
        assert report == {"small": True, "other": True}

    def test_broken_model_flagged(self, small_table):
        report = verify_arbitrage_free(_SupersetDiscountModel(), [small_table])
        assert report["small"] is False
