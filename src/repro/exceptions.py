"""Exception hierarchy for the DANCE reproduction library.

All library-specific errors derive from :class:`ReproError` so that callers can
catch a single base class at the public API boundary.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class of every error raised by this library."""


class SchemaError(ReproError):
    """A schema is malformed or an attribute reference is invalid."""


class UnknownAttributeError(SchemaError):
    """An attribute name was requested that does not exist in the schema."""

    def __init__(self, attribute: str, available: tuple[str, ...] = ()) -> None:
        self.attribute = attribute
        self.available = tuple(available)
        message = f"unknown attribute {attribute!r}"
        if available:
            message += f" (available: {', '.join(available)})"
        super().__init__(message)


class JoinError(ReproError):
    """A join cannot be performed (for example, no shared join attributes)."""


class SamplingError(ReproError):
    """Invalid sampling parameters (rates outside (0, 1], negative thresholds)."""


class PricingError(ReproError):
    """Invalid pricing configuration or an attempt to price unknown data."""


class BudgetExceededError(PricingError):
    """A purchase would exceed the shopper's remaining budget."""

    def __init__(self, price: float, budget: float) -> None:
        self.price = price
        self.budget = budget
        super().__init__(f"price {price:.4f} exceeds remaining budget {budget:.4f}")


class MarketplaceError(ReproError):
    """The marketplace cannot satisfy a request (unknown dataset, bad query)."""


class GraphConstructionError(ReproError):
    """The join graph cannot be constructed from the given samples."""


class AdmissionRejectedError(ReproError):
    """The service's bounded admission queue is full and the policy is ``reject``.

    ``retry_after`` optionally carries the service's backoff hint in seconds
    (derived from the current queue depth and recent execution time); the HTTP
    tier surfaces it as the ``Retry-After`` header of the 503 response.
    """

    def __init__(
        self, message: str = "admission queue is full", retry_after: float | None = None
    ) -> None:
        self.retry_after = retry_after
        super().__init__(message)


class RateLimitedError(ReproError):
    """A shopper exceeded its SLA tier's token-bucket rate limit.

    Raised at submission time by :class:`repro.service.qos.QosScheduler` —
    the request never reaches a worker.  ``retry_after`` is the seconds until
    the shopper's bucket refills one token (the HTTP tier maps this error to
    429 with a ``Retry-After`` header).
    """

    def __init__(
        self, message: str = "rate limit exceeded", retry_after: float | None = None
    ) -> None:
        self.retry_after = retry_after
        super().__init__(message)


class DeadlineExceededError(ReproError):
    """A request could no longer meet its deadline when it reached the front
    of the QoS queue, so it was shed instead of burning a worker.

    The HTTP tier maps this error to 504.  Shedding happens at dequeue time
    only — a request granted a slot always runs to completion.
    """


class StorageError(ReproError):
    """A catalog storage backend cannot open, read, or write a catalog.

    Every storage failure — a missing catalog file, a corrupt or
    foreign-format database, a schema-version mismatch, an undecodable blob —
    surfaces as this type (never as a raw ``sqlite3``/``duckdb`` exception),
    so callers of :meth:`repro.marketplace.market.Marketplace.open` can handle
    storage problems at one boundary.
    """


class SearchError(ReproError):
    """The online search cannot run with the provided request."""


class InfeasibleAcquisitionError(SearchError):
    """No target graph satisfies the quality / informativeness / budget constraints."""


class NoOwnedCandidatesError(InfeasibleAcquisitionError):
    """A candidate filter excluded every Step-1 candidate I-graph.

    Raised by :func:`repro.search.acquisition.heuristic_acquisition` when a
    ``candidate_filter`` (e.g. a shard's ownership predicate — see
    :mod:`repro.service.router`) leaves no candidate to search.  A shard
    router treats this as "this shard owns none of the work", distinct from a
    genuine infeasibility reported by a shard that did search candidates.
    """


class QualityError(ReproError):
    """Invalid functional dependency or quality computation input."""


class MeasureError(ReproError, ValueError):
    """Invalid input to an information-theoretic measure (entropy, CE, JI).

    Dual-inherits from :class:`ValueError` because the measure functions are
    also used as plain numeric library code whose callers legitimately write
    ``except ValueError`` — both contracts hold: the HTTP tier classifies it
    as a 400-family :class:`ReproError`, numeric callers still catch it.
    """


class BackendError(ReproError, ValueError):
    """A relational backend received rows or parameters it cannot execute."""


class WorkloadError(ReproError, ValueError):
    """Invalid workload-generation parameters (sizes, rates, seeds)."""


class UnknownWorkloadError(ReproError, KeyError):
    """A named workload query / dataset does not exist.

    Dual-inherits from :class:`KeyError` so registry-style callers that treat
    the lookup as a mapping access keep working.  ``str()`` is overridden
    because ``KeyError`` quotes its lone argument (``str(KeyError("x")) ==
    "'x'"``), which would garble the HTTP error body.
    """

    def __init__(self, message: str) -> None:
        self.message = message
        super().__init__(message)

    def __str__(self) -> str:
        return self.message
