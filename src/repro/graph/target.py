"""Source/target vertex sets and the target graph (Definitions 4.3 and 4.4).

A *target graph* is a connected subgraph of the join graph that covers all
source and target attributes.  In this implementation a target graph is a tree
over instance names: the instances are listed in a join order, and every
instance after the first attaches to one *earlier* instance (its parent) through
a chosen join attribute set.  A path-shaped join is the special case where each
instance attaches to its immediate predecessor.

Per instance, the target graph also records the projection attribute set — the
AS-vertex that will actually be purchased.  The class knows how to evaluate
itself against a set of instance tables (samples or full data): correlation
between the source and target attribute sets on the join result, join quality,
total join-informativeness weight, and total price.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from itertools import product
from typing import Iterable, Mapping, Sequence

from repro.exceptions import GraphConstructionError, SearchError
from repro.infotheory.correlation import attribute_set_correlation
from repro.infotheory.join_informativeness import join_informativeness
from repro.quality.fd import FunctionalDependency
from repro.quality.measure import join_quality
from repro.relational.joins import inner_join
from repro.relational.table import Table


@dataclass(frozen=True)
class TargetGraphEvaluation:
    """The four quantities the optimisation problem cares about (Eq. 9)."""

    correlation: float
    quality: float
    weight: float
    price: float
    join_rows: int = 0

    def satisfies(
        self,
        *,
        max_weight: float = float("inf"),
        min_quality: float = 0.0,
        budget: float = float("inf"),
    ) -> bool:
        """Check the α (weight), β (quality) and B (price) constraints."""
        return (
            self.weight <= max_weight + 1e-12
            and self.quality >= min_quality - 1e-12
            and self.price <= budget + 1e-9
        )


@dataclass
class TargetGraph:
    """A candidate acquisition: instances, join attributes per edge, projections per node.

    Attributes
    ----------
    nodes:
        Instance names in join order.
    edges:
        One entry per instance after the first: ``edges[i]`` is the join
        attribute set used to attach ``nodes[i + 1]`` to its parent.
    parents:
        ``parents[i]`` is the index (into ``nodes``) of the instance that
        ``nodes[i + 1]`` attaches to; it must be ``<= i``.  When omitted the
        graph is a path (each instance attaches to its predecessor).
    projections:
        Per-instance attribute set to purchase.  Every projection must contain
        the join attributes the instance participates in (otherwise the join
        cannot be executed on the purchased data).
    source_instances:
        Instances owned by the shopper (their projections are free).
    """

    nodes: list[str]
    edges: list[frozenset[str]]
    parents: list[int] = field(default_factory=list)
    projections: dict[str, frozenset[str]] = field(default_factory=dict)
    source_instances: frozenset[str] = frozenset()

    def __post_init__(self) -> None:
        if not self.nodes:
            raise GraphConstructionError("a target graph needs at least one instance")
        if len(set(self.nodes)) != len(self.nodes):
            raise GraphConstructionError(f"duplicate instances in target graph: {self.nodes}")
        if len(self.edges) != max(0, len(self.nodes) - 1):
            raise GraphConstructionError(
                f"a target graph of {len(self.nodes)} instances needs "
                f"{len(self.nodes) - 1} edges, got {len(self.edges)}"
            )
        if not self.parents:
            self.parents = list(range(len(self.nodes) - 1))
        if len(self.parents) != len(self.edges):
            raise GraphConstructionError(
                f"parents must have one entry per edge: {len(self.parents)} vs {len(self.edges)}"
            )
        for index, parent in enumerate(self.parents):
            if not 0 <= parent <= index:
                raise GraphConstructionError(
                    f"parent of node {index + 1} must be an earlier node, got {parent}"
                )
        self.edges = [frozenset(edge) for edge in self.edges]
        self.source_instances = frozenset(self.source_instances)
        for node_index, name in enumerate(self.nodes):
            if name in self.projections:
                self.projections[name] = frozenset(self.projections[name])
            else:
                self.projections[name] = frozenset(self._required_join_attributes(node_index))
        self._validate_projections()

    # ----------------------------------------------------------------- helpers
    def _required_join_attributes(self, node_index: int) -> set[str]:
        """Join attributes instance ``nodes[node_index]`` participates in."""
        required: set[str] = set()
        for edge_index, edge in enumerate(self.edges):
            if edge_index + 1 == node_index or self.parents[edge_index] == node_index:
                required |= set(edge)
        return required

    def _validate_projections(self) -> None:
        for node_index, name in enumerate(self.nodes):
            required = self._required_join_attributes(node_index)
            missing = required - set(self.projections[name])
            if missing:
                raise GraphConstructionError(
                    f"projection of {name!r} is missing join attributes {sorted(missing)}"
                )

    # ------------------------------------------------------------------ access
    @property
    def length(self) -> int:
        """Number of instances in the target graph (the join-path length)."""
        return len(self.nodes)

    def edge_pairs(self) -> list[tuple[str, str, frozenset[str]]]:
        """(parent instance, child instance, join attributes) per edge."""
        return [
            (self.nodes[self.parents[i]], self.nodes[i + 1], self.edges[i])
            for i in range(len(self.edges))
        ]

    def purchased_instances(self) -> list[str]:
        """Instances that must actually be bought (everything not owned)."""
        return [name for name in self.nodes if name not in self.source_instances]

    def replace_edge(self, index: int, join_attributes: Iterable[str]) -> "TargetGraph":
        """A copy with edge ``index`` switched to a different join attribute set.

        Projections are re-derived so they still cover all join attributes
        while keeping any extra (non-join) attributes they already carried.
        """
        if not 0 <= index < len(self.edges):
            raise SearchError(f"edge index {index} out of range for {len(self.edges)} edges")
        new_edges = list(self.edges)
        new_edges[index] = frozenset(join_attributes)
        replacement = TargetGraph(
            nodes=list(self.nodes),
            edges=new_edges,
            parents=list(self.parents),
            projections={},
            source_instances=self.source_instances,
        )
        projections: dict[str, frozenset[str]] = {}
        for node_index, name in enumerate(self.nodes):
            old_required = self._required_join_attributes(node_index)
            extras = set(self.projections[name]) - old_required
            new_required = replacement._required_join_attributes(node_index)
            projections[name] = frozenset(new_required | extras)
        return TargetGraph(
            nodes=list(self.nodes),
            edges=new_edges,
            parents=list(self.parents),
            projections=projections,
            source_instances=self.source_instances,
        )

    def with_projection(self, name: str, attributes: Iterable[str]) -> "TargetGraph":
        """A copy with the projection of instance ``name`` replaced."""
        if name not in self.nodes:
            raise SearchError(f"instance {name!r} is not part of this target graph")
        projections = dict(self.projections)
        projections[name] = frozenset(attributes)
        return TargetGraph(
            nodes=list(self.nodes),
            edges=list(self.edges),
            parents=list(self.parents),
            projections=projections,
            source_instances=self.source_instances,
        )

    # -------------------------------------------------------------- evaluation
    def _projected_tables(self, tables: Mapping[str, Table]) -> list[Table]:
        projected: list[Table] = []
        for name in self.nodes:
            if name not in tables:
                raise SearchError(f"no table supplied for instance {name!r}")
            table = tables[name]
            keep = [a for a in table.schema.names if a in self.projections[name]]
            projected.append(table.project(keep) if keep else table)
        return projected

    def _join(self, projected: Sequence[Table], intermediate_hook=None) -> Table:
        joined = projected[0]
        for edge_index, right in enumerate(projected[1:]):
            # sorted so the key-encoding cache key is canonical for the attr set
            join_attrs = sorted(
                a for a in self.edges[edge_index] if a in joined.schema and a in right.schema
            )
            if not join_attrs:
                parent = self.nodes[self.parents[edge_index]]
                raise SearchError(
                    f"join attributes {sorted(self.edges[edge_index])} are not present on both "
                    f"sides of the join between {parent!r} and {self.nodes[edge_index + 1]!r}"
                )
            joined = inner_join(joined, right, join_attrs)
            if intermediate_hook is not None:
                joined = intermediate_hook(joined)
        return joined

    def joined_table(self, tables: Mapping[str, Table], *, intermediate_hook=None) -> Table:
        """Join the (projected) instances along the tree."""
        return self._join(self._projected_tables(tables), intermediate_hook)

    def price(self, tables: Mapping[str, Table], pricing) -> float:
        """Total purchase price: Σ over non-owned instances of the projection price."""
        total = 0.0
        for name in self.purchased_instances():
            table = tables[name]
            attributes = [a for a in table.schema.names if a in self.projections[name]]
            if attributes:
                total += pricing.price(table, attributes)
        return total

    def weight(
        self,
        tables: Mapping[str, Table],
        *,
        ji_cache: dict[tuple, float] | None = None,
    ) -> float:
        """Total join-informativeness weight: Σ JI over the edges (on the given tables).

        ``ji_cache`` (keyed by ``(left, right, attrs)`` with the instance pair
        sorted) memoises per-edge JI across repeated evaluations against the
        same tables — the MCMC walk shares one cache for the whole search.
        """
        total = 0.0
        for left_name, right_name, join_attrs in self.edge_pairs():
            left, right = tables[left_name], tables[right_name]
            usable = sorted(a for a in join_attrs if a in left.schema and a in right.schema)
            if not usable or len(left) == 0 or len(right) == 0:
                total += 1.0
                continue
            if ji_cache is None:
                total += join_informativeness(left, right, usable)
                continue
            first, second = sorted((left_name, right_name))
            key = (first, second, frozenset(usable))
            cached = ji_cache.get(key)
            if cached is None:
                cached = join_informativeness(left, right, usable)
                ji_cache[key] = cached
            total += cached
        return total

    def evaluate(
        self,
        tables: Mapping[str, Table],
        source_attributes: Sequence[str],
        target_attributes: Sequence[str],
        fds: Sequence[FunctionalDependency],
        pricing,
        *,
        intermediate_hook=None,
        ji_cache: dict[tuple, float] | None = None,
    ) -> TargetGraphEvaluation:
        """Correlation, quality, weight and price of this target graph on ``tables``."""
        joined = self._join(self._projected_tables(tables), intermediate_hook)
        correlation = attribute_set_correlation(joined, source_attributes, target_attributes)
        quality = join_quality(joined, fds)
        return TargetGraphEvaluation(
            correlation=correlation,
            quality=quality,
            weight=self.weight(tables, ji_cache=ji_cache),
            price=self.price(tables, pricing),
            join_rows=len(joined),
        )

    # ------------------------------------------------------------------ dunder
    def __repr__(self) -> str:
        path = " ⋈ ".join(self.nodes)
        return f"TargetGraph({path})"


def enumerate_covering_sets(
    attribute_to_instances: Mapping[str, Sequence[str]],
    *,
    max_sets: int = 10_000,
) -> list[frozenset[str]]:
    """Enumerate instance sets that cover all requested attributes (Def. 4.3 / Example 4.1).

    ``attribute_to_instances`` maps each requested attribute to the instances
    that contain it; the result is the de-duplicated list of instance
    combinations obtained by picking one instance per attribute.  The
    enumeration is cut off at ``max_sets`` distinct sets to stay safe on
    marketplaces where popular attributes appear in many instances.
    """
    attributes = sorted(attribute_to_instances)
    for attribute in attributes:
        if not attribute_to_instances[attribute]:
            raise SearchError(f"attribute {attribute!r} is not available in any instance")
    seen: set[frozenset[str]] = set()
    results: list[frozenset[str]] = []
    for choice in product(*(attribute_to_instances[a] for a in attributes)):
        covering = frozenset(choice)
        if covering not in seen:
            seen.add(covering)
            results.append(covering)
            if len(results) >= max_sets:
                break
    return results
