"""Attribute-set lattice (Definition 4.1 of the paper).

For an instance with attribute set ``A`` (|A| = m), the AS-lattice contains one
vertex per attribute subset of size >= 2 (2^m - m - 1 vertices in total); a
vertex with attribute set ``A1`` is the parent of ``A2`` when ``A1 ⊂ A2`` and
``|A2| = |A1| + 1``.  The lattice vertices are the purchase candidates of the
instance (each corresponds to the projection ``pi_{A'}(D)``), so the lattice
also carries per-vertex prices when a pricing model is supplied.

For wide instances full materialisation is exponential; the class therefore
supports both full enumeration (small m) and bounded/lazy enumeration around a
set of attributes of interest, which is all the online search needs.
"""

from __future__ import annotations

from itertools import combinations
from typing import Iterable, Iterator, Sequence

from repro.exceptions import GraphConstructionError
from repro.pricing.models import PricingModel
from repro.relational.table import Table


class AttributeSetLattice:
    """The AS-lattice of one instance.

    Parameters
    ----------
    instance_name:
        Name of the instance the lattice belongs to.
    attributes:
        The instance's attribute names.
    min_size:
        Smallest attribute-set size that forms a vertex.  The paper uses 2 (the
        lattice top level is all 2-attribute sets); 1 is allowed for single-
        attribute purchases, which the search uses when a target attribute
        stands alone in an instance.
    """

    def __init__(
        self,
        instance_name: str,
        attributes: Sequence[str],
        *,
        min_size: int = 1,
    ) -> None:
        if not attributes:
            raise GraphConstructionError(
                f"cannot build an AS-lattice for instance {instance_name!r} with no attributes"
            )
        if min_size < 1:
            raise GraphConstructionError(f"min_size must be >= 1, got {min_size}")
        self.instance_name = instance_name
        self.attributes: tuple[str, ...] = tuple(attributes)
        self.min_size = min_size
        self._attribute_set = frozenset(self.attributes)

    # ------------------------------------------------------------------ counts
    @property
    def num_attributes(self) -> int:
        return len(self.attributes)

    @property
    def height(self) -> int:
        """Lattice height as defined in the paper (m - 1 for the size-2 … size-m lattice)."""
        return max(0, self.num_attributes - 1)

    def num_vertices(self, *, min_size: int | None = None) -> int:
        """Number of lattice vertices: ``sum_{k=min_size}^{m} C(m, k)``."""
        from math import comb

        m = self.num_attributes
        start = self.min_size if min_size is None else min_size
        return sum(comb(m, k) for k in range(start, m + 1))

    # --------------------------------------------------------------- vertices
    def __contains__(self, attribute_set: Iterable[str]) -> bool:
        subset = frozenset(attribute_set)
        return len(subset) >= self.min_size and subset <= self._attribute_set

    def iter_vertices(self, *, max_size: int | None = None) -> Iterator[frozenset[str]]:
        """Enumerate lattice vertices level by level (smallest sets first)."""
        m = self.num_attributes
        limit = m if max_size is None else min(max_size, m)
        for size in range(self.min_size, limit + 1):
            for subset in combinations(self.attributes, size):
                yield frozenset(subset)

    def vertices_containing(
        self, required: Iterable[str], *, max_size: int | None = None
    ) -> list[frozenset[str]]:
        """Lattice vertices that contain all attributes in ``required``."""
        required_set = frozenset(required)
        if not required_set <= self._attribute_set:
            return []
        return [
            vertex
            for vertex in self.iter_vertices(max_size=max_size)
            if required_set <= vertex
        ]

    # --------------------------------------------------------------- structure
    def children(self, attribute_set: Iterable[str]) -> list[frozenset[str]]:
        """Direct children: supersets with exactly one more attribute."""
        current = frozenset(attribute_set)
        if current not in self:
            return []
        return [
            current | {extra}
            for extra in self.attributes
            if extra not in current
        ]

    def parents(self, attribute_set: Iterable[str]) -> list[frozenset[str]]:
        """Direct parents: subsets with exactly one fewer attribute (respecting min_size)."""
        current = frozenset(attribute_set)
        if current not in self or len(current) <= self.min_size:
            return []
        return [current - {attribute} for attribute in current]

    def is_ancestor(self, smaller: Iterable[str], larger: Iterable[str]) -> bool:
        """True when ``smaller ⊂ larger`` (both being lattice vertices)."""
        a, b = frozenset(smaller), frozenset(larger)
        return a in self and b in self and a < b

    def level_of(self, attribute_set: Iterable[str]) -> int:
        """Level counted from the top of the paper's lattice (size-2 sets are level 1)."""
        subset = frozenset(attribute_set)
        if subset not in self:
            raise GraphConstructionError(
                f"{sorted(subset)} is not a vertex of the lattice of {self.instance_name!r}"
            )
        return len(subset) - self.min_size + 1

    # ----------------------------------------------------------------- pricing
    def price_of(
        self, attribute_set: Iterable[str], table: Table, pricing: PricingModel
    ) -> float:
        """Price of the lattice vertex (projection of ``table`` onto the attribute set)."""
        subset = tuple(sorted(frozenset(attribute_set)))
        if frozenset(subset) not in self:
            raise GraphConstructionError(
                f"{list(subset)} is not a vertex of the lattice of {self.instance_name!r}"
            )
        return pricing.price(table, subset)
