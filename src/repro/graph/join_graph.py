"""The two-layer join graph (Definition 4.2 of the paper).

The instance layer (I-layer) has one vertex per sampled marketplace instance
and an I-edge between two instances whose schemas share at least one attribute.
The attribute-set layer (AS-layer) is the union of the per-instance AS-lattices
with AS-edges between attribute sets of different instances that share
attributes; each AS-edge carries ``(J, w)`` where ``J`` is the shared join
attribute set and ``w`` the join informativeness of the two instances on ``J``.

Property 4.1 lets us avoid materialising the exponential AS-layer: all AS-edges
between the same instance pair with the same join attribute set have the same
weight, so the graph only needs, per I-edge, the map
``join attribute set -> JI weight``; the I-edge weight is the minimum of those
weights.  AS-vertex prices are computed lazily from the pricing model through
the per-instance AS-lattice.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from itertools import combinations
from typing import Iterable, Mapping, Sequence

import networkx as nx

from repro.exceptions import GraphConstructionError
from repro.graph.lattice import AttributeSetLattice
from repro.infotheory.join_informativeness import join_informativeness
from repro.pricing.models import EntropyPricingModel, PricingModel
from repro.relational.joins import shared_join_attributes
from repro.relational.table import Table


@dataclass(frozen=True)
class IEdge:
    """An I-layer edge between two instances, with its join-attribute weight map."""

    left: str
    right: str
    weights: Mapping[frozenset[str], float] = field(default_factory=dict)

    @property
    def weight(self) -> float:
        """The I-edge weight: the minimum AS-edge weight over all join attribute sets."""
        if not self.weights:
            return float("inf")
        return min(self.weights.values())

    @property
    def best_join_attributes(self) -> frozenset[str]:
        """The join attribute set achieving the minimum weight."""
        if not self.weights:
            raise GraphConstructionError(f"I-edge {self.left}–{self.right} has no join attributes")
        return min(self.weights, key=lambda attrs: (self.weights[attrs], sorted(attrs)))

    def join_attribute_choices(self) -> list[frozenset[str]]:
        """All candidate join attribute sets, cheapest (lowest JI) first."""
        return sorted(self.weights, key=lambda attrs: (self.weights[attrs], sorted(attrs)))


class JoinGraph:
    """The two-layer join graph built from instance samples.

    Parameters
    ----------
    samples:
        The correlated samples of the marketplace instances, one per I-vertex
        (keyed by instance name).  Full instances may be passed instead of
        samples; the structure is identical (the GP baseline does exactly that).
    pricing:
        The pricing model used to price AS-vertices (attribute-set purchases).
    max_join_attribute_size:
        Upper bound on the size of the join attribute sets enumerated per
        instance pair.  Join informativeness is not monotone in the attribute
        set, so the graph enumerates subsets of the shared attributes up to
        this size (Property 4.1 keeps this exponential only in the number of
        *shared* attributes, which is small in practice).
    source_instances:
        Names of instances owned by the shopper (price 0; they appear in the
        graph so that join paths can start from them).
    reuse_cache_from:
        A previously built :class:`JoinGraph` whose cached JI weights are
        carried over for every instance pair whose sample objects are *the
        same objects* in both graphs (identity, not equality — the
        conservative check that can never resurrect a stale weight).  Used by
        the incremental refresh paths: rebuilding after a source-table
        replacement only recomputes the edges that touch replaced instances,
        and a refinement-round rebuild still reuses the source–source edges
        (shopper tables do not change when DANCE buys more samples).
    preload_ji:
        JI weights to seed the cache with before building, keyed like
        ``_ji_cache`` (``(left, right, frozenset(attrs))`` with the pair
        sorted).  This is the cross-*process* analogue of
        ``reuse_cache_from``: identity cannot survive a restart, so the
        storage layer validates persisted weights against per-sample content
        fingerprints (:func:`repro.storage.serialize.ji_weights_from_spec`)
        and passes only the still-valid ones here.  A fully warm preload
        makes ``_build`` compute zero JI values.

    The counters ``ji_computations`` (join-informativeness values actually
    computed, i.e. JI-cache misses) and ``edge_recomputes`` (I-edges whose
    weight map needed at least one fresh JI computation) start at zero per
    graph and make cache reuse assertable in tests and observable in
    :meth:`describe`.
    """

    def __init__(
        self,
        samples: Mapping[str, Table] | Sequence[Table],
        *,
        pricing: PricingModel | None = None,
        max_join_attribute_size: int = 2,
        source_instances: Iterable[str] = (),
        reuse_cache_from: "JoinGraph | None" = None,
        preload_ji: Mapping[tuple[str, str, frozenset[str]], float] | None = None,
    ) -> None:
        if not isinstance(samples, Mapping):
            samples = {table.name: table for table in samples}
        if not samples:
            raise GraphConstructionError("a join graph needs at least one instance sample")
        self._samples: dict[str, Table] = dict(samples)
        self.pricing = pricing or EntropyPricingModel()
        self.max_join_attribute_size = max_join_attribute_size
        self.source_instances: set[str] = set(source_instances)
        unknown_sources = self.source_instances - set(self._samples)
        if unknown_sources:
            raise GraphConstructionError(
                f"source instances not present in the samples: {sorted(unknown_sources)}"
            )

        self._graph = nx.Graph()
        self._edges: dict[tuple[str, str], IEdge] = {}
        self._lattices: dict[str, AttributeSetLattice] = {}
        # Per-edge join-informativeness weights, keyed by (left, right, attrs)
        # with the instance pair in sorted order.  JI on the samples is a pure
        # function of that key, so the cache survives across searches and is
        # only invalidated when an instance's sample is replaced.  The key is
        # purely structural (names and attribute sets) — array-backed
        # ColumnEncodings never enter it, so the cache works unchanged under
        # both columnar backends (repro.relational.backend) and both produce
        # bit-identical weights.
        self._ji_cache: dict[tuple[str, str, frozenset[str]], float] = {}
        self.ji_computations = 0
        self.edge_recomputes = 0
        # Bumped by every in-place structural mutation (add_instance), so
        # holders of a pickled copy (persistent process-pool workers) can
        # detect that object identity alone no longer proves equivalence.
        self.revision = 0
        if preload_ji:
            for (left, right, attrs), weight in preload_ji.items():
                if left in self._samples and right in self._samples:
                    self._ji_cache[(left, right, frozenset(attrs))] = float(weight)
        if reuse_cache_from is not None:
            self._seed_cache_from(reuse_cache_from)
        self._build()

    def _seed_cache_from(self, prior: "JoinGraph") -> None:
        """Adopt ``prior``'s JI weights for pairs whose samples are unchanged.

        A cached weight is a pure function of the two endpoint samples and the
        attribute set, so it stays valid exactly when both endpoint tables are
        the same objects in both graphs (tables are immutable by convention).
        """
        for (left, right, attrs), weight in prior._ji_cache.items():
            mine_left, mine_right = self._samples.get(left), self._samples.get(right)
            if mine_left is None or mine_right is None:
                continue
            theirs_left = prior._samples.get(left)
            theirs_right = prior._samples.get(right)
            if mine_left is theirs_left and mine_right is theirs_right:
                self._ji_cache[(left, right, attrs)] = weight

    # ------------------------------------------------------------------- build
    def _build(self) -> None:
        for name, table in self._samples.items():
            self._graph.add_node(name, num_rows=len(table), attributes=table.schema.names)
            self._lattices[name] = AttributeSetLattice(name, table.schema.names)

        for left_name, right_name in combinations(sorted(self._samples), 2):
            left, right = self._samples[left_name], self._samples[right_name]
            shared = shared_join_attributes(left, right)
            if not shared:
                continue
            weights = self._edge_weights(left, right, shared)
            edge = IEdge(left_name, right_name, weights)
            self._edges[(left_name, right_name)] = edge
            self._graph.add_edge(left_name, right_name, weight=edge.weight)

    def _edge_weights(
        self, left: Table, right: Table, shared: Sequence[str]
    ) -> dict[frozenset[str], float]:
        """JI weight per candidate join attribute set (Property 4.1 weight sharing)."""
        weights: dict[frozenset[str], float] = {}
        limit = min(self.max_join_attribute_size, len(shared))
        computed_before = self.ji_computations
        for size in range(1, limit + 1):
            for attrs in combinations(shared, size):
                weights[frozenset(attrs)] = self.edge_weight(left.name, right.name, attrs)
        if self.ji_computations != computed_before:
            self.edge_recomputes += 1
        return weights

    def edge_weight(self, left: str, right: str, attrs: Iterable[str]) -> float:
        """JI of instances ``left`` and ``right`` on ``attrs`` (cached on the graph).

        Empty samples weigh 1.0 (an uninformative join), matching the
        pessimistic default used during target-graph evaluation.
        """
        attr_set = frozenset(attrs)
        first, second = sorted((left, right))
        key = (first, second, attr_set)
        cached = self._ji_cache.get(key)
        if cached is None:
            self.ji_computations += 1
            left_table, right_table = self.sample(left), self.sample(right)
            if len(left_table) == 0 or len(right_table) == 0:
                cached = 1.0
            else:
                cached = join_informativeness(left_table, right_table, sorted(attr_set))
            self._ji_cache[key] = cached
        return cached

    # ------------------------------------------------------------------ access
    @property
    def instance_names(self) -> tuple[str, ...]:
        return tuple(sorted(self._samples))

    @property
    def igraph(self) -> nx.Graph:
        """The I-layer as a networkx graph (edge attribute ``weight`` = I-edge weight)."""
        return self._graph

    def __contains__(self, name: object) -> bool:
        return name in self._samples

    def __len__(self) -> int:
        return len(self._samples)

    def sample(self, name: str) -> Table:
        try:
            return self._samples[name]
        except KeyError:
            raise GraphConstructionError(
                f"unknown instance {name!r}; known: {sorted(self._samples)}"
            ) from None

    def samples(self, names: Sequence[str]) -> list[Table]:
        return [self.sample(name) for name in names]

    def instance_tables(self) -> dict[str, Table]:
        """Snapshot of every instance's sample table, keyed by name."""
        return dict(self._samples)

    def ji_weights(self) -> dict[tuple[str, str, frozenset[str]], float]:
        """Snapshot of the JI cache (``(left, right, attrs) -> weight``).

        The keys are purely structural, so the snapshot can be shipped across
        process boundaries and preloaded into another graph
        (``JoinGraph(preload_ji=...)`` / ``add_instance(preload_ji=...)``) to
        make its edge recomputation hit the cache instead of re-measuring."""
        return dict(self._ji_cache)

    def lattice(self, name: str) -> AttributeSetLattice:
        self.sample(name)
        return self._lattices[name]

    def edge(self, left: str, right: str) -> IEdge:
        key = (left, right) if (left, right) in self._edges else (right, left)
        try:
            return self._edges[key]
        except KeyError:
            raise GraphConstructionError(f"no I-edge between {left!r} and {right!r}") from None

    def has_edge(self, left: str, right: str) -> bool:
        return (left, right) in self._edges or (right, left) in self._edges

    def edges(self) -> list[IEdge]:
        return list(self._edges.values())

    def neighbors(self, name: str) -> tuple[str, ...]:
        self.sample(name)
        return tuple(sorted(self._graph.neighbors(name)))

    # ---------------------------------------------------------------- vertices
    def num_as_vertices(self) -> int:
        """Total AS-layer size: ``Σ_i (2^{m_i} - m_i - 1)`` (reported, never materialised)."""
        total = 0
        for lattice in self._lattices.values():
            m = lattice.num_attributes
            total += 2**m - m - 1
        return total

    def instances_with_attribute(self, attribute: str) -> tuple[str, ...]:
        """Instances whose schema contains ``attribute`` (Def. 4.3 covering vertices)."""
        return tuple(
            sorted(
                name for name, table in self._samples.items() if attribute in table.schema
            )
        )

    def price_of(self, name: str, attributes: Sequence[str]) -> float:
        """Price of the AS-vertex ``(name, attributes)``; source instances are free."""
        if name in self.source_instances:
            return 0.0
        table = self.sample(name)
        return self.pricing.price(table, attributes)

    # ---------------------------------------------------------------- mutation
    def add_instance(
        self,
        table: Table,
        *,
        is_source: bool = False,
        preload_ji: Mapping[tuple[str, str, frozenset[str]], float] | None = None,
    ) -> None:
        """Add (or replace) one instance sample and update the affected edges.

        Used by the online phase's iterative refinement: when no feasible
        target graph exists, DANCE purchases more samples and updates the graph.

        ``preload_ji`` seeds the JI cache *after* the stale entries of a
        replaced instance are dropped, so a caller that already knows the new
        edge weights (a shared-memory worker applying a versioned delta, see
        :mod:`repro.search.shm`) turns the recomputation into pure cache hits.
        """
        name = table.name
        replacing = name in self._samples
        self.revision += 1
        self._samples[name] = table
        if is_source:
            self.source_instances.add(name)
        if replacing:
            stale = [key for key in self._edges if name in key]
            for key in stale:
                del self._edges[key]
            stale_ji = [key for key in self._ji_cache if name in key[:2]]
            for key in stale_ji:
                del self._ji_cache[key]
            if self._graph.has_node(name):
                self._graph.remove_node(name)
        if preload_ji:
            for (left, right, attrs), weight in preload_ji.items():
                if left in self._samples and right in self._samples:
                    self._ji_cache[(left, right, frozenset(attrs))] = float(weight)
        self._graph.add_node(name, num_rows=len(table), attributes=table.schema.names)
        self._lattices[name] = AttributeSetLattice(name, table.schema.names)
        for other_name, other in self._samples.items():
            if other_name == name:
                continue
            shared = shared_join_attributes(table, other)
            if not shared:
                continue
            weights = self._edge_weights(table, other, shared)
            key = tuple(sorted((name, other_name)))
            edge = IEdge(key[0], key[1], weights)
            self._edges[(key[0], key[1])] = edge
            self._graph.add_edge(key[0], key[1], weight=edge.weight)

    # --------------------------------------------------------------- summaries
    def describe(self) -> dict[str, object]:
        return {
            "num_instances": len(self._samples),
            "num_i_edges": len(self._edges),
            "num_as_vertices": self.num_as_vertices(),
            "source_instances": sorted(self.source_instances),
            "instances": {name: len(table) for name, table in self._samples.items()},
            "ji_computations": self.ji_computations,
            "edge_recomputes": self.edge_recomputes,
        }
