"""Step 1 of the online search: minimal-weight I-layer graphs (Section 5.1).

Given the I-layer of the join graph and the source / target instance vertices,
Step 1 builds, for each landmark, the union of the (approximate) shortest
weighted paths connecting every source/target vertex to the landmark; the
result is a Steiner-tree-like connected subgraph of minimal total weight.  If
the best subgraph's total weight exceeds the shopper's α threshold there is no
feasible target graph and the search reports infeasibility.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Sequence

import networkx as nx

from repro.exceptions import InfeasibleAcquisitionError, SearchError
from repro.graph.join_graph import JoinGraph
from repro.graph.landmarks import LandmarkIndex, resolve_landmark_seed


@dataclass(frozen=True)
class IGraph:
    """A connected I-layer subgraph produced by Step 1."""

    nodes: tuple[str, ...]
    edges: tuple[tuple[str, str], ...]
    total_weight: float

    @property
    def size(self) -> int:
        """Number of I-vertices (the quantity reported in Figure 5(b))."""
        return len(self.nodes)

    def contains_all(self, names: Iterable[str]) -> bool:
        node_set = set(self.nodes)
        return all(name in node_set for name in names)


def _subgraph_from_paths(graph: nx.Graph, paths: Sequence[Sequence[str]]) -> IGraph:
    nodes: set[str] = set()
    edges: set[tuple[str, str]] = set()
    total = 0.0
    for path in paths:
        nodes.update(path)
        for left, right in zip(path, path[1:]):
            key = tuple(sorted((left, right)))
            if key in edges:
                continue
            edges.add(key)
            data = graph.get_edge_data(left, right) or {}
            total += data.get("weight", 1.0)
    return IGraph(tuple(sorted(nodes)), tuple(sorted(edges)), total)


def minimal_weight_igraphs(
    join_graph: JoinGraph,
    terminal_instances: Sequence[str],
    *,
    num_landmarks: int = 4,
    max_weight: float = float("inf"),
    rng: int | None = None,
    landmark_seed: int | None = None,
) -> list[IGraph]:
    """Find candidate minimal-weight I-layer subgraphs containing all terminals.

    One candidate subgraph is built per hub (each landmark plus each terminal):
    the union of the shortest weighted paths from every terminal to that hub.
    Candidates violating the α threshold are dropped; the survivors are
    returned ordered by total weight (lightest first), de-duplicated by vertex
    set.  Step 2 of the online search explores the AS-layer of the lightest
    few of these.

    The result is a pure function of ``(terminal set, max_weight,
    num_landmarks, landmark_seed, join graph)`` — landmark selection is seeded
    by the explicit ``landmark_seed`` (the legacy ``rng`` keyword accepts an
    int or ``None``, normalized through
    :func:`repro.graph.landmarks.canonical_landmark_seed`; a mutable
    ``random.Random`` is rejected).  This purity is what lets the acquisition
    service memoise Step 1 across warm requests.

    Raises
    ------
    InfeasibleAcquisitionError
        When no connected subgraph contains all terminals, or every connected
        candidate exceeds ``max_weight``.
    """
    if not terminal_instances:
        raise SearchError("Step 1 needs at least one terminal instance")
    unknown = [name for name in terminal_instances if name not in join_graph]
    if unknown:
        raise SearchError(f"terminal instances not in the join graph: {unknown}")
    landmark_seed = resolve_landmark_seed(rng, landmark_seed)

    graph = join_graph.igraph
    terminals = sorted(set(terminal_instances))
    if len(terminals) == 1:
        return [IGraph((terminals[0],), (), 0.0)]

    index = LandmarkIndex(graph, num_landmarks=num_landmarks, landmark_seed=landmark_seed)

    candidates: dict[tuple[str, ...], IGraph] = {}
    candidate_landmarks = list(index.landmarks)
    # Also consider each terminal itself as a "landmark": connecting everything
    # through a terminal is often the lightest option on small marketplaces and
    # costs nothing extra (shortest paths to terminals fall out of Dijkstra).
    found_connected = False
    for hub in candidate_landmarks + terminals:
        paths = []
        feasible = True
        for terminal in terminals:
            if hub in index.landmarks:
                path = index.path_to_landmark(terminal, hub)
                if not path:
                    feasible = False
                    break
                paths.append(path)
            else:
                try:
                    path = nx.dijkstra_path(graph, hub, terminal, weight="weight")
                except (nx.NetworkXNoPath, nx.NodeNotFound):
                    feasible = False
                    break
                paths.append(path)
        if not feasible:
            continue
        candidate = _subgraph_from_paths(graph, paths)
        if not candidate.contains_all(terminals):
            continue
        found_connected = True
        if candidate.total_weight > max_weight:
            continue
        existing = candidates.get(candidate.nodes)
        if existing is None or candidate.total_weight < existing.total_weight:
            candidates[candidate.nodes] = candidate

    if not candidates:
        if found_connected:
            raise InfeasibleAcquisitionError(
                f"every I-graph connecting {terminals} exceeds the "
                f"join-informativeness threshold {max_weight:.4f}"
            )
        raise InfeasibleAcquisitionError(
            f"no connected I-layer subgraph contains all of {terminals}"
        )
    return sorted(candidates.values(), key=lambda ig: (ig.total_weight, ig.size, ig.nodes))


def minimal_weight_igraph(
    join_graph: JoinGraph,
    terminal_instances: Sequence[str],
    *,
    num_landmarks: int = 4,
    max_weight: float = float("inf"),
    rng: int | None = None,
    landmark_seed: int | None = None,
) -> IGraph:
    """The single lightest I-graph (see :func:`minimal_weight_igraphs`)."""
    return minimal_weight_igraphs(
        join_graph,
        terminal_instances,
        num_landmarks=num_landmarks,
        max_weight=max_weight,
        rng=rng,
        landmark_seed=landmark_seed,
    )[0]


def igraph_join_order(igraph: IGraph, start: str | None = None) -> list[str]:
    """A join order for the I-graph: a BFS/DFS traversal that keeps each prefix connected."""
    if not igraph.nodes:
        return []
    adjacency: dict[str, list[str]] = {node: [] for node in igraph.nodes}
    for left, right in igraph.edges:
        adjacency[left].append(right)
        adjacency[right].append(left)
    for neighbors in adjacency.values():
        neighbors.sort()
    root = start if start in adjacency else igraph.nodes[0]
    order: list[str] = []
    visited: set[str] = set()
    stack = [root]
    while stack:
        node = stack.pop()
        if node in visited:
            continue
        visited.add(node)
        order.append(node)
        for neighbor in reversed(adjacency[node]):
            if neighbor not in visited:
                stack.append(neighbor)
    # isolated nodes (possible when the igraph is a single vertex) come last
    for node in igraph.nodes:
        if node not in visited:
            order.append(node)
    return order
