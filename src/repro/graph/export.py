"""Export of the join graph and target graphs to JSON and Graphviz DOT.

Downstream users (and the examples) want to *look* at the two-layer join graph
and at the recommended target graph.  These helpers serialise both structures
without pulling in any plotting dependency:

* :func:`join_graph_to_dict` / :func:`target_graph_to_dict` — plain-dict forms
  suitable for ``json.dumps`` or further processing;
* :func:`join_graph_to_dot` / :func:`target_graph_to_dot` — Graphviz DOT text
  (render with ``dot -Tpng`` outside this library if desired).
"""

from __future__ import annotations

import json
from pathlib import Path

from repro.graph.join_graph import JoinGraph
from repro.graph.target import TargetGraph


def join_graph_to_dict(join_graph: JoinGraph) -> dict[str, object]:
    """A JSON-serialisable description of the I-layer and per-edge weight maps."""
    nodes = []
    for name in join_graph.instance_names:
        sample = join_graph.sample(name)
        nodes.append(
            {
                "name": name,
                "num_rows": len(sample),
                "attributes": list(sample.schema.names),
                "is_source": name in join_graph.source_instances,
            }
        )
    edges = []
    for edge in join_graph.edges():
        edges.append(
            {
                "left": edge.left,
                "right": edge.right,
                "weight": edge.weight,
                "join_attribute_weights": {
                    ",".join(sorted(attrs)): weight for attrs, weight in edge.weights.items()
                },
            }
        )
    return {"nodes": nodes, "edges": edges}


def target_graph_to_dict(target_graph: TargetGraph) -> dict[str, object]:
    """A JSON-serialisable description of a target graph."""
    return {
        "nodes": list(target_graph.nodes),
        "source_instances": sorted(target_graph.source_instances),
        "projections": {
            name: sorted(attrs) for name, attrs in target_graph.projections.items()
        },
        "edges": [
            {"parent": parent, "child": child, "join_attributes": sorted(attrs)}
            for parent, child, attrs in target_graph.edge_pairs()
        ],
    }


def _quote(identifier: str) -> str:
    return '"' + identifier.replace('"', r"\"") + '"'


def join_graph_to_dot(join_graph: JoinGraph, *, name: str = "join_graph") -> str:
    """Graphviz DOT text of the I-layer (edge labels: best join attributes + weight)."""
    lines = [f"graph {_quote(name)} {{", "  node [shape=box];"]
    for node_name in join_graph.instance_names:
        label = node_name
        if node_name in join_graph.source_instances:
            lines.append(f"  {_quote(node_name)} [label={_quote(label)}, style=filled, fillcolor=lightblue];")
        else:
            lines.append(f"  {_quote(node_name)} [label={_quote(label)}];")
    for edge in join_graph.edges():
        join_attrs = ",".join(sorted(edge.best_join_attributes))
        label = f"{join_attrs} ({edge.weight:.3f})"
        lines.append(
            f"  {_quote(edge.left)} -- {_quote(edge.right)} [label={_quote(label)}];"
        )
    lines.append("}")
    return "\n".join(lines)


def target_graph_to_dot(target_graph: TargetGraph, *, name: str = "target_graph") -> str:
    """Graphviz DOT text of a target graph (node labels include the projections)."""
    lines = [f"digraph {_quote(name)} {{", "  node [shape=record];"]
    for node_name in target_graph.nodes:
        attrs = ", ".join(sorted(target_graph.projections[node_name]))
        label = f"{node_name}|{attrs}"
        fill = ", style=filled, fillcolor=lightblue" if node_name in target_graph.source_instances else ""
        lines.append(f"  {_quote(node_name)} [label={_quote(label)}{fill}];")
    for parent, child, attrs in target_graph.edge_pairs():
        label = ",".join(sorted(attrs))
        lines.append(f"  {_quote(parent)} -> {_quote(child)} [label={_quote(label)}];")
    lines.append("}")
    return "\n".join(lines)


def write_join_graph_json(join_graph: JoinGraph, path: str | Path) -> Path:
    """Write :func:`join_graph_to_dict` to ``path`` as pretty-printed JSON."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(json.dumps(join_graph_to_dict(join_graph), indent=2, sort_keys=True))
    return path


def write_dot(dot_text: str, path: str | Path) -> Path:
    """Write DOT text to ``path``."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(dot_text)
    return path
