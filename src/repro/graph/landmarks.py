"""Landmark-based approximate shortest paths on the I-layer.

Step 1 of the online search (Section 5.1) extends the landmark / sketch-based
approximate shortest-path method of Gubichev et al.: a small set of I-vertices
is chosen as landmarks, the exact shortest weighted path from every vertex to
every landmark is pre-computed offline, and an (approximate) path between two
arbitrary vertices is obtained by concatenating their paths through the best
landmark.  The pre-computation is one Dijkstra per landmark, so queries run in
time logarithmic in the number of vertices (just a minimum over landmarks).
"""

from __future__ import annotations

import hashlib
import random
from typing import Sequence

import networkx as nx

from repro.exceptions import SearchError


def canonical_landmark_seed(rng: int | None) -> int:
    """Normalize Step-1 randomness to an explicit integer landmark seed.

    Step 1's output must depend only on declared inputs — the memoisation key
    of the acquisition service is ``(terminal set, alpha, num_landmarks,
    landmark seed, graph version)``.  A caller-owned mutable
    ``random.Random`` breaks that: the landmarks drawn would depend on every
    prior draw from the shared stream, so such values are rejected rather
    than silently consumed.  ``None`` maps to the documented default seed 0.
    """
    if rng is None:
        return 0
    if isinstance(rng, random.Random):
        raise SearchError(
            "Step 1 takes an integer landmark seed, not a mutable random.Random: "
            "a shared stream would make the landmark choice depend on prior draws"
        )
    if isinstance(rng, int):
        return rng
    raise SearchError(f"landmark seed must be an int or None, got {type(rng).__name__}")


def resolve_landmark_seed(rng: int | None, landmark_seed: int | None) -> int:
    """Resolve the two seed keywords of a Step-1 entry point to one integer.

    Every layer that accepts both the explicit ``landmark_seed`` and the
    legacy ``rng`` keyword (``LandmarkIndex``, ``minimal_weight_igraphs``,
    ``heuristic_acquisition``) applies this single rule: the two are mutually
    exclusive, and ``rng`` is normalized through
    :func:`canonical_landmark_seed`.
    """
    if landmark_seed is not None and rng is not None:
        raise SearchError("pass either landmark_seed or rng, not both")
    if landmark_seed is None:
        return canonical_landmark_seed(rng)
    return landmark_seed


def derive_landmark_seed(base_seed: int) -> int:
    """The canonical landmark seed derived from a search base seed.

    Domain-tagged blake2b, the same recipe as
    :func:`repro.search.chains.chain_seed` /
    :func:`repro.service.batch.request_seed` — stable across processes and
    Python versions, and independent of the MCMC proposal stream seeded from
    the same base (two fresh ``random.Random(seed)`` instances would replay
    identical draws).
    """
    digest = hashlib.blake2b(
        f"landmarks:{base_seed}".encode("utf-8"), digest_size=8
    ).digest()
    return int.from_bytes(digest, "big")


class LandmarkIndex:
    """Pre-computed shortest paths from every vertex to a set of landmark vertices.

    Landmark selection is seeded by ``landmark_seed`` (an explicit integer;
    the legacy ``rng`` keyword accepts an int or ``None`` and is normalized
    through :func:`canonical_landmark_seed`), so the index depends only on
    ``(graph, num_landmarks, landmark_seed)``.
    """

    def __init__(
        self,
        graph: nx.Graph,
        *,
        num_landmarks: int = 4,
        rng: int | None = None,
        landmark_seed: int | None = None,
        weight: str = "weight",
    ) -> None:
        if graph.number_of_nodes() == 0:
            raise SearchError("cannot build a landmark index on an empty graph")
        if num_landmarks < 1:
            raise SearchError(f"num_landmarks must be >= 1, got {num_landmarks}")
        self.landmark_seed = landmark_seed = resolve_landmark_seed(rng, landmark_seed)

        self._graph = graph
        self._weight = weight
        nodes = sorted(graph.nodes)
        k = min(num_landmarks, len(nodes))
        self.landmarks: tuple[str, ...] = tuple(
            random.Random(landmark_seed).sample(nodes, k)
        )

        # distances[l][v] and paths[l][v]: shortest path from landmark l to v.
        self._distances: dict[str, dict[str, float]] = {}
        self._paths: dict[str, dict[str, list[str]]] = {}
        for landmark in self.landmarks:
            distances, paths = nx.single_source_dijkstra(graph, landmark, weight=weight)
            self._distances[landmark] = distances
            self._paths[landmark] = paths

    # ------------------------------------------------------------------ access
    def distance_to_landmark(self, vertex: str, landmark: str) -> float:
        """Exact shortest distance from ``vertex`` to ``landmark`` (inf if disconnected)."""
        return self._distances.get(landmark, {}).get(vertex, float("inf"))

    def path_to_landmark(self, vertex: str, landmark: str) -> list[str]:
        """Shortest path from ``landmark`` to ``vertex`` ([] if disconnected)."""
        return list(self._paths.get(landmark, {}).get(vertex, []))

    # ----------------------------------------------------------------- queries
    def estimate_distance(self, source: str, destination: str) -> float:
        """Landmark upper bound on d(source, destination): min over landmarks of the detour."""
        best = float("inf")
        for landmark in self.landmarks:
            through = self.distance_to_landmark(source, landmark) + self.distance_to_landmark(
                destination, landmark
            )
            best = min(best, through)
        return best

    def approximate_path(self, source: str, destination: str) -> list[str]:
        """An approximate shortest path obtained by concatenating through the best landmark.

        The concatenated walk may visit a vertex twice; such cycles are removed
        (keeping the first occurrence), which can only shorten the path.
        Returns ``[]`` when the two vertices are not connected through any
        landmark.
        """
        if source == destination:
            return [source]
        best_landmark = None
        best_distance = float("inf")
        for landmark in self.landmarks:
            through = self.distance_to_landmark(source, landmark) + self.distance_to_landmark(
                destination, landmark
            )
            if through < best_distance:
                best_distance = through
                best_landmark = landmark
        if best_landmark is None or best_distance == float("inf"):
            return []
        to_source = self.path_to_landmark(source, best_landmark)
        to_destination = self.path_to_landmark(destination, best_landmark)
        walk = list(reversed(to_source)) + to_destination[1:]
        # remove cycles: keep the segment between the first and last occurrence collapse
        seen: dict[str, int] = {}
        cleaned: list[str] = []
        for vertex in walk:
            if vertex in seen:
                cleaned = cleaned[: seen[vertex] + 1]
            else:
                seen[vertex] = len(cleaned)
                cleaned.append(vertex)
                continue
            # re-index after truncation
            seen = {v: i for i, v in enumerate(cleaned)}
        return cleaned

    def path_weight(self, path: Sequence[str]) -> float:
        """Total weight of a path in the underlying graph."""
        total = 0.0
        for left, right in zip(path, path[1:]):
            data = self._graph.get_edge_data(left, right)
            if data is None:
                return float("inf")
            total += data.get(self._weight, 1.0)
        return total
