"""The two-layer join graph and its search-support structures (Section 4).

``lattice``
    The attribute-set lattice (AS-lattice) of a single instance (Def. 4.1).
``join_graph``
    The two-layer join graph (Def. 4.2): instance layer (I-vertices/I-edges)
    plus the per-edge join-attribute weights that, by Property 4.1, fully
    determine all AS-edge weights.
``target``
    Source/target vertex sets (Def. 4.3) and the target graph (Def. 4.4) with
    its price, weight, quality and correlation evaluation.
``landmarks``
    Landmark-based approximate shortest paths on the I-layer (Gubichev et al.).
``steiner``
    The minimal-weight I-graph construction (Step 1 of the online search).
"""

from repro.graph.lattice import AttributeSetLattice
from repro.graph.join_graph import JoinGraph, IEdge
from repro.graph.target import TargetGraph, TargetGraphEvaluation, enumerate_covering_sets
from repro.graph.landmarks import (
    LandmarkIndex,
    canonical_landmark_seed,
    derive_landmark_seed,
    resolve_landmark_seed,
)
from repro.graph.steiner import minimal_weight_igraph, minimal_weight_igraphs
from repro.graph.export import (
    join_graph_to_dict,
    join_graph_to_dot,
    target_graph_to_dict,
    target_graph_to_dot,
)

__all__ = [
    "join_graph_to_dict",
    "join_graph_to_dot",
    "target_graph_to_dict",
    "target_graph_to_dot",
    "AttributeSetLattice",
    "JoinGraph",
    "IEdge",
    "TargetGraph",
    "TargetGraphEvaluation",
    "enumerate_covering_sets",
    "LandmarkIndex",
    "canonical_landmark_seed",
    "derive_landmark_seed",
    "resolve_landmark_seed",
    "minimal_weight_igraph",
    "minimal_weight_igraphs",
]
