"""Figure 6: correlation difference (heuristic vs LP / GP) as the sampling rate varies.

For sampling rates 0.1–1.0 and queries Q1/Q2/Q3 on TPC-H, the correlation of
the heuristic's chosen target graph — measured on the *full* data — is compared
to the optimum found by LP and GP.  CD = (X_opt − X) / X_opt; the paper reports
CD ≤ ~0.31 everywhere, decreasing as the sampling rate grows.
"""

from __future__ import annotations

from typing import Sequence

from repro.experiments.common import correlation_difference, prepare_setup


def run_fig6(
    *,
    query_names: Sequence[str] = ("Q1", "Q2", "Q3"),
    sampling_rates: Sequence[float] = (0.1, 0.4, 0.7, 1.0),
    scale: float = 0.15,
    budget_ratio: float = 0.9,
    mcmc_iterations: int = 80,
    seed: int = 0,
) -> list[dict[str, object]]:
    """One row per (query, sampling rate): CD vs LP and CD vs GP."""
    rows: list[dict[str, object]] = []
    for query_name in query_names:
        for rate in sampling_rates:
            setup = prepare_setup(
                "tpch",
                query_name,
                scale=scale,
                sampling_rate=rate,
                mcmc_iterations=mcmc_iterations,
                seed=seed,
            )
            budget = setup.budget_for_ratio(budget_ratio)
            # GP evaluates (and prices) candidates on the full data, so its
            # budget is the same ratio applied to the full-data price scale.
            gp_budget = setup.budget_for_ratio(budget_ratio, on_full_data=True)
            heuristic = setup.run_heuristic(budget=budget)
            lp = setup.run_local_optimal(budget=budget)
            gp = setup.run_global_optimal(budget=gp_budget)

            heuristic_corr = setup.true_correlation(heuristic.best_graph)
            lp_corr = setup.true_correlation(lp.best_graph)
            gp_corr = setup.true_correlation(gp.best_graph)

            rows.append(
                {
                    "query": query_name,
                    "sampling_rate": rate,
                    "heuristic_correlation": heuristic_corr,
                    "lp_correlation": lp_corr,
                    "gp_correlation": gp_corr,
                    "cd_vs_lp": correlation_difference(lp_corr, heuristic_corr),
                    "cd_vs_gp": correlation_difference(gp_corr, heuristic_corr),
                }
            )
    return rows
