"""Table 6: acquisition with DANCE vs direct purchase from the marketplace.

For each query (at a fixed budget ratio, the paper uses 0.13), the heuristic's
recommendation (evaluated from DANCE's samples) is compared with the
recommendation a shopper with full marketplace access would compute (the GP
baseline, evaluated on the full data).  The reported columns are the real
correlation, quality, join informativeness and price of both recommendations.
Expected shape: DANCE's correlation is close to GP's (≈ 90 % of optimal) at an
equal or lower price.
"""

from __future__ import annotations

from typing import Sequence

from repro.experiments.common import prepare_setup


def run_table6(
    *,
    query_names: Sequence[str] = ("Q1", "Q2", "Q3"),
    budget_ratio: float = 0.9,
    scale: float = 0.15,
    sampling_rate: float = 0.7,
    mcmc_iterations: int = 80,
    seed: int = 0,
) -> list[dict[str, object]]:
    """Two rows per query: one for DANCE, one for the direct (GP) purchase."""
    rows: list[dict[str, object]] = []
    for query_name in query_names:
        setup = prepare_setup(
            "tpch",
            query_name,
            scale=scale,
            sampling_rate=sampling_rate,
            mcmc_iterations=mcmc_iterations,
            seed=seed,
        )
        budget = setup.budget_for_ratio(budget_ratio)
        gp_budget = setup.budget_for_ratio(budget_ratio, on_full_data=True)
        heuristic = setup.run_heuristic(budget=budget)
        gp = setup.run_global_optimal(budget=gp_budget)

        for label, graph in (("DANCE", heuristic.best_graph), ("direct", gp.best_graph)):
            if graph is None:
                rows.append(
                    {
                        "query": query_name,
                        "approach": label,
                        "correlation": 0.0,
                        "quality": 0.0,
                        "join_informativeness": float("nan"),
                        "price": float("nan"),
                        "feasible": False,
                    }
                )
                continue
            evaluation = graph.evaluate(
                setup.full_tables,
                setup.query.source_attributes,
                setup.query.target_attributes,
                setup.fds,
                setup.pricing,
            )
            rows.append(
                {
                    "query": query_name,
                    "approach": label,
                    "correlation": evaluation.correlation,
                    "quality": evaluation.quality,
                    "join_informativeness": evaluation.weight,
                    "price": evaluation.price,
                    "feasible": True,
                }
            )
    return rows
