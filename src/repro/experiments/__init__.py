"""Experiment drivers that regenerate every table and figure of the evaluation.

Each module exposes one ``run_*`` function returning plain dictionaries /
rows, so the same code backs the pytest-benchmark harness in ``benchmarks/``,
the examples, and the EXPERIMENTS.md regeneration.  The drivers work on the
laptop-scale synthetic workloads; the quantities of interest are the *shapes*
(orderings, trends, crossovers) rather than the absolute numbers of the
authors' testbed.
"""

from repro.experiments.common import ExperimentSetup, prepare_setup
from repro.experiments.table5 import run_table5
from repro.experiments.fig4 import run_fig4
from repro.experiments.fig5 import run_fig5_instances, run_fig5_budget
from repro.experiments.fig6 import run_fig6
from repro.experiments.fig7 import run_fig7
from repro.experiments.fig8 import run_fig8
from repro.experiments.table6 import run_table6

__all__ = [
    "ExperimentSetup",
    "prepare_setup",
    "run_table5",
    "run_fig4",
    "run_fig5_instances",
    "run_fig5_budget",
    "run_fig6",
    "run_fig7",
    "run_fig8",
    "run_table6",
]
