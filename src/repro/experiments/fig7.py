"""Figure 7: correlation of Heuristic / LP / GP as the budget ratio varies (TPC-H).

For budget ratios 0.07–0.15 and queries Q1/Q2/Q3, each algorithm's chosen
target graph is scored by its *real* correlation on the full data.  Expected
shape: correlation rises (weakly monotonically) with the budget, the heuristic
stays close to LP/GP, and GP is an upper envelope.
"""

from __future__ import annotations

from typing import Sequence

from repro.experiments.common import prepare_setup


def run_fig7(
    *,
    query_names: Sequence[str] = ("Q1", "Q2", "Q3"),
    budget_ratios: Sequence[float] = (0.07, 0.09, 0.11, 0.13, 0.15),
    scale: float = 0.15,
    sampling_rate: float = 0.7,
    mcmc_iterations: int = 80,
    seed: int = 0,
) -> list[dict[str, object]]:
    """One row per (query, budget ratio): correlation of heuristic, LP and GP."""
    rows: list[dict[str, object]] = []
    setups = {
        query_name: prepare_setup(
            "tpch",
            query_name,
            scale=scale,
            sampling_rate=sampling_rate,
            mcmc_iterations=mcmc_iterations,
            seed=seed,
        )
        for query_name in query_names
    }
    for query_name, setup in setups.items():
        for ratio in budget_ratios:
            budget = setup.budget_for_ratio(ratio)
            # same ratio, but on the full-data price scale for the GP baseline
            gp_budget = setup.budget_for_ratio(ratio, on_full_data=True)
            heuristic = setup.run_heuristic(budget=budget)
            lp = setup.run_local_optimal(budget=budget)
            gp = setup.run_global_optimal(budget=gp_budget)
            rows.append(
                {
                    "query": query_name,
                    "budget_ratio": ratio,
                    "heuristic_correlation": setup.true_correlation(heuristic.best_graph),
                    "lp_correlation": setup.true_correlation(lp.best_graph),
                    "gp_correlation": setup.true_correlation(gp.best_graph),
                    "heuristic_feasible": heuristic.feasible,
                }
            )
    return rows
