"""Table 5: dataset description (instances, sizes, attribute counts, FDs per table)."""

from __future__ import annotations

from repro.quality.discovery import discover_afds
from repro.workloads.schema_spec import GeneratedWorkload
from repro.experiments.common import load_workload


def run_table5(
    workloads: dict[str, GeneratedWorkload] | None = None,
    *,
    fd_max_violation: float = 0.1,
    fd_max_lhs_size: int = 1,
) -> list[dict[str, object]]:
    """One row per workload, mirroring the columns of the paper's Table 5.

    FD counts are measured by AFD discovery on each instance (the paper reports
    the average per table under a 0.1 violation threshold).
    """
    if workloads is None:
        workloads = {"tpch": load_workload("tpch"), "tpce": load_workload("tpce")}

    rows: list[dict[str, object]] = []
    for name, workload in workloads.items():
        description = workload.describe()
        fd_counts = []
        for table in workload.tables.values():
            discovered = discover_afds(
                table, max_violation=fd_max_violation, max_lhs_size=fd_max_lhs_size
            )
            fd_counts.append(len(discovered))
        avg_fds = sum(fd_counts) / len(fd_counts) if fd_counts else 0.0
        rows.append(
            {
                "workload": name,
                "num_instances": description["num_instances"],
                "min_instance_size": description["min_instance_size"],
                "max_instance_size": description["max_instance_size"],
                "min_num_attributes": description["min_num_attributes"],
                "max_num_attributes": description["max_num_attributes"],
                "avg_fds_per_table": avg_fds,
            }
        )
    return rows
