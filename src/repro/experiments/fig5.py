"""Figure 5: heuristic runtime on TPC-E — #instances sweep, I-graph sizes, budget sweep.

(a) heuristic runtime for n ∈ {10, 15, 20, 25, 29} instances (LP/GP do not
    terminate in reasonable time on the 29-table workload, so only the
    heuristic is reported);
(b) the I-graph size found by Step 1 for each setting;
(c) heuristic runtime as the budget ratio varies (with "N/A" entries when no
    option is affordable).
"""

from __future__ import annotations

from typing import Sequence

from repro.exceptions import InfeasibleAcquisitionError
from repro.experiments.common import prepare_setup, timed


def run_fig5_instances(
    *,
    query_names: Sequence[str] = ("Q1", "Q2", "Q3"),
    instance_counts: Sequence[int] = (10, 15, 20, 25, 29),
    scale: float = 0.12,
    sampling_rate: float = 0.4,
    budget_ratio: float = 0.8,
    mcmc_iterations: int = 60,
    seed: int = 1,
) -> list[dict[str, object]]:
    """Figure 5 (a) + (b): heuristic runtime and I-graph size per (query, n)."""
    rows: list[dict[str, object]] = []
    for query_name in query_names:
        for num_instances in instance_counts:
            setup = prepare_setup(
                "tpce",
                query_name,
                scale=scale,
                sampling_rate=sampling_rate,
                num_instances=num_instances,
                mcmc_iterations=mcmc_iterations,
                seed=seed,
            )
            budget = setup.budget_for_ratio(budget_ratio)
            try:
                heuristic, heuristic_time = timed(setup.run_heuristic, budget=budget)
                rows.append(
                    {
                        "query": query_name,
                        "num_instances": num_instances,
                        "heuristic_seconds": heuristic_time,
                        "igraph_size": heuristic.igraph_size,
                        "feasible": heuristic.feasible,
                    }
                )
            except InfeasibleAcquisitionError:
                rows.append(
                    {
                        "query": query_name,
                        "num_instances": num_instances,
                        "heuristic_seconds": float("nan"),
                        "igraph_size": 0,
                        "feasible": False,
                    }
                )
    return rows


def run_fig5_budget(
    *,
    query_names: Sequence[str] = ("Q1", "Q2", "Q3"),
    budget_ratios: Sequence[float] = (0.04, 0.06, 0.08, 0.10, 0.12),
    scale: float = 0.12,
    sampling_rate: float = 0.4,
    mcmc_iterations: int = 60,
    seed: int = 1,
) -> list[dict[str, object]]:
    """Figure 5 (c): heuristic runtime per (query, budget ratio); N/A when unaffordable."""
    rows: list[dict[str, object]] = []
    setups = {
        query_name: prepare_setup(
            "tpce",
            query_name,
            scale=scale,
            sampling_rate=sampling_rate,
            mcmc_iterations=mcmc_iterations,
            seed=seed,
        )
        for query_name in query_names
    }
    for query_name, setup in setups.items():
        for ratio in budget_ratios:
            budget = setup.budget_for_ratio(ratio)
            try:
                heuristic, heuristic_time = timed(setup.run_heuristic, budget=budget)
                affordable = heuristic.feasible
            except InfeasibleAcquisitionError:
                heuristic_time = float("nan")
                affordable = False
            rows.append(
                {
                    "query": query_name,
                    "budget_ratio": ratio,
                    "heuristic_seconds": heuristic_time if affordable else float("nan"),
                    "affordable": affordable,
                }
            )
    return rows
