"""Figure 4: runtime of Heuristic vs LP vs GP on TPC-H, varying #instances.

The paper sweeps the number of marketplace instances n ∈ {5, 6, 7, 8} for
queries Q1/Q2/Q3 and reports the wall-clock time of the three algorithms on a
log scale.  The expected shape: the heuristic is orders of magnitude faster and
roughly flat in n, while LP and GP grow with n (GP slowest because it evaluates
candidates on the full data).
"""

from __future__ import annotations

from typing import Sequence

from repro.experiments.common import prepare_setup, timed


def run_fig4(
    *,
    query_names: Sequence[str] = ("Q1", "Q2", "Q3"),
    instance_counts: Sequence[int] = (5, 6, 7, 8),
    scale: float = 0.15,
    sampling_rate: float = 0.4,
    budget_ratio: float = 0.8,
    mcmc_iterations: int = 60,
    include_gp: bool = True,
    seed: int = 0,
) -> list[dict[str, object]]:
    """One row per (query, #instances): heuristic / LP / GP runtimes in seconds."""
    rows: list[dict[str, object]] = []
    for query_name in query_names:
        for num_instances in instance_counts:
            setup = prepare_setup(
                "tpch",
                query_name,
                scale=scale,
                sampling_rate=sampling_rate,
                num_instances=num_instances,
                mcmc_iterations=mcmc_iterations,
                seed=seed,
            )
            budget = setup.budget_for_ratio(budget_ratio)
            heuristic, heuristic_time = timed(setup.run_heuristic, budget=budget)
            lp, lp_time = timed(setup.run_local_optimal, budget=budget)
            row: dict[str, object] = {
                "query": query_name,
                "num_instances": num_instances,
                "heuristic_seconds": heuristic_time,
                "lp_seconds": lp_time,
                "heuristic_feasible": heuristic.feasible,
                "lp_feasible": lp.feasible,
            }
            if include_gp:
                gp, gp_time = timed(setup.run_global_optimal, budget=budget)
                row["gp_seconds"] = gp_time
                row["gp_feasible"] = gp.feasible
            rows.append(row)
    return rows
