"""Shared experiment plumbing: marketplace setup, query runners, timing helpers.

Every figure/table driver needs the same scaffolding: generate a workload,
host it on a marketplace (dirty variants preferred), register the query's
source instance with the shopper, build the join graph from samples, and run
the heuristic / LP / GP searches.  :func:`prepare_setup` builds that state once
and the drivers reuse it.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Mapping, Sequence

from repro.exceptions import UnknownWorkloadError
from repro.graph.join_graph import JoinGraph
from repro.graph.landmarks import derive_landmark_seed
from repro.marketplace.dataset import MarketplaceDataset
from repro.marketplace.market import Marketplace
from repro.pricing.models import EntropyPricingModel, PricingModel
from repro.quality.fd import FunctionalDependency
from repro.relational.table import Table
from repro.sampling.correlated import CorrelatedSampler
from repro.search.acquisition import HeuristicResult, heuristic_acquisition
from repro.search.brute_force import BruteForceResult, global_optimal, local_optimal
from repro.search.mcmc import MCMCConfig
from repro.workloads.queries import AcquisitionQuery, queries_for
from repro.workloads.schema_spec import GeneratedWorkload
from repro.workloads.tpce import tpce_workload
from repro.workloads.tpch import tpch_workload


def load_workload(
    name: str, *, scale: float | None = None, seed: int = 0
) -> GeneratedWorkload:
    """Generate the named workload at benchmark scale."""
    if name == "tpch":
        return tpch_workload(scale=scale if scale is not None else 0.2, seed=seed)
    if name == "tpce":
        return tpce_workload(scale=scale if scale is not None else 0.15, seed=seed)
    raise UnknownWorkloadError(f"unknown workload {name!r} (expected 'tpch' or 'tpce')")


@dataclass
class ExperimentSetup:
    """Everything one experiment run needs, prepared once."""

    workload: GeneratedWorkload
    query: AcquisitionQuery
    marketplace: Marketplace
    join_graph: JoinGraph
    samples: dict[str, Table]
    full_tables: dict[str, Table]
    fds: list[FunctionalDependency]
    pricing: PricingModel
    sampling_rate: float
    mcmc_config: MCMCConfig = field(default_factory=MCMCConfig)

    # ----------------------------------------------------------------- budgets
    def candidate_option_prices(
        self, *, max_paths: int = 200, on_full_data: bool = False
    ) -> list[float]:
        """Prices of candidate target graphs (used to derive LB/UB for budget ratios).

        ``on_full_data`` prices the candidates on the full marketplace
        instances instead of the samples; the GP baseline evaluates (and is
        therefore budget-constrained) on the full data, so its budget ratio
        must be derived from the same price scale.
        """
        from repro.search.candidates import enumerate_target_graphs

        tables = self.full_tables if on_full_data else self.samples
        prices: list[float] = []
        for candidate in enumerate_target_graphs(
            self.join_graph,
            self.query.source_attributes,
            self.query.target_attributes,
            max_paths=max_paths,
            max_graphs_per_path=20,
        ):
            prices.append(candidate.price(tables, self.pricing))
            if len(prices) >= max_paths:
                break
        return prices or [1.0]

    def budget_for_ratio(self, ratio: float, *, on_full_data: bool = False) -> float:
        prices = self.candidate_option_prices(on_full_data=on_full_data)
        return ratio * max(prices)

    # ----------------------------------------------------------------- runners
    def run_heuristic(
        self,
        *,
        budget: float,
        max_weight: float = float("inf"),
        min_quality: float = 0.0,
        intermediate_hook=None,
    ) -> HeuristicResult:
        return heuristic_acquisition(
            self.join_graph,
            self.query.source_attributes,
            self.query.target_attributes,
            self.fds,
            budget=budget,
            max_weight=max_weight,
            min_quality=min_quality,
            max_igraphs=4,
            mcmc_config=self.mcmc_config,
            # The same landmark-seed derivation as DANCE._search_once, so the
            # experiment harness and the middleware pick identical landmarks
            # (and the landmark stream never replays the proposal stream).
            landmark_seed=derive_landmark_seed(self.mcmc_config.seed),
            intermediate_hook=intermediate_hook,
        )

    def run_local_optimal(
        self, *, budget: float, max_weight: float = float("inf"), min_quality: float = 0.0
    ) -> BruteForceResult:
        return local_optimal(
            self.join_graph,
            self.query.source_attributes,
            self.query.target_attributes,
            self.fds,
            budget=budget,
            max_weight=max_weight,
            min_quality=min_quality,
        )

    def run_global_optimal(
        self, *, budget: float, max_weight: float = float("inf"), min_quality: float = 0.0
    ) -> BruteForceResult:
        return global_optimal(
            self.join_graph,
            self.full_tables,
            self.query.source_attributes,
            self.query.target_attributes,
            self.fds,
            budget=budget,
            max_weight=max_weight,
            min_quality=min_quality,
        )

    def true_correlation(self, target_graph) -> float:
        """The *real* correlation of a target graph measured on the full data."""
        if target_graph is None:
            return 0.0
        evaluation = target_graph.evaluate(
            self.full_tables,
            self.query.source_attributes,
            self.query.target_attributes,
            self.fds,
            self.pricing,
        )
        return evaluation.correlation


def prepare_setup(
    workload_name: str,
    query_name: str,
    *,
    scale: float | None = None,
    sampling_rate: float = 0.4,
    num_instances: int | None = None,
    mcmc_iterations: int = 120,
    seed: int = 0,
    workload: GeneratedWorkload | None = None,
) -> ExperimentSetup:
    """Prepare one experiment: workload, marketplace, samples, join graph, FDs.

    ``num_instances`` restricts the marketplace to the first ``n`` instances of
    the workload (always keeping the instances the query needs), which is how
    the #instances sweeps of Figures 4 and 5 are produced.
    """
    workload = workload or load_workload(workload_name, scale=scale, seed=seed)
    query = queries_for(workload)[query_name]

    table_names = list(workload.tables)
    if num_instances is not None and num_instances < len(table_names):
        required = _required_instances(workload, query)
        chosen: list[str] = list(required)
        for name in table_names:
            if len(chosen) >= num_instances:
                break
            if name not in chosen:
                chosen.append(name)
        workload = workload.subset(chosen)

    pricing = EntropyPricingModel()
    marketplace = Marketplace(default_pricing=pricing)
    full_tables: dict[str, Table] = {}
    for name in workload.tables:
        table = workload.dirty_or_clean(name)
        full_tables[name] = table
        marketplace.host(MarketplaceDataset(table=table, pricing=pricing))

    sampler = CorrelatedSampler(rate=sampling_rate, seed=seed)
    samples, _cost = marketplace.sell_samples(
        sampler, join_attributes_by_dataset=marketplace.shared_attribute_map()
    )

    join_graph = JoinGraph(
        samples,
        pricing=pricing,
        max_join_attribute_size=2,
        source_instances=(query.source_instance,),
    )
    fds = workload.all_fds()

    return ExperimentSetup(
        workload=workload,
        query=query,
        marketplace=marketplace,
        join_graph=join_graph,
        samples=samples,
        full_tables=full_tables,
        fds=fds,
        pricing=pricing,
        sampling_rate=sampling_rate,
        mcmc_config=MCMCConfig(iterations=mcmc_iterations, seed=seed),
    )


def _required_instances(workload: GeneratedWorkload, query: AcquisitionQuery) -> list[str]:
    """The instances a query cannot do without: its source instance and any
    instance carrying a target attribute, plus every table on the natural
    foreign-key chain between them (so the join path stays connected when the
    marketplace is restricted)."""
    required = [query.source_instance]
    for attribute in query.target_attributes:
        for name, table in workload.tables.items():
            if attribute in table.schema and name not in required:
                required.append(name)
    # grow via shared attributes until source connects to all targets (BFS on
    # the schema-overlap graph restricted to a shortest connecting set)
    import networkx as nx

    graph = nx.Graph()
    names = list(workload.tables)
    graph.add_nodes_from(names)
    for i, left in enumerate(names):
        for right in names[i + 1 :]:
            shared = set(workload.tables[left].schema.names) & set(
                workload.tables[right].schema.names
            )
            if shared:
                graph.add_edge(left, right)
    connected = set(required)
    source = query.source_instance
    for terminal in required:
        if terminal == source:
            continue
        try:
            path = nx.shortest_path(graph, source, terminal)
        except (nx.NetworkXNoPath, nx.NodeNotFound):
            continue
        connected.update(path)
    return [name for name in names if name in connected]


def timed(callable_, *args, **kwargs) -> tuple[object, float]:
    """Run ``callable_`` and return (result, elapsed_seconds)."""
    start = time.perf_counter()
    result = callable_(*args, **kwargs)
    return result, time.perf_counter() - start


def correlation_difference(optimal: float, heuristic: float) -> float:
    """The paper's CD metric: ``(X_opt - X) / X_opt`` (0 when the optimum is 0)."""
    if optimal <= 0:
        return 0.0
    return max(0.0, (optimal - heuristic) / optimal)


def summarize_rows(rows: Sequence[Mapping[str, object]], keys: Sequence[str]) -> str:
    """Small fixed-width text table used when printing experiment results."""
    header = " | ".join(f"{key:>18}" for key in keys)
    lines = [header, "-" * len(header)]
    for row in rows:
        formatted = []
        for key in keys:
            value = row.get(key, "")
            if isinstance(value, float):
                formatted.append(f"{value:>18.4f}")
            else:
                formatted.append(f"{str(value):>18}")
        lines.append(" | ".join(formatted))
    return "\n".join(lines)
