"""Figure 8: estimated correlation with vs without correlated re-sampling.

For re-sampling rates 0.1–0.9 (and queries Q1/Q2/Q3 on TPC-H), the correlation
estimated by the heuristic *with* re-sampling of intermediate join results is
compared to the estimate *without* re-sampling.  Expected shape: the
re-sampled estimate oscillates around the non-re-sampled one and converges to
it as the re-sampling rate grows (the estimator is unbiased regardless of the
rate; only the variance shrinks).
"""

from __future__ import annotations

from typing import Sequence

from repro.experiments.common import prepare_setup
from repro.sampling.resampling import ResamplingPolicy


def run_fig8(
    *,
    query_names: Sequence[str] = ("Q1", "Q2", "Q3"),
    resampling_rates: Sequence[float] = (0.1, 0.3, 0.5, 0.7, 0.9),
    resampling_threshold: int = 15,
    scale: float = 0.15,
    sampling_rate: float = 0.7,
    budget_ratio: float = 0.9,
    mcmc_iterations: int = 60,
    seed: int = 0,
) -> list[dict[str, object]]:
    """One row per (query, re-sampling rate): estimated correlation with / without re-sampling."""
    rows: list[dict[str, object]] = []
    for query_name in query_names:
        setup = prepare_setup(
            "tpch",
            query_name,
            scale=scale,
            sampling_rate=sampling_rate,
            mcmc_iterations=mcmc_iterations,
            seed=seed,
        )
        budget = setup.budget_for_ratio(budget_ratio)

        baseline = setup.run_heuristic(budget=budget)
        baseline_corr = (
            baseline.best_evaluation.correlation if baseline.best_evaluation else 0.0
        )

        for rate in resampling_rates:
            policy = ResamplingPolicy(threshold=resampling_threshold, rate=rate, seed=seed)
            with_resampling = setup.run_heuristic(budget=budget, intermediate_hook=policy)
            with_corr = (
                with_resampling.best_evaluation.correlation
                if with_resampling.best_evaluation
                else 0.0
            )
            rows.append(
                {
                    "query": query_name,
                    "resampling_rate": rate,
                    "correlation_with_resampling": with_corr,
                    "correlation_without_resampling": baseline_corr,
                    "difference": abs(with_corr - baseline_corr),
                }
            )
    return rows
