"""Quality measurement: ``Q(D, F)`` for one FD and ``Q(D)`` for a join result.

Following Definitions 2.2 and 2.3 of the paper:

* For one FD ``X -> Y`` the correct-record set ``C(D, X -> Y)`` keeps, for each
  equivalence class of ``pi_X``, only the rows of the *largest* sub-class of
  ``pi_{X ∪ Y}``; quality is ``|C| / |D|``.
* For a set of instances ``D`` the quality is measured on the join result
  ``J = ⋈ D_i`` against the set of AFDs ``F`` that hold on ``J``:
  ``Q(D) = |⋂_F C(J, F)| / |J|``.

Because join can both create and destroy FD violations (Example 2.2 of the
paper), quality must always be evaluated on the join result — these functions
therefore accept either a pre-joined table or a list of tables to join.
"""

from __future__ import annotations

from typing import Iterable, Sequence

from repro.quality.fd import FunctionalDependency
from repro.relational.joins import join_path
from repro.relational.partitions import correct_row_indices
from repro.relational.table import Table


def correct_records(table: Table, fd: FunctionalDependency) -> set[int]:
    """Row indices of ``C(table, fd)`` (Definition 2.2)."""
    if not fd.applies_to(table):
        return set(range(len(table)))
    return correct_row_indices(table, fd.lhs, (fd.rhs,))


def instance_quality(table: Table, fd: FunctionalDependency) -> float:
    """``Q(table, fd) = |C(table, fd)| / |table|``; empty tables have quality 1."""
    if len(table) == 0:
        return 1.0
    return len(correct_records(table, fd)) / len(table)


def join_quality(table: Table, fds: Iterable[FunctionalDependency]) -> float:
    """``Q`` of a (join-result) table against a set of FDs (Definition 2.3).

    The correct set is the intersection of the per-FD correct sets; FDs whose
    attributes are not all present in the table are ignored (they cannot be
    checked on the projection the shopper buys).
    """
    if len(table) == 0:
        return 1.0
    applicable = [fd for fd in fds if fd.applies_to(table)]
    if not applicable:
        return 1.0
    correct: set[int] | None = None
    for fd in applicable:
        fd_correct = correct_records(table, fd)
        correct = fd_correct if correct is None else correct & fd_correct
        if not correct:
            return 0.0
    assert correct is not None
    return len(correct) / len(table)


def quality_of_tables(
    tables: Sequence[Table],
    fds: Iterable[FunctionalDependency],
    *,
    intermediate_hook=None,
) -> float:
    """Join ``tables`` along their natural join path and measure the join quality.

    ``intermediate_hook`` is forwarded to :func:`repro.relational.joins.join_path`
    so that the sampling estimators can bound intermediate join sizes.
    """
    if not tables:
        return 1.0
    if len(tables) == 1:
        joined = tables[0]
    else:
        joined = join_path(tables, intermediate_hook=intermediate_hook)
    return join_quality(joined, fds)


def violating_records(table: Table, fd: FunctionalDependency) -> set[int]:
    """Row indices *not* in the correct set for ``fd`` (useful for repair/debugging)."""
    if len(table) == 0 or not fd.applies_to(table):
        return set()
    return set(range(len(table))) - correct_records(table, fd)
