"""FD-violation repair: the "clean before join" baseline.

Section 2.2 of the paper argues that cleaning the marketplace data offline and
then joining is *not* a substitute for measuring quality on the join result,
because joins can both create and destroy FD violations.  To make that argument
runnable, this module implements a simple, standard repair strategy:

* **majority repair** — for every equivalence class of ``pi_lhs``, rewrite the
  right-hand-side value of every row to the class's most frequent RHS value
  (ties broken deterministically by value order).

After a majority repair the instance satisfies the FD exactly.  The examples
and tests use this to show that two individually repaired (quality 1.0)
instances can still join into a low-quality result, reproducing Example 2.2.
"""

from __future__ import annotations

from collections import Counter
from typing import Iterable, Sequence

from repro.quality.fd import FunctionalDependency
from repro.relational.partitions import partition
from repro.relational.table import Table, Value


def majority_repair(table: Table, fd: FunctionalDependency) -> Table:
    """Repair ``table`` so that ``fd`` holds exactly, by majority vote per class.

    Rows whose left-hand-side values contain ``None`` are left untouched (SQL
    semantics: NULLs never witness an FD violation).
    """
    if len(table) == 0 or not fd.applies_to(table):
        return table

    groups = partition(table, fd.lhs)
    rhs_values = list(table.column(fd.rhs))
    repaired = list(rhs_values)
    for key, rows in groups.items():
        if any(value is None for value in key) or len(rows) < 2:
            continue
        counts = Counter(rhs_values[row] for row in rows)
        majority_value = _majority(counts)
        for row in rows:
            repaired[row] = majority_value

    columns = {name: list(table.column(name)) for name in table.schema.names}
    columns[fd.rhs] = repaired
    return Table(table.name, table.schema, columns)


def _majority(counts: Counter) -> Value:
    """The most frequent value; ties broken by repr ordering for determinism."""
    best_count = max(counts.values())
    candidates = sorted(
        (value for value, count in counts.items() if count == best_count), key=repr
    )
    return candidates[0]


def repair_all(table: Table, fds: Iterable[FunctionalDependency]) -> Table:
    """Apply :func:`majority_repair` for every FD, in the given order.

    Repairing one FD can in principle introduce violations of another; this
    helper applies a single pass (which is what a marketplace doing offline
    cleaning would realistically do) and makes no fixpoint guarantee.
    """
    repaired = table
    for fd in fds:
        repaired = majority_repair(repaired, fd)
    return repaired


def repair_report(
    table: Table, fds: Sequence[FunctionalDependency]
) -> dict[str, object]:
    """How many cells a full repair would rewrite, per FD (for diagnostics)."""
    from repro.quality.measure import violating_records

    report: dict[str, object] = {"table": table.name, "num_rows": len(table), "per_fd": {}}
    total = 0
    for fd in fds:
        changed = len(violating_records(table, fd))
        report["per_fd"][str(fd)] = changed
        total += changed
    report["total_rewrites"] = total
    return report
