"""Controlled injection of FD-violating (inconsistent) records.

The experiment setup modifies a fraction of records in selected tables to
introduce inconsistency (30 % of records in most TPC-H tables, and 20 of the 29
TPC-E tables).  :func:`inject_inconsistency` reproduces that mechanism: for a
given FD ``X -> Y`` it rewrites the ``Y`` value of a random subset of rows to a
value that disagrees with the majority value of the row's equivalence class,
thereby creating genuine violations rather than merely shuffling values.
"""

from __future__ import annotations

import random
from typing import Sequence

from repro.exceptions import QualityError
from repro.quality.fd import FunctionalDependency
from repro.relational.partitions import partition
from repro.relational.table import Table, Value


def _disagreeing_value(current: Value, pool: Sequence[Value], rng: random.Random) -> Value:
    """Pick a value from ``pool`` different from ``current`` (or synthesise one)."""
    candidates = sorted(set(pool) - {current}, key=repr)
    if candidates:
        return rng.choice(candidates)
    if isinstance(current, (int, float)) and not isinstance(current, bool):
        return current + 1
    return f"{current}_dirty"


def inject_inconsistency(
    table: Table,
    fd: FunctionalDependency,
    rate: float,
    rng: random.Random | int | None = None,
) -> Table:
    """Return a copy of ``table`` in which ~``rate`` of rows violate ``fd``.

    Only rows inside non-singleton equivalence classes of ``pi_lhs`` can create
    violations, so the rows to corrupt are drawn from those classes.  If the
    table has fewer corruptible rows than requested, all of them are corrupted.

    Parameters
    ----------
    table:
        The clean instance.
    fd:
        The FD whose right-hand side will be corrupted.
    rate:
        Target fraction of rows to corrupt, in ``[0, 1]``.
    rng:
        A :class:`random.Random`, an integer seed, or ``None`` for a fresh
        deterministic generator (seed 0).
    """
    if not 0.0 <= rate <= 1.0:
        raise QualityError(f"inconsistency rate must be in [0, 1], got {rate}")
    if not fd.applies_to(table):
        raise QualityError(f"FD {fd} does not apply to table {table.name!r}")
    if isinstance(rng, int) or rng is None:
        rng = random.Random(0 if rng is None else rng)

    if len(table) == 0 or rate == 0.0:
        return table

    groups = partition(table, fd.lhs)
    corruptible = [row for rows in groups.values() if len(rows) > 1 for row in rows]
    target_count = min(len(corruptible), int(round(rate * len(table))))
    if target_count == 0:
        return table
    to_corrupt = set(rng.sample(corruptible, target_count))

    rhs_pool = [value for value in table.column(fd.rhs) if value is not None]
    new_rhs = list(table.column(fd.rhs))
    for row_index in to_corrupt:
        new_rhs[row_index] = _disagreeing_value(new_rhs[row_index], rhs_pool, rng)

    columns = {name: list(table.column(name)) for name in table.schema.names}
    columns[fd.rhs] = new_rhs
    return Table(table.name, table.schema, columns)


def inject_inconsistency_multi(
    table: Table,
    fds: Sequence[FunctionalDependency],
    rate: float,
    rng: random.Random | int | None = None,
) -> Table:
    """Apply :func:`inject_inconsistency` for several FDs, splitting the rate evenly."""
    if not fds:
        return table
    if isinstance(rng, int) or rng is None:
        rng = random.Random(0 if rng is None else rng)
    per_fd_rate = rate / len(fds)
    dirty = table
    for fd in fds:
        dirty = inject_inconsistency(dirty, fd, per_fd_rate, rng)
    return dirty
