"""Data quality: functional dependencies, consistency measurement, dirty data.

The marketplace data is assumed dirty; quality is measured as the fraction of
records consistent with a set of (approximate) functional dependencies on the
*join result* (Definitions 2.2 and 2.3 of the paper).  This package provides:

``FunctionalDependency``
    An ``X -> Y`` rule with a single right-hand-side attribute.
``instance_quality`` / ``join_quality``
    The quality measures ``Q(D, F)`` and ``Q(D)``.
``discover_afds``
    A TANE-style level-wise approximate-FD discovery used to find the FDs that
    hold on each marketplace instance (Table 5's "Avg #FDs per table").
``inject_inconsistency``
    The controlled FD-violation injection used in the experiment setup.
"""

from repro.quality.fd import FunctionalDependency
from repro.quality.measure import (
    correct_records,
    instance_quality,
    join_quality,
    quality_of_tables,
)
from repro.quality.discovery import discover_afds
from repro.quality.dirty import inject_inconsistency
from repro.quality.repair import majority_repair, repair_all

__all__ = [
    "FunctionalDependency",
    "instance_quality",
    "join_quality",
    "quality_of_tables",
    "correct_records",
    "discover_afds",
    "inject_inconsistency",
    "majority_repair",
    "repair_all",
]
