"""TANE-style level-wise discovery of approximate functional dependencies.

The experiment setup (Section 6.1) reports the number of AFDs per table under a
violation threshold of ``theta`` (they use ``theta = 0.1`` meaning at most 10 %
of rows violate the rule, i.e. quality >= 0.9).  This module provides a
level-wise search over left-hand-side candidates with the usual prunings:

* a minimal AFD prunes all its supersets with the same right-hand side;
* LHS candidates are bounded by ``max_lhs_size`` (default 2) to keep the search
  tractable on wide tables.
"""

from __future__ import annotations

from itertools import combinations
from typing import Sequence

from repro.exceptions import QualityError
from repro.quality.fd import FunctionalDependency
from repro.relational.partitions import partition_error
from repro.relational.table import Table


def discover_afds(
    table: Table,
    *,
    max_violation: float = 0.1,
    max_lhs_size: int = 2,
    attributes: Sequence[str] | None = None,
) -> list[FunctionalDependency]:
    """Discover AFDs ``X -> A`` on ``table`` with violation rate <= ``max_violation``.

    Parameters
    ----------
    table:
        The instance to mine.
    max_violation:
        Maximum fraction of violating rows (the paper's ``theta = 0.1``); an
        AFD is reported when ``1 - Q(table, X -> A) <= max_violation``.
    max_lhs_size:
        Maximum number of attributes on the left-hand side.
    attributes:
        Restrict the search to these attributes (default: the whole schema).

    Returns
    -------
    list[FunctionalDependency]
        Minimal AFDs (no reported AFD's LHS is a superset of another reported
        AFD's LHS with the same RHS), ordered by (RHS, LHS size, LHS).
    """
    if not 0.0 <= max_violation < 1.0:
        raise QualityError(f"max_violation must be in [0, 1), got {max_violation}")
    if max_lhs_size < 1:
        raise QualityError(f"max_lhs_size must be >= 1, got {max_lhs_size}")

    names = list(attributes) if attributes is not None else list(table.schema.names)
    table.schema.validate_subset(names)
    if len(table) == 0:
        return []

    discovered: list[FunctionalDependency] = []
    # minimal LHS sets already found per RHS, used for superset pruning
    minimal_lhs: dict[str, list[frozenset[str]]] = {name: [] for name in names}

    for lhs_size in range(1, max_lhs_size + 1):
        for lhs in combinations(names, lhs_size):
            lhs_set = frozenset(lhs)
            for rhs in names:
                if rhs in lhs_set:
                    continue
                if any(existing <= lhs_set for existing in minimal_lhs[rhs]):
                    continue  # a smaller LHS already determines rhs
                error = partition_error(table, lhs, (rhs,))
                if error <= max_violation:
                    discovered.append(FunctionalDependency(lhs, rhs))
                    minimal_lhs[rhs].append(lhs_set)

    discovered.sort(key=lambda fd: (fd.rhs, len(fd.lhs), fd.lhs))
    return discovered


def count_afds_per_table(
    tables: Sequence[Table],
    *,
    max_violation: float = 0.1,
    max_lhs_size: int = 2,
) -> dict[str, int]:
    """Number of discovered AFDs per table (used to regenerate Table 5)."""
    return {
        table.name: len(
            discover_afds(table, max_violation=max_violation, max_lhs_size=max_lhs_size)
        )
        for table in tables
    }
