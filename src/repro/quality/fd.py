"""Functional dependencies and approximate functional dependencies.

A functional dependency (FD) ``X -> Y`` holds on an instance when any two rows
that agree on ``X`` also agree on ``Y``.  The paper decomposes multi-attribute
right-hand sides into single-attribute rules, so :class:`FunctionalDependency`
enforces a single RHS attribute.  An *approximate* FD (AFD) holds when the
quality ``Q(D, X -> Y)`` is at least a threshold ``theta``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Sequence

from repro.exceptions import QualityError
from repro.relational.table import Table
from repro.relational.partitions import partition_error


@dataclass(frozen=True)
class FunctionalDependency:
    """An FD ``lhs -> rhs`` with a single right-hand-side attribute."""

    lhs: tuple[str, ...]
    rhs: str

    def __init__(self, lhs: Sequence[str] | str, rhs: str) -> None:
        if isinstance(lhs, str):
            lhs = (lhs,)
        lhs_tuple = tuple(lhs)
        if not lhs_tuple:
            raise QualityError("FD left-hand side must contain at least one attribute")
        if not rhs:
            raise QualityError("FD right-hand side must be a non-empty attribute name")
        if rhs in lhs_tuple:
            raise QualityError(f"trivial FD: {rhs!r} appears on both sides")
        object.__setattr__(self, "lhs", lhs_tuple)
        object.__setattr__(self, "rhs", rhs)

    # ------------------------------------------------------------------ dunder
    def __str__(self) -> str:
        return f"{','.join(self.lhs)} -> {self.rhs}"

    # ------------------------------------------------------------------ access
    @property
    def attributes(self) -> tuple[str, ...]:
        """All attributes mentioned by the FD (LHS followed by RHS)."""
        return self.lhs + (self.rhs,)

    def applies_to(self, table: Table) -> bool:
        """True when every attribute of the FD exists in ``table``'s schema."""
        return all(attribute in table.schema for attribute in self.attributes)

    # --------------------------------------------------------------- semantics
    def holds_exactly(self, table: Table) -> bool:
        """True when the FD holds with zero violations on ``table``."""
        if not self.applies_to(table):
            return False
        return partition_error(table, self.lhs, (self.rhs,)) == 0.0

    def holds_approximately(self, table: Table, theta: float) -> bool:
        """True when ``Q(table, self) >= theta`` (the paper's AFD semantics)."""
        if not 0.0 < theta <= 1.0:
            raise QualityError(f"AFD threshold theta must be in (0, 1], got {theta}")
        if not self.applies_to(table):
            return False
        return 1.0 - partition_error(table, self.lhs, (self.rhs,)) >= theta

    @staticmethod
    def decompose(lhs: Sequence[str], rhs_attributes: Iterable[str]) -> list["FunctionalDependency"]:
        """Decompose ``X -> {Y1, ..., Yk}`` into single-RHS rules ``X -> Yi``."""
        return [FunctionalDependency(tuple(lhs), rhs) for rhs in rhs_attributes]
