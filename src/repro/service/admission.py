"""Bounded request admission for the acquisition service (the traffic layer).

The service's batch API fans requests out over a thread pool; without a bound,
a burst of requests lands entirely in the executor's unbounded internal queue
and the service has no way to shed or slow load.  :class:`AdmissionQueue`
bounds how many requests may be *admitted* — queued or executing — at once,
with two policies for a full queue:

``block``
    Backpressure: the submitting caller waits until a slot frees.  Every
    request is eventually served, so a bounded blocked batch is bit-identical
    to an unbounded one.
``reject``
    Load shedding: the request fails immediately with
    :class:`~repro.exceptions.AdmissionRejectedError`.  Which requests are
    shed under overload depends on timing by nature; the requests that *are*
    served remain bit-identical to serial execution (their seeds derive from
    the batch index, never from admission order).

:func:`fair_order` supplies the second half of the traffic layer: round-robin
interleaving of a batch across its shoppers, so one shopper's 50-request burst
cannot starve another shopper's 2 requests behind it in the batch.  Fairness
only permutes *submission* order — seeds and result positions follow the
original request index, so the batch outcome stays bit-identical.
"""

from __future__ import annotations

import threading
import time
from collections import deque
from typing import Sequence

from repro.exceptions import ReproError


class AdmissionQueue:
    """A counting gate over admitted (queued + executing) requests.

    ``max_depth=None`` means unbounded — every ``admit`` succeeds — but the
    traffic counters are still maintained, so the metrics surface does not
    depend on whether a bound is configured.  All methods are thread-safe.
    """

    def __init__(self, max_depth: int | None = None, policy: str = "block") -> None:
        if max_depth is not None and max_depth < 1:
            raise ReproError(f"max_depth must be >= 1 or None, got {max_depth}")
        if policy not in ("block", "reject"):
            raise ReproError(f"policy must be 'block' or 'reject', got {policy!r}")
        self.max_depth = max_depth
        self.policy = policy
        self._slot_freed = threading.Condition(threading.Lock())
        self._depth = 0  # guarded-by: self._slot_freed
        self._peak_depth = 0  # guarded-by: self._slot_freed
        self._admitted = 0  # guarded-by: self._slot_freed
        self._rejected = 0  # guarded-by: self._slot_freed
        self._blocked_seconds = 0.0  # guarded-by: self._slot_freed

    def admit(self) -> bool:
        """Take one slot.  Returns ``False`` iff the queue is full under ``reject``.

        Under ``block`` this waits (backpressure on the submitter) until a
        slot frees, so it only ever returns ``True``.
        """
        with self._slot_freed:
            if self.max_depth is not None and self._depth >= self.max_depth:
                if self.policy == "reject":
                    self._rejected += 1
                    return False
                start = time.perf_counter()
                while self._depth >= self.max_depth:
                    self._slot_freed.wait()
                self._blocked_seconds += time.perf_counter() - start
            self._depth += 1
            self._admitted += 1
            self._peak_depth = max(self._peak_depth, self._depth)
            return True

    def release(self) -> None:
        """Free the slot of a finished request."""
        with self._slot_freed:
            if self._depth <= 0:
                raise ReproError("release() without a matching admit()")
            self._depth -= 1
            self._slot_freed.notify()

    @property
    def depth(self) -> int:
        """Currently admitted (queued + executing) requests."""
        with self._slot_freed:
            return self._depth

    def snapshot(self) -> dict[str, object]:
        with self._slot_freed:
            return {
                "max_depth": self.max_depth,
                "policy": self.policy,
                "depth": self._depth,
                "peak_depth": self._peak_depth,
                "admitted": self._admitted,
                "rejected": self._rejected,
                "blocked_seconds": self._blocked_seconds,
            }


def fair_order(shoppers: Sequence[str | None]) -> list[int]:
    """Round-robin submission order of a batch across its shoppers.

    Groups the batch indices by shopper (``None`` is one group of its own,
    covering anonymous requests) and interleaves the groups round-robin,
    preserving each shopper's internal order.  Groups rotate in order of
    first appearance, so the result is a pure function of the input:

    >>> fair_order(["a", "a", "a", "b", "b"])
    [0, 3, 1, 4, 2]

    A batch with at most one distinct shopper keeps its original order.
    """
    groups: dict[str | None, deque[int]] = {}
    for index, shopper in enumerate(shoppers):
        groups.setdefault(shopper, deque()).append(index)
    if len(groups) <= 1:
        return list(range(len(shoppers)))
    order: list[int] = []
    queues = list(groups.values())
    while queues:
        remaining = []
        for queue in queues:
            order.append(queue.popleft())
            if queue:
                remaining.append(queue)
        queues = remaining
    return order
