"""QoS scheduling: weighted fair queueing, rate limits, deadlines (PR 9).

The admission layer of PR 5 bounds *how many* requests run; every admitted
request still waits in one FIFO, so a heavy shopper starves everyone else's
latency and the marketplace cannot sell better service.  This module replaces
that FIFO with a priced scheduler:

:class:`WeightedFairQueue`
    Pure virtual-time bookkeeping (start-time fair queueing): each flow's
    requests are tagged with virtual finish times ``start + cost / weight``
    where ``start = max(virtual_time, flow's last finish)``, and the queue
    always pops the smallest finish tag.  A weight-4 flow therefore receives
    4x the grants of a weight-1 flow under backlog, every flow's own requests
    stay in submission order (finish tags are strictly increasing per flow),
    and no flow starves (a waiting request's tag is fixed while the virtual
    clock advances past it).  Single-threaded; the scheduler wraps it in a
    lock.  The hypothesis suite (``tests/property/test_qos_mechanics.py``) checks the
    three properties directly.

:class:`TokenBucket`
    Per-(shopper, tier) rate limiting: ``burst`` tokens capacity, refilled at
    ``rate`` tokens/second, monotone in time, never above ``burst``.  A
    submission with an empty bucket is shed with
    :class:`~repro.exceptions.RateLimitedError` carrying the seconds until
    the next token as its retry-after hint.

:class:`QosScheduler`
    The threaded scheduler behind :class:`~repro.service.session.AcquisitionService`
    and :class:`~repro.service.router.ShardRouter` when
    ``ServiceConfig(qos=...)`` is set.  ``submit()`` applies the token bucket
    and the admission bound (same ``block``/``reject`` policies as
    :class:`~repro.service.admission.AdmissionQueue`) and enqueues a ticket;
    ``await_grant()`` blocks the serving thread until its ticket has the
    smallest WFQ tag among all waiting tickets *and* an execution slot is
    free (``QosConfig.slots``); ``release()`` frees the slot.  A request
    whose deadline has passed — or would pass before the estimated execution
    time completes — when its grant arrives is shed with
    :class:`~repro.exceptions.DeadlineExceededError` instead of burning the
    slot.

The hard invariant is inherited from PR 5: QoS decides *whether and when* a
request runs, never what it computes.  Seeds and result positions follow the
original request index (:func:`~repro.service.batch.request_seed`), so a
contended mixed-tier batch is bit-identical to the serial single-FIFO
reference (``scripts/check_service_parity.py --wfq``).
"""

from __future__ import annotations

import heapq
import itertools
import math
import threading
import time
from dataclasses import dataclass, field
from typing import Callable, Mapping

from repro.exceptions import (
    AdmissionRejectedError,
    DeadlineExceededError,
    RateLimitedError,
    ReproError,
)
from repro.marketplace.shopper import AcquisitionRequest
from repro.pricing.sla import DEFAULT_TIER_NAME, DEFAULT_TIERS, SlaTier
from repro.service.metrics import LatencyHistogram


def retry_after_hint(
    queue_depth: int, p50_execution_seconds: float | None
) -> int:
    """The computed ``Retry-After`` of a shed request, in whole seconds.

    The expected drain time of the queue ahead of a retry: current depth
    times the recent median execution time, rounded up and clamped to
    ``[1, 600]``.  With no execution history yet the hint degrades to 1
    second (the old constant).
    """
    if p50_execution_seconds is None or p50_execution_seconds <= 0.0:
        return 1
    estimate = max(1, queue_depth) * p50_execution_seconds
    return max(1, min(600, math.ceil(estimate)))


# -------------------------------------------------------------- pure mechanics
class WeightedFairQueue:
    """Start-time fair queueing over flows.  Pure bookkeeping, no locking.

    ``push(flow, weight)`` returns an opaque entry; ``pop()`` removes and
    returns the entry with the smallest virtual finish tag (ties break by
    arrival order, so the queue degrades to FIFO when every weight is equal
    and flows never interleave).  ``cancel(entry)`` lazily removes an entry.
    """

    def __init__(self) -> None:
        self._virtual = 0.0
        self._finish: dict[object, float] = {}
        self._heap: list[list] = []
        self._size = 0
        self._seq = itertools.count()

    def __len__(self) -> int:
        return self._size

    def push(self, flow: object, weight: float, cost: float = 1.0) -> list:
        """Enqueue one request of ``flow``; returns its heap entry."""
        if not weight > 0:
            raise ReproError(f"WFQ weight must be > 0, got {weight}")
        start = max(self._virtual, self._finish.get(flow, 0.0))
        finish = start + cost / weight
        self._finish[flow] = finish
        entry = [finish, next(self._seq), start, flow, False]
        heapq.heappush(self._heap, entry)
        self._size += 1
        return entry

    def cancel(self, entry: list) -> None:
        """Lazily remove an entry (it stays in the heap until popped over)."""
        if not entry[4]:
            entry[4] = True
            self._size -= 1

    def _drop_cancelled(self) -> None:
        while self._heap and self._heap[0][4]:
            heapq.heappop(self._heap)

    def peek(self) -> list | None:
        """The entry the next ``pop()`` would return (``None`` when empty)."""
        self._drop_cancelled()
        return self._heap[0] if self._heap else None

    def pop(self) -> list:
        """Dequeue the smallest-finish-tag entry, advancing the virtual clock."""
        self._drop_cancelled()
        if not self._heap:
            raise ReproError("pop() from an empty WeightedFairQueue")
        entry = heapq.heappop(self._heap)
        self._size -= 1
        # SFQ rule: the virtual clock follows the start tag of the request in
        # service, which keeps a newly active flow's tags comparable to the
        # backlogged ones (no starvation, no post-idle monopoly).
        self._virtual = max(self._virtual, entry[2])
        return entry


class TokenBucket:
    """A token bucket: ``burst`` capacity refilled at ``rate`` tokens/second.

    Pure mechanics over an explicit clock value, so tests drive it with fake
    time.  ``rate=None`` (or ``inf``) disables limiting: ``take`` always
    succeeds.
    """

    def __init__(self, rate: float | None, burst: int) -> None:
        if rate is not None and rate < 0:
            raise ReproError(f"rate must be >= 0 or None, got {rate}")
        if burst < 1:
            raise ReproError(f"burst must be >= 1, got {burst}")
        self.rate = None if rate is not None and math.isinf(rate) else rate
        self.burst = burst
        self._tokens = float(burst)
        self._refilled_at: float | None = None

    @property
    def tokens(self) -> float:
        return self._tokens

    def _refill(self, now: float) -> None:
        if self._refilled_at is None:
            self._refilled_at = now
            return
        elapsed = max(0.0, now - self._refilled_at)
        self._refilled_at = max(self._refilled_at, now)
        if self.rate is not None:
            self._tokens = min(float(self.burst), self._tokens + elapsed * self.rate)

    def take(self, now: float) -> bool:
        """Refill to ``now`` and consume one token; ``False`` when empty."""
        self._refill(now)
        if self.rate is None:
            return True
        if self._tokens >= 1.0:
            self._tokens -= 1.0
            return True
        return False

    def retry_after(self, now: float) -> float:
        """Seconds from ``now`` until one token is available."""
        self._refill(now)
        if self.rate is None or self._tokens >= 1.0:
            return 0.0
        if self.rate == 0.0:
            return float("inf")
        return (1.0 - self._tokens) / self.rate


# ----------------------------------------------------------------- the config
@dataclass
class QosConfig:
    """Configuration of the QoS scheduler (``ServiceConfig(qos=...)``).

    Attributes
    ----------
    tiers:
        The SLA tier table (name -> :class:`~repro.pricing.sla.SlaTier`).
        Requests carry only a tier *name*; the scheduler reads weight, rate
        and burst from this table, so shoppers cannot self-assign weights.
    default_tier:
        Tier of requests that name none (anonymous traffic).
    slots:
        Concurrent executions the scheduler grants.  The default ``1``
        serializes execution — the strongest fairness shaping; raise it to
        trade shaping for throughput.  ``None`` grants immediately (WFQ then
        only orders grants, it cannot delay them).
    """

    tiers: Mapping[str, SlaTier] = field(default_factory=lambda: dict(DEFAULT_TIERS))
    default_tier: str = DEFAULT_TIER_NAME
    slots: int | None = 1

    def __post_init__(self) -> None:
        self.tiers = {name: tier for name, tier in self.tiers.items()}
        for name, tier in self.tiers.items():
            if not isinstance(tier, SlaTier):
                raise ReproError(f"tier {name!r} is not an SlaTier: {tier!r}")
            if tier.name != name:
                raise ReproError(
                    f"tier table key {name!r} does not match tier name {tier.name!r}"
                )
        if not self.tiers:
            raise ReproError("QosConfig needs at least one tier")
        if self.default_tier not in self.tiers:
            raise ReproError(
                f"default_tier {self.default_tier!r} is not in the tier table "
                f"{sorted(self.tiers)}"
            )
        if self.slots is not None and self.slots < 1:
            raise ReproError(f"slots must be >= 1 or None, got {self.slots}")

    @classmethod
    def normalize(cls, value: "QosConfig | bool | str | None") -> "QosConfig | None":
        """Coerce the ``ServiceConfig(qos=)`` spellings to a config (or None).

        Accepts a ready :class:`QosConfig`, ``True``/``"on"``/``"default"``
        for the default tier ladder, and ``False``/``None`` for off.
        """
        if value is None or value is False:
            return None
        if value is True:
            return cls()
        if isinstance(value, cls):
            return value
        if isinstance(value, str):
            if value.lower() in ("on", "default", "true", "1"):
                return cls()
            raise ReproError(
                f"unknown qos spec {value!r} (expected 'on' or a QosConfig)"
            )
        raise ReproError(f"qos must be a QosConfig, bool, or str, got {value!r}")


# -------------------------------------------------------------- the scheduler
class QosTicket:
    """One submitted request's place in the scheduler."""

    __slots__ = ("shopper", "tier", "deadline_at", "submitted_at", "entry", "granted")

    def __init__(
        self,
        shopper: str | None,
        tier: SlaTier,
        deadline_at: float | None,
        submitted_at: float,
        entry: list,
    ) -> None:
        self.shopper = shopper
        self.tier = tier
        self.deadline_at = deadline_at
        self.submitted_at = submitted_at
        self.entry = entry
        self.granted = False


class _TierStats:
    __slots__ = ("requests", "rate_limited", "deadline_exceeded", "queue_wait")

    def __init__(self, window: int) -> None:
        self.requests = 0
        self.rate_limited = 0
        self.deadline_exceeded = 0
        self.queue_wait = LatencyHistogram(window=window)


class QosScheduler:
    """The WFQ + token-bucket + deadline scheduler of one service or router.

    Thread-safe.  The serving path is::

        ticket = scheduler.submit(request)       # RateLimited / AdmissionRejected
        queued = scheduler.await_grant(ticket)   # DeadlineExceeded
        try:
            ... execute ...
        finally:
            scheduler.release(ticket)

    ``snapshot()`` keeps the :class:`~repro.service.admission.AdmissionQueue`
    schema, so the ``queue`` section of the metrics payload is identical
    whether QoS is on or off; ``qos_snapshot()`` adds the per-tier counters
    and queue-wait histograms.
    """

    def __init__(
        self,
        config: QosConfig,
        *,
        max_depth: int | None = None,
        policy: str = "block",
        execution_estimate: Callable[[], float | None] | None = None,
        clock: Callable[[], float] = time.monotonic,
    ) -> None:
        if policy not in ("block", "reject"):
            raise ReproError(f"policy must be 'block' or 'reject', got {policy!r}")
        if max_depth is not None and max_depth < 1:
            raise ReproError(f"max_depth must be >= 1 or None, got {max_depth}")
        self.config = config
        self.max_depth = max_depth
        self.policy = policy
        self._execution_estimate = execution_estimate
        self._clock = clock
        self._cond = threading.Condition(threading.Lock())
        self._wfq = WeightedFairQueue()  # guarded-by: self._cond
        self._executing = 0  # guarded-by: self._cond
        self._peak_depth = 0  # guarded-by: self._cond
        self._admitted = 0  # guarded-by: self._cond
        self._rejected = 0  # guarded-by: self._cond
        self._rate_limited = 0  # guarded-by: self._cond
        self._deadline_exceeded = 0  # guarded-by: self._cond
        self._blocked_seconds = 0.0  # guarded-by: self._cond
        self._buckets: dict[tuple[str | None, str], TokenBucket] = {}  # guarded-by: self._cond
        self._tiers: dict[str, _TierStats] = {  # guarded-by: self._cond
            name: _TierStats(window=256) for name in sorted(config.tiers)
        }

    # ------------------------------------------------------------------ intake
    def resolve_tier(self, request: AcquisitionRequest) -> SlaTier:
        """The request's SLA tier; unknown names are a caller error (HTTP 400)."""
        name = request.tier if request.tier is not None else self.config.default_tier
        tier = self.config.tiers.get(name)
        if tier is None:
            raise ReproError(
                f"unknown SLA tier {name!r} (expected one of {sorted(self.config.tiers)})"
            )
        return tier

    def _depth_locked(self) -> int:
        return len(self._wfq) + self._executing

    def submit(self, request: AcquisitionRequest) -> QosTicket:
        """Admit one request into the WFQ, or shed it typed.

        Sheds with :class:`~repro.exceptions.RateLimitedError` when the
        shopper's token bucket is empty and with
        :class:`~repro.exceptions.AdmissionRejectedError` when the queue is
        at ``max_depth`` under the ``reject`` policy (``block`` waits
        instead).  Both errors carry a retry-after hint.
        """
        tier = self.resolve_tier(request)
        now = self._clock()
        with self._cond:
            stats = self._tiers[tier.name]
            bucket = self._buckets.get((request.shopper, tier.name))
            if bucket is None:
                bucket = TokenBucket(tier.rate, tier.burst)
                self._buckets[(request.shopper, tier.name)] = bucket
            if not bucket.take(now):
                self._rate_limited += 1
                stats.rate_limited += 1
                hint = bucket.retry_after(now)
                raise RateLimitedError(
                    f"shopper {request.shopper!r} exceeded tier {tier.name!r} "
                    f"rate limit (rate={tier.rate}/s, burst={tier.burst})",
                    retry_after=hint if math.isfinite(hint) else None,
                )
            if self.max_depth is not None and self._depth_locked() >= self.max_depth:
                if self.policy == "reject":
                    self._rejected += 1
                    estimate = (
                        self._execution_estimate() if self._execution_estimate else None
                    )
                    raise AdmissionRejectedError(
                        f"admission queue is full (max_queue_depth={self.max_depth})",
                        retry_after=retry_after_hint(self._depth_locked(), estimate),
                    )
                start = time.perf_counter()
                while self._depth_locked() >= self.max_depth:
                    self._cond.wait()
                self._blocked_seconds += time.perf_counter() - start
                now = self._clock()
            deadline_at = (
                now + request.deadline if request.deadline is not None else None
            )
            entry = self._wfq.push(request.shopper, tier.weight)
            self._admitted += 1
            self._peak_depth = max(self._peak_depth, self._depth_locked())
            ticket = QosTicket(request.shopper, tier, deadline_at, now, entry)
            self._cond.notify_all()
        return ticket

    # ------------------------------------------------------------------ grants
    def await_grant(self, ticket: QosTicket) -> float:
        """Block until the ticket is granted; returns its queue wait in seconds.

        A grant arrives when the ticket has the smallest WFQ finish tag among
        all waiting tickets and an execution slot is free.  If the request's
        deadline has already passed — or the recent median execution time no
        longer fits before it — the ticket is shed with
        :class:`~repro.exceptions.DeadlineExceededError` at that moment
        (dequeue-time shedding: it never occupies a slot).
        """
        with self._cond:
            while True:
                head = self._wfq.peek()
                if head is ticket.entry and (
                    self.config.slots is None or self._executing < self.config.slots
                ):
                    break
                self._cond.wait()
            self._wfq.pop()
            now = self._clock()
            queued = max(0.0, now - ticket.submitted_at)
            stats = self._tiers[ticket.tier.name]
            stats.queue_wait.record(queued)
            if ticket.deadline_at is not None:
                estimate = (
                    self._execution_estimate() if self._execution_estimate else None
                )
                if now + (estimate or 0.0) > ticket.deadline_at:
                    self._deadline_exceeded += 1
                    stats.deadline_exceeded += 1
                    self._cond.notify_all()
                    raise DeadlineExceededError(
                        f"request missed its deadline by "
                        f"{now - ticket.deadline_at:.3f}s at dequeue "
                        f"(queued {queued:.3f}s)"
                    )
            ticket.granted = True
            self._executing += 1
            stats.requests += 1
            self._cond.notify_all()
        return queued

    def release(self, ticket: QosTicket) -> None:
        """Free the execution slot of a granted ticket (no-op for shed ones)."""
        with self._cond:
            if not ticket.granted:
                return
            ticket.granted = False
            if self._executing <= 0:
                raise ReproError("release() without a matching grant")
            self._executing -= 1
            self._cond.notify_all()

    def abandon(self, ticket: QosTicket) -> None:
        """Withdraw a submitted-but-ungranted ticket (submitter-side failure)."""
        with self._cond:
            if ticket.granted:
                raise ReproError("abandon() on a granted ticket; use release()")
            self._wfq.cancel(ticket.entry)
            self._cond.notify_all()

    # --------------------------------------------------------------- snapshots
    @property
    def depth(self) -> int:
        with self._cond:
            return self._depth_locked()

    def snapshot(self) -> dict[str, object]:
        """Traffic counters in the :class:`AdmissionQueue` schema."""
        with self._cond:
            return {
                "max_depth": self.max_depth,
                "policy": self.policy,
                "depth": self._depth_locked(),
                "peak_depth": self._peak_depth,
                "admitted": self._admitted,
                "rejected": self._rejected,
                "blocked_seconds": self._blocked_seconds,
            }

    def qos_snapshot(self) -> dict[str, object]:
        """The ``qos`` section of the metrics payload (per-tier accounting)."""
        with self._cond:
            tiers = {
                name: {
                    "weight": self.config.tiers[name].weight,
                    "requests": stats.requests,
                    "rate_limited": stats.rate_limited,
                    "deadline_exceeded": stats.deadline_exceeded,
                    "queue_wait": stats.queue_wait.snapshot(),
                }
                for name, stats in self._tiers.items()
            }
            return {
                "enabled": True,
                "slots": self.config.slots,
                "rate_limited": self._rate_limited,
                "deadline_exceeded": self._deadline_exceeded,
                "tiers": tiers,
            }


#: The ``qos`` metrics section of a service running without a scheduler —
#: same schema, so the Prometheus surface does not depend on configuration.
def disabled_qos_snapshot() -> dict[str, object]:
    return {
        "enabled": False,
        "slots": None,
        "rate_limited": 0,
        "deadline_exceeded": 0,
        "tiers": {},
    }
