"""The HTTP serve tier: one hot service behind a stdlib HTTP/JSON endpoint.

``repro-dance serve`` keeps one :class:`~repro.service.session.AcquisitionService`
(or a :class:`~repro.service.router.ShardRouter`) hot behind a
``http.server.ThreadingHTTPServer`` — no dependencies beyond the standard
library:

``POST /acquire``
    A single request spec (the CLI ``batch`` file format: ``{"query": "Q1",
    "budget": 100}`` or explicit ``{"source": [...], "target": [...],
    "budget": ..., "alpha": ..., "beta": ..., "shopper": ...}``, plus an
    optional ``"seed"``), or a batch ``{"requests": [...], "seeds": [...]}``
    (a bare JSON list is treated as a batch too).  Per-request seeds are
    honoured exactly as in :meth:`AcquisitionService.acquire_batch`, so the
    served bits are bit-identical to direct library calls.

``GET /metrics``
    The service's :meth:`metrics` payload rendered as Prometheus text
    exposition format (:func:`render_prometheus`): request/error counters,
    the lifetime latency histogram with cumulative ``le`` buckets, exact
    window percentiles, the cache-hit-rate trend, admission queue gauges,
    and Step-1 memo accounting.

``GET /healthz``
    ``200 {"status": "ok"}`` while serving; ``503 {"status": "draining"}``
    once a graceful shutdown began.

Error mapping (the typed-error contract): admission rejections surface as
``503``, token-bucket sheds as ``429``, deadline sheds as ``504`` — the
retryable statuses carry a *computed* ``Retry-After`` header (queue depth x
recent p50 execution for 503, the bucket's refill time for 429) — search
errors (including infeasibility) as ``422``, storage errors as ``500``, any
other library error as ``400`` — always as ``{"error": {"type": <exception
class name>, "message": ...}}``, never a traceback.

Graceful shutdown (:meth:`AcquisitionHTTPServer.graceful_shutdown`) flips
``/healthz`` to draining, refuses new ``/acquire`` work, waits for in-flight
requests to finish, checkpoints the service to its catalog (when one is
configured), and only then closes the listener.
"""

from __future__ import annotations

import json
import math
import threading
import warnings
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Mapping

from repro.exceptions import (
    AdmissionRejectedError,
    DeadlineExceededError,
    RateLimitedError,
    ReproError,
    SearchError,
    StorageError,
)
from repro.marketplace.shopper import AcquisitionRequest
from repro.service.metrics import BUCKET_BOUNDS

#: Content type of the Prometheus text exposition format.
PROMETHEUS_CONTENT_TYPE = "text/plain; version=0.0.4; charset=utf-8"

#: Flattened ``metrics()`` payload path -> the Prometheus metric that carries
#: it.  The golden-file test walks a real payload and asserts every leaf is
#: covered here (so a new ServiceMetrics field cannot silently vanish from
#: ``/metrics``), and that every name obeys Prometheus conventions.
FIELD_METRICS: dict[str, str] = {
    "requests": "dance_requests_total",
    "errors": "dance_request_errors_total",
    "latency.count": "dance_request_latency_seconds_count",
    "latency.mean_seconds": "dance_request_latency_seconds_sum",
    "latency.max_seconds": "dance_request_latency_max_seconds",
    "latency.window_size": "dance_request_latency_window_size",
    "latency.buckets": "dance_request_latency_seconds_bucket",
    "latency.p50_seconds": "dance_request_latency_p50_seconds",
    "latency.p95_seconds": "dance_request_latency_p95_seconds",
    "latency.p99_seconds": "dance_request_latency_p99_seconds",
    "queue_wait.count": "dance_queue_wait_seconds_count",
    "queue_wait.mean_seconds": "dance_queue_wait_seconds_sum",
    "queue_wait.max_seconds": "dance_queue_wait_max_seconds",
    "queue_wait.window_size": "dance_queue_wait_window_size",
    "queue_wait.buckets": "dance_queue_wait_seconds_bucket",
    "queue_wait.p50_seconds": "dance_queue_wait_p50_seconds",
    "queue_wait.p95_seconds": "dance_queue_wait_p95_seconds",
    "queue_wait.p99_seconds": "dance_queue_wait_p99_seconds",
    "execution.count": "dance_execution_seconds_count",
    "execution.mean_seconds": "dance_execution_seconds_sum",
    "execution.max_seconds": "dance_execution_max_seconds",
    "execution.window_size": "dance_execution_window_size",
    "execution.buckets": "dance_execution_seconds_bucket",
    "execution.p50_seconds": "dance_execution_p50_seconds",
    "execution.p95_seconds": "dance_execution_p95_seconds",
    "execution.p99_seconds": "dance_execution_p99_seconds",
    "cache_hit_rate.window_size": "dance_cache_hit_rate_window_size",
    "cache_hit_rate.window_mean": "dance_cache_hit_rate_window_mean",
    "cache_hit_rate.older_half_mean": "dance_cache_hit_rate_older_half_mean",
    "cache_hit_rate.newer_half_mean": "dance_cache_hit_rate_newer_half_mean",
    "cache_hit_rate.trend": "dance_cache_hit_rate_trend",
    "in_flight": "dance_in_flight_requests",
    "queue.max_depth": "dance_admission_max_depth",
    "queue.policy": "dance_admission_policy",
    "queue.depth": "dance_admission_depth",
    "queue.peak_depth": "dance_admission_peak_depth",
    "queue.admitted": "dance_admission_admitted_total",
    "queue.rejected": "dance_admission_rejected_total",
    "queue.blocked_seconds": "dance_admission_blocked_seconds_total",
    "qos.enabled": "dance_qos_enabled",
    "qos.slots": "dance_qos_slots",
    "qos.rate_limited": "dance_qos_rate_limited_total",
    "qos.deadline_exceeded": "dance_qos_deadline_exceeded_total",
    "qos.tiers": "dance_tier_requests_total",
    "step1_memo.enabled": "dance_step1_memo_enabled",
    "step1_memo.entries": "dance_step1_memo_entries",
    "step1_memo.hits": "dance_step1_memo_hits_total",
    "step1_memo.misses": "dance_step1_memo_misses_total",
    "shards": "dance_shards",
}


# -------------------------------------------------------------- error mapping
def error_status(error: BaseException) -> int:
    """The HTTP status of a library error (the typed-error contract).

    Admission rejection is the backpressure signal (retryable, 503); a
    token-bucket shed is the client's own pacing problem (429, with
    ``Retry-After``); a deadline missed in queue is a timeout the *service*
    could not meet (504); search errors describe the *request* (422,
    unprocessable); storage errors are server-side (500); any other
    :class:`~repro.exceptions.ReproError` is a bad request (400).  Order
    matters: the typed shed errors and ``SearchError`` all derive from
    ``ReproError``.
    """
    if isinstance(error, AdmissionRejectedError):
        return 503
    if isinstance(error, RateLimitedError):
        return 429
    if isinstance(error, DeadlineExceededError):
        return 504
    if isinstance(error, SearchError):
        return 422
    if isinstance(error, StorageError):
        return 500
    if isinstance(error, ReproError):
        return 400
    return 500


def error_body(error: BaseException) -> dict[str, object]:
    """The JSON body of an error response: type name + message, no traceback."""
    return {"error": {"type": type(error).__name__, "message": str(error)}}


def retry_after_header(hint: float | None) -> str:
    """The ``Retry-After`` header value of a shed response.

    Whole seconds, at least 1 (the pre-computed-hint constant), from the
    error's computed ``retry_after`` when one is attached.
    """
    if hint is None or not math.isfinite(hint) or hint <= 0:
        return "1"
    return str(max(1, math.ceil(hint)))


# ------------------------------------------------------------- request parsing
def request_from_spec(
    spec: object,
    queries: Mapping[str, object] | None = None,
    *,
    default_tier: str | None = None,
) -> AcquisitionRequest:
    """Build an :class:`AcquisitionRequest` from a JSON spec.

    The same format the CLI ``batch`` file uses: either ``{"query": "Q1"}``
    naming a predefined workload query (resolved through ``queries``) or
    explicit ``source`` / ``target`` attribute lists, plus ``budget`` /
    ``alpha`` / ``beta`` / ``shopper`` / ``tier`` / ``deadline``.
    ``default_tier`` (the server passes the ``X-Dance-Tier`` header here)
    applies to specs that name no ``tier`` of their own.  Raises
    :class:`~repro.exceptions.ReproError` (HTTP 400) for malformed specs;
    request validation itself (e.g. empty targets) raises ``SearchError``
    (HTTP 422) from the :class:`AcquisitionRequest` constructor.
    """
    if not isinstance(spec, dict):
        raise ReproError(f"request spec must be a JSON object, got {type(spec).__name__}")
    if "query" in spec:
        known = queries or {}
        name = spec["query"]
        if name not in known:
            raise ReproError(
                f"unknown query {name!r} (expected {sorted(known) if known else 'none'})"
            )
        query = known[name]
        source = list(query.source_attributes)
        target = list(query.target_attributes)
    else:
        source = list(spec.get("source", []))
        target = list(spec.get("target", []))
    try:
        budget = float(spec.get("budget", 100.0))
        alpha = float(spec.get("alpha", float("inf")))
        beta = float(spec.get("beta", 0.0))
        deadline = spec.get("deadline")
        deadline = float(deadline) if deadline is not None else None
    except (TypeError, ValueError) as error:
        raise ReproError(f"invalid numeric field in request spec: {error}") from error
    return AcquisitionRequest(
        source_attributes=source,
        target_attributes=target,
        budget=budget,
        max_join_informativeness=alpha,
        min_quality=beta,
        shopper=spec.get("shopper"),
        tier=spec.get("tier", default_tier),
        deadline=deadline,
    )


# --------------------------------------------------------- prometheus rendering
def _format_value(value: object) -> str:
    """One Prometheus sample value.  ``None`` renders as ``NaN`` (no data yet)."""
    if value is None:
        return "NaN"
    if isinstance(value, bool):
        return "1" if value else "0"
    if isinstance(value, int):
        return str(value)
    return format(float(value), ".10g")


def _metric(lines: list[str], name: str, kind: str, help_text: str) -> None:
    lines.append(f"# HELP {name} {help_text}")
    lines.append(f"# TYPE {name} {kind}")


def _render_histogram(
    lines: list[str],
    prefix: str,
    stem: str,
    snapshot: Mapping[str, object],
    *,
    subject: str,
    window_noun: str,
) -> None:
    """One :class:`LatencyHistogram` snapshot as a Prometheus histogram family.

    Emits ``{prefix}_{stem}_seconds`` (cumulative ``le`` buckets, ``_sum``
    reconstructed from the reported mean, ``_count``) plus the max /
    window-size / exact-percentile gauges — the same layout for the
    end-to-end latency, queue-wait, and execution histograms.
    """
    count = int(snapshot.get("count", 0) or 0)
    mean = snapshot.get("mean_seconds")
    total_sum = float(mean) * count if mean is not None else 0.0
    bucket_counts = list((snapshot.get("buckets") or {}).values())
    if len(bucket_counts) != len(BUCKET_BOUNDS) + 1:
        bucket_counts = [0] * (len(BUCKET_BOUNDS) + 1)
    _metric(
        lines,
        f"{prefix}_{stem}_seconds",
        "histogram",
        f"Lifetime {subject} distribution.",
    )
    cumulative = 0
    for bound, bucket in zip(BUCKET_BOUNDS, bucket_counts):
        cumulative += int(bucket)
        lines.append(f'{prefix}_{stem}_seconds_bucket{{le="{bound:g}"}} {cumulative}')
    lines.append(f'{prefix}_{stem}_seconds_bucket{{le="+Inf"}} {count}')
    lines.append(f"{prefix}_{stem}_seconds_sum {_format_value(total_sum)}")
    lines.append(f"{prefix}_{stem}_seconds_count {count}")

    for field, help_text in (
        ("max_seconds", f"Largest {subject} observed."),
        ("window_size", f"{window_noun} samples in the sliding percentile window."),
        ("p50_seconds", f"Median {subject} over the sliding window."),
        ("p95_seconds", f"95th-percentile {subject} over the sliding window."),
        ("p99_seconds", f"99th-percentile {subject} over the sliding window."),
    ):
        name = (
            f"{prefix}_{stem}_window_size"
            if field == "window_size"
            else f"{prefix}_{stem}_{field}"
        )
        _metric(lines, name, "gauge", help_text)
        lines.append(f"{name} {_format_value(snapshot.get(field))}")


def render_prometheus(
    metrics: Mapping[str, object],
    *,
    extra: Mapping[str, float] | None = None,
    prefix: str = "dance",
) -> str:
    """Render a service ``metrics()`` payload as Prometheus text format.

    ``metrics`` is the dict returned by ``AcquisitionService.metrics()`` /
    ``ShardRouter.metrics()``.  The lifetime latency buckets become one
    cumulative histogram (``_sum`` is reconstructed from the reported mean,
    so it is exact up to float rounding); window percentiles, hit-rate trend
    and queue state become gauges; lifetime totals become counters.
    ``extra`` appends ``{prefix}_<name>`` gauges (the server adds
    ``server_draining``).
    """
    lines: list[str] = []
    latency = metrics.get("latency", {})
    queue_wait = metrics.get("queue_wait", {})
    execution = metrics.get("execution", {})
    hit_rate = metrics.get("cache_hit_rate", {})
    queue = metrics.get("queue", {})
    qos = metrics.get("qos", {})
    step1 = metrics.get("step1_memo", {})

    _metric(
        lines, f"{prefix}_requests_total", "counter", "Requests executed (admitted and run)."
    )
    lines.append(f"{prefix}_requests_total {_format_value(metrics.get('requests', 0))}")
    _metric(
        lines, f"{prefix}_request_errors_total", "counter", "Executed requests that failed."
    )
    lines.append(f"{prefix}_request_errors_total {_format_value(metrics.get('errors', 0))}")

    # Lifetime histograms: each snapshot's per-bucket counts are non-cumulative
    # and insertion-ordered over BUCKET_BOUNDS plus one overflow bucket.
    _render_histogram(
        lines,
        prefix,
        "request_latency",
        latency,
        subject="request latency",
        window_noun="Latency",
    )
    _render_histogram(
        lines,
        prefix,
        "queue_wait",
        queue_wait,
        subject="queue wait",
        window_noun="Queue-wait",
    )
    _render_histogram(
        lines,
        prefix,
        "execution",
        execution,
        subject="execution time",
        window_noun="Execution-time",
    )

    for field, help_text in (
        ("window_size", "Hit-rate samples in the sliding window."),
        ("window_mean", "Mean MCMC evaluation-cache hit rate over the window."),
        ("older_half_mean", "Hit-rate mean of the window's older half."),
        ("newer_half_mean", "Hit-rate mean of the window's newer half."),
        ("trend", "Newer-half minus older-half hit rate (positive = warming)."),
    ):
        name = f"{prefix}_cache_hit_rate_{field}"
        _metric(lines, name, "gauge", help_text)
        lines.append(f"{name} {_format_value(hit_rate.get(field))}")

    _metric(lines, f"{prefix}_in_flight_requests", "gauge", "Requests currently executing.")
    lines.append(f"{prefix}_in_flight_requests {_format_value(metrics.get('in_flight', 0))}")

    _metric(
        lines,
        f"{prefix}_admission_policy",
        "gauge",
        "Full-queue policy as an info gauge (the active policy label is 1).",
    )
    lines.append(
        f'{prefix}_admission_policy{{policy="{queue.get("policy", "block")}"}} 1'
    )
    for field, kind, help_text in (
        ("max_depth", "gauge", "Admission bound (NaN = unbounded)."),
        ("depth", "gauge", "Currently admitted (queued + executing) requests."),
        ("peak_depth", "gauge", "Highest admitted depth observed."),
        ("admitted", "counter", "Requests admitted by the queue."),
        ("rejected", "counter", "Requests shed by the reject policy."),
        ("blocked_seconds", "counter", "Total submitter time spent blocked on a full queue."),
    ):
        suffix = "_total" if kind == "counter" else ""
        name = f"{prefix}_admission_{field}{suffix}"
        _metric(lines, name, kind, help_text)
        lines.append(f"{name} {_format_value(queue.get(field))}")

    for field, kind, help_text in (
        ("enabled", "gauge", "Whether the QoS scheduler is on (1) or off (0)."),
        ("slots", "gauge", "Concurrent execution slots of the scheduler (NaN = unlimited/off)."),
        ("rate_limited", "counter", "Requests shed by a token-bucket rate limit."),
        ("deadline_exceeded", "counter", "Requests shed because their deadline passed at dequeue."),
    ):
        suffix = "_total" if kind == "counter" else ""
        name = f"{prefix}_qos_{field}{suffix}"
        _metric(lines, name, kind, help_text)
        lines.append(f"{name} {_format_value(qos.get(field))}")

    tiers = qos.get("tiers") or {}
    if tiers:
        for field, kind, help_text in (
            ("weight", "gauge", "WFQ weight of the SLA tier."),
            ("requests", "counter", "Requests granted execution on the SLA tier."),
            ("rate_limited", "counter", "Tier requests shed by the token bucket."),
            ("deadline_exceeded", "counter", "Tier requests shed at their deadline."),
        ):
            suffix = "_total" if kind == "counter" else ""
            name = f"{prefix}_tier_{field}{suffix}"
            _metric(lines, name, kind, help_text)
            for tier_name, tier in tiers.items():
                lines.append(
                    f'{name}{{tier="{tier_name}"}} {_format_value(tier.get(field))}'
                )
        _metric(
            lines,
            f"{prefix}_tier_queue_wait_seconds",
            "histogram",
            "Queue-wait distribution per SLA tier.",
        )
        for tier_name, tier in tiers.items():
            snapshot = tier.get("queue_wait") or {}
            count = int(snapshot.get("count", 0) or 0)
            mean = snapshot.get("mean_seconds")
            total_sum = float(mean) * count if mean is not None else 0.0
            bucket_counts = list((snapshot.get("buckets") or {}).values())
            if len(bucket_counts) != len(BUCKET_BOUNDS) + 1:
                bucket_counts = [0] * (len(BUCKET_BOUNDS) + 1)
            cumulative = 0
            for bound, bucket in zip(BUCKET_BOUNDS, bucket_counts):
                cumulative += int(bucket)
                lines.append(
                    f'{prefix}_tier_queue_wait_seconds_bucket'
                    f'{{tier="{tier_name}",le="{bound:g}"}} {cumulative}'
                )
            lines.append(
                f'{prefix}_tier_queue_wait_seconds_bucket'
                f'{{tier="{tier_name}",le="+Inf"}} {count}'
            )
            lines.append(
                f'{prefix}_tier_queue_wait_seconds_sum{{tier="{tier_name}"}} '
                f"{_format_value(total_sum)}"
            )
            lines.append(
                f'{prefix}_tier_queue_wait_seconds_count{{tier="{tier_name}"}} {count}'
            )
        for field, help_text in (
            ("p50_seconds", "Median tier queue wait over the sliding window."),
            ("p95_seconds", "95th-percentile tier queue wait over the sliding window."),
            ("p99_seconds", "99th-percentile tier queue wait over the sliding window."),
        ):
            name = f"{prefix}_tier_queue_wait_{field}"
            _metric(lines, name, "gauge", help_text)
            for tier_name, tier in tiers.items():
                snapshot = tier.get("queue_wait") or {}
                lines.append(
                    f'{name}{{tier="{tier_name}"}} {_format_value(snapshot.get(field))}'
                )

    for field, kind, help_text in (
        ("enabled", "gauge", "Whether the Step-1 memo is on (1) or off (0)."),
        ("entries", "gauge", "Entries in the Step-1 memo."),
        ("hits", "counter", "Step-1 searches served from the memo."),
        ("misses", "counter", "Step-1 searches that ran the landmark/Steiner pass."),
    ):
        suffix = "_total" if kind == "counter" else ""
        name = f"{prefix}_step1_memo_{field}{suffix}"
        _metric(lines, name, kind, help_text)
        lines.append(f"{name} {_format_value(step1.get(field, 0))}")

    if "shards" in metrics:
        _metric(lines, f"{prefix}_shards", "gauge", "Service shards behind the router.")
        lines.append(f"{prefix}_shards {_format_value(metrics['shards'])}")

    for name, value in (extra or {}).items():
        full = f"{prefix}_{name}"
        _metric(lines, full, "gauge", f"Server state gauge {name}.")
        lines.append(f"{full} {_format_value(value)}")

    return "\n".join(lines) + "\n"


# ------------------------------------------------------------------ the server
class AcquisitionHTTPServer(ThreadingHTTPServer):
    """A threading HTTP server wrapping one hot acquisition service.

    ``service`` is anything with the serving surface of
    :class:`AcquisitionService` — the single-shard service or a
    :class:`~repro.service.router.ShardRouter`.  The server owns the HTTP
    lifecycle only; it never builds or closes the service (callers pair it
    with ``with service: ...``).

    Handler threads are daemonic and connections are HTTP/1.0 (closed per
    response), so a drain only has to wait for requests already executing.
    """

    daemon_threads = True
    allow_reuse_address = True

    def __init__(
        self,
        address: tuple[str, int],
        service,
        *,
        queries: Mapping[str, object] | None = None,
        default_tier: str | None = None,
    ) -> None:
        super().__init__(address, _AcquisitionHandler)
        self.service = service
        self.queries = dict(queries or {})
        self.default_tier = default_tier
        self._state = threading.Condition(threading.Lock())
        self._http_in_flight = 0
        self._draining = False

    @property
    def port(self) -> int:
        """The bound port (useful with ``("127.0.0.1", 0)`` ephemeral binds)."""
        return self.server_address[1]

    @property
    def draining(self) -> bool:
        with self._state:
            return self._draining

    def serve_background(self) -> threading.Thread:
        """Run ``serve_forever`` on a daemon thread and return it."""
        thread = threading.Thread(
            target=self.serve_forever, name="acquisition-http", daemon=True
        )
        thread.start()
        return thread

    def _enter_request(self) -> bool:
        """Register one /acquire execution; refused once draining."""
        with self._state:
            if self._draining:
                return False
            self._http_in_flight += 1
            return True

    def _exit_request(self) -> None:
        with self._state:
            self._http_in_flight -= 1
            self._state.notify_all()

    def drain(self, timeout: float | None = 30.0) -> bool:
        """Stop accepting /acquire work and wait for in-flight requests.

        Health flips to draining immediately.  Returns whether the in-flight
        count reached zero within ``timeout``.
        """
        with self._state:
            self._draining = True
            return self._state.wait_for(lambda: self._http_in_flight == 0, timeout)

    def graceful_shutdown(self, timeout: float | None = 30.0) -> bool:
        """Drain, checkpoint to the service's catalog, close the listener.

        The checkpoint runs only when the service is configured with a
        catalog path; a failing checkpoint warns and still closes (shutdown
        must never hang on storage).  Returns the drain outcome.
        """
        drained = self.drain(timeout)
        catalog_path = getattr(self.service.config.service, "catalog_path", None)
        if catalog_path is not None:
            try:
                self.service.persist()
            except (StorageError, ReproError) as error:
                warnings.warn(
                    f"shutdown checkpoint failed: {error}", RuntimeWarning, stacklevel=2
                )
        self.shutdown()
        self.server_close()
        return drained


class _AcquisitionHandler(BaseHTTPRequestHandler):
    """Routes /acquire, /metrics, /healthz.  One instance per connection."""

    server: AcquisitionHTTPServer

    # Quiet by default: the server is driven from tests and benchmarks where
    # per-request stderr lines are noise.
    def log_message(self, format: str, *args) -> None:  # noqa: A002 - stdlib signature
        pass

    # ------------------------------------------------------------------ plumbing
    def _send_body(
        self,
        status: int,
        body: bytes,
        content_type: str,
        headers: Mapping[str, str] | None = None,
    ) -> None:
        self.send_response(status)
        self.send_header("Content-Type", content_type)
        self.send_header("Content-Length", str(len(body)))
        for key, value in (headers or {}).items():
            self.send_header(key, value)
        self.end_headers()
        self.wfile.write(body)

    def _send_json(
        self, status: int, payload: object, headers: Mapping[str, str] | None = None
    ) -> None:
        body = json.dumps(payload, default=str).encode("utf-8")
        self._send_body(status, body, "application/json", headers)

    def _send_error_response(self, error: BaseException) -> None:
        status = error_status(error)
        headers = None
        if status in (503, 429):
            # Computed backoff: the scheduler attaches queue-depth x p50 (503)
            # or the token bucket's refill time (429) to the error.
            headers = {
                "Retry-After": retry_after_header(getattr(error, "retry_after", None))
            }
        self._send_json(status, error_body(error), headers)

    def _not_found(self) -> None:
        self._send_json(
            404, {"error": {"type": "NotFound", "message": f"unknown path {self.path}"}}
        )

    # ------------------------------------------------------------------- routes
    def do_GET(self) -> None:  # noqa: N802 - stdlib handler name
        if self.path == "/healthz":
            if self.server.draining:
                self._send_json(503, {"status": "draining"}, {"Retry-After": "1"})
            else:
                self._send_json(200, {"status": "ok"})
        elif self.path == "/metrics":
            payload = self.server.service.metrics()
            text = render_prometheus(
                payload, extra={"server_draining": 1.0 if self.server.draining else 0.0}
            )
            self._send_body(200, text.encode("utf-8"), PROMETHEUS_CONTENT_TYPE)
        else:
            self._not_found()

    def do_POST(self) -> None:  # noqa: N802 - stdlib handler name
        if self.path != "/acquire":
            self._not_found()
            return
        if not self.server._enter_request():
            self._send_json(
                503,
                {"error": {"type": "ServerDraining", "message": "server is draining"}},
                {"Retry-After": "1"},
            )
            return
        try:
            self._handle_acquire()
        finally:
            self.server._exit_request()

    # ------------------------------------------------------------------ acquire
    def _handle_acquire(self) -> None:
        try:
            length = int(self.headers.get("Content-Length") or 0)
            raw = self.rfile.read(length) if length > 0 else b""
            spec = json.loads(raw.decode("utf-8")) if raw else {}
        except (ValueError, UnicodeDecodeError) as error:
            message = f"invalid JSON body: {error}"
            self._send_json(
                400, {"error": {"type": "InvalidRequest", "message": message}}
            )
            return
        try:
            if isinstance(spec, list):
                self._serve_batch({"requests": spec})
            elif isinstance(spec, dict) and "requests" in spec:
                self._serve_batch(spec)
            else:
                self._serve_single(spec)
        except ReproError as error:
            self._send_error_response(error)
        except Exception:  # dancelint: disable=ERR301 -- HTTP boundary: typed 500 body
            self._send_json(
                500,
                {
                    "error": {
                        "type": "InternalServerError",
                        "message": "unexpected server error",
                    }
                },
            )

    def _default_tier(self) -> str | None:
        """The connection-level SLA tier: ``X-Dance-Tier`` header, falling
        back to the server-wide default (CLI ``--tier``); specs override both."""
        return self.headers.get("X-Dance-Tier") or self.server.default_tier

    def _serve_single(self, spec: object) -> None:
        request = request_from_spec(
            spec, self.server.queries, default_tier=self._default_tier()
        )
        seed = spec.get("seed") if isinstance(spec, dict) else None
        if seed is not None:
            seed = int(seed)
        result = self.server.service.acquire(request, seed=seed)
        self._send_json(
            200,
            {
                "ok": True,
                "seed": seed if seed is not None else self.server.service.seed,
                "result": result.summary(),
            },
        )

    def _serve_batch(self, spec: dict) -> None:
        specs = spec["requests"]
        if not isinstance(specs, list):
            raise ReproError('"requests" must be a JSON list of request objects')
        default_tier = self._default_tier()
        requests = [
            request_from_spec(item, self.server.queries, default_tier=default_tier)
            for item in specs
        ]
        seeds = spec.get("seeds")
        if seeds is not None:
            if not isinstance(seeds, list):
                raise ReproError('"seeds" must be a JSON list of integers')
            seeds = [int(seed) for seed in seeds]
        batch = self.server.service.acquire_batch(requests, seeds=seeds)
        rejected = sum(
            1 for item in batch if isinstance(item.error, AdmissionRejectedError)
        )
        rate_limited = sum(
            1 for item in batch if isinstance(item.error, RateLimitedError)
        )
        deadline_exceeded = sum(
            1 for item in batch if isinstance(item.error, DeadlineExceededError)
        )
        payload = {
            "ok": batch.ok,
            "rejected": rejected,
            "rate_limited": rate_limited,
            "deadline_exceeded": deadline_exceeded,
            "results": batch.summary(),
        }
        shed = rejected + rate_limited + deadline_exceeded
        if batch.items and shed == len(batch.items):
            # Nothing ran at all: the whole batch was shed — surface the same
            # backpressure signal a single rejected request gets, with the
            # largest computed backoff among the shed items.
            hints = [
                getattr(item.error, "retry_after", None)
                for item in batch
                if item.error is not None
            ]
            hints = [hint for hint in hints if hint is not None and math.isfinite(hint)]
            self._send_json(
                503, payload, {"Retry-After": retry_after_header(max(hints, default=None))}
            )
        else:
            self._send_json(200, payload)
