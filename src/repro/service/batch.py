"""Batch request/result types and per-request seed derivation."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterator

from repro.core.result import AcquisitionResult
from repro.exceptions import ReproError
from repro.marketplace.shopper import AcquisitionRequest
from repro.search.chains import chain_seed


def request_seed(service_seed: int, index: int) -> int:
    """The deterministic MCMC base seed of batch request ``index``.

    The same recipe as MCMC chain seeds (:func:`repro.search.chains.chain_seed`):
    request 0 keeps the service seed — so a single ``acquire()`` call and a
    batch of one are the same walk — and later requests hash
    ``(service seed, index)`` through blake2b, stable across processes and
    python versions.  Chain seeds then derive from the request seed, giving
    every (request, chain) pair an independent, reproducible stream.
    """
    return chain_seed(service_seed, index)


@dataclass
class ServedRequest:
    """One request's outcome inside a batch (or a single served call).

    Exactly one of ``result`` / ``error`` is set.  ``error`` holds the
    :class:`~repro.exceptions.ReproError` the search raised (typically
    ``InfeasibleAcquisitionError`` — the service does not buy more samples
    mid-batch; see :meth:`AcquisitionService.acquire_batch`).
    """

    index: int
    request: AcquisitionRequest
    seed: int
    result: AcquisitionResult | None = None
    error: ReproError | None = None
    elapsed_seconds: float = 0.0
    queued_seconds: float = 0.0
    execution_seconds: float = 0.0

    @property
    def ok(self) -> bool:
        return self.result is not None

    def require_result(self) -> AcquisitionResult:
        if self.result is not None:
            return self.result
        if self.error is None:
            raise ReproError(f"request {self.index} produced no result")
        # Never re-raise the stored exception object: raising mutates its
        # __traceback__, so two callers across threads would race on one
        # shared traceback chain.  Raise a fresh instance of the same
        # ReproError subclass (callers keep catching the specific type),
        # chained to the stored original.
        try:
            fresh = type(self.error)(str(self.error))
        except TypeError:
            fresh = ReproError(str(self.error))
        retry_after = getattr(self.error, "retry_after", None)
        if retry_after is not None and hasattr(fresh, "retry_after"):
            fresh.retry_after = retry_after
        raise fresh from self.error

    def summary(self) -> dict[str, object]:
        payload: dict[str, object] = {
            "index": self.index,
            "seed": self.seed,
            "ok": self.ok,
            "elapsed_seconds": self.elapsed_seconds,
            "queued_seconds": self.queued_seconds,
            "execution_seconds": self.execution_seconds,
        }
        if self.request.shopper is not None:
            payload["shopper"] = self.request.shopper
        if self.request.tier is not None:
            payload["tier"] = self.request.tier
        if self.result is not None:
            payload["result"] = self.result.summary()
        if self.error is not None:
            # Typed, message-only error surface: the class name routes client
            # handling (and the HTTP status mapping in repro.service.server);
            # no traceback ever leaves the process.
            payload["error"] = str(self.error)
            payload["error_type"] = type(self.error).__name__
        return payload


@dataclass
class BatchResult:
    """Outcomes of one batch, in request order (never completion order)."""

    items: list[ServedRequest] = field(default_factory=list)

    def __len__(self) -> int:
        return len(self.items)

    def __iter__(self) -> Iterator[ServedRequest]:
        return iter(self.items)

    def __getitem__(self, index: int) -> ServedRequest:
        return self.items[index]

    @property
    def ok(self) -> bool:
        """Whether every request in the batch produced a result."""
        return all(item.ok for item in self.items)

    def results(self) -> list[AcquisitionResult | None]:
        """Per-request results, ``None`` where the search failed."""
        return [item.result for item in self.items]

    def errors(self) -> list[ServedRequest]:
        return [item for item in self.items if not item.ok]

    def summary(self) -> list[dict[str, object]]:
        return [item.summary() for item in self.items]
