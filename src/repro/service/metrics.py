"""Service observability: latency histograms, hit-rate trends, counting caches.

`AcquisitionService.describe()` historically reported coarse lifetime counters
(requests served, errors, cache sizes).  This module adds the per-request
view an operator actually pages on:

:class:`LatencyHistogram`
    Cumulative log-spaced latency buckets plus a sliding window of raw
    samples, from which p50/p95/p99 are computed exactly (nearest-rank over
    the window).  The buckets never forget — they describe the service's
    lifetime — while the percentiles track *recent* behaviour.

:class:`ServiceMetrics`
    Aggregates the histogram with per-request success/error counts and the
    MCMC evaluation-cache hit rate of each served request, reporting the
    hit-rate *trend* over the sliding window (older half vs. newer half —
    a warming cache trends up, an invalidation shows as a drop).

:class:`CountingCache`
    A :class:`~repro.search.chains.LockStripedCache` that additionally counts
    hits and misses, used for the service's Step-1 memo so the metrics can
    report how many warm requests actually skipped the landmark/Steiner
    search.

All classes are thread-safe; ``snapshot()`` methods return plain-JSON dicts
(surfaced through ``AcquisitionService.describe()``/``metrics()``, the CLI
``metrics`` command and the ``batch`` summary).
"""

from __future__ import annotations

import math
import threading
from collections import deque

from repro.exceptions import ReproError
from repro.search.chains import LockStripedCache

# Upper bucket bounds in seconds; one implicit overflow bucket follows.
BUCKET_BOUNDS: tuple[float, ...] = (
    0.001,
    0.0025,
    0.005,
    0.01,
    0.025,
    0.05,
    0.1,
    0.25,
    0.5,
    1.0,
    2.5,
    5.0,
    10.0,
)

_MISS = object()


def _percentile(ordered: list[float], quantile: float) -> float:
    """Nearest-rank percentile of an ascending-sorted, non-empty sample list."""
    rank = math.ceil(quantile * len(ordered) - 1e-9)
    return ordered[max(1, min(rank, len(ordered))) - 1]


class LatencyHistogram:
    """Lifetime latency buckets plus exact percentiles over a sliding window."""

    def __init__(self, window: int = 256, bounds: tuple[float, ...] = BUCKET_BOUNDS):
        if window < 1:
            raise ReproError(f"window must be >= 1, got {window}")
        self._bounds = tuple(bounds)
        self._counts = [0] * (len(self._bounds) + 1)
        self._window: deque[float] = deque(maxlen=window)
        self._total = 0
        self._sum = 0.0
        self._max = 0.0
        self._lock = threading.Lock()

    def record(self, seconds: float) -> None:
        index = len(self._bounds)
        for i, bound in enumerate(self._bounds):
            if seconds <= bound:
                index = i
                break
        with self._lock:
            self._counts[index] += 1
            self._window.append(seconds)
            self._total += 1
            self._sum += seconds
            self._max = max(self._max, seconds)

    def percentile(self, quantile: float) -> float | None:
        """Nearest-rank percentile over the sliding window (``None`` when empty)."""
        if not 0.0 < quantile <= 1.0:
            raise ReproError(f"quantile must be in (0, 1], got {quantile}")
        with self._lock:
            samples = sorted(self._window)
        if not samples:
            return None
        return _percentile(samples, quantile)

    def snapshot(self) -> dict[str, object]:
        with self._lock:
            samples = sorted(self._window)
            counts = list(self._counts)
            total, total_sum, maximum = self._total, self._sum, self._max
        buckets: dict[str, int] = {}
        for bound, count in zip(self._bounds, counts):
            buckets[f"<={bound:g}s"] = count
        buckets[f">{self._bounds[-1]:g}s"] = counts[-1]
        payload: dict[str, object] = {
            "count": total,
            "mean_seconds": (total_sum / total) if total else None,
            "max_seconds": maximum if total else None,
            "window_size": len(samples),
            "buckets": buckets,
        }
        for name, quantile in (("p50", 0.50), ("p95", 0.95), ("p99", 0.99)):
            payload[f"{name}_seconds"] = (
                _percentile(samples, quantile) if samples else None
            )
        return payload


class ServiceMetrics:
    """Per-request latency, outcome, and cache hit-rate trend of one service.

    End-to-end latency is tracked in three histograms: ``latency``
    (queue wait + execution, what the caller observes), ``queue_wait``
    (admission block and, under QoS, the scheduler's weighted-fair wait), and
    ``execution`` (worker time only).  The split is what makes scheduling
    effects visible — WFQ moves queue wait between tiers while execution
    time stays put.
    """

    def __init__(self, window: int = 256):
        self.latency = LatencyHistogram(window=window)
        self.queue_wait = LatencyHistogram(window=window)
        self.execution = LatencyHistogram(window=window)
        self._hit_rates: deque[float] = deque(maxlen=window)
        self._requests = 0
        self._errors = 0
        self._lock = threading.Lock()

    def record_request(
        self,
        elapsed_seconds: float,
        *,
        ok: bool,
        cache_hit_rate: float | None = None,
        queued_seconds: float | None = None,
        execution_seconds: float | None = None,
    ) -> None:
        """Record one executed request (rejected requests never reach here)."""
        self.latency.record(elapsed_seconds)
        if queued_seconds is not None:
            self.queue_wait.record(queued_seconds)
        if execution_seconds is not None:
            self.execution.record(execution_seconds)
        with self._lock:
            self._requests += 1
            if not ok:
                self._errors += 1
            if cache_hit_rate is not None:
                self._hit_rates.append(cache_hit_rate)

    def _hit_rate_trend_locked(self) -> dict[str, object]:
        rates = list(self._hit_rates)
        if not rates:
            return {
                "window_size": 0,
                "window_mean": None,
                "older_half_mean": None,
                "newer_half_mean": None,
                "trend": None,
            }
        half = len(rates) // 2
        older = rates[:half]
        newer = rates[half:]
        older_mean = (sum(older) / len(older)) if older else None
        newer_mean = sum(newer) / len(newer)
        return {
            "window_size": len(rates),
            "window_mean": sum(rates) / len(rates),
            "older_half_mean": older_mean,
            "newer_half_mean": newer_mean,
            # Positive = the caches are warming up; a drop flags invalidation.
            "trend": (newer_mean - older_mean) if older_mean is not None else None,
        }

    def snapshot(self) -> dict[str, object]:
        with self._lock:
            requests, errors = self._requests, self._errors
            hit_rate = self._hit_rate_trend_locked()
        return {
            "requests": requests,
            "errors": errors,
            "latency": self.latency.snapshot(),
            "queue_wait": self.queue_wait.snapshot(),
            "execution": self.execution.snapshot(),
            "cache_hit_rate": hit_rate,
        }


class CountingCache(LockStripedCache):
    """A lock-striped cache that counts hits and misses on ``get``."""

    __slots__ = ("_counter_lock", "_hits", "_misses")

    def __init__(self, stripes: int = 16) -> None:
        super().__init__(stripes)
        self._counter_lock = threading.Lock()
        self._hits = 0
        self._misses = 0

    def get(self, key, default=None):
        value = super().get(key, _MISS)
        with self._counter_lock:
            if value is _MISS:
                self._misses += 1
            else:
                self._hits += 1
        return default if value is _MISS else value

    @property
    def hits(self) -> int:
        with self._counter_lock:
            return self._hits

    @property
    def misses(self) -> int:
        with self._counter_lock:
            return self._misses

    def snapshot(self) -> dict[str, object]:
        with self._counter_lock:
            hits, misses = self._hits, self._misses
        return {"entries": len(self), "hits": hits, "misses": misses}
