"""The long-lived acquisition session: one hot marketplace, many requests.

``DANCE.acquire()`` is a one-shot call: every invocation runs Step 2 with
fresh caches per candidate I-graph and, for the thread/process executors,
spins a fresh pool per ``mcmc_search`` call.  :class:`AcquisitionService`
keeps one marketplace *hot* instead:

* **Cache ownership.**  The service owns one JI cache (structural keys —
  valid service-wide) and one evaluation memo *per request signature*
  ``(source attrs, target attrs)`` — evaluations depend on the requested
  attributes, so sharing them across different signatures would be wrong.
  Both live in :class:`~repro.search.chains.LockStripedCache` instances and
  are handed to every search through
  :class:`~repro.search.acquisition.SearchRuntime`, so all candidate I-graphs
  of one request and all requests of one session share work.
* **Pool reuse.**  One persistent executor serves every multi-chain
  ``mcmc_search`` call for the lifetime of the service.  Process pools are
  built by :func:`repro.search.chains.process_chain_pool`, which preloads the
  join graph and FDs into the workers once — chain payloads then reference
  tables by name instead of re-pickling them per call.
* **Batched concurrency.**  :meth:`AcquisitionService.acquire_batch` executes
  a list of requests under a thread fan-out with deterministic per-request
  seeds (:func:`~repro.service.batch.request_seed`), returning results
  bit-identical to serving the requests one at a time.
* **Bounded admission.**  Every request passes the service's
  :class:`~repro.service.admission.AdmissionQueue` before it reaches a worker
  (``ServiceConfig(max_queue_depth=, admission=)``): a full queue either
  blocks the submitter (backpressure) or sheds the request
  (:class:`~repro.exceptions.AdmissionRejectedError`).  Batches are submitted
  in per-shopper round-robin order (:func:`~repro.service.admission.fair_order`)
  so one shopper's burst cannot starve another's requests.  Admission only
  decides whether/when a request runs — never what it computes.
* **QoS scheduling.**  With ``ServiceConfig(qos=...)`` the FIFO admission
  queue is replaced by the :class:`~repro.service.qos.QosScheduler`:
  weighted fair queueing over SLA tiers (:mod:`repro.pricing.sla`),
  per-shopper token-bucket rate limits
  (:class:`~repro.exceptions.RateLimitedError`), and deadline-aware shedding
  at dequeue time (:class:`~repro.exceptions.DeadlineExceededError`).  The
  same invariant holds: QoS permutes whether/when a request runs, never its
  served bits — seeds and result positions follow the request index.
* **Step-1 memo.**  ``minimal_weight_igraphs`` is a pure function of
  ``(terminal set, alpha, num_landmarks, landmark seed, graph version)``, so
  the service memoises it per that key
  (``ServiceConfig(step1_memo=True)``); warm requests skip the
  landmark/Steiner search entirely.  Invalidated off ``graph_version`` like
  the other session caches.
* **Metrics.**  Per-request latency histograms with p50/p95/p99, the
  evaluation-cache hit-rate trend over a sliding window, queue
  depth/rejection counters and an in-flight gauge
  (:mod:`repro.service.metrics`), surfaced through :meth:`describe` /
  :meth:`metrics`, the CLI ``metrics`` command and the ``batch`` summary.
* **Incremental refresh.**  :meth:`register_source_tables` updates the join
  graph through DANCE's incremental path (only edges touching changed
  instances are recomputed) and invalidates exactly the session state the
  change made stale: pure additions keep the caches (old structural keys
  stay valid), replacements and offline rebuilds drop them.
* **Persistent session state.**  With ``ServiceConfig(catalog_path=...)``
  the service opens the catalog at startup (warming the offline phase; see
  :meth:`repro.core.dance.DANCE.persist`), restores its JI cache and Step-1
  memo from the catalog's session namespace — guarded by a graph-state
  fingerprint, so caches never outlive the tables they were computed on —
  and checkpoints marketplace, offline state, and caches back after
  :meth:`register_source_tables` (or explicitly via :meth:`persist`).
  Restore and checkpoint failures degrade to a cold session with a
  ``RuntimeWarning``; they never fail serving.

Thread-safety contract: concurrent *serving* calls are safe (that is the
point of the batch API); management operations — ``register_source_tables``,
``rebuild_offline``, ``close`` — must not overlap in-flight requests, exactly
like schema changes on a live database are sequenced by the operator.

Iterative refinement (buying more samples mid-request) mutates shared session
state, so served requests run with refinement disabled; an infeasible request
reports its error in the :class:`~repro.service.batch.ServedRequest` and the
operator refreshes the session explicitly (``rebuild_offline`` at a higher
sampling rate) when infeasibility persists.
"""

from __future__ import annotations

import copy
import itertools
import threading
import time
import warnings
from concurrent.futures import ThreadPoolExecutor
from pathlib import Path
from typing import Mapping, Sequence

from repro.core.config import DanceConfig
from repro.core.dance import DANCE
from repro.core.result import AcquisitionResult
from repro.exceptions import (
    AdmissionRejectedError,
    DeadlineExceededError,
    RateLimitedError,
    ReproError,
    StorageError,
)
from repro.graph.join_graph import JoinGraph
from repro.marketplace.market import Marketplace
from repro.marketplace.shopper import AcquisitionRequest
from repro.quality.fd import FunctionalDependency
from repro.relational.table import Table
from repro.search.acquisition import SearchRuntime
from repro.search.chains import (
    ChainPoolState,
    LockStripedCache,
    process_chain_pool,
    shared_chain_pool,
)
from repro.search.shm import SharedChainState
from repro.service.admission import AdmissionQueue, fair_order
from repro.service.batch import BatchResult, ServedRequest, request_seed
from repro.service.metrics import CountingCache, ServiceMetrics
from repro.service.qos import QosScheduler, disabled_qos_snapshot, retry_after_hint

_SERVICE_COUNTER = itertools.count()

#: Errors that mean "the scheduler shed this request before it executed".
#: Shed requests appear in the queue/qos counters, never in
#: requests_served/errors — the accounting a rejected acquire() always had.
SHED_ERRORS = (AdmissionRejectedError, RateLimitedError, DeadlineExceededError)


class AcquisitionService:
    """Serves many acquisition requests over one offline phase.

    Parameters
    ----------
    marketplace:
        The marketplace to build the session on.
    config:
        The middleware configuration; ``config.service``
        (:class:`~repro.core.config.ServiceConfig`) holds the session knobs —
        base seed, batch fan-out, persistent pool size, cache sharing.
    known_fds:
        Forwarded to :class:`~repro.core.dance.DANCE`.
    source_tables:
        Shopper-owned instances registered before the offline phase.
    build_offline:
        Run the offline phase during construction (the default).  Pass
        ``False`` to defer it; the first served request triggers it then.
    candidate_filter:
        Optional ownership predicate ``(candidate index, igraph) -> bool``
        threaded into every request's
        :class:`~repro.search.acquisition.SearchRuntime`.  Used by the shard
        router (:mod:`repro.service.router`) to make this service search only
        the Step-1 candidates its shard owns.

    Use as a context manager (or call :meth:`close`) to release the pools::

        with AcquisitionService(marketplace, config) as service:
            batch = service.acquire_batch(requests)
    """

    def __init__(
        self,
        marketplace: Marketplace,
        config: DanceConfig | None = None,
        *,
        known_fds: Mapping[str, Sequence[FunctionalDependency]] | None = None,
        source_tables: Sequence[Table] = (),
        build_offline: bool = True,
        candidate_filter=None,
    ) -> None:
        self._dance = DANCE(marketplace, config, known_fds=known_fds)
        self.config = self._dance.config
        service_config = self.config.service
        self._seed = (
            service_config.seed if service_config.seed is not None else self.config.mcmc.seed
        )
        self._service_id = next(_SERVICE_COUNTER)
        self._candidate_filter = candidate_filter
        self._lock = threading.Lock()
        self._closed = False  # guarded-by: self._lock
        self._synced_version: int | None = None  # guarded-by: self._lock
        self._ji_cache: LockStripedCache | None = None  # guarded-by: self._lock
        self._evaluation_caches: dict[tuple, LockStripedCache] = {}  # guarded-by: self._lock
        self._step1_memo: CountingCache | None = None  # guarded-by: self._lock
        self._chain_pool = None  # guarded-by: self._lock
        self._chain_pool_state: ChainPoolState | None = None  # guarded-by: self._lock
        self._request_pool: ThreadPoolExecutor | None = None  # guarded-by: self._lock
        self._requests_served = 0  # guarded-by: self._lock
        self._batches_served = 0  # guarded-by: self._lock
        self._errors = 0  # guarded-by: self._lock
        self._in_flight = 0  # guarded-by: self._lock
        self._cache_resets = 0  # guarded-by: self._lock
        self._admission = AdmissionQueue(
            service_config.max_queue_depth, service_config.admission
        )
        self._metrics = ServiceMetrics(window=service_config.metrics_window)
        self._qos: QosScheduler | None = (
            QosScheduler(
                service_config.qos,
                max_depth=service_config.max_queue_depth,
                policy=service_config.admission,
                execution_estimate=lambda: self._metrics.execution.percentile(0.5),
            )
            if service_config.qos is not None
            else None
        )
        if service_config.catalog_path is not None:
            # Attach before the offline phase so build_offline can adopt the
            # catalog's persisted JI weights and FDs (warm restart).
            self._attach_catalog(service_config.catalog_path)
        if source_tables:
            self._dance.register_source_tables(list(source_tables))
        if build_offline:
            self._dance.build_offline()

    # ----------------------------------------------------------------- access
    @property
    def dance(self) -> DANCE:
        """The underlying middleware (treat as read-only while serving)."""
        return self._dance

    @property
    def join_graph(self) -> JoinGraph:
        return self._dance.join_graph

    @property
    def seed(self) -> int:
        """The service base seed that per-request seeds derive from."""
        return self._seed

    # ---------------------------------------------------------------- serving
    def acquire(
        self, request: AcquisitionRequest, *, seed: int | None = None
    ) -> AcquisitionResult:
        """Serve one request against the hot session state.

        Bit-identical to ``DANCE.acquire`` with the same seed *and refinement
        disabled* on a cold middleware (shared caches hold only deterministic
        values), but a warm repeat is served almost entirely from the
        evaluation memo (and skips Step 1 via the session's Step-1 memo).  A
        request that is infeasible at the current sampling rate raises
        ``InfeasibleAcquisitionError`` instead of buying more samples —
        refresh the session with :meth:`rebuild_offline` (see the module
        docstring).  ``seed`` defaults to the service base seed, so a
        repeated identical call is a repeated identical walk.

        Raises :class:`~repro.exceptions.AdmissionRejectedError` when the
        admission queue is full under the ``reject`` policy; under ``block``
        the call waits for a slot instead.  Under QoS
        (``ServiceConfig(qos=...)``) the call may additionally raise
        :class:`~repro.exceptions.RateLimitedError` (token bucket empty) or
        :class:`~repro.exceptions.DeadlineExceededError` (deadline missed at
        dequeue) — all three carry a retry-after hint where meaningful.
        """
        resolved_seed = self._seed if seed is None else seed
        if self._qos is not None:
            item = self._qos_serve(request, 0, resolved_seed)
            if not isinstance(item.error, SHED_ERRORS):
                self._count(item)
            return item.require_result()
        submitted = time.perf_counter()
        if not self._admission.admit():
            raise AdmissionRejectedError(
                "admission queue is full "
                f"(max_queue_depth={self.config.service.max_queue_depth})",
                retry_after=self._retry_after_hint(),
            )
        try:
            item = self._serve_item(
                request, index=0, seed=resolved_seed, submitted_at=submitted
            )
        finally:
            self._admission.release()
        self._count(item)
        return item.require_result()

    def acquire_batch(
        self, requests: Sequence[AcquisitionRequest], *, seeds: Sequence[int] | None = None
    ) -> BatchResult:
        """Serve a batch of requests concurrently, deterministically.

        Every request gets the blake2b-derived seed of its batch *index*
        (``seeds`` overrides them positionally), runs under the thread
        fan-out of ``ServiceConfig.max_batch_workers``, and lands in the
        result at its request position — so the batch outcome is
        bit-identical to serving the same requests one at a time in order,
        whatever the fan-out or executor.  Requests that fail (infeasible
        constraints, unknown attributes) report their error on their
        :class:`~repro.service.batch.ServedRequest` without affecting the
        rest of the batch.

        Requests are *submitted* in per-shopper round-robin order
        (:func:`~repro.service.admission.fair_order` over
        ``request.shopper``), and each submission passes the bounded
        admission queue first: under the ``block`` policy a full queue
        back-pressures this call, under ``reject`` the overflowing item
        fails with :class:`~repro.exceptions.AdmissionRejectedError` on its
        batch slot.  Neither fairness nor admission changes any served
        result — seeds and result positions follow the original request
        index.
        """
        requests = list(requests)
        if seeds is not None:
            seeds = list(seeds)
            if len(seeds) != len(requests):
                raise ReproError(
                    f"got {len(seeds)} seeds for {len(requests)} requests"
                )
        else:
            seeds = [request_seed(self._seed, index) for index in range(len(requests))]

        if not requests:
            return BatchResult(items=[])
        pool = self._ensure_request_pool()
        order = fair_order([request.shopper for request in requests])
        items: list[ServedRequest | None] = [None] * len(requests)
        if self._qos is not None:
            # The scheduler subsumes admission: workers submit into the WFQ
            # themselves (token bucket + depth bound applied there) and block
            # until their grant, so this thread only fans the batch out.
            if pool is None:
                for index in order:
                    items[index] = self._qos_serve(
                        requests[index], index, seeds[index]
                    )
            else:
                futures = {
                    index: pool.submit(
                        self._qos_serve, requests[index], index, seeds[index]
                    )
                    for index in order
                }
                for index, future in futures.items():
                    items[index] = future.result()
        elif pool is None:
            for index in order:
                submitted = time.perf_counter()
                if not self._admission.admit():
                    items[index] = self._rejected_item(requests[index], index, seeds[index])
                    continue
                try:
                    items[index] = self._serve_item(
                        requests[index],
                        index=index,
                        seed=seeds[index],
                        submitted_at=submitted,
                    )
                finally:
                    self._admission.release()
        else:
            futures = {}
            for index in order:
                submitted = time.perf_counter()
                if not self._admission.admit():
                    items[index] = self._rejected_item(requests[index], index, seeds[index])
                    continue
                try:
                    futures[index] = pool.submit(
                        self._serve_admitted,
                        requests[index],
                        index,
                        seeds[index],
                        submitted,
                    )
                except BaseException:
                    self._admission.release()
                    raise
            for index, future in futures.items():
                items[index] = future.result()
        batch = BatchResult(items=items)
        with self._lock:
            self._batches_served += 1
        for item in items:
            # Shed items never executed: they appear in the queue/qos shed
            # counters, not in requests_served/errors — the same accounting
            # a rejected single acquire() gets.
            if not isinstance(item.error, SHED_ERRORS):
                self._count(item)
        return batch

    def _serve_admitted(
        self,
        request: AcquisitionRequest,
        index: int,
        seed: int,
        submitted_at: float | None = None,
    ) -> ServedRequest:
        """Worker-side wrapper: always give the admission slot back."""
        try:
            return self._serve_item(
                request, index=index, seed=seed, submitted_at=submitted_at
            )
        finally:
            self._admission.release()

    def _qos_serve(
        self, request: AcquisitionRequest, index: int, seed: int
    ) -> ServedRequest:
        """One request's trip through the QoS scheduler (worker-side).

        Shed requests — rate-limited at submit, queue-full under ``reject``,
        deadline-missed at grant — land their typed error on the batch item
        without ever holding an execution slot.
        """
        qos = self._qos
        assert qos is not None
        try:
            ticket = qos.submit(request)
        except SHED_ERRORS as error:
            return ServedRequest(index=index, request=request, seed=seed, error=error)
        try:
            queued = qos.await_grant(ticket)
        except DeadlineExceededError as error:
            return ServedRequest(index=index, request=request, seed=seed, error=error)
        except BaseException:
            qos.abandon(ticket)
            raise
        try:
            return self._serve_item(
                request, index=index, seed=seed, queued_seconds=queued
            )
        finally:
            qos.release(ticket)

    def _retry_after_hint(self) -> int:
        """The computed ``Retry-After`` of a request shed at admission."""
        return retry_after_hint(
            self._admission.depth, self._metrics.execution.percentile(0.5)
        )

    def _rejected_item(
        self, request: AcquisitionRequest, index: int, seed: int
    ) -> ServedRequest:
        return ServedRequest(
            index=index,
            request=request,
            seed=seed,
            error=AdmissionRejectedError(
                f"request {index} rejected: admission queue full "
                f"(max_queue_depth={self.config.service.max_queue_depth})",
                retry_after=self._retry_after_hint(),
            ),
        )

    def _serve_item(
        self,
        request: AcquisitionRequest,
        *,
        index: int,
        seed: int,
        submitted_at: float | None = None,
        queued_seconds: float = 0.0,
    ) -> ServedRequest:
        """Execute one admitted request.

        ``queued_seconds`` carries a wait already measured by the caller (the
        QoS scheduler's grant delay); ``submitted_at`` lets the non-QoS paths
        measure their own wait (admission block plus batch-pool queueing)
        against the submission timestamp.  ``elapsed_seconds`` is always
        queue wait + execution — what the caller observed end to end.
        """
        runtime = self._runtime_for(request, seed)
        item = ServedRequest(index=index, request=request, seed=seed)
        with self._lock:
            self._in_flight += 1
        start = time.perf_counter()
        if submitted_at is not None:
            queued_seconds = max(0.0, start - submitted_at)
        try:
            item.result = self._dance.acquire(request, runtime=runtime)
        except ReproError as error:
            item.error = error
        finally:
            item.execution_seconds = time.perf_counter() - start
            item.queued_seconds = queued_seconds
            item.elapsed_seconds = queued_seconds + item.execution_seconds
            with self._lock:
                self._in_flight -= 1
            self._metrics.record_request(
                item.elapsed_seconds,
                ok=item.ok,
                cache_hit_rate=(
                    item.result.mcmc_cache_hit_rate if item.result is not None else None
                ),
                queued_seconds=queued_seconds,
                execution_seconds=item.execution_seconds,
            )
        return item

    def _count(self, item: ServedRequest) -> None:
        with self._lock:
            self._requests_served += 1
            if not item.ok:
                self._errors += 1

    # ------------------------------------------------------- session plumbing
    def _runtime_for(self, request: AcquisitionRequest, seed: int) -> SearchRuntime:
        """The session-scoped runtime of one request (caches, pool, seed)."""
        with self._lock:
            if self._closed:
                raise ReproError("the acquisition service has been closed")
            if self._dance._join_graph is None:
                # Deferred offline phase: build it once, under the lock, so
                # concurrent first requests cannot each buy a sample set.
                self._dance.build_offline()
            self._sync_locked()
            share = self.config.service.share_caches
            evaluation_cache = (
                self._evaluation_cache_locked(request) if share else LockStripedCache()
            )
            ji_cache = self._ji_cache if share else LockStripedCache()
            step1_cache = self._step1_memo if self.config.service.step1_memo else None
            pool, pool_state = self._chain_pool_locked()
        return SearchRuntime(
            evaluation_cache=evaluation_cache,
            ji_cache=ji_cache,
            step1_cache=step1_cache,
            pool=pool,
            pool_state=pool_state,
            mcmc_seed=seed,
            resampling=copy.deepcopy(self.config.resampling),
            allow_refinement=False,
            candidate_filter=self._candidate_filter,
        )

    def _sync_locked(self, changed: Sequence[str] | None = None) -> None:
        """Re-derive session state after a join-graph change (caller holds the lock).

        Any version bump means sample tables may have been replaced, which
        invalidates evaluation memo entries (they were computed on the old
        tables) and the process pool's preloaded worker state.  Structural
        additions bump the version too: the old cache entries would still be
        valid, but a pool preloaded without the new instance must not serve
        graphs that contain it, and a full reset keeps the invalidation rule
        simple and obviously correct.

        Pools over a shared columnar store are *versioned*, not disposable:
        when ``changed`` names the touched instances, only their deltas are
        published (workers apply them in place); otherwise the published
        snapshot is rebased wholesale.  Either way the warm pool survives.
        """
        version = self._dance.graph_version
        if version == self._synced_version:
            return
        if self._synced_version is not None:
            self._cache_resets += 1
        self._synced_version = version
        stripes = self.config.service.cache_stripes
        self._ji_cache = LockStripedCache(stripes)
        self._evaluation_caches = {}
        # The Step-1 memo is keyed on the graph revision too, but a *new*
        # graph object restarts its revision counter, so the version bump
        # must drop the memo outright (same rule as the evaluation memos).
        self._step1_memo = (
            CountingCache(stripes) if self.config.service.step1_memo else None
        )
        if not self._refresh_chain_pool_locked(version, changed):
            self._dispose_chain_pool_locked()
        self._restore_caches_locked()

    def _refresh_chain_pool_locked(
        self, version: int, changed: Sequence[str] | None
    ) -> bool:
        """Ship a graph change to a warm shared-store pool instead of killing it.

        Returns ``True`` when the pool's published state now matches the
        current graph (delta shipped, or snapshot rebased); ``False`` when
        there is no shared-store pool to refresh, so the caller falls back to
        the dispose-and-rebuild path.
        """
        state = self._chain_pool_state
        if self._chain_pool is None or not isinstance(state, SharedChainState):
            return False
        graph = self._dance._join_graph
        if graph is None:
            return False
        if changed:
            state.publish_delta(
                graph, self._dance.fds, version=version, changed=tuple(changed)
            )
        else:
            state.rebase(graph, self._dance.fds, version=version)
        return True

    def _attach_catalog(self, path: str | Path) -> None:
        """Attach an existing catalog at ``path`` to the session's marketplace.

        A marketplace opened from the catalog already carries it; for a
        marketplace built from scratch this makes the persisted offline state
        and session caches visible (every read is fingerprint-guarded, so a
        catalog written for different data simply warms nothing).  A missing
        file is fine — the first checkpoint creates it; an unusable one
        degrades to a cold session with a ``RuntimeWarning``.
        """
        market = self._dance.marketplace
        if market.storage is not None:
            return
        target = Path(path)
        if not target.exists():
            return
        from repro import storage as _storage

        try:
            market._attach(_storage.open_backend(target))
        except StorageError as error:
            warnings.warn(
                f"ignoring unusable catalog at {target}: {error}",
                RuntimeWarning,
                stacklevel=3,
            )

    def _restore_caches_locked(self) -> None:
        """Seed the freshly reset session caches from the attached catalog.

        The persisted blob carries a fingerprint of the graph state (every
        sample table plus the revision counter) it was computed on; the
        caches are adopted only when the current graph hashes identically —
        Step-1 memo keys embed the graph revision, and JI keys are only
        meaningful for unchanged samples.  Any failure warns and serves cold;
        restoring is an optimisation, never a correctness dependency.
        """
        storage = self._dance.marketplace.storage
        if storage is None or self._dance._join_graph is None:
            return
        from repro.storage import NS_SESSION
        from repro.storage import serialize as _serialize

        try:
            payload = storage.get(NS_SESSION, "caches")
            if payload is None:
                return
            state = _serialize.loads(payload)
            if not isinstance(state, dict):
                raise StorageError("session cache state is not a mapping")
            graph = self._dance._join_graph
            fingerprint = _serialize.graph_state_fingerprint(
                graph._samples, graph.revision
            )
            if state.get("fingerprint") != fingerprint:
                return
            if self._ji_cache is not None and state.get("ji"):
                self._ji_cache.update(state["ji"])
            if self._step1_memo is not None and state.get("step1"):
                self._step1_memo.update(state["step1"])
        except Exception as error:  # dancelint: disable=ERR301 -- restore is best-effort
            warnings.warn(
                f"ignoring unreadable session caches in the catalog: {error}",
                RuntimeWarning,
                stacklevel=3,
            )

    def _evaluation_cache_locked(self, request: AcquisitionRequest) -> LockStripedCache:
        """The evaluation memo of one request signature (caller holds the lock).

        Evaluations depend on the source/target attribute sets (correlation is
        measured between them), so the memo is namespaced by
        ``(source_attributes, target_attributes)``; budgets and α/β
        constraints are applied *to* evaluations, never baked into them, so
        requests differing only in constraints share a namespace.
        """
        key = (request.source_attributes, request.target_attributes)
        cache = self._evaluation_caches.get(key)
        if cache is None:
            cache = LockStripedCache(self.config.service.cache_stripes)
            self._evaluation_caches[key] = cache
        return cache

    def _chain_pool_locked(self):
        """The persistent executor for multi-chain walks (caller holds the lock).

        Driven by the effective :class:`~repro.search.plan.ExecutionPlan`:
        ``pool_policy="per_call"`` opts out of persistence (the scheduler
        builds a fresh pool per search); process pools with the shared store
        enabled get a :func:`~repro.search.chains.shared_chain_pool` whose
        workers map the columnar segments read-only and survive catalog
        updates through versioned deltas.
        """
        plan = self.config.execution_plan
        if plan.chains <= 1 or plan.executor == "serial":
            return None, None
        if plan.pool_policy == "per_call":
            return None, None
        if self._chain_pool is None:
            workers = plan.resolved_workers()
            if plan.executor == "process":
                if plan.wants_shared_store:
                    self._chain_pool, self._chain_pool_state = shared_chain_pool(
                        self._dance.join_graph,
                        self._dance.fds,
                        token=f"acqsvc-{self._service_id}",
                        max_workers=workers,
                        version=self._dance.graph_version,
                        share_worker_caches=self.config.service.share_caches,
                    )
                else:
                    token = (
                        f"acquisition-service-{self._service_id}-v{self._synced_version}"
                    )
                    self._chain_pool, self._chain_pool_state = process_chain_pool(
                        self._dance.join_graph,
                        self._dance.fds,
                        token=token,
                        max_workers=workers,
                    )
            else:
                self._chain_pool = ThreadPoolExecutor(
                    max_workers=workers,
                    thread_name_prefix=f"acquisition-service-{self._service_id}-chain",
                )
                self._chain_pool_state = None
        return self._chain_pool, self._chain_pool_state

    def _ensure_request_pool(self) -> ThreadPoolExecutor | None:
        with self._lock:
            if self._closed:
                raise ReproError("the acquisition service has been closed")
            workers = self.config.service.max_batch_workers
            if workers <= 1:
                return None
            if self._request_pool is None:
                self._request_pool = ThreadPoolExecutor(
                    max_workers=workers,
                    thread_name_prefix=f"acquisition-service-{self._service_id}-batch",
                )
            return self._request_pool

    def _dispose_chain_pool_locked(self) -> None:
        if self._chain_pool is not None:
            self._chain_pool.shutdown(wait=True)
            if isinstance(self._chain_pool_state, SharedChainState):
                # Unlink the published segments only after the workers exit —
                # POSIX keeps the memory alive for attached mappings, but the
                # leak check wants /dev/shm clean the moment the pool is gone.
                self._chain_pool_state.close()
            self._chain_pool = None
            self._chain_pool_state = None

    # ------------------------------------------------------------- management
    def register_source_tables(self, tables: Sequence[Table]) -> dict[str, object]:
        """Register shopper instances on the live session (incremental refresh).

        Forwards to :meth:`DANCE.register_source_tables` — pure additions
        update the join graph in place, recomputing only the edges that touch
        the new instances — then invalidates the session caches and pools the
        change made stale.  When the service has a catalog
        (``ServiceConfig(catalog_path=...)``), the refreshed state —
        marketplace, offline phase, session caches — is checkpointed to it in
        the same call, so a restart after the registration is warm; the
        summary gains a ``"checkpointed"`` flag.  Returns DANCE's refresh
        summary (mode, added / replaced names, edge recompute count).  Must
        not overlap in-flight requests.
        """
        with self._lock:
            summary = self._dance.register_source_tables(tables)
            if self._dance._join_graph is not None:
                # Shared-store pools take a per-instance delta instead of a
                # teardown; a "noop" refresh did not bump the version, so
                # _sync_locked leaves every cache and pool untouched.
                changed = list(summary["added"]) + list(summary["replaced"])
                self._sync_locked(changed)
            if self.config.service.catalog_path is not None:
                try:
                    self._persist_locked(self.config.service.catalog_path)
                    summary["checkpointed"] = True
                except StorageError as error:
                    summary["checkpointed"] = False
                    warnings.warn(
                        f"session checkpoint failed: {error}",
                        RuntimeWarning,
                        stacklevel=2,
                    )
        return summary

    def persist(
        self, path: str | Path | None = None, *, kind: str | None = None
    ) -> object:
        """Checkpoint marketplace, offline state, and session caches.

        ``path`` defaults to ``ServiceConfig.catalog_path``, then to the
        marketplace's attached backend.  The session namespace stores the JI
        cache and Step-1 memo under a fingerprint of the current graph state,
        so a restarted service only adopts them while the data is unchanged.
        The write is atomic end to end (one temp-file rename covers all
        namespaces).  Must not overlap in-flight requests.  Returns the
        attached backend.
        """
        with self._lock:
            if self._closed:
                raise ReproError("the acquisition service has been closed")
            if self._dance._join_graph is None:
                self._dance.build_offline()
            self._sync_locked()
            return self._persist_locked(path, kind=kind)

    def _persist_locked(
        self, path: str | Path | None = None, *, kind: str | None = None
    ) -> object:
        from repro.storage import NS_SESSION
        from repro.storage import serialize as _serialize

        def write_session(backend) -> None:
            graph = self._dance._join_graph
            if graph is None:
                return
            state = {
                "fingerprint": _serialize.graph_state_fingerprint(
                    graph._samples, graph.revision
                ),
                "ji": dict(self._ji_cache.items()) if self._ji_cache else {},
                "step1": dict(self._step1_memo.items()) if self._step1_memo else {},
            }
            backend.put(NS_SESSION, "caches", _serialize.dumps(state))

        target = path if path is not None else self.config.service.catalog_path
        return self._dance.persist(target, kind=kind, extra=write_session)

    def rebuild_offline(self, *, sampling_rate: float | None = None) -> JoinGraph:
        """Re-run the offline phase (e.g. at a higher sampling rate) and resync.

        The rebuild itself is incremental where possible: DANCE reuses cached
        JI weights for instance pairs whose samples did not change (source
        tables never change when samples are re-bought).  Must not overlap
        in-flight requests.
        """
        with self._lock:
            graph = self._dance.build_offline(sampling_rate=sampling_rate)
            self._sync_locked()
        return graph

    def close(self) -> None:
        """Shut down the pools.  Idempotent; the service refuses new requests after."""
        with self._lock:
            if self._closed:
                return
            self._closed = True
            self._dispose_chain_pool_locked()
            if self._request_pool is not None:
                self._request_pool.shutdown(wait=True)
                self._request_pool = None

    def __enter__(self) -> "AcquisitionService":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    # -------------------------------------------------------------- summaries
    def metrics(self) -> dict[str, object]:
        """The operational metrics dump (CLI ``metrics``, ``batch`` summary).

        Per-request latency (lifetime histogram buckets, p50/p95/p99 over the
        sliding window), the evaluation-cache hit-rate trend, the admission
        queue's counters (depth, peak, rejections, blocked time), the
        in-flight gauge, and the Step-1 memo's hit accounting.
        """
        with self._lock:
            in_flight = self._in_flight
            step1: dict[str, object] = {"enabled": self.config.service.step1_memo}
            if self.config.service.step1_memo:
                # Stable schema even before the first request syncs the
                # session (the memo is created lazily in _sync_locked).
                step1.update(
                    self._step1_memo.snapshot()
                    if self._step1_memo is not None
                    else {"entries": 0, "hits": 0, "misses": 0}
                )
        payload = self._metrics.snapshot()
        payload["in_flight"] = in_flight
        # Under QoS the scheduler *is* the admission queue; its snapshot keeps
        # the same schema, so the payload shape is configuration-independent.
        payload["queue"] = (
            self._qos.snapshot() if self._qos is not None else self._admission.snapshot()
        )
        payload["qos"] = (
            self._qos.qos_snapshot() if self._qos is not None else disabled_qos_snapshot()
        )
        payload["step1_memo"] = step1
        return payload

    def describe(self) -> dict[str, object]:
        metrics = self.metrics()
        with self._lock:
            evaluation_entries = sum(
                len(cache) for cache in self._evaluation_caches.values()
            )
            return {
                "seed": self._seed,
                "requests_served": self._requests_served,
                "batches_served": self._batches_served,
                "errors": self._errors,
                "in_flight": self._in_flight,
                "cache_resets": self._cache_resets,
                "graph_version": self._dance.graph_version,
                "evaluation_cache_groups": len(self._evaluation_caches),
                "evaluation_cache_entries": evaluation_entries,
                "ji_cache_entries": 0 if self._ji_cache is None else len(self._ji_cache),
                "step1_memo_entries": (
                    0 if self._step1_memo is None else len(self._step1_memo)
                ),
                "chain_pool": None if self._chain_pool is None else self.config.mcmc.executor,
                "execution_plan": self.config.execution_plan.spec(),
                "shared_store": (
                    self._chain_pool_state.stats()
                    if isinstance(self._chain_pool_state, SharedChainState)
                    else None
                ),
                "batch_workers": self.config.service.max_batch_workers,
                "metrics": metrics,
                "dance": self._dance.describe(),
            }
