"""The acquisition service layer: one hot marketplace, many requests.

Everything below :class:`~repro.core.dance.DANCE` is a one-shot library —
each ``acquire()`` call rebuilds its world (fresh caches per candidate
I-graph, a fresh executor pool per ``mcmc_search`` call).  This package turns
the online phase into a long-lived *session*:

:class:`AcquisitionService`
    Wraps one :class:`~repro.marketplace.market.Marketplace` plus its offline
    phase and serves many :class:`~repro.marketplace.shopper.AcquisitionRequest`\\ s.
    It owns the evaluation memo and JI cache (shared across all candidate
    I-graphs of a request *and* across requests), a single persistent
    thread / process executor pool serving every multi-chain ``mcmc_search``
    call, and the thread fan-out for concurrent batches.

:func:`request_seed` / :class:`ServedRequest` / :class:`BatchResult`
    Deterministic per-request seed derivation (blake2b, the chain-seed
    recipe) and the result types of a batch.

Determinism contract: a batch of N requests is bit-identical to the same N
requests served one at a time — shared caches hold only deterministic values,
per-request seeds depend only on ``(service seed, batch index)``, and result
ordering follows request order, never completion order.
"""

from repro.service.batch import BatchResult, ServedRequest, request_seed
from repro.service.session import AcquisitionService

__all__ = [
    "AcquisitionService",
    "BatchResult",
    "ServedRequest",
    "request_seed",
]
