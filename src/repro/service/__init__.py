"""The acquisition service layer: one hot marketplace, many requests.

Everything below :class:`~repro.core.dance.DANCE` is a one-shot library —
each ``acquire()`` call rebuilds its world (fresh caches per candidate
I-graph, a fresh executor pool per ``mcmc_search`` call).  This package turns
the online phase into a long-lived *session*:

:class:`AcquisitionService`
    Wraps one :class:`~repro.marketplace.market.Marketplace` plus its offline
    phase and serves many :class:`~repro.marketplace.shopper.AcquisitionRequest`\\ s.
    It owns the evaluation memo and JI cache (shared across all candidate
    I-graphs of a request *and* across requests), a single persistent
    thread / process executor pool serving every multi-chain ``mcmc_search``
    call, and the thread fan-out for concurrent batches.

:func:`request_seed` / :class:`ServedRequest` / :class:`BatchResult`
    Deterministic per-request seed derivation (blake2b, the chain-seed
    recipe) and the result types of a batch.

:class:`AdmissionQueue` / :func:`fair_order` (:mod:`repro.service.admission`)
    The traffic layer: a bounded admission queue with block/reject
    backpressure and per-shopper round-robin submission fairness.

:class:`ServiceMetrics` / :class:`LatencyHistogram` (:mod:`repro.service.metrics`)
    Per-request latency percentiles, cache hit-rate trends over a sliding
    window, and the counting cache behind the Step-1 memo.

:class:`QosScheduler` / :class:`QosConfig` (:mod:`repro.service.qos`)
    The priced QoS layer (``ServiceConfig(qos=...)``): weighted fair
    queueing over SLA tiers (:mod:`repro.pricing.sla`), per-shopper
    token-bucket rate limits, and deadline-aware shedding — whether/when a
    request runs, never what it computes.

:class:`ShardRouter` (:mod:`repro.service.router`)
    Scale-out: N in-process service shards over one marketplace, each
    searching only the Step-1 candidates it owns, folded back into an answer
    bit-identical to the single-shard service for any partition.

:class:`AcquisitionHTTPServer` (:mod:`repro.service.server`)
    The networked serve tier: ``POST /acquire`` (single + batch), ``GET
    /metrics`` (Prometheus text), ``GET /healthz``, graceful drain —
    stdlib ``http.server`` only, fronting a service or a shard router.

Determinism contract: a batch of N requests is bit-identical to the same N
requests served one at a time — shared caches hold only deterministic values,
per-request seeds depend only on ``(service seed, batch index)``, and result
ordering follows request order, never completion order.  Admission, fairness
and the Step-1 memo decide whether/when/how cheaply a request runs, never
what it computes.
"""

from repro.service.admission import AdmissionQueue, fair_order
from repro.service.batch import BatchResult, ServedRequest, request_seed
from repro.service.metrics import CountingCache, LatencyHistogram, ServiceMetrics
from repro.service.qos import (
    QosConfig,
    QosScheduler,
    TokenBucket,
    WeightedFairQueue,
    retry_after_hint,
)
from repro.service.router import ShardRouter
from repro.service.server import AcquisitionHTTPServer, render_prometheus
from repro.service.session import AcquisitionService

__all__ = [
    "AcquisitionHTTPServer",
    "AcquisitionService",
    "AdmissionQueue",
    "BatchResult",
    "CountingCache",
    "LatencyHistogram",
    "QosConfig",
    "QosScheduler",
    "ServedRequest",
    "ServiceMetrics",
    "ShardRouter",
    "TokenBucket",
    "WeightedFairQueue",
    "fair_order",
    "render_prometheus",
    "request_seed",
    "retry_after_hint",
]
