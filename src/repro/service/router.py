"""Scale-out routing: N in-process service shards, one folded answer.

The router is the "millions of users" architecture step of the ROADMAP: a
request no longer runs on one :class:`~repro.service.session.AcquisitionService`
but fans out to ``num_shards`` of them, each searching only the Step-1
candidate I-graphs it *owns*, and the per-shard winners fold into one answer.

**Parity is the design constraint.**  Partitioning the marketplace *data*
across shards would change the search space, so the router partitions
candidate *ownership* instead:

* Every shard is a full :class:`AcquisitionService` over the **same**
  marketplace object.  The offline phase is deterministic (correlated
  sampling is seeded), so all shards hold bit-identical join graphs.
* Instances are partitioned across shards (:func:`instance_assignment`); a
  candidate I-graph's *home* is its lexicographically smallest instance
  (:func:`candidate_home`), and the shard owning that instance owns the
  candidate (:func:`candidate_owner`).  Every shard runs the identical,
  memoised Step 1 and then searches only its owned candidates, via the
  ``candidate_filter`` hook of
  :class:`~repro.search.acquisition.SearchRuntime`.
* Per-shard winners carry their candidate's global Step-1 position
  (``AcquisitionResult.igraph_index``); :func:`fold_winners` picks the
  highest correlation and breaks ties toward the lowest index — the same
  rule the unfiltered candidate loop applies (strict ``>`` scanning in index
  order).  For *any* partition of the candidates, the global winner is its
  own shard's winner, so the fold reproduces the single-shard answer
  bit-for-bit (``scripts/check_serve_parity.py`` and the hypothesis property
  suite enforce this).

Parity is scoped to the served bits — target graph, correlation / quality /
join-informativeness / price, SQL, I-graph size.  Cache-hit-rate diagnostics
legitimately differ (each shard warms only its own memos), and the shared
marketplace's ``sample_revenue`` counter grows once per shard's offline
phase.

Admission lives at the router, not the shards: shards are built with an
unbounded queue so a single bounded :class:`~repro.service.admission.AdmissionQueue`
decides whether a request runs — a per-shard bound could admit a request on
some shards and reject it on others, silently breaking fold coverage.  The
same ownership rule covers QoS (``ServiceConfig(qos=...)``): the router owns
the one :class:`~repro.service.qos.QosScheduler` and shards are built with
``qos=None``, so weighted fair queueing, rate limiting, and deadline
shedding are decided exactly once per request.
Likewise only shard 0 keeps ``ServiceConfig.catalog_path`` (all shards still
*restore* from the shared marketplace's attached catalog; one shard
checkpointing avoids N redundant writes).
"""

from __future__ import annotations

import hashlib
import threading
import time
from concurrent.futures import ThreadPoolExecutor
from dataclasses import replace
from pathlib import Path
from typing import Callable, Mapping, Sequence

from repro.core.config import DanceConfig
from repro.core.result import AcquisitionResult
from repro.exceptions import (
    AdmissionRejectedError,
    DeadlineExceededError,
    InfeasibleAcquisitionError,
    NoOwnedCandidatesError,
    ReproError,
)
from repro.graph.steiner import IGraph
from repro.marketplace.market import Marketplace
from repro.marketplace.shopper import AcquisitionRequest
from repro.quality.fd import FunctionalDependency
from repro.relational.table import Table
from repro.service.admission import AdmissionQueue, fair_order
from repro.service.batch import BatchResult, ServedRequest, request_seed
from repro.service.metrics import ServiceMetrics
from repro.service.qos import QosScheduler, disabled_qos_snapshot, retry_after_hint
from repro.service.session import SHED_ERRORS, AcquisitionService

# ------------------------------------------------------------- candidate ownership


def instance_assignment(names: Sequence[str], num_shards: int) -> dict[str, int]:
    """Round-robin partition of instance names over shards.

    Deterministic in the *sorted* name order, so every process (and every
    shard) derives the identical map from the same marketplace.
    """
    if num_shards < 1:
        raise ReproError(f"num_shards must be >= 1, got {num_shards}")
    return {name: index % num_shards for index, name in enumerate(sorted(names))}


def candidate_home(igraph: IGraph) -> str:
    """The instance that anchors a candidate I-graph to a shard.

    The lexicographically smallest node: stable under node-order changes and
    derivable by every shard from the candidate alone.
    """
    return min(igraph.nodes)


def candidate_owner(
    igraph: IGraph, assignment: Mapping[str, int], num_shards: int
) -> int:
    """Which shard owns a candidate I-graph.

    The home instance's entry in ``assignment``; instances absent from the
    map (e.g. shopper tables registered after the router was built) hash to a
    shard with blake2b so ownership stays total and deterministic.
    """
    home = candidate_home(igraph)
    shard = assignment.get(home)
    if shard is None:
        digest = hashlib.blake2b(home.encode("utf-8"), digest_size=8).digest()
        shard = int.from_bytes(digest, "big") % num_shards
    return int(shard) % num_shards


def shard_candidate_filter(
    shard_index: int, assignment: Mapping[str, int], num_shards: int
) -> Callable[[int, IGraph], bool]:
    """The ownership predicate one shard threads into its searches."""

    def owns(index: int, igraph: IGraph) -> bool:
        return candidate_owner(igraph, assignment, num_shards) == shard_index

    return owns


# --------------------------------------------------------------------- the fold


def fold_index(pairs: Sequence[tuple[float, int]]) -> int | None:
    """Position of the folded winner among ``(correlation, igraph_index)`` pairs.

    The same rule as the unfiltered candidate loop in
    :func:`repro.search.acquisition.heuristic_acquisition`: highest
    correlation wins, ties break toward the lowest candidate index.  The
    hypothesis property suite checks this is invariant to how candidates are
    partitioned into shards.
    """
    best_position: int | None = None
    for position, (correlation, index) in enumerate(pairs):
        if best_position is None:
            best_position = position
            continue
        best_correlation, best_index = pairs[best_position]
        if correlation > best_correlation or (
            correlation == best_correlation and index < best_index
        ):
            best_position = position
    return best_position


def fold_winners(
    results: Sequence[AcquisitionResult | None],
) -> AcquisitionResult | None:
    """Fold per-shard winning results into the global winner (or ``None``)."""
    candidates = [result for result in results if result is not None]
    if not candidates:
        return None
    position = fold_index(
        [
            (result.evaluation.correlation, result.igraph_index)
            for result in candidates
        ]
    )
    return candidates[position]


def fold_errors(errors: Sequence[ReproError]) -> ReproError:
    """The error to surface when every shard failed.

    The first (by shard index) error that is *not* the
    :class:`~repro.exceptions.NoOwnedCandidatesError` sentinel — a shard that
    owned no candidates reports nothing about feasibility.  All-sentinel
    folds degrade to a plain infeasibility (defensive: with a total
    ownership map at least one shard owns each candidate).
    """
    for error in errors:
        if not isinstance(error, NoOwnedCandidatesError):
            return error
    return InfeasibleAcquisitionError(
        "no feasible acquisition satisfies the request constraints"
    )


# ------------------------------------------------------------------- the router


class ShardRouter:
    """Fans every request to N service shards and folds the winners.

    Drop-in serving surface of :class:`AcquisitionService` —
    ``acquire`` / ``acquire_batch`` / ``metrics`` / ``describe`` /
    ``persist`` / ``register_source_tables`` / ``close`` — with answers
    bit-identical to a single-shard service for any shard count and any
    instance assignment (see the module docstring for why).

    Parameters
    ----------
    marketplace:
        Shared by every shard; the deterministic offline phase gives all
        shards bit-identical join graphs.
    config:
        The middleware configuration.  Each shard gets a copy whose
        ``service`` drops the queue bound (admission is router-level) and,
        for shards past the first, the catalog path (one checkpointer).
    num_shards:
        How many in-process shards to build.
    assignment:
        Optional explicit instance → shard map (values in
        ``range(num_shards)``); defaults to the round-robin
        :func:`instance_assignment` over the marketplace's datasets.
    known_fds / source_tables / build_offline:
        Forwarded to every shard (sequentially, so shards never race on the
        shared marketplace during sampling).
    """

    def __init__(
        self,
        marketplace: Marketplace,
        config: DanceConfig | None = None,
        *,
        num_shards: int,
        assignment: Mapping[str, int] | None = None,
        known_fds: Mapping[str, Sequence[FunctionalDependency]] | None = None,
        source_tables: Sequence[Table] = (),
        build_offline: bool = True,
    ) -> None:
        if num_shards < 1:
            raise ReproError(f"num_shards must be >= 1, got {num_shards}")
        self.config = config or DanceConfig()
        service_config = self.config.service
        self.num_shards = num_shards
        if assignment is None:
            self.assignment = instance_assignment(marketplace.dataset_names, num_shards)
        else:
            self.assignment = {name: int(shard) for name, shard in assignment.items()}
            bad = {n: s for n, s in self.assignment.items() if not 0 <= s < num_shards}
            if bad:
                raise ReproError(
                    f"assignment maps instances outside range({num_shards}): {bad}"
                )
        self._seed = (
            service_config.seed if service_config.seed is not None else self.config.mcmc.seed
        )
        self._lock = threading.Lock()
        self._closed = False
        self._requests_served = 0
        self._batches_served = 0
        self._errors = 0
        self._in_flight = 0
        self._admission = AdmissionQueue(
            service_config.max_queue_depth, service_config.admission
        )
        self._metrics = ServiceMetrics(window=service_config.metrics_window)
        self._qos: QosScheduler | None = (
            QosScheduler(
                service_config.qos,
                max_depth=service_config.max_queue_depth,
                policy=service_config.admission,
                execution_estimate=lambda: self._metrics.execution.percentile(0.5),
            )
            if service_config.qos is not None
            else None
        )
        self._fan_pool: ThreadPoolExecutor | None = None
        self._request_pool: ThreadPoolExecutor | None = None
        self._shards: list[AcquisitionService] = []
        for index in range(num_shards):
            shard_service = replace(
                service_config,
                max_queue_depth=None,
                qos=None,
                catalog_path=service_config.catalog_path if index == 0 else None,
            )
            self._shards.append(
                AcquisitionService(
                    marketplace,
                    replace(self.config, service=shard_service),
                    known_fds=known_fds,
                    source_tables=source_tables,
                    build_offline=build_offline,
                    candidate_filter=shard_candidate_filter(
                        index, self.assignment, num_shards
                    ),
                )
            )

    # ----------------------------------------------------------------- access
    @property
    def shards(self) -> tuple[AcquisitionService, ...]:
        """The shard services, in shard-index order (treat as read-only)."""
        return tuple(self._shards)

    @property
    def seed(self) -> int:
        """The base seed per-request seeds derive from (same recipe as shards)."""
        return self._seed

    # ---------------------------------------------------------------- serving
    def acquire(
        self, request: AcquisitionRequest, *, seed: int | None = None
    ) -> AcquisitionResult:
        """Serve one request through every shard; bit-identical to one shard.

        Admission semantics match :meth:`AcquisitionService.acquire`: a full
        router queue blocks under the ``block`` policy and raises
        :class:`~repro.exceptions.AdmissionRejectedError` under ``reject``;
        under QoS the call may raise
        :class:`~repro.exceptions.RateLimitedError` or
        :class:`~repro.exceptions.DeadlineExceededError` instead.
        """
        resolved_seed = self._seed if seed is None else seed
        if self._qos is not None:
            item = self._qos_serve(request, 0, resolved_seed)
            if not isinstance(item.error, SHED_ERRORS):
                self._count(item)
            return item.require_result()
        submitted = time.perf_counter()
        if not self._admission.admit():
            raise AdmissionRejectedError(
                "admission queue is full "
                f"(max_queue_depth={self.config.service.max_queue_depth})",
                retry_after=self._retry_after_hint(),
            )
        try:
            item = self._serve_item(
                request, index=0, seed=resolved_seed, submitted_at=submitted
            )
        finally:
            self._admission.release()
        self._count(item)
        return item.require_result()

    def acquire_batch(
        self, requests: Sequence[AcquisitionRequest], *, seeds: Sequence[int] | None = None
    ) -> BatchResult:
        """Serve a batch with the exact contract of the single-shard service.

        Per-request seeds derive from the batch index (``seeds`` overrides
        positionally), submission is per-shopper round-robin through the
        router's bounded admission queue, and results land at their request
        positions — bit-identical to :meth:`AcquisitionService.acquire_batch`
        on one shard, whatever the shard count or fan-out.
        """
        requests = list(requests)
        if seeds is not None:
            seeds = list(seeds)
            if len(seeds) != len(requests):
                raise ReproError(f"got {len(seeds)} seeds for {len(requests)} requests")
        else:
            seeds = [request_seed(self._seed, index) for index in range(len(requests))]

        if not requests:
            return BatchResult(items=[])
        pool = self._ensure_request_pool()
        order = fair_order([request.shopper for request in requests])
        items: list[ServedRequest | None] = [None] * len(requests)
        if self._qos is not None:
            if pool is None:
                for index in order:
                    items[index] = self._qos_serve(
                        requests[index], index, seeds[index]
                    )
            else:
                futures = {
                    index: pool.submit(
                        self._qos_serve, requests[index], index, seeds[index]
                    )
                    for index in order
                }
                for index, future in futures.items():
                    items[index] = future.result()
        elif pool is None:
            for index in order:
                submitted = time.perf_counter()
                if not self._admission.admit():
                    items[index] = self._rejected_item(requests[index], index, seeds[index])
                    continue
                try:
                    items[index] = self._serve_item(
                        requests[index],
                        index=index,
                        seed=seeds[index],
                        submitted_at=submitted,
                    )
                finally:
                    self._admission.release()
        else:
            futures = {}
            for index in order:
                submitted = time.perf_counter()
                if not self._admission.admit():
                    items[index] = self._rejected_item(requests[index], index, seeds[index])
                    continue
                try:
                    futures[index] = pool.submit(
                        self._serve_admitted,
                        requests[index],
                        index,
                        seeds[index],
                        submitted,
                    )
                except BaseException:
                    self._admission.release()
                    raise
            for index, future in futures.items():
                items[index] = future.result()
        batch = BatchResult(items=items)
        with self._lock:
            self._batches_served += 1
        for item in items:
            if not isinstance(item.error, SHED_ERRORS):
                self._count(item)
        return batch

    def _serve_admitted(
        self,
        request: AcquisitionRequest,
        index: int,
        seed: int,
        submitted_at: float | None = None,
    ) -> ServedRequest:
        try:
            return self._serve_item(
                request, index=index, seed=seed, submitted_at=submitted_at
            )
        finally:
            self._admission.release()

    def _qos_serve(
        self, request: AcquisitionRequest, index: int, seed: int
    ) -> ServedRequest:
        """One request through the router's QoS scheduler, then the fan."""
        qos = self._qos
        assert qos is not None
        try:
            ticket = qos.submit(request)
        except SHED_ERRORS as error:
            return ServedRequest(index=index, request=request, seed=seed, error=error)
        try:
            queued = qos.await_grant(ticket)
        except DeadlineExceededError as error:
            return ServedRequest(index=index, request=request, seed=seed, error=error)
        except BaseException:
            qos.abandon(ticket)
            raise
        try:
            return self._serve_item(
                request, index=index, seed=seed, queued_seconds=queued
            )
        finally:
            qos.release(ticket)

    def _retry_after_hint(self) -> int:
        return retry_after_hint(
            self._admission.depth, self._metrics.execution.percentile(0.5)
        )

    def _rejected_item(
        self, request: AcquisitionRequest, index: int, seed: int
    ) -> ServedRequest:
        return ServedRequest(
            index=index,
            request=request,
            seed=seed,
            error=AdmissionRejectedError(
                f"request {index} rejected: admission queue full "
                f"(max_queue_depth={self.config.service.max_queue_depth})",
                retry_after=self._retry_after_hint(),
            ),
        )

    def _serve_item(
        self,
        request: AcquisitionRequest,
        *,
        index: int,
        seed: int,
        submitted_at: float | None = None,
        queued_seconds: float = 0.0,
    ) -> ServedRequest:
        item = ServedRequest(index=index, request=request, seed=seed)
        with self._lock:
            self._in_flight += 1
        start = time.perf_counter()
        if submitted_at is not None:
            queued_seconds = max(0.0, start - submitted_at)
        try:
            item.result = self._fan(request, seed)
        except ReproError as error:
            item.error = error
        finally:
            item.execution_seconds = time.perf_counter() - start
            item.queued_seconds = queued_seconds
            item.elapsed_seconds = queued_seconds + item.execution_seconds
            with self._lock:
                self._in_flight -= 1
            self._metrics.record_request(
                item.elapsed_seconds,
                ok=item.ok,
                cache_hit_rate=(
                    item.result.mcmc_cache_hit_rate if item.result is not None else None
                ),
                queued_seconds=queued_seconds,
                execution_seconds=item.execution_seconds,
            )
        return item

    def _fan(self, request: AcquisitionRequest, seed: int) -> AcquisitionResult:
        """One request through every shard (same seed everywhere), folded.

        Shards receive the identical ``(request, seed)``, so each per-shard
        walk is the exact walk the unsharded service would have run on that
        shard's owned candidates.
        """

        def on_shard(shard: AcquisitionService):
            try:
                return shard.acquire(request, seed=seed), None
            except ReproError as error:
                return None, error

        if self.num_shards == 1:
            outcomes = [on_shard(self._shards[0])]
        else:
            pool = self._ensure_fan_pool()
            outcomes = list(pool.map(on_shard, self._shards))
        winner = fold_winners([result for result, _ in outcomes])
        if winner is not None:
            return winner
        raise fold_errors([error for _, error in outcomes if error is not None])

    def _count(self, item: ServedRequest) -> None:
        with self._lock:
            self._requests_served += 1
            if not item.ok:
                self._errors += 1

    def _ensure_fan_pool(self) -> ThreadPoolExecutor:
        with self._lock:
            if self._closed:
                raise ReproError("the shard router has been closed")
            if self._fan_pool is None:
                # Enough slots for every concurrent batch item to fan to all
                # shards at once; fan tasks are leaves (they submit nothing),
                # so an undersized pool would only queue, never deadlock.
                batch_workers = self.config.service.max_batch_workers
                workers = min(
                    32, max(self.num_shards, self.num_shards * batch_workers)
                )
                self._fan_pool = ThreadPoolExecutor(
                    max_workers=workers, thread_name_prefix="shard-router-fan"
                )
            return self._fan_pool

    def _ensure_request_pool(self) -> ThreadPoolExecutor | None:
        with self._lock:
            if self._closed:
                raise ReproError("the shard router has been closed")
            workers = self.config.service.max_batch_workers
            if workers <= 1:
                return None
            if self._request_pool is None:
                self._request_pool = ThreadPoolExecutor(
                    max_workers=workers, thread_name_prefix="shard-router-batch"
                )
            return self._request_pool

    # ------------------------------------------------------------- management
    def register_source_tables(self, tables: Sequence[Table]) -> dict[str, object]:
        """Register shopper instances on every shard (sequentially).

        All shards apply the identical incremental refresh, so their graphs
        stay bit-identical; shard 0 (the one holding ``catalog_path``)
        checkpoints as usual.  Returns shard 0's refresh summary.  Must not
        overlap in-flight requests.
        """
        summary: dict[str, object] = {}
        for index, shard in enumerate(self._shards):
            result = shard.register_source_tables(tables)
            if index == 0:
                summary = result
        return summary

    def rebuild_offline(self, *, sampling_rate: float | None = None):
        """Re-run the offline phase on every shard; returns shard 0's graph."""
        graphs = [
            shard.rebuild_offline(sampling_rate=sampling_rate) for shard in self._shards
        ]
        return graphs[0]

    def persist(self, path: str | Path | None = None, *, kind: str | None = None):
        """Checkpoint through shard 0 (all shards share the marketplace)."""
        return self._shards[0].persist(path, kind=kind)

    def close(self) -> None:
        """Shut down the pools and every shard.  Idempotent."""
        with self._lock:
            if self._closed:
                return
            self._closed = True
            if self._fan_pool is not None:
                self._fan_pool.shutdown(wait=True)
                self._fan_pool = None
            if self._request_pool is not None:
                self._request_pool.shutdown(wait=True)
                self._request_pool = None
        for shard in self._shards:
            shard.close()

    def __enter__(self) -> "ShardRouter":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    # -------------------------------------------------------------- summaries
    def metrics(self) -> dict[str, object]:
        """Router-level metrics in the :meth:`AcquisitionService.metrics` schema.

        Latency / error / queue / in-flight numbers are the router's own
        (one entry per folded request); the Step-1 memo accounting aggregates
        across shards; ``shards`` carries the shard count.
        """
        with self._lock:
            in_flight = self._in_flight
        step1: dict[str, object] = {"enabled": self.config.service.step1_memo}
        if self.config.service.step1_memo:
            totals = {"entries": 0, "hits": 0, "misses": 0}
            for shard in self._shards:
                snapshot = shard.metrics()["step1_memo"]
                for key in totals:
                    totals[key] += int(snapshot.get(key, 0))
            step1.update(totals)
        payload = self._metrics.snapshot()
        payload["in_flight"] = in_flight
        payload["queue"] = (
            self._qos.snapshot() if self._qos is not None else self._admission.snapshot()
        )
        payload["qos"] = (
            self._qos.qos_snapshot() if self._qos is not None else disabled_qos_snapshot()
        )
        payload["step1_memo"] = step1
        payload["shards"] = self.num_shards
        return payload

    def describe(self) -> dict[str, object]:
        metrics = self.metrics()
        with self._lock:
            requests_served = self._requests_served
            batches_served = self._batches_served
            errors = self._errors
            in_flight = self._in_flight
        return {
            "seed": self._seed,
            "num_shards": self.num_shards,
            "assignment": dict(self.assignment),
            "requests_served": requests_served,
            "batches_served": batches_served,
            "errors": errors,
            "in_flight": in_flight,
            "batch_workers": self.config.service.max_batch_workers,
            "metrics": metrics,
            "shards": [
                {
                    "requests_served": shard.describe()["requests_served"],
                    "graph_version": shard.dance.graph_version,
                }
                for shard in self._shards
            ],
        }
