"""Sample-based estimation of join informativeness, correlation and quality.

The estimators follow Section 3 of the paper:

* ``estimate_join_informativeness`` computes JI on the pair of correlated
  samples (Theorem 3.1: unbiased for two-table joins).
* ``estimate_correlation`` / ``estimate_quality`` evaluate the measure on the
  join of the correlated samples along a join path, applying correlated
  re-sampling to intermediate results whose size exceeds ``eta``
  (Theorem 3.2: unbiased regardless of ``eta``).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Sequence

from repro.infotheory.correlation import attribute_set_correlation
from repro.infotheory.join_informativeness import join_informativeness
from repro.quality.fd import FunctionalDependency
from repro.quality.measure import join_quality
from repro.relational.joins import join_path, shared_join_attributes
from repro.relational.table import Table
from repro.sampling.correlated import CorrelatedSampler
from repro.sampling.resampling import ResamplingPolicy


@dataclass
class SampleEstimator:
    """Estimates JI / CORR / Q of marketplace instances from correlated samples.

    Parameters
    ----------
    sampler:
        The correlated-sampling configuration used to draw per-instance samples.
    resampling:
        The correlated re-sampling policy applied to intermediate join results.
    """

    sampler: CorrelatedSampler
    resampling: ResamplingPolicy = field(default_factory=ResamplingPolicy)

    # ------------------------------------------------------------------ sampling
    def draw_sample(self, table: Table, join_attributes: Sequence[str] | None = None) -> Table:
        """Correlated sample of one instance over ``join_attributes`` (default: all)."""
        attrs = list(join_attributes) if join_attributes else list(table.schema.names)
        return self.sampler.sample(table, attrs)

    def draw_samples(
        self,
        tables: Sequence[Table],
        join_attributes_by_table: dict[str, Sequence[str]] | None = None,
    ) -> list[Table]:
        """Correlated samples of several instances."""
        mapping = join_attributes_by_table or {}
        return self.sampler.sample_all(tables, mapping)

    # -------------------------------------------------------------- estimation
    def estimate_join_informativeness(
        self,
        left: Table,
        right: Table,
        on: Sequence[str] | None = None,
        *,
        presampled: bool = False,
    ) -> float:
        """Estimated ``JI(left, right)`` from correlated samples (Theorem 3.1)."""
        join_attrs = list(on) if on is not None else list(shared_join_attributes(left, right))
        if presampled:
            left_sample, right_sample = left, right
        else:
            left_sample = self.sampler.sample(left, join_attrs)
            right_sample = self.sampler.sample(right, join_attrs)
        if len(left_sample) == 0 or len(right_sample) == 0:
            return 1.0
        return join_informativeness(left_sample, right_sample, join_attrs)

    def joined_sample(
        self,
        tables: Sequence[Table],
        *,
        presampled: bool = False,
    ) -> Table:
        """Join of the correlated samples along the path, with re-sampling applied."""
        if presampled:
            samples = list(tables)
        else:
            samples = []
            for index, table in enumerate(tables):
                join_attrs: list[str] = []
                if index > 0:
                    join_attrs.extend(shared_join_attributes(tables[index - 1], table))
                if index + 1 < len(tables):
                    join_attrs.extend(
                        a
                        for a in shared_join_attributes(table, tables[index + 1])
                        if a not in join_attrs
                    )
                if not join_attrs:
                    join_attrs = list(table.schema.names)
                samples.append(self.sampler.sample(table, join_attrs))
        self.resampling.reset()
        if len(samples) == 1:
            return samples[0]
        return join_path(samples, intermediate_hook=self.resampling)

    def estimate_correlation(
        self,
        tables: Sequence[Table],
        source_attributes: Sequence[str],
        target_attributes: Sequence[str],
        *,
        presampled: bool = False,
    ) -> float:
        """Estimated ``CORR(A_S, A_T)`` on the join of the sampled path (Theorem 3.2)."""
        joined = self.joined_sample(tables, presampled=presampled)
        return attribute_set_correlation(joined, source_attributes, target_attributes)

    def estimate_quality(
        self,
        tables: Sequence[Table],
        fds: Iterable[FunctionalDependency],
        *,
        presampled: bool = False,
    ) -> float:
        """Estimated ``Q`` of the joined path against ``fds`` (Theorem 3.2)."""
        joined = self.joined_sample(tables, presampled=presampled)
        return join_quality(joined, fds)

    def estimate_all(
        self,
        tables: Sequence[Table],
        source_attributes: Sequence[str],
        target_attributes: Sequence[str],
        fds: Iterable[FunctionalDependency],
        *,
        presampled: bool = False,
    ) -> dict[str, float]:
        """Correlation, quality and total path JI in one pass over the samples."""
        joined = self.joined_sample(tables, presampled=presampled)
        correlation = attribute_set_correlation(joined, source_attributes, target_attributes)
        quality = join_quality(joined, list(fds))
        total_ji = 0.0
        for left, right in zip(tables, tables[1:]):
            total_ji += self.estimate_join_informativeness(left, right, presampled=presampled)
        return {
            "correlation": correlation,
            "quality": quality,
            "join_informativeness": total_ji,
            "join_rows": float(len(joined)),
        }
