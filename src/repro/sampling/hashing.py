"""Deterministic uniform hashing of join-attribute values into [0, 1].

Correlated sampling keeps a tuple when ``h(t[J]) <= p`` where ``h`` maps the
join-attribute value uniformly into ``[0, 1]``.  The hash must be deterministic
across instances (so matching join values survive together) and independent of
Python's per-process hash randomisation, so we use blake2b over a canonical
string encoding of the value, parameterised by a seed that selects the hash
family.
"""

from __future__ import annotations

import hashlib
import struct
from typing import Iterable

_MAX_64 = float(2**64 - 1)


def _canonical_bytes(value: object) -> bytes:
    """A canonical byte encoding: equal values encode equally across instances."""
    if value is None:
        return b"\x00none"
    if isinstance(value, bool):
        return b"\x01bool:" + (b"1" if value else b"0")
    if isinstance(value, int):
        return b"\x02int:" + str(value).encode()
    if isinstance(value, float):
        if value.is_integer():
            # 3.0 and 3 must hash identically or cross-typed join keys diverge.
            return b"\x02int:" + str(int(value)).encode()
        return b"\x03float:" + struct.pack(">d", value)
    if isinstance(value, str):
        return b"\x04str:" + value.encode("utf-8")
    if isinstance(value, tuple):
        parts = [b"\x05tuple:"]
        for item in value:
            encoded = _canonical_bytes(item)
            parts.append(struct.pack(">I", len(encoded)))
            parts.append(encoded)
        return b"".join(parts)
    return b"\x06repr:" + repr(value).encode("utf-8")


def uniform_hash(value: object, seed: int = 0) -> float:
    """Hash ``value`` uniformly into ``[0, 1]`` with a seed-selected hash family."""
    digest = hashlib.blake2b(
        _canonical_bytes(value), digest_size=8, key=seed.to_bytes(8, "big", signed=False)
    ).digest()
    return int.from_bytes(digest, "big") / _MAX_64


def uniform_hashes(values: Iterable[object], seed: int = 0) -> list[float]:
    """Vector form of :func:`uniform_hash`."""
    return [uniform_hash(value, seed) for value in values]
