"""Sampling and sample-based estimation (Section 3 of the paper).

DANCE never ships whole marketplace instances to the middleware; it buys
*correlated samples* and estimates join informativeness, correlation and
quality from them.

``hashing``
    The deterministic uniform hash of join-attribute values into ``[0, 1]``.
``correlated``
    Correlated sampling (Vengerov et al.): a tuple is kept when the hash of its
    join-attribute value is below the sampling rate, so tuples that join with
    each other survive together across instances.
``resampling``
    Correlated re-sampling: a second-round Bernoulli sample applied to
    intermediate join results whose size exceeds a threshold ``eta``.
``estimators``
    Unbiased estimators of JI / CORR / Q over join paths built from samples
    (Theorems 3.1 and 3.2).
"""

from repro.sampling.hashing import uniform_hash
from repro.sampling.correlated import CorrelatedSampler, correlated_sample
from repro.sampling.resampling import ResamplingPolicy, resample_if_large
from repro.sampling.estimators import SampleEstimator

__all__ = [
    "uniform_hash",
    "correlated_sample",
    "CorrelatedSampler",
    "ResamplingPolicy",
    "resample_if_large",
    "SampleEstimator",
]
