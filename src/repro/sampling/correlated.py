"""Correlated sampling over join attributes (Section 3 of the paper).

A tuple ``t`` of instance ``D`` is included in the sample when
``h(t[J]) <= p`` where ``J`` is the join attribute (set), ``h`` is a
deterministic uniform hash into ``[0, 1]`` and ``p`` is the sampling rate.
Because the same hash is used for every instance, tuples that would join with
each other are kept or dropped *together*, which is what makes join-size /
join-statistics estimation from the samples unbiased.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Mapping, Sequence

from repro.exceptions import SamplingError
from repro.relational.table import Table
from repro.sampling.hashing import uniform_hash


def correlated_sample(
    table: Table,
    join_attributes: Sequence[str],
    rate: float,
    *,
    seed: int = 0,
    name: str | None = None,
) -> Table:
    """Correlated sample of ``table`` at ``rate`` over ``join_attributes``.

    Rows whose join-attribute value hashes below ``rate`` are kept.  Rows with a
    ``None`` join value never match anything in an equi-join, but they are kept
    with an independent per-row draw so that quality estimation still sees them
    at approximately the right frequency.
    """
    if not 0.0 < rate <= 1.0:
        raise SamplingError(f"sampling rate must be in (0, 1], got {rate}")
    validated = table.schema.validate_subset(join_attributes)
    if rate == 1.0:
        return table.with_name(name or f"{table.name}_sample")

    keys = table.key_tuples(validated)
    keep: list[int] = []
    for index, key in enumerate(keys):
        if any(value is None for value in key):
            # independent draw keyed by the row index so the choice is reproducible
            draw = uniform_hash((table.name, index), seed=seed + 1)
        else:
            draw = uniform_hash(key, seed=seed)
        if draw <= rate:
            keep.append(index)
    return table.take(keep, name=name or f"{table.name}_sample")


@dataclass(frozen=True)
class CorrelatedSampler:
    """A reusable correlated-sampling configuration.

    Attributes
    ----------
    rate:
        The sampling rate ``p`` in ``(0, 1]``.
    seed:
        Selects the hash family; all instances sampled by the same sampler use
        the same family, which is required for the correlation property.
    """

    rate: float
    seed: int = 0

    def __post_init__(self) -> None:
        if not 0.0 < self.rate <= 1.0:
            raise SamplingError(f"sampling rate must be in (0, 1], got {self.rate}")

    def sample(
        self, table: Table, join_attributes: Sequence[str], *, name: str | None = None
    ) -> Table:
        """Sample one instance over the given join attributes."""
        return correlated_sample(
            table, join_attributes, self.rate, seed=self.seed, name=name
        )

    def sample_all(
        self,
        tables: Sequence[Table],
        join_attributes_by_table: Mapping[str, Sequence[str]],
    ) -> list[Table]:
        """Sample several instances, each over its own join-attribute set.

        ``join_attributes_by_table`` maps table name to the attributes on which
        that table joins with its neighbours; tables absent from the mapping
        are sampled over their full attribute set (equivalent to uniform row
        sampling keyed by the whole row).
        """
        samples = []
        for table in tables:
            join_attrs = join_attributes_by_table.get(table.name, table.schema.names)
            samples.append(self.sample(table, join_attrs, name=f"{table.name}_sample"))
        return samples

    def expected_sample_size(self, table: Table) -> float:
        """Expected number of sampled rows (rate × rows); exact in expectation."""
        return self.rate * len(table)
