"""Correlated re-sampling of intermediate join results (Section 3.2).

When estimating correlation and quality over a multi-table join path, the join
of the per-instance samples can itself blow up.  Correlated re-sampling bounds
the intermediate size: whenever an intermediate join result exceeds a
threshold ``eta``, it is Bernoulli-sampled at a fixed re-sampling rate before
the next join.  The estimators remain unbiased regardless of ``eta``
(Theorem 3.2); larger ``eta`` / rate only reduces the estimator variance.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field

from repro.exceptions import SamplingError
from repro.relational.table import Table


def resample_if_large(
    table: Table,
    threshold: int,
    rate: float,
    rng: random.Random,
    *,
    name: str | None = None,
) -> Table:
    """Bernoulli-sample ``table`` at ``rate`` when it has more than ``threshold`` rows."""
    if threshold < 0:
        raise SamplingError(f"re-sampling threshold eta must be >= 0, got {threshold}")
    if not 0.0 < rate <= 1.0:
        raise SamplingError(f"re-sampling rate must be in (0, 1], got {rate}")
    if len(table) <= threshold or rate == 1.0:
        return table
    return table.sample_rows(rate, rng, name=name or table.name)


@dataclass
class ResamplingPolicy:
    """Configuration of correlated re-sampling for multi-way join estimation.

    Attributes
    ----------
    threshold:
        The intermediate-size threshold ``eta``; intermediate join results with
        more rows than this are re-sampled.  ``None`` disables re-sampling.
    rate:
        The fixed re-sampling rate applied when the threshold is exceeded.
    seed:
        Seed of the private random generator (kept per policy instance so that
        repeated estimations with the same policy object differ, but policies
        constructed with the same seed reproduce each other).
    """

    threshold: int | None = 10_000
    rate: float = 0.5
    seed: int = 0
    _rng: random.Random = field(init=False, repr=False)
    _scale: float = field(init=False, default=1.0, repr=False)

    def __post_init__(self) -> None:
        if self.threshold is not None and self.threshold < 0:
            raise SamplingError(f"eta must be >= 0 or None, got {self.threshold}")
        if not 0.0 < self.rate <= 1.0:
            raise SamplingError(f"re-sampling rate must be in (0, 1], got {self.rate}")
        self._rng = random.Random(self.seed)
        self._scale = 1.0

    @classmethod
    def disabled(cls) -> "ResamplingPolicy":
        """A policy that never re-samples (used for the 'without re-sampling' baseline)."""
        return cls(threshold=None, rate=1.0)

    @property
    def enabled(self) -> bool:
        return self.threshold is not None and self.rate < 1.0

    @property
    def cumulative_scale(self) -> float:
        """Product of the re-sampling rates applied so far (inverse inclusion probability)."""
        return self._scale

    def reset(self) -> None:
        """Reset the RNG and scale so that a new estimation run is reproducible."""
        self._rng = random.Random(self.seed)
        self._scale = 1.0

    def __call__(self, intermediate: Table) -> Table:
        """Hook for :func:`repro.relational.joins.join_path`: maybe re-sample."""
        if self.threshold is None:
            return intermediate
        if len(intermediate) <= self.threshold or self.rate == 1.0:
            return intermediate
        self._scale *= self.rate
        return resample_if_large(intermediate, self.threshold, self.rate, self._rng)
