"""The marketplace: catalog, sample service, and billed projection queries."""

from __future__ import annotations

from dataclasses import dataclass
from pathlib import Path
from typing import TYPE_CHECKING, Callable, Iterable, Mapping, Sequence

from repro.exceptions import MarketplaceError, StorageError
from repro.marketplace.dataset import MarketplaceDataset
from repro.pricing.models import EntropyPricingModel, PricingModel
from repro.relational.table import Table
from repro.sampling.correlated import CorrelatedSampler

if TYPE_CHECKING:  # repro.storage imports this module; runtime imports are lazy
    from repro.storage import CatalogBackend

#: Reserved key in the datasets namespace holding the pickled default pricing
#: model (dataset names never start with ``#``, matching the table-encoding
#: key convention).
_DEFAULT_PRICING_KEY = "#default_pricing"


@dataclass(frozen=True)
class ProjectionQuery:
    """A SQL projection query ``SELECT <attributes> FROM <dataset>``.

    This is the purchase unit of the query-based pricing model: DANCE's output
    is a set of projection queries, and the shopper sends them to the
    marketplace to receive (and pay for) the projected instances.
    """

    dataset: str
    attributes: tuple[str, ...]

    def __init__(self, dataset: str, attributes: Sequence[str]) -> None:
        object.__setattr__(self, "dataset", dataset)
        object.__setattr__(self, "attributes", tuple(attributes))

    def to_sql(self) -> str:
        """The SQL text of the query."""
        columns = ", ".join(self.attributes) if self.attributes else "*"
        return f"SELECT {columns} FROM {self.dataset};"

    def __str__(self) -> str:
        return self.to_sql()


@dataclass(frozen=True)
class PurchaseReceipt:
    """The outcome of executing one billed projection query."""

    query: ProjectionQuery
    price: float
    result: Table


class Marketplace:
    """An in-process data marketplace hosting :class:`MarketplaceDataset` objects.

    The marketplace offers three services used by DANCE and the shopper:

    * :meth:`catalog` — free schema-level metadata for every hosted dataset;
    * :meth:`sell_sample` — correlated samples at a per-row sample price
      (DANCE pays for samples during the offline phase);
    * :meth:`execute` — billed execution of projection queries (the shopper's
      actual data purchase during the online phase).
    """

    def __init__(
        self,
        datasets: Iterable[MarketplaceDataset | Table] = (),
        *,
        default_pricing: PricingModel | None = None,
        sample_row_price: float = 0.001,
    ) -> None:
        self._default_pricing = default_pricing or EntropyPricingModel()
        self._datasets: dict[str, MarketplaceDataset] = {}
        self.sample_row_price = sample_row_price
        self.sample_revenue = 0.0
        self.query_revenue = 0.0
        self._storage: "CatalogBackend | None" = None
        for dataset in datasets:
            self.host(dataset)

    @property
    def pricing(self) -> PricingModel:
        """The marketplace's default pricing model (applied to bare hosted tables).

        ``_default_pricing`` remains available as a private alias for backwards
        compatibility; new code should use this property.
        """
        return self._default_pricing

    # ------------------------------------------------------------------ hosting
    def host(self, dataset: MarketplaceDataset | Table) -> MarketplaceDataset:
        """Add a dataset to the marketplace (wrapping bare tables with default pricing)."""
        if isinstance(dataset, Table):
            dataset = MarketplaceDataset(table=dataset, pricing=self._default_pricing)
        if dataset.name in self._datasets:
            raise MarketplaceError(f"dataset {dataset.name!r} is already hosted")
        self._datasets[dataset.name] = dataset
        return dataset

    def remove(self, name: str) -> None:
        if name not in self._datasets:
            raise MarketplaceError(f"unknown dataset {name!r}")
        del self._datasets[name]

    # ------------------------------------------------------------------ catalog
    @property
    def dataset_names(self) -> tuple[str, ...]:
        return tuple(self._datasets)

    def __len__(self) -> int:
        return len(self._datasets)

    def __contains__(self, name: object) -> bool:
        return name in self._datasets

    def dataset(self, name: str) -> MarketplaceDataset:
        try:
            return self._datasets[name]
        except KeyError:
            raise MarketplaceError(
                f"unknown dataset {name!r}; hosted: {sorted(self._datasets)}"
            ) from None

    def catalog(self) -> list[dict[str, object]]:
        """Free schema-level metadata of every hosted dataset."""
        return [dataset.catalog_entry() for dataset in self._datasets.values()]

    def shared_attribute_map(self) -> dict[str, tuple[str, ...]]:
        """Per dataset, the attributes that also appear in at least one other dataset.

        These are the candidate join attributes, derivable from the free
        schema-level catalog; correlated sampling should key on them so that
        joinable rows survive sampling together.  Datasets with no shared
        attribute map to their full attribute set (plain row sampling).
        """
        occurrence: dict[str, int] = {}
        for dataset in self._datasets.values():
            for attribute in dataset.schema.names:
                occurrence[attribute] = occurrence.get(attribute, 0) + 1
        mapping: dict[str, tuple[str, ...]] = {}
        for name, dataset in self._datasets.items():
            shared = tuple(a for a in dataset.schema.names if occurrence[a] > 1)
            mapping[name] = shared if shared else dataset.schema.names
        return mapping

    # ------------------------------------------------------------------ samples
    def sell_sample(
        self,
        name: str,
        sampler: CorrelatedSampler,
        join_attributes: Sequence[str] | None = None,
    ) -> tuple[Table, float]:
        """Sell a correlated sample of dataset ``name``.

        Returns the sample and its price (``sample_row_price`` per sampled row).
        The sample is drawn over ``join_attributes`` (default: all attributes of
        the dataset, which behaves like uniform row sampling keyed by rows).
        """
        dataset = self.dataset(name)
        attrs = list(join_attributes) if join_attributes else list(dataset.schema.names)
        sample = sampler.sample(dataset.table, attrs, name=f"{name}")
        price = self.sample_row_price * len(sample)
        self.sample_revenue += price
        return sample, price

    def sell_samples(
        self,
        sampler: CorrelatedSampler,
        join_attributes_by_dataset: Mapping[str, Sequence[str]] | None = None,
        names: Sequence[str] | None = None,
    ) -> tuple[dict[str, Table], float]:
        """Sell correlated samples of several (default: all) datasets."""
        mapping = join_attributes_by_dataset or {}
        chosen = list(names) if names is not None else list(self._datasets)
        samples: dict[str, Table] = {}
        total = 0.0
        for name in chosen:
            sample, price = self.sell_sample(name, sampler, mapping.get(name))
            samples[name] = sample
            total += price
        return samples, total

    # ------------------------------------------------------------------ queries
    def price_query(self, query: ProjectionQuery) -> float:
        """Price of a projection query without executing it."""
        dataset = self.dataset(query.dataset)
        return dataset.price_of(query.attributes)

    def price_queries(self, queries: Iterable[ProjectionQuery]) -> float:
        return sum(self.price_query(query) for query in queries)

    def execute(self, query: ProjectionQuery) -> PurchaseReceipt:
        """Execute one billed projection query and return data + receipt."""
        dataset = self.dataset(query.dataset)
        missing = [a for a in query.attributes if a not in dataset.schema]
        if missing:
            raise MarketplaceError(
                f"dataset {query.dataset!r} has no attributes {missing}; "
                f"available: {list(dataset.schema.names)}"
            )
        price = dataset.price_of(query.attributes)
        result = dataset.table.project(query.attributes, name=query.dataset)
        self.query_revenue += price
        return PurchaseReceipt(query=query, price=price, result=result)

    def execute_all(self, queries: Sequence[ProjectionQuery]) -> list[PurchaseReceipt]:
        return [self.execute(query) for query in queries]

    # ------------------------------------------------------------------ storage
    @property
    def storage(self) -> "CatalogBackend | None":
        """The attached catalog backend, or ``None`` (pure in-RAM marketplace)."""
        return self._storage

    def attach_storage(
        self,
        backend: "CatalogBackend | str | None" = None,
        *,
        path: str | Path | None = None,
    ) -> "CatalogBackend":
        """Attach a catalog backend to this marketplace.

        ``backend`` may be a :class:`~repro.storage.CatalogBackend` instance or
        a kind name (``"memory"``/``"sqlite"``/``"duckdb"``; default infers
        memory without a ``path``, sqlite with one).  Attaching alone writes
        nothing — call :meth:`persist` to checkpoint the marketplace into it.
        """
        from repro import storage as _storage

        if not isinstance(backend, _storage.CatalogBackend):
            backend = _storage.create_backend(backend, path)
        self._attach(backend)
        return backend

    def _attach(self, backend: "CatalogBackend") -> None:
        from repro.storage import StoredDataset

        self._storage = backend
        # Re-point lazy datasets so pending hydrations read the new backend.
        for dataset in self._datasets.values():
            if isinstance(dataset, StoredDataset):
                dataset._backend = backend

    def _snapshot_payloads(self) -> list[tuple[str, bytes, bytes, bytes | None]]:
        """Serialised ``(name, spec, table, encodings)`` for every dataset.

        Gathered *before* any write so that re-persisting a catalog into its
        own backend (e.g. an in-memory backend about to be cleared) still sees
        the blobs that lazy, never-hydrated datasets would copy verbatim.
        """
        from repro.storage import NS_ENCODINGS, NS_TABLES, StoredDataset
        from repro.storage import serialize as _serialize

        items: list[tuple[str, bytes, bytes, bytes | None]] = []
        for name, dataset in self._datasets.items():
            spec = _serialize.dumps(
                {
                    "entry": dataset.catalog_entry(),
                    "description": dataset.description,
                    "pricing": dataset.pricing,
                    "fds": dataset.fds,
                }
            )
            if isinstance(dataset, StoredDataset) and not dataset.hydrated:
                # Copy the stored bytes verbatim — checkpointing a lazy
                # catalog must not force every table into memory.
                table_blob = dataset._backend.get(NS_TABLES, name)
                if table_blob is None:
                    raise StorageError(
                        f"catalog holds no table data for dataset {name!r}"
                    )
                encodings_blob = dataset._backend.get(NS_ENCODINGS, name)
            else:
                table_blob = _serialize.table_to_blob(dataset.table)
                encodings_blob = _serialize.encodings_to_blob(dataset.table)
            items.append((name, spec, table_blob, encodings_blob))
        return items

    def _write_catalog(
        self,
        backend: "CatalogBackend",
        items: list[tuple[str, bytes, bytes, bytes | None]],
        extra: "Callable[[CatalogBackend], None] | None" = None,
    ) -> None:
        from repro.storage import (
            META_MARKETPLACE,
            NS_DATASETS,
            NS_ENCODINGS,
            NS_TABLES,
        )
        from repro.storage import serialize as _serialize

        backend.initialize()
        backend.put_meta(
            META_MARKETPLACE,
            {
                "sample_row_price": self.sample_row_price,
                "sample_revenue": self.sample_revenue,
                "query_revenue": self.query_revenue,
                # Hosting order, so a reopened catalog lists datasets (and
                # therefore orders samples, graph nodes, ...) identically.
                "datasets": list(self._datasets),
            },
        )
        backend.put(
            NS_DATASETS, _DEFAULT_PRICING_KEY, _serialize.dumps(self._default_pricing)
        )
        for name, spec, table_blob, encodings_blob in items:
            backend.put(NS_DATASETS, name, spec)
            backend.put(NS_TABLES, name, table_blob)
            if encodings_blob is not None:
                backend.put(NS_ENCODINGS, name, encodings_blob)
        if extra is not None:
            extra(backend)
        backend.flush()

    def persist(
        self,
        path: str | Path | None = None,
        *,
        kind: str | None = None,
        extra: "Callable[[CatalogBackend], None] | None" = None,
    ) -> "CatalogBackend":
        """Checkpoint the marketplace into a catalog and attach that catalog.

        With no ``path``, the attached backend is rewritten in place (a fresh
        in-memory backend is attached when nothing is).  With a ``path``, the
        catalog is written to a sibling temp file and atomically renamed into
        place, so an interrupted persist never corrupts an existing catalog.
        ``extra`` lets higher layers (:meth:`repro.core.dance.DANCE.persist`,
        the acquisition service) add their namespaces inside the same atomic
        write.  Returns the backend now attached.
        """
        from repro import storage as _storage

        items = self._snapshot_payloads()
        target = None if path is None else Path(path)
        if target is None and (self._storage is None or self._storage.path is None):
            backend = self._storage
            if backend is None:
                backend = _storage.InMemoryBackend()
            if isinstance(backend, _storage.InMemoryBackend):
                backend.clear()
            self._write_catalog(backend, items, extra)
            self._attach(backend)
            return backend
        if target is None:
            target = self._storage.path
            kind = kind or self._storage.kind
        final = _storage.atomic_persist(
            target, kind, lambda backend: self._write_catalog(backend, items, extra)
        )
        if self._storage is not None:
            self._storage.close()
        self._attach(_storage.open_backend(final))
        return self._storage

    @classmethod
    def open(
        cls, source: "str | Path | CatalogBackend", *, kind: str | None = None
    ) -> "Marketplace":
        """Open a persisted marketplace from a catalog path or backend.

        Datasets come back as lazily hydrated :class:`~repro.storage.StoredDataset`
        objects: the free catalog (names, schemas, row counts, full prices) is
        served from persisted metadata, and each table's data loads from the
        backend on first access — with its dictionary encodings rehydrated
        rather than re-encoded.  Raises a typed
        :class:`~repro.exceptions.StorageError` for missing, corrupt, or
        non-marketplace catalogs.
        """
        from repro import storage as _storage
        from repro.storage import serialize as _serialize

        backend = _storage.open_backend(source, kind=kind)
        meta = backend.get_meta(_storage.META_MARKETPLACE)
        if not isinstance(meta, dict):
            raise StorageError(
                f"{'catalog at ' + str(backend.path) if backend.path else 'catalog'} "
                "holds no marketplace (missing marketplace metadata)"
            )
        pricing_blob = backend.get(_storage.NS_DATASETS, _DEFAULT_PRICING_KEY)
        default_pricing = (
            _serialize.loads(pricing_blob) if pricing_blob is not None else None
        )
        market = cls(
            default_pricing=default_pricing,
            sample_row_price=float(meta.get("sample_row_price", 0.001)),
        )
        market.sample_revenue = float(meta.get("sample_revenue", 0.0))
        market.query_revenue = float(meta.get("query_revenue", 0.0))
        stored = [
            key
            for key in backend.keys(_storage.NS_DATASETS)
            if not key.startswith("#")
        ]
        order = meta.get("datasets")
        if not isinstance(order, list) or sorted(order) != sorted(stored):
            order = stored
        for name in order:
            payload = backend.get(_storage.NS_DATASETS, name)
            spec = _serialize.loads(payload)
            if not isinstance(spec, dict) or "entry" not in spec:
                raise StorageError(f"corrupt dataset record for {name!r}")
            market._datasets[name] = _storage.StoredDataset(
                backend,
                name,
                spec["entry"],
                pricing=spec.get("pricing") or market.pricing,
                fds=spec.get("fds"),
                description=spec.get("description", ""),
            )
        market._storage = backend
        return market

    # ---------------------------------------------------------------- summaries
    def total_revenue(self) -> float:
        return self.sample_revenue + self.query_revenue

    def describe(self) -> dict[str, object]:
        return {
            "num_datasets": len(self._datasets),
            "datasets": sorted(self._datasets),
            "sample_revenue": self.sample_revenue,
            "query_revenue": self.query_revenue,
            "storage": None if self._storage is None else self._storage.kind,
        }
