"""The marketplace: catalog, sample service, and billed projection queries."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Mapping, Sequence

from repro.exceptions import MarketplaceError
from repro.marketplace.dataset import MarketplaceDataset
from repro.pricing.models import EntropyPricingModel, PricingModel
from repro.relational.table import Table
from repro.sampling.correlated import CorrelatedSampler


@dataclass(frozen=True)
class ProjectionQuery:
    """A SQL projection query ``SELECT <attributes> FROM <dataset>``.

    This is the purchase unit of the query-based pricing model: DANCE's output
    is a set of projection queries, and the shopper sends them to the
    marketplace to receive (and pay for) the projected instances.
    """

    dataset: str
    attributes: tuple[str, ...]

    def __init__(self, dataset: str, attributes: Sequence[str]) -> None:
        object.__setattr__(self, "dataset", dataset)
        object.__setattr__(self, "attributes", tuple(attributes))

    def to_sql(self) -> str:
        """The SQL text of the query."""
        columns = ", ".join(self.attributes) if self.attributes else "*"
        return f"SELECT {columns} FROM {self.dataset};"

    def __str__(self) -> str:
        return self.to_sql()


@dataclass(frozen=True)
class PurchaseReceipt:
    """The outcome of executing one billed projection query."""

    query: ProjectionQuery
    price: float
    result: Table


class Marketplace:
    """An in-process data marketplace hosting :class:`MarketplaceDataset` objects.

    The marketplace offers three services used by DANCE and the shopper:

    * :meth:`catalog` — free schema-level metadata for every hosted dataset;
    * :meth:`sell_sample` — correlated samples at a per-row sample price
      (DANCE pays for samples during the offline phase);
    * :meth:`execute` — billed execution of projection queries (the shopper's
      actual data purchase during the online phase).
    """

    def __init__(
        self,
        datasets: Iterable[MarketplaceDataset | Table] = (),
        *,
        default_pricing: PricingModel | None = None,
        sample_row_price: float = 0.001,
    ) -> None:
        self._default_pricing = default_pricing or EntropyPricingModel()
        self._datasets: dict[str, MarketplaceDataset] = {}
        self.sample_row_price = sample_row_price
        self.sample_revenue = 0.0
        self.query_revenue = 0.0
        for dataset in datasets:
            self.host(dataset)

    @property
    def pricing(self) -> PricingModel:
        """The marketplace's default pricing model (applied to bare hosted tables).

        ``_default_pricing`` remains available as a private alias for backwards
        compatibility; new code should use this property.
        """
        return self._default_pricing

    # ------------------------------------------------------------------ hosting
    def host(self, dataset: MarketplaceDataset | Table) -> MarketplaceDataset:
        """Add a dataset to the marketplace (wrapping bare tables with default pricing)."""
        if isinstance(dataset, Table):
            dataset = MarketplaceDataset(table=dataset, pricing=self._default_pricing)
        if dataset.name in self._datasets:
            raise MarketplaceError(f"dataset {dataset.name!r} is already hosted")
        self._datasets[dataset.name] = dataset
        return dataset

    def remove(self, name: str) -> None:
        if name not in self._datasets:
            raise MarketplaceError(f"unknown dataset {name!r}")
        del self._datasets[name]

    # ------------------------------------------------------------------ catalog
    @property
    def dataset_names(self) -> tuple[str, ...]:
        return tuple(self._datasets)

    def __len__(self) -> int:
        return len(self._datasets)

    def __contains__(self, name: object) -> bool:
        return name in self._datasets

    def dataset(self, name: str) -> MarketplaceDataset:
        try:
            return self._datasets[name]
        except KeyError:
            raise MarketplaceError(
                f"unknown dataset {name!r}; hosted: {sorted(self._datasets)}"
            ) from None

    def catalog(self) -> list[dict[str, object]]:
        """Free schema-level metadata of every hosted dataset."""
        return [dataset.catalog_entry() for dataset in self._datasets.values()]

    def shared_attribute_map(self) -> dict[str, tuple[str, ...]]:
        """Per dataset, the attributes that also appear in at least one other dataset.

        These are the candidate join attributes, derivable from the free
        schema-level catalog; correlated sampling should key on them so that
        joinable rows survive sampling together.  Datasets with no shared
        attribute map to their full attribute set (plain row sampling).
        """
        occurrence: dict[str, int] = {}
        for dataset in self._datasets.values():
            for attribute in dataset.schema.names:
                occurrence[attribute] = occurrence.get(attribute, 0) + 1
        mapping: dict[str, tuple[str, ...]] = {}
        for name, dataset in self._datasets.items():
            shared = tuple(a for a in dataset.schema.names if occurrence[a] > 1)
            mapping[name] = shared if shared else dataset.schema.names
        return mapping

    # ------------------------------------------------------------------ samples
    def sell_sample(
        self,
        name: str,
        sampler: CorrelatedSampler,
        join_attributes: Sequence[str] | None = None,
    ) -> tuple[Table, float]:
        """Sell a correlated sample of dataset ``name``.

        Returns the sample and its price (``sample_row_price`` per sampled row).
        The sample is drawn over ``join_attributes`` (default: all attributes of
        the dataset, which behaves like uniform row sampling keyed by rows).
        """
        dataset = self.dataset(name)
        attrs = list(join_attributes) if join_attributes else list(dataset.schema.names)
        sample = sampler.sample(dataset.table, attrs, name=f"{name}")
        price = self.sample_row_price * len(sample)
        self.sample_revenue += price
        return sample, price

    def sell_samples(
        self,
        sampler: CorrelatedSampler,
        join_attributes_by_dataset: Mapping[str, Sequence[str]] | None = None,
        names: Sequence[str] | None = None,
    ) -> tuple[dict[str, Table], float]:
        """Sell correlated samples of several (default: all) datasets."""
        mapping = join_attributes_by_dataset or {}
        chosen = list(names) if names is not None else list(self._datasets)
        samples: dict[str, Table] = {}
        total = 0.0
        for name in chosen:
            sample, price = self.sell_sample(name, sampler, mapping.get(name))
            samples[name] = sample
            total += price
        return samples, total

    # ------------------------------------------------------------------ queries
    def price_query(self, query: ProjectionQuery) -> float:
        """Price of a projection query without executing it."""
        dataset = self.dataset(query.dataset)
        return dataset.price_of(query.attributes)

    def price_queries(self, queries: Iterable[ProjectionQuery]) -> float:
        return sum(self.price_query(query) for query in queries)

    def execute(self, query: ProjectionQuery) -> PurchaseReceipt:
        """Execute one billed projection query and return data + receipt."""
        dataset = self.dataset(query.dataset)
        missing = [a for a in query.attributes if a not in dataset.schema]
        if missing:
            raise MarketplaceError(
                f"dataset {query.dataset!r} has no attributes {missing}; "
                f"available: {list(dataset.schema.names)}"
            )
        price = dataset.price_of(query.attributes)
        result = dataset.table.project(query.attributes, name=query.dataset)
        self.query_revenue += price
        return PurchaseReceipt(query=query, price=price, result=result)

    def execute_all(self, queries: Sequence[ProjectionQuery]) -> list[PurchaseReceipt]:
        return [self.execute(query) for query in queries]

    # ---------------------------------------------------------------- summaries
    def total_revenue(self) -> float:
        return self.sample_revenue + self.query_revenue

    def describe(self) -> dict[str, object]:
        return {
            "num_datasets": len(self._datasets),
            "datasets": sorted(self._datasets),
            "sample_revenue": self.sample_revenue,
            "query_revenue": self.query_revenue,
        }
