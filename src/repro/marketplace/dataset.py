"""A single dataset hosted on the marketplace."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Sequence

from repro.pricing.models import EntropyPricingModel, PricingModel
from repro.quality.discovery import discover_afds
from repro.quality.fd import FunctionalDependency
from repro.relational.schema import Schema
from repro.relational.table import Table


@dataclass
class MarketplaceDataset:
    """One instance offered for sale on the marketplace.

    Attributes
    ----------
    table:
        The full data of the instance (only the marketplace sees this; DANCE
        and the shopper see schemas, samples, and purchased projections).
    pricing:
        The pricing model used to price projection queries on this instance.
    fds:
        The approximate FDs that hold on the instance; discovered lazily when
        not provided (Table 5 reports FD counts per table).
    description:
        Free-text catalog description shown to shoppers.
    """

    table: Table
    pricing: PricingModel = field(default_factory=EntropyPricingModel)
    fds: list[FunctionalDependency] | None = None
    description: str = ""

    @property
    def name(self) -> str:
        return self.table.name

    @property
    def schema(self) -> Schema:
        return self.table.schema

    @property
    def num_rows(self) -> int:
        return len(self.table)

    def discovered_fds(
        self, *, max_violation: float = 0.1, max_lhs_size: int = 2
    ) -> list[FunctionalDependency]:
        """The AFDs holding on this instance (cached after first discovery)."""
        if self.fds is None:
            self.fds = discover_afds(
                self.table, max_violation=max_violation, max_lhs_size=max_lhs_size
            )
        return self.fds

    def price_of(self, attributes: Sequence[str]) -> float:
        """Price of purchasing the projection of this instance onto ``attributes``."""
        return self.pricing.price(self.table, attributes)

    def catalog_entry(self) -> dict[str, object]:
        """Schema-level metadata exposed for free in the marketplace catalog."""
        return {
            "name": self.name,
            "description": self.description,
            "attributes": list(self.schema.names),
            "attribute_types": {a.name: a.type.value for a in self.schema},
            "num_rows": self.num_rows,
            "full_price": self.pricing.price_full(self.table) if len(self.schema) else 0.0,
        }
