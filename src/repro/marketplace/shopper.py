"""The data shopper and the acquisition request it submits to DANCE."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Sequence

from repro.exceptions import SearchError
from repro.marketplace.market import Marketplace, ProjectionQuery, PurchaseReceipt
from repro.pricing.budget import Budget
from repro.pricing.sla import SlaTier, resolve_tier
from repro.relational.table import Table


@dataclass(frozen=True)
class AcquisitionRequest:
    """The shopper's request to DANCE (Section 2.1 / 2.5 of the paper).

    Attributes
    ----------
    source_attributes:
        ``A_S`` — attributes the shopper already owns (may be empty when the
        shopper only cares about the correlation of marketplace attributes).
    target_attributes:
        ``A_T`` — attributes to purchase from the marketplace.
    budget:
        ``B`` — maximum total price of the purchased projections.
    max_join_informativeness:
        ``alpha`` — upper bound on the total JI weight of the target graph.
    min_quality:
        ``beta`` — lower bound on the quality of the joined result.
    shopper:
        Optional identity of the submitting shopper.  The acquisition
        service's batch API uses it for round-robin admission fairness (one
        shopper's burst cannot starve another's requests); it never affects
        the search itself.
    tier:
        Optional SLA tier *name* the request is served under
        (:mod:`repro.pricing.sla`).  The QoS scheduler resolves the name
        against its own tier table for the weight/rate/burst — the request
        never carries scheduling parameters, so a shopper cannot self-assign
        a weight.  Like ``shopper``, it never affects the search itself.
    deadline:
        Optional deadline in seconds from submission.  A request that can no
        longer meet it when the QoS scheduler would grant it a slot is shed
        with :class:`~repro.exceptions.DeadlineExceededError` instead of
        burning a worker.  Ignored when QoS is off.
    """

    source_attributes: tuple[str, ...]
    target_attributes: tuple[str, ...]
    budget: float
    max_join_informativeness: float = float("inf")
    min_quality: float = 0.0
    shopper: str | None = None
    tier: str | None = None
    deadline: float | None = None

    def __init__(
        self,
        source_attributes: Sequence[str],
        target_attributes: Sequence[str],
        budget: float,
        max_join_informativeness: float = float("inf"),
        min_quality: float = 0.0,
        shopper: str | None = None,
        tier: str | None = None,
        deadline: float | None = None,
    ) -> None:
        if not target_attributes:
            raise SearchError("an acquisition request needs at least one target attribute")
        if budget < 0:
            raise SearchError(f"budget must be non-negative, got {budget}")
        if not 0.0 <= min_quality <= 1.0:
            raise SearchError(f"min_quality must be in [0, 1], got {min_quality}")
        if max_join_informativeness < 0:
            raise SearchError("max_join_informativeness must be non-negative")
        if deadline is not None and deadline < 0:
            raise SearchError(f"deadline must be non-negative, got {deadline}")
        object.__setattr__(self, "source_attributes", tuple(source_attributes))
        object.__setattr__(self, "target_attributes", tuple(target_attributes))
        object.__setattr__(self, "budget", float(budget))
        object.__setattr__(self, "max_join_informativeness", float(max_join_informativeness))
        object.__setattr__(self, "min_quality", float(min_quality))
        object.__setattr__(self, "shopper", shopper)
        object.__setattr__(self, "tier", tier)
        object.__setattr__(self, "deadline", float(deadline) if deadline is not None else None)

    def with_budget(self, budget: float) -> "AcquisitionRequest":
        """The same request under a different budget (used by budget-ratio sweeps)."""
        return AcquisitionRequest(
            self.source_attributes,
            self.target_attributes,
            budget,
            self.max_join_informativeness,
            self.min_quality,
            self.shopper,
            self.tier,
            self.deadline,
        )


@dataclass
class DataShopper:
    """A shopper with local source instances and a budget.

    The shopper never talks to the marketplace's raw data directly: it submits
    an :class:`AcquisitionRequest` to DANCE, receives a set of projection
    queries, and then buys those queries from the marketplace.

    A shopper may :meth:`subscribe` to an SLA tier
    (:mod:`repro.pricing.sla`): its requests are then stamped with the tier
    name (the QoS scheduler weighs them accordingly) and its purchases are
    charged at the tier's price multiplier — better service is a product,
    not a configuration knob.
    """

    name: str
    source_tables: list[Table] = field(default_factory=list)
    budget: Budget = field(default_factory=lambda: Budget(total=0.0))
    purchased: list[PurchaseReceipt] = field(default_factory=list)
    tier: SlaTier | None = None

    def subscribe(self, tier: SlaTier | str) -> SlaTier:
        """Subscribe the shopper to an SLA tier (object or default-table name)."""
        self.tier = resolve_tier(tier)
        return self.tier

    def source_attribute_names(self) -> tuple[str, ...]:
        """All attribute names available in the shopper's local instances."""
        names: list[str] = []
        for table in self.source_tables:
            for attribute in table.schema.names:
                if attribute not in names:
                    names.append(attribute)
        return tuple(names)

    def owns_attribute(self, attribute: str) -> bool:
        return attribute in self.source_attribute_names()

    def make_request(
        self,
        target_attributes: Sequence[str],
        *,
        source_attributes: Sequence[str] | None = None,
        max_join_informativeness: float = float("inf"),
        min_quality: float = 0.0,
        deadline: float | None = None,
    ) -> AcquisitionRequest:
        """Build an acquisition request using the shopper's remaining budget."""
        sources = (
            tuple(source_attributes)
            if source_attributes is not None
            else self.source_attribute_names()
        )
        return AcquisitionRequest(
            source_attributes=sources,
            target_attributes=tuple(target_attributes),
            budget=self.budget.remaining,
            max_join_informativeness=max_join_informativeness,
            min_quality=min_quality,
            shopper=self.name,
            tier=self.tier.name if self.tier is not None else None,
            deadline=deadline,
        )

    def purchase(
        self, marketplace: Marketplace, queries: Sequence[ProjectionQuery]
    ) -> list[PurchaseReceipt]:
        """Buy the projection queries recommended by DANCE, charging the budget.

        A subscribed shopper pays the tier-multiplied price: the premium that
        funds its scheduling weight (:class:`~repro.pricing.sla.SlaTier`).
        """
        receipts: list[PurchaseReceipt] = []
        for query in queries:
            price = marketplace.price_query(query)
            if self.tier is not None:
                price = self.tier.charge(price)
            self.budget.charge(price)
            receipts.append(marketplace.execute(query))
        self.purchased.extend(receipts)
        return receipts

    def purchased_tables(self) -> list[Table]:
        return [receipt.result for receipt in self.purchased]

    def total_spent(self) -> float:
        return self.budget.spent
