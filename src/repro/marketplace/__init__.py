"""Marketplace substrate: hosted datasets, catalog, sample sales, query billing.

The paper assumes an online data marketplace (Azure Marketplace / BigQuery
style) that exposes dataset schemas for free, sells data through SQL projection
queries under a query-based pricing model, and can serve samples.  This package
implements that substrate in-process so the whole DANCE pipeline can run
end-to-end on a laptop:

``MarketplaceDataset``
    One hosted instance: data, discovered FDs, and its pricing.
``Marketplace``
    The catalog plus the two services DANCE uses: correlated-sample purchase
    (offline phase) and projection-query execution with billing (online phase).
``DataShopper``
    The budget-carrying shopper with optional local source instances.
"""

from repro.marketplace.dataset import MarketplaceDataset
from repro.marketplace.market import Marketplace, ProjectionQuery, PurchaseReceipt
from repro.marketplace.shopper import AcquisitionRequest, DataShopper

__all__ = [
    "MarketplaceDataset",
    "Marketplace",
    "ProjectionQuery",
    "PurchaseReceipt",
    "DataShopper",
    "AcquisitionRequest",
]
